// Time-varying workload: a day/night traffic profile analyzed with the
// piecewise-constant MRM solver.
//
// The same 16-source ON-OFF multiplexer serves two regimes every 24 h:
// daytime (sources toggle ON aggressively) and nighttime (mostly OFF).
// Reward = capacity left for batch (class-2) traffic. Batch jobs run at
// night, so the interesting quantity is the capacity accumulated across
// full day/night cycles — an inherently inhomogeneous question the
// homogeneous solver cannot answer directly.

#include <cmath>
#include <cstdio>
#include <vector>

#include "core/moment_utils.hpp"
#include "core/piecewise.hpp"
#include "models/onoff.hpp"

int main() {
  using namespace somrm;

  models::OnOffMultiplexerParams day;
  day.num_sources = 16;
  day.capacity = 16.0;
  day.on_rate = 2.0;   // ON period mean 0.5 h
  day.off_rate = 6.0;  // OFF period mean ~0.17 h => busy
  day.peak_rate = 1.0;
  day.rate_variance = 0.5;

  models::OnOffMultiplexerParams night = day;
  night.off_rate = 0.5;  // sources mostly idle at night
  night.on_rate = 4.0;

  const double t_day = 16.0, t_night = 8.0;

  const auto day_model = models::make_onoff_multiplexer(day);
  const auto night_model = models::make_onoff_multiplexer(night);

  std::printf("16-source multiplexer, %g h day + %g h night cycles\n\n",
              t_day, t_night);

  // Three full cycles.
  std::vector<core::Phase> phases;
  for (int cycle = 0; cycle < 3; ++cycle) {
    phases.push_back({day_model, t_day});
    phases.push_back({night_model, t_night});
  }
  const core::PiecewiseMomentSolver solver(std::move(phases));

  core::MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;
  const auto results = solver.solve(opts);

  std::printf("%10s %8s %14s %12s %10s\n", "epoch [h]", "regime",
              "E[capacity]", "stddev", "skew");
  const char* regimes[] = {"day", "night"};
  for (std::size_t k = 0; k < results.size(); ++k) {
    const auto& r = results[k];
    std::printf("%10.1f %8s %14.3f %12.3f %10.4f\n", r.time,
                regimes[k % 2], r.weighted[1],
                std::sqrt(core::variance_from_raw(r.weighted)),
                core::skewness_from_raw(r.weighted));
  }

  const auto& final = results.back();
  const double per_hour = final.weighted[1] / final.time;
  std::printf("\nover %g h: %.2f capacity-hours for class 2 (%.3f of the "
              "channel on average)\n",
              final.time, final.weighted[1], per_hour / day.capacity);
  std::printf("night phases contribute disproportionately — compare the "
              "epoch deltas above.\n");
  return 0;
}
