// Distribution explorer — every route in the library to the distribution of
// the accumulated reward of one small model, side by side:
//
//   1. transform-domain density (Corollary 2: characteristic function via
//      complex matrix exponentials + FFT inversion),
//   2. finite-difference PDE density (Corollary 1),
//   3. Monte Carlo histogram,
//   4. moment-based CDF bounds (Figures 5-7 machinery),
//
// printed as a table over a reward grid. Demonstrates when each tool is
// appropriate: transform = exact but small-N; PDE = small-N, any boundary
// behaviour; simulation = anything, slowly; bounds = any N, guaranteed but
// interval-valued.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bounds/moment_bounds.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "density/pde_solver.hpp"
#include "density/transform_solver.hpp"
#include "models/birth_death.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace somrm;

  // Small 4-state workload burst model: states = burst intensity.
  const auto model = models::make_birth_death_mrm(
      4, [](std::size_t) { return 2.0; }, [](std::size_t) { return 3.0; },
      [](std::size_t i) { return 4.0 - static_cast<double>(i) * 1.5; },
      [](std::size_t i) { return 0.3 + 0.4 * static_cast<double>(i); });
  const double t = 1.0;

  std::printf("4-state burst model, t = %.1f: density of B(t) via three "
              "methods + CDF bounds\n\n", t);

  // Moments (for centering and the bound pipeline).
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions mopts;
  mopts.epsilon = 1e-11;
  const auto mom = solver.solve(t, mopts);
  const double mean = mom.weighted[1];
  const double sd = std::sqrt(core::variance_from_raw(mom.weighted));
  std::printf("moments: mean %.4f, sd %.4f, skew %.4f\n\n", mean, sd,
              core::skewness_from_raw(mom.weighted));

  // 1. Transform-domain density.
  density::TransformSolverOptions topts;
  topts.grid = {mean - 8.0 * sd, mean + 8.0 * sd, 2048};
  const auto tr = density::density_via_transform(model, t, topts);

  // 2. PDE density on the same span.
  density::PdeSolverOptions popts;
  popts.grid = {mean - 8.0 * sd, mean + 8.0 * sd, 1601};
  popts.num_time_steps = 400;
  const auto pde = density::density_via_pde(model, t, popts);

  // 3. Monte Carlo samples.
  const sim::Simulator simulator(model);
  auto samples = simulator.sample_rewards(t, 200000, 7);
  std::sort(samples.begin(), samples.end());

  // 4. Moment bounds from 19 centered moments.
  core::MomentSolverOptions copts;
  copts.max_moment = 19;
  copts.epsilon = 1e-13;
  copts.center = mean / t;
  const bounds::MomentBounder bounder(solver.solve(t, copts).weighted);

  std::printf("%9s %12s %12s %12s %12s %12s %12s\n", "x", "pdf_transform",
              "pdf_pde", "cdf_transform", "cdf_empirical", "cdf_lower",
              "cdf_upper");
  for (int k = -3; k <= 3; ++k) {
    const double x = mean + static_cast<double>(k) * sd;
    const auto nearest = [&](const density::DensityResult& d) {
      const double dx = d.x[1] - d.x[0];
      const auto j = static_cast<std::size_t>(
          std::clamp(std::llround((x - d.x[0]) / dx),
                     static_cast<long long>(0),
                     static_cast<long long>(d.x.size() - 1)));
      return j;
    };
    const auto jt = nearest(tr);
    const auto jp = nearest(pde);
    const double cdf_tr = density::cdf_from_density(tr.x, tr.weighted, x);
    const double ecdf = sim::empirical_cdf(samples, x, /*sorted=*/true);
    const auto b = bounder.bounds_at(x - mean);
    std::printf("%9.4f %12.6f %12.6f %12.6f %12.6f %12.6f %12.6f\n", x,
                tr.weighted[jt], pde.weighted[jp], cdf_tr, ecdf, b.lower,
                b.upper);
  }

  std::printf("\nintegral of transform density: %.6f (should be 1)\n",
              density::integrate_trapezoid(tr.x, tr.weighted));
  std::printf("integral of PDE density:       %.6f (boundary absorption "
              "costs a little mass)\n",
              density::integrate_trapezoid(pde.x, pde.weighted));
  return 0;
}
