// The paper's section-7 scenario as a configurable application: a channel
// of capacity C serves N ON-OFF sources with priority over best-effort
// (class 2) traffic. The tool reports, for a given horizon t, how much
// capacity class 2 receives — mean, spread, skew — and moment-based bounds
// on the probability that class 2 gets at least a target amount.
//
// Usage: telecom_multiplexer [--sources N] [--capacity C] [--alpha a]
//   [--beta b] [--rate r] [--sigma2 s] [--time t] [--target x]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bounds/moment_bounds.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "ctmc/stationary.hpp"
#include "models/onoff.hpp"

namespace {

double flag(int argc, char** argv, const std::string& name, double fallback) {
  for (int i = 1; i + 1 < argc; ++i)
    if (name == argv[i]) return std::strtod(argv[i + 1], nullptr);
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  models::OnOffMultiplexerParams params;
  params.num_sources =
      static_cast<std::size_t>(flag(argc, argv, "--sources", 32));
  params.capacity = flag(argc, argv, "--capacity", 32.0);
  params.on_rate = flag(argc, argv, "--alpha", 4.0);
  params.off_rate = flag(argc, argv, "--beta", 3.0);
  params.peak_rate = flag(argc, argv, "--rate", 1.0);
  params.rate_variance = flag(argc, argv, "--sigma2", 1.0);
  const double t = flag(argc, argv, "--time", 0.5);

  const auto model = models::make_onoff_multiplexer(params);
  std::printf("ON-OFF multiplexer: C=%g, N=%zu, alpha=%g, beta=%g, r=%g, "
              "sigma^2=%g\n",
              params.capacity, params.num_sources, params.on_rate,
              params.off_rate, params.peak_rate, params.rate_variance);

  // Long-run capacity share of class 2.
  const auto pi_ss = ctmc::stationary_distribution_gth(model.generator());
  const double ss_rate = model.stationary_reward_rate(pi_ss);
  std::printf("long-run class-2 rate: %.4f (utilization of class 1: %.1f%%)\n",
              ss_rate, 100.0 * (1.0 - ss_rate / params.capacity));

  // Transient moments of the capacity available in (0, t).
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-11;
  const auto res = solver.solve(t, opts);
  const double mean = res.weighted[1];
  const double sd = std::sqrt(core::variance_from_raw(res.weighted));
  std::printf("\ncapacity for class 2 over (0, %.3g), all sources OFF at 0:\n",
              t);
  std::printf("  mean %.4f   stddev %.4f   skew %.4f   excess kurtosis %.4f\n",
              mean, sd, core::skewness_from_raw(res.weighted),
              core::excess_kurtosis_from_raw(res.weighted));

  // Moment-based guarantee: bounds on Pr(B(t) <= x) from 19 centered
  // moments (Markov-Krein sharp bounds; see bounds/moment_bounds.hpp).
  core::MomentSolverOptions copts;
  copts.max_moment = 19;
  copts.epsilon = 1e-13;
  copts.center = mean / t;
  const auto centered = solver.solve(t, copts);
  const bounds::MomentBounder bounder(centered.weighted);

  const double target = flag(argc, argv, "--target", mean - 2.0 * sd);
  const auto b = bounder.bounds_at(target - mean);
  std::printf("\nPr(class-2 capacity <= %.4f) is in [%.6f, %.6f]\n", target,
              b.lower, b.upper);
  std::printf("=> class 2 receives MORE than %.4f with probability at least "
              "%.6f\n",
              target, 1.0 - b.upper);
  std::printf("(bounds from %zu-point principal representations; "
              "G = %zu randomization steps)\n",
              bounder.rule_size(), centered.truncation_point);
  return 0;
}
