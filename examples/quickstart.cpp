// Quickstart — build a tiny second-order Markov reward model by hand and
// compute moments of the accumulated reward.
//
// The model: a link that alternates between a GOOD state (drift 10 Mb/s of
// useful throughput, small jitter) and a DEGRADED state (drift 2 Mb/s,
// large jitter). How much data will have flowed by t = 1s, 5s, 10s — and
// how uncertain is that number?

#include <cmath>
#include <cstdio>

#include "core/model.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "ctmc/generator.hpp"

int main() {
  using namespace somrm;

  // 1. Structure process: GOOD <-> DEGRADED with rates 0.2 and 1.0 (mean
  //    sojourns 5 s and 1 s). Only off-diagonal rates are supplied; the
  //    diagonal is derived.
  auto generator = ctmc::Generator::from_rates(
      2, std::vector<linalg::Triplet>{{0, 1, 0.2},   // GOOD -> DEGRADED
                                      {1, 0, 1.0}}); // DEGRADED -> GOOD

  // 2. Reward structure: drift (Mb/s) and variance per state, plus the
  //    initial state distribution (start GOOD).
  const linalg::Vec drift{10.0, 2.0};
  const linalg::Vec variance{0.5, 4.0};
  const linalg::Vec initial{1.0, 0.0};
  const core::SecondOrderMrm model(std::move(generator), drift, variance,
                                   initial);

  // 3. Solve: first three moments of the accumulated reward B(t).
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions options;
  options.max_moment = 3;
  options.epsilon = 1e-10;  // Theorem-4 truncation budget

  std::printf("%6s %12s %12s %12s %8s\n", "t[s]", "E[B] Mb", "stddev Mb",
              "skewness", "G");
  for (double t : {1.0, 5.0, 10.0}) {
    const auto result = solver.solve(t, options);
    const double mean = result.weighted[1];
    const double sd =
        std::sqrt(core::variance_from_raw(result.weighted));
    const double skew = core::skewness_from_raw(result.weighted);
    std::printf("%6.1f %12.4f %12.4f %12.4f %8zu\n", t, mean, sd, skew,
                result.truncation_point);
  }

  std::printf("\nPer-initial-state means at t = 5 s:\n");
  const auto res5 = solver.solve(5.0, options);
  std::printf("  started GOOD:     %.4f Mb\n", res5.per_state[1][0]);
  std::printf("  started DEGRADED: %.4f Mb\n", res5.per_state[1][1]);
  return 0;
}
