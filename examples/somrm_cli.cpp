// somrm_cli — analyze a model file without writing any C++.
//
//   somrm_cli <model.somrm> [--time t]... [--moments n] [--epsilon e]
//             [--bounds x] [--simulate reps] [--stats]
//
// Loads the text model (see src/io/model_io.hpp for the format), runs the
// randomization moment solver (impulse-aware when the file has impulse
// directives), and optionally prints moment-based CDF bounds at a point
// and/or a Monte Carlo cross-check. --stats prints the solver telemetry
// summary (kernel, Theorem-4 truncation points, phase timings; timings are
// zero when built with -DSOMRM_OBSERVABILITY=OFF). Set SOMRM_TRACE=<path>
// to capture a Chrome/Perfetto trace of the solve.
//
// Run without arguments to see the format and a demo model.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bounds/moment_bounds.hpp"
#include "core/impulse_randomization.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "io/model_io.hpp"
#include "obs/telemetry.hpp"
#include "sim/impulse_simulator.hpp"
#include "sim/simulator.hpp"

namespace {

constexpr const char* kDemoModel = R"(somrm-model v1
# Two-node link with failover: 0 = primary up, 1 = secondary (degraded)
states 2
transition 0 1 0.2
transition 1 0 1.0
drift 0 10.0
drift 1 2.0
variance 0 0.5
variance 1 4.0
initial 0 1.0
# failover loses a normally distributed chunk of in-flight work
impulse 0 1 -1.5 0.25
)";

void usage() {
  std::printf(
      "usage: somrm_cli <model.somrm> [--time t]... [--moments n]\n"
      "                 [--epsilon e] [--bounds x] [--simulate reps]\n"
      "                 [--stats]\n\n"
      "model file format example:\n%s",
      kDemoModel);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  if (argc < 2) {
    usage();
    return 2;
  }

  std::vector<double> times;
  std::size_t max_moment = 3;
  double epsilon = 1e-10;
  double bounds_at = std::nan("");
  std::size_t simulate = 0;
  bool print_stats = false;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--time") {
      times.push_back(std::strtod(next(), nullptr));
    } else if (flag == "--moments") {
      max_moment = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (flag == "--bounds") {
      bounds_at = std::strtod(next(), nullptr);
    } else if (flag == "--simulate") {
      simulate = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--stats") {
      print_stats = true;
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", flag.c_str());
      usage();
      return 2;
    }
  }
  if (times.empty()) times.push_back(1.0);
  if (max_moment == 0) {
    std::fprintf(stderr, "--moments must be >= 1\n");
    return 2;
  }

  io::ModelFile file = [&] {
    try {
      return io::load_model_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading %s: %s\n", argv[1], e.what());
      std::exit(1);
    }
  }();

  const bool impulsive = file.with_impulses.has_value();
  std::printf("model: %zu states, %s impulses\n",
              file.model.num_states(), impulsive ? "with" : "no");

  core::MomentSolverOptions opts;
  opts.max_moment = max_moment;
  opts.epsilon = epsilon;

  const auto solve_at = [&](std::span<const double> ts) {
    return impulsive
               ? core::ImpulseMomentSolver(*file.with_impulses)
                     .solve_multi(ts, opts)
               : core::RandomizationMomentSolver(file.model).solve_multi(ts,
                                                                         opts);
  };
  const auto results = solve_at(times);

  std::printf("%10s", "t");
  for (std::size_t j = 1; j <= max_moment; ++j)
    std::printf("  %16s", ("E[B^" + std::to_string(j) + "]").c_str());
  std::printf("  %8s\n", "G");
  for (const auto& r : results) {
    std::printf("%10.5g", r.time);
    for (std::size_t j = 1; j <= max_moment; ++j)
      std::printf("  %16.8g", r.weighted[j]);
    std::printf("  %8zu\n", r.truncation_point);
  }

  if (print_stats)
    std::printf("\n%s", obs::report(results.back().stats).c_str());

  if (!std::isnan(bounds_at)) {
    const double t = times.back();
    core::MomentSolverOptions copts;
    copts.max_moment = std::max<std::size_t>(max_moment, 17);
    copts.epsilon = 1e-13;
    const double mean = results.back().weighted[1];
    copts.center = mean / t;
    const auto centered = impulsive
                              ? core::ImpulseMomentSolver(*file.with_impulses)
                                    .solve(t, copts)
                              : core::RandomizationMomentSolver(file.model)
                                    .solve(t, copts);
    const bounds::MomentBounder bounder(centered.weighted);
    const auto b = bounder.bounds_at(bounds_at - mean);
    std::printf("\nPr(B(%g) <= %g) in [%.8f, %.8f]  (%zu-point rule)\n", t,
                bounds_at, b.lower, b.upper, bounder.rule_size());
  }

  if (simulate > 0) {
    const double t = times.back();
    sim::SimulationOptions sopts;
    sopts.num_replications = simulate;
    sopts.max_moment = max_moment;
    const auto est = impulsive
                         ? sim::ImpulseSimulator(*file.with_impulses)
                               .estimate_moments(t, sopts)
                         : sim::Simulator(file.model).estimate_moments(t,
                                                                       sopts);
    std::printf("\nMonte Carlo cross-check at t = %g (%zu replications):\n",
                t, simulate);
    for (std::size_t j = 1; j <= max_moment; ++j)
      std::printf("  E[B^%zu] = %.8g +- %.3g\n", j, est.moments[j],
                  est.standard_errors[j]);
  }
  return 0;
}
