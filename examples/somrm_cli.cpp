// somrm_cli — analyze a model file without writing any C++.
//
//   somrm_cli <model.somrm> [--time t]... [--moments n] [--epsilon e]
//             [--bounds x] [--simulate reps] [--batch queries.txt]
//             [--stats] [--metrics-out metrics.prom]
//
// Loads the text model (see src/io/model_io.hpp for the format), runs the
// randomization moment solver (impulse-aware when the file has impulse
// directives), and optionally prints moment-based CDF bounds at a point
// and/or a Monte Carlo cross-check. --stats prints the solver telemetry
// summary (kernel, Theorem-4 truncation points, phase timings; timings are
// zero when built with -DSOMRM_OBSERVABILITY=OFF). Set SOMRM_TRACE=<path>
// to capture a Chrome/Perfetto trace of the solve. --metrics-out <path>
// (equivalent to SOMRM_METRICS=<path>) dumps the cumulative obs registry
// at exit: Prometheus text exposition, or the canonical JSON document
// when the path ends in ".json".
//
// --batch answers many queries through one core::SolveSession, so queries
// that share the model run ONE randomization sweep instead of one per
// query (impulse models are not supported in batch mode). Query file: one
// query per line, `#` comments; each line is
//
//   <time> [n=<order>] [pi=<state>:<prob>,...] [w=<state>:<weight>,...]
//
// where pi overrides the initial distribution (sparse; unlisted states get
// 0) and w asks for terminal-weighted moments. With --stats each batch
// query gets a per-query attribution row (query ID, cache hit / miss /
// coalesced, latency and finalize time from the SessionReport) plus the
// exact latency quantiles, in addition to the telemetry summary. Parsing
// is the strict io/query_io.hpp parser: CRLF endings are handled, and
// duplicate keys, trailing garbage, or duplicate states reject with a
// line-numbered error.
//
// --serve-replay <clients> replays the --batch queries through the
// concurrent serve::ServeEngine from that many client threads, verifies
// every result is bit-identical to a synchronous SolveSession::query_batch
// on a fresh cache, and prints serving latency/throughput. --snapshot
// <path> makes the engine load the sweep-cache snapshot at startup (warm
// restart) and save it back after the replay.
//
// Run without arguments to see the format and a demo model.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <algorithm>
#include <fstream>
#include <future>
#include <memory>
#include <sstream>
#include <thread>

#include "bounds/moment_bounds.hpp"
#include "core/impulse_randomization.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "core/solve_session.hpp"
#include "io/model_io.hpp"
#include "io/query_io.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/engine.hpp"
#include "sim/impulse_simulator.hpp"
#include "sim/simulator.hpp"

namespace {

constexpr const char* kDemoModel = R"(somrm-model v1
# Two-node link with failover: 0 = primary up, 1 = secondary (degraded)
states 2
transition 0 1 0.2
transition 1 0 1.0
drift 0 10.0
drift 1 2.0
variance 0 0.5
variance 1 4.0
initial 0 1.0
# failover loses a normally distributed chunk of in-flight work
impulse 0 1 -1.5 0.25
)";

void usage() {
  std::printf(
      "usage: somrm_cli <model.somrm> [--time t]... [--moments n]\n"
      "                 [--epsilon e] [--bounds x] [--simulate reps]\n"
      "                 [--batch queries.txt] [--stats]\n"
      "                 [--serve-replay clients] [--snapshot sweeps.bin]\n"
      "                 [--metrics-out metrics.prom|metrics.json]\n\n"
      "model file format example:\n%s\n"
      "batch query file: one `<time> [n=<order>] [pi=<i>:<p>,...] "
      "[w=<i>:<v>,...]` per line\n",
      kDemoModel);
}

/// Loads the --batch query file through the strict io parser, keeping the
/// CLI's historical error UX: line-numbered message on stderr, exit 2.
std::vector<somrm::io::BatchQuery> load_batch_queries(
    const std::string& path, std::size_t num_states) {
  std::vector<somrm::io::BatchQuery> lines;
  try {
    lines = somrm::io::load_query_file(path, num_states);
  } catch (const somrm::io::ParseError& e) {
    std::fprintf(stderr, "batch query file %s, %s\n", path.c_str(), e.what());
    std::exit(2);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  if (lines.empty()) {
    std::fprintf(stderr, "batch query file %s has no queries\n",
                 path.c_str());
    std::exit(2);
  }
  return lines;
}

/// Builds the session grid (sorted unique times) and the SessionQuery list
/// (time indices into that grid) from the parsed query lines.
std::vector<somrm::core::SessionQuery> build_session_queries(
    const std::vector<somrm::io::BatchQuery>& lines,
    std::vector<double>* grid_out) {
  std::vector<double>& grid = *grid_out;
  grid.clear();
  grid.reserve(lines.size());
  for (const somrm::io::BatchQuery& q : lines) grid.push_back(q.time);
  std::sort(grid.begin(), grid.end());
  grid.erase(std::unique(grid.begin(), grid.end()), grid.end());

  std::vector<somrm::core::SessionQuery> queries;
  queries.reserve(lines.size());
  for (const somrm::io::BatchQuery& q : lines) {
    somrm::core::SessionQuery sq;
    sq.time_index = static_cast<std::size_t>(
        std::lower_bound(grid.begin(), grid.end(), q.time) - grid.begin());
    sq.max_moment = q.order;
    sq.initial = q.initial;
    sq.terminal_weights = q.terminal_weights;
    queries.push_back(std::move(sq));
  }
  return queries;
}

/// Answers all --batch queries through one SolveSession (shared sweep per
/// distinct terminal-weight vector) and prints one row per query.
int run_batch(const somrm::core::SecondOrderMrm& model,
              const std::vector<somrm::io::BatchQuery>& lines,
              const somrm::core::MomentSolverOptions& opts,
              bool print_stats) {
  using namespace somrm;

  std::vector<double> grid;
  const std::vector<core::SessionQuery> queries =
      build_session_queries(lines, &grid);

  const core::SolveSession session(model, grid, opts);
  const auto results = session.query_batch(queries);

  std::printf("%6s %10s %3s %10s", "query", "t", "n", "kind");
  for (std::size_t j = 1; j <= opts.max_moment; ++j)
    std::printf("  %16s", ("E[B^" + std::to_string(j) + "]").c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::printf("%6zu %10.5g %3zu %10s", i, r.time, r.weighted.size() - 1,
                queries[i].terminal_weights.empty() ? "plain" : "weighted");
    for (std::size_t j = 1; j <= opts.max_moment; ++j) {
      if (j < r.weighted.size())
        std::printf("  %16.8g", r.weighted[j]);
      else
        std::printf("  %16s", "-");
    }
    std::printf("\n");
  }

  const core::SweepCacheStats cs = session.cache_stats();
  std::printf("\n%zu queries, %zu time point(s), %zu sweep(s) run "
              "(%zu cache hit(s))\n",
              results.size(), grid.size(), cs.misses, cs.hits);
  if (print_stats) {
    // Per-query cache attribution from the session's per-query spans: the
    // record list is in query order here (query_batch is sequential), so
    // row i describes printed query i.
    const core::SessionReport sr = session.report();
    std::printf("\nper-query attribution:\n");
    std::printf("%6s %8s %10s  %12s %12s\n", "query", "id", "cache",
                "latency_ms", "finalize_ms");
    const auto outcome_name = [](core::SweepCache::Outcome o) {
      switch (o) {
        case core::SweepCache::Outcome::kMiss: return "miss";
        case core::SweepCache::Outcome::kCoalesced: return "coalesced";
        default: return "hit";
      }
    };
    for (std::size_t i = 0; i < sr.records.size(); ++i) {
      const core::QueryRecord& rec = sr.records[i];
      std::printf("%6zu %8llu %10s  %12.4f %12.4f\n", i,
                  static_cast<unsigned long long>(rec.query_id),
                  outcome_name(rec.cache_outcome),
                  static_cast<double>(rec.latency_ns) * 1e-6,
                  static_cast<double>(rec.finalize_ns) * 1e-6);
    }
    std::printf("latency: p50 %.4f ms, p99 %.4f ms over %llu queries\n",
                static_cast<double>(sr.latency_p50_ns) * 1e-6,
                static_cast<double>(sr.latency_p99_ns) * 1e-6,
                static_cast<unsigned long long>(sr.queries));
    std::printf("\n%s", obs::report(results.back().stats).c_str());
  }
  return 0;
}

/// Replays the --batch queries through the concurrent serving engine from
/// @p clients client threads and verifies bit-identity against a
/// synchronous query_batch on an independent session (fresh cache).
int run_serve_replay(const somrm::core::SecondOrderMrm& model,
                     const std::vector<somrm::io::BatchQuery>& lines,
                     const somrm::core::MomentSolverOptions& opts,
                     std::size_t clients, const std::string& snapshot_path,
                     bool print_stats) {
  using namespace somrm;

  std::vector<double> grid;
  const std::vector<core::SessionQuery> queries =
      build_session_queries(lines, &grid);

  auto session = std::make_shared<core::SolveSession>(
      model, grid, opts, std::make_shared<core::SweepCache>());
  serve::ServeEngineOptions eopts;
  eopts.num_workers = std::max<std::size_t>(2, clients / 4);
  eopts.snapshot_path = snapshot_path;
  serve::ServeEngine engine(session, eopts);
  const core::SweepCacheStats warm = session->cache_stats();
  if (warm.entries > 0)
    std::printf("serve replay: warm start, %zu sweep(s) reloaded from %s\n",
                warm.entries, snapshot_path.c_str());

  // Each client owns the query indices i % clients == c, so every results
  // slot has exactly one writer. One outstanding query per client: the
  // bounded queue cannot overflow here, but rejections are still retried
  // to keep the loop honest.
  std::vector<serve::ServeResult> results(queries.size());
  const auto client = [&](std::size_t c) {
    for (std::size_t i = c; i < queries.size(); i += clients) {
      for (;;) {
        try {
          results[i] = engine.submit(queries[i]).get();
          break;
        } catch (const serve::RejectedError&) {
          std::this_thread::yield();
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
  for (std::thread& t : threads) t.join();
  engine.stop();

  // Reference: synchronous query_batch on its own session + cache, so the
  // comparison crosses engine/grouping/snapshot code entirely.
  const core::SolveSession ref_session(model, grid, opts,
                                       std::make_shared<core::SweepCache>());
  const auto ref = ref_session.query_batch(queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const core::MomentResult& a = results[i].result;
    const core::MomentResult& b = ref[i];
    if (a.weighted != b.weighted || a.truncation_point != b.truncation_point ||
        std::memcmp(&a.error_bound, &b.error_bound, sizeof(double)) != 0) {
      std::fprintf(stderr,
                   "serve replay: query %zu diverged from the synchronous "
                   "query_batch result\n",
                   i);
      return 1;
    }
  }

  std::vector<std::int64_t> lat;
  lat.reserve(results.size());
  for (const serve::ServeResult& r : results) lat.push_back(r.total_ns);
  std::sort(lat.begin(), lat.end());
  const auto quant = [&](double q) {
    const std::size_t rank = std::min(
        lat.size() - 1, static_cast<std::size_t>(q * static_cast<double>(
                                                         lat.size())));
    return static_cast<double>(lat[rank]) * 1e-6;
  };
  const serve::ServeEngineStats es = engine.stats();
  std::printf(
      "serve replay: %zu queries from %zu clients, %llu batches "
      "(largest %zu), latency p50 %.4f ms / p99 %.4f ms\n",
      queries.size(), clients, static_cast<unsigned long long>(es.batches),
      es.largest_batch, quant(0.50), quant(0.99));
  const core::SweepCacheStats cs = session->cache_stats();
  std::printf("serve replay: %zu sweep(s) run, %zu cache hit(s), "
              "bit-identical to synchronous query_batch\n",
              cs.misses, cs.hits);
  if (!snapshot_path.empty()) {
    const std::size_t saved = engine.save_snapshot();
    std::printf("serve replay: snapshot saved to %s (%zu sweep(s))\n",
                snapshot_path.c_str(), saved);
  }
  if (print_stats) {
    const core::SessionReport sr = session->report();
    std::printf("latency (session-side): p50 %.4f ms, p99 %.4f ms over %llu "
                "queries\n",
                static_cast<double>(sr.latency_p50_ns) * 1e-6,
                static_cast<double>(sr.latency_p99_ns) * 1e-6,
                static_cast<unsigned long long>(sr.queries));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  if (argc < 2) {
    usage();
    return 2;
  }

  std::vector<double> times;
  std::size_t max_moment = 3;
  double epsilon = 1e-10;
  double bounds_at = std::nan("");
  std::size_t simulate = 0;
  bool print_stats = false;
  std::string batch_path;
  std::size_t serve_clients = 0;
  std::string snapshot_path;
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--time") {
      times.push_back(std::strtod(next(), nullptr));
    } else if (flag == "--moments") {
      max_moment = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--epsilon") {
      epsilon = std::strtod(next(), nullptr);
    } else if (flag == "--bounds") {
      bounds_at = std::strtod(next(), nullptr);
    } else if (flag == "--simulate") {
      simulate = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (flag == "--batch") {
      batch_path = next();
    } else if (flag == "--serve-replay") {
      serve_clients = static_cast<std::size_t>(
          std::strtoull(next(), nullptr, 10));
      if (serve_clients == 0) {
        std::fprintf(stderr, "--serve-replay needs a client count >= 1\n");
        return 2;
      }
    } else if (flag == "--snapshot") {
      snapshot_path = next();
    } else if (flag == "--stats") {
      print_stats = true;
    } else if (flag == "--metrics-out") {
      // Registers the atexit flush, so every exit path (including batch
      // parse errors) still dumps the registry collected so far.
      obs::set_metrics_path(next());
    } else {
      std::fprintf(stderr, "unknown flag %s\n\n", flag.c_str());
      usage();
      return 2;
    }
  }
  if (times.empty()) times.push_back(1.0);
  if (max_moment == 0) {
    std::fprintf(stderr, "--moments must be >= 1\n");
    return 2;
  }

  io::ModelFile file = [&] {
    try {
      return io::load_model_file(argv[1]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading %s: %s\n", argv[1], e.what());
      std::exit(1);
    }
  }();

  const bool impulsive = file.with_impulses.has_value();
  std::printf("model: %zu states, %s impulses\n",
              file.model.num_states(), impulsive ? "with" : "no");

  core::MomentSolverOptions opts;
  opts.max_moment = max_moment;
  opts.epsilon = epsilon;

  if (serve_clients > 0 && batch_path.empty()) {
    std::fprintf(stderr, "--serve-replay requires --batch queries.txt\n");
    return 2;
  }

  if (!batch_path.empty()) {
    if (impulsive) {
      std::fprintf(stderr,
                   "--batch does not support impulse models (the session "
                   "sweep has no impulse path)\n");
      return 2;
    }
    const auto lines = load_batch_queries(batch_path, file.model.num_states());
    // The session solves at the largest order any query asks for; lower
    // orders are served from the same sweep.
    core::MomentSolverOptions session_opts = opts;
    for (const io::BatchQuery& q : lines)
      if (q.order != core::SessionQuery::kSessionMax)
        session_opts.max_moment =
            std::max(session_opts.max_moment, q.order);
    try {
      return serve_clients > 0
                 ? run_serve_replay(file.model, lines, session_opts,
                                    serve_clients, snapshot_path, print_stats)
                 : run_batch(file.model, lines, session_opts, print_stats);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "batch solve failed: %s\n", e.what());
      return 1;
    }
  }

  const auto solve_at = [&](std::span<const double> ts) {
    return impulsive
               ? core::ImpulseMomentSolver(*file.with_impulses)
                     .solve_multi(ts, opts)
               : core::RandomizationMomentSolver(file.model).solve_multi(ts,
                                                                         opts);
  };
  const auto results = solve_at(times);

  std::printf("%10s", "t");
  for (std::size_t j = 1; j <= max_moment; ++j)
    std::printf("  %16s", ("E[B^" + std::to_string(j) + "]").c_str());
  std::printf("  %8s\n", "G");
  for (const auto& r : results) {
    std::printf("%10.5g", r.time);
    for (std::size_t j = 1; j <= max_moment; ++j)
      std::printf("  %16.8g", r.weighted[j]);
    std::printf("  %8zu\n", r.truncation_point);
  }

  if (print_stats)
    std::printf("\n%s", obs::report(results.back().stats).c_str());

  if (!std::isnan(bounds_at)) {
    const double t = times.back();
    core::MomentSolverOptions copts;
    copts.max_moment = std::max<std::size_t>(max_moment, 17);
    copts.epsilon = 1e-13;
    const double mean = results.back().weighted[1];
    copts.center = mean / t;
    const auto centered = impulsive
                              ? core::ImpulseMomentSolver(*file.with_impulses)
                                    .solve(t, copts)
                              : core::RandomizationMomentSolver(file.model)
                                    .solve(t, copts);
    const bounds::MomentBounder bounder(centered.weighted);
    const auto b = bounder.bounds_at(bounds_at - mean);
    std::printf("\nPr(B(%g) <= %g) in [%.8f, %.8f]  (%zu-point rule)\n", t,
                bounds_at, b.lower, b.upper, bounder.rule_size());
  }

  if (simulate > 0) {
    const double t = times.back();
    sim::SimulationOptions sopts;
    sopts.num_replications = simulate;
    sopts.max_moment = max_moment;
    const auto est = impulsive
                         ? sim::ImpulseSimulator(*file.with_impulses)
                               .estimate_moments(t, sopts)
                         : sim::Simulator(file.model).estimate_moments(t,
                                                                       sopts);
    std::printf("\nMonte Carlo cross-check at t = %g (%zu replications):\n",
                t, simulate);
    for (std::size_t j = 1; j <= max_moment; ++j)
      std::printf("  E[B^%zu] = %.8g +- %.3g\n", j, est.moments[j],
                  est.standard_errors[j]);
  }
  return 0;
}
