// Performability of a fault-tolerant multiprocessor — the classic MRM
// application domain, extended with second-order throughput jitter.
//
// M processors fail (rate lambda each) and are repaired by c repairmen
// (rate mu each). With i processors down the system completes work at
// drift (M - i) * P and variance (M - i) * V. The question performability
// analysis asks: how much work is completed in a mission of length T, and
// what does per-processor jitter do to the risk of missing a work quota?
//
// The example contrasts the first-order answer (V = 0: randomness only from
// failures/repairs) with second-order answers at growing jitter, showing
// the paper's point that second-order models expose risk the first-order
// model hides.

#include <cmath>
#include <cstdio>

#include "bounds/moment_bounds.hpp"
#include "core/moment_utils.hpp"
#include "core/randomization.hpp"
#include "ctmc/stationary.hpp"
#include "models/reliability.hpp"
#include "sim/completion_time.hpp"

int main() {
  using namespace somrm;

  models::MachineRepairParams params;
  params.num_processors = 16;
  params.failure_rate = 0.05;  // one failure per 20 h per CPU
  params.repair_rate = 0.5;    // 2 h mean repair
  params.num_repairmen = 2;
  params.unit_power = 1.0;     // work units per hour per live CPU
  const double mission = 24.0; // hours
  const double quota = 330.0;  // work units the mission must deliver

  std::printf("multiprocessor: M=%zu, lambda=%g/h, mu=%g/h, c=%zu, "
              "mission %g h, quota %g units\n\n",
              params.num_processors, params.failure_rate, params.repair_rate,
              params.num_repairmen, mission, quota);

  std::printf("%10s %12s %12s %12s %22s\n", "jitter V", "E[work]", "stddev",
              "skewness", "Pr(work < quota)");
  for (double jitter : {0.0, 0.5, 2.0, 8.0}) {
    params.unit_power_variance = jitter;
    const auto model = models::make_machine_repair(params);
    const core::RandomizationMomentSolver solver(model);

    core::MomentSolverOptions opts;
    opts.max_moment = 4;
    opts.epsilon = 1e-11;
    const auto res = solver.solve(mission, opts);
    const double mean = res.weighted[1];
    const double sd = std::sqrt(core::variance_from_raw(res.weighted));

    // Quota-miss probability bounds from 17 centered moments.
    core::MomentSolverOptions copts;
    copts.max_moment = 17;
    copts.epsilon = 1e-13;
    copts.center = mean / mission;
    const auto centered = solver.solve(mission, copts);
    const bounds::MomentBounder bounder(centered.weighted);
    const auto miss = bounder.bounds_at(quota - mean);

    std::printf("%10.2f %12.3f %12.3f %12.4f       [%8.6f, %8.6f]\n", jitter,
                mean, sd, core::skewness_from_raw(res.weighted), miss.lower,
                miss.upper);
  }

  // Long-run capacity for context.
  params.unit_power_variance = 0.0;
  const auto model = models::make_machine_repair(params);
  const auto pi = ctmc::stationary_distribution_gth(model.generator());
  std::printf("\nlong-run work rate: %.4f units/h (%.2f%% of nominal %zu)\n",
              model.stationary_reward_rate(pi),
              100.0 * model.stationary_reward_rate(pi) /
                  static_cast<double>(params.num_processors),
              params.num_processors);
  std::printf("note how the quota-miss probability band widens with V while "
              "E[work] stays put:\nfirst-order analysis (V=0) understates "
              "mission risk.\n");

  // The dual question: WHEN is the quota complete? (completion time,
  // simulated with exact Brownian-bridge crossing detection).
  std::printf("\ncompletion time of the %g-unit quota:\n", quota);
  std::printf("%10s %14s %12s %22s\n", "jitter V", "E[Theta] h", "stddev h",
              "Pr(done by mission)");
  for (double jitter : {0.0, 2.0, 8.0}) {
    params.unit_power_variance = jitter;
    const sim::CompletionTimeSimulator ct(
        models::make_machine_repair(params));
    sim::CompletionTimeOptions copts;
    copts.num_replications = 20000;
    copts.horizon = 10.0 * mission;
    copts.seed = 91;
    const auto est = ct.estimate(quota, copts);

    sim::CompletionTimeOptions mission_opts = copts;
    mission_opts.horizon = mission;
    const auto by_mission = ct.estimate(quota, mission_opts);
    std::printf("%10.2f %14.3f %12.3f %22.4f\n", jitter, est.mean,
                est.stddev, by_mission.completion_probability);
  }
  return 0;
}
