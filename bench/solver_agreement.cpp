// Section 7 agreement claim — "The presented results have been compared to
// the results of a numerical ODE solver (trapezoid rule) and a second-order
// reward model simulation tool. The three solutions gave exactly the same
// results, however the randomization was far the fastest."
//
// This harness runs all three solvers (plus RK4) on the Table-1 model and
// prints moments side by side with wall-clock times.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/ode_solver.hpp"
#include "models/onoff.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Section 7 cross-check",
                      "randomization vs trapezoid ODE vs RK4 ODE vs "
                      "simulation on the Table-1 model");

  const double t = bench::arg_double(argc, argv, "--time", 0.5);
  const double sigma2 = bench::arg_double(argc, argv, "--sigma2", 1.0);
  const std::size_t reps = bench::arg_size(argc, argv, "--reps", 200000);

  const auto model =
      models::make_onoff_multiplexer(models::table1_params(sigma2));

  // Randomization (Theorems 3-4).
  bench::Stopwatch sw_rand;
  core::MomentSolverOptions ropts;
  ropts.epsilon = 1e-11;
  const core::RandomizationMomentSolver rand_solver(model);
  const auto rand_res = rand_solver.solve(t, ropts);
  const double t_rand = sw_rand.seconds();

  // Implicit trapezoid on the Theorem-2 ODE (the paper's comparator).
  bench::Stopwatch sw_trap;
  core::OdeSolverOptions topts;
  topts.num_steps = bench::arg_size(argc, argv, "--trap-steps", 4000);
  const auto trap_res =
      core::solve_moments_ode(model, t, core::OdeMethod::kTrapezoid, topts);
  const double t_trap = sw_trap.seconds();

  // Explicit RK4 (step count auto-raised to the stability limit).
  bench::Stopwatch sw_rk4;
  core::OdeSolverOptions kopts;
  kopts.num_steps = 256;
  const auto rk4_res =
      core::solve_moments_ode(model, t, core::OdeMethod::kRk4, kopts);
  const double t_rk4 = sw_rk4.seconds();

  // Monte Carlo.
  bench::Stopwatch sw_sim;
  sim::SimulationOptions sopts;
  sopts.num_replications = reps;
  sopts.seed = 424242;
  const sim::Simulator simulator(model);
  const auto sim_res = simulator.estimate_moments(t, sopts);
  const double t_sim = sw_sim.seconds();

  bench::print_row({"moment", "randomization", "ode_trapezoid", "ode_rk4",
                    "simulation", "sim_stderr"});
  for (std::size_t j = 1; j <= 3; ++j)
    bench::print_row({std::to_string(j), bench::fmt(rand_res.weighted[j], 10),
                      bench::fmt(trap_res.weighted[j], 10),
                      bench::fmt(rk4_res.weighted[j], 10),
                      bench::fmt(sim_res.moments[j], 10),
                      bench::fmt(sim_res.standard_errors[j], 4)});

  bench::print_row({"seconds", bench::fmt(t_rand, 4), bench::fmt(t_trap, 4),
                    bench::fmt(t_rk4, 4), bench::fmt(t_sim, 4), "-"});
  std::printf("# randomization G = %zu iterations; speedup vs trapezoid "
              "%.1fx, vs simulation %.1fx\n",
              rand_res.truncation_point, t_trap / t_rand, t_sim / t_rand);
  return 0;
}
