// Ablation — the scaling constant d (DESIGN.md deviation #1) and the
// Theorem-4 tail index (deviation #2).
//
// For the Table-1 model at several sigma^2 values this prints, per policy:
//   * d and whether S' is sub-stochastic (the Lemma-2 precondition),
//   * the truncation point G(eps),
//   * the actual error against a tight reference solve,
// demonstrating that (a) the paper's d breaks the bound's precondition as
// soon as variances dominate, yet (b) the expansion value itself does not
// depend on d (it is exact for any d > 0) — only the error *accounting*
// does; and (c) the corrected tail index keeps the realized error below
// epsilon where the printed index would not.

#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "models/onoff.hpp"
#include "prob/poisson.hpp"

namespace {

using namespace somrm;

// G per the PAPER's printed bound: tail from G+n+1 (shift the corrected
// result back by 2n), for the ablation comparison only.
std::size_t paper_truncation_point(double qt, std::size_t n, double d,
                                   double eps) {
  const std::size_t corrected =
      core::RandomizationMomentSolver::truncation_point(qt, n, d, eps);
  return corrected >= 2 * n ? corrected - 2 * n : 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Ablation: scaling constant d and Theorem-4 index",
                      "Table-1 model, n = 3, t = 0.5");

  const double t = bench::arg_double(argc, argv, "--time", 0.5);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);

  bench::print_row({"sigma2", "policy", "d", "substochastic", "G_corrected",
                    "G_paper_index", "abs_err_m3", "eps"});
  for (double sigma2 : {0.0, 1.0, 10.0}) {
    const auto model =
        models::make_onoff_multiplexer(models::table1_params(sigma2));
    const core::RandomizationMomentSolver solver(model);

    core::MomentSolverOptions tight;
    tight.epsilon = 1e-13;
    const double ref = solver.solve(t, tight).weighted[3];

    for (auto policy :
         {core::DriftScalePolicy::kSafe, core::DriftScalePolicy::kPaper}) {
      const auto scaled = core::scale_model(model, policy);
      core::MomentSolverOptions opts;
      opts.epsilon = eps;
      opts.scale_policy = policy;
      const auto res = solver.solve(t, opts);
      const std::size_t g_paper = paper_truncation_point(
          scaled.q * t, 3, scaled.d, eps);
      bench::print_row(
          {bench::fmt(sigma2, 3),
           policy == core::DriftScalePolicy::kSafe ? "safe" : "paper",
           bench::fmt(scaled.d, 6),
           core::is_reward_scaling_substochastic(scaled) ? "yes" : "NO",
           std::to_string(res.truncation_point), std::to_string(g_paper),
           bench::fmt(std::abs(res.weighted[3] - ref), 3),
           bench::fmt(eps, 2)});
    }
  }

  std::printf("# the m3 error stays below eps for every policy because the\n"
              "# expansion is exact in d; what the paper's d loses is the\n"
              "# GUARANTEE (S' not sub-stochastic => Lemma 2 inapplicable)\n");
  return 0;
}
