// Figure 1 — a sample realization of a second-order Markov reward model.
//
// The paper's illustration uses a small chain in which one state (state 2)
// has both the largest drift (r = 3) and a large variance (sigma^2 = 2), so
// that the accumulated reward visibly wiggles — and occasionally decreases —
// while that state is occupied. We reproduce the setup with a 3-state chain
// and print (time, state, B(t)) rows.

#include <cstdio>

#include "bench_common.hpp"
#include "ctmc/generator.hpp"
#include "sim/trajectory.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header(
      "Figure 1",
      "sample path of a 3-state second-order MRM; state 2 has r=3, s2=2");

  // 3-state chain; rewards chosen so the three states are visually distinct
  // (the paper plots states with r in {~0.5, ~1, 3} and only state 2 with a
  // large variance).
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<linalg::Triplet>{{0, 1, 2.0}, {1, 2, 2.0}, {2, 0, 2.0},
                                      {1, 0, 1.0}, {0, 2, 1.0}});
  const linalg::Vec drifts{0.5, 1.0, 3.0};
  const linalg::Vec variances{0.05, 0.1, 2.0};
  const core::SecondOrderMrm model(std::move(gen), drifts, variances,
                                   linalg::Vec{1.0, 0.0, 0.0});

  sim::TrajectoryOptions opts;
  opts.horizon = bench::arg_double(argc, argv, "--horizon", 2.0);
  opts.sample_step = bench::arg_double(argc, argv, "--step", 0.01);
  opts.seed = bench::arg_size(argc, argv, "--seed", 20040628);

  const auto path = sim::sample_trajectory(model, opts);
  bench::print_row({"time", "state", "reward"});
  for (const auto& p : path)
    bench::print_row({bench::fmt(p.time, 6), std::to_string(p.state),
                      bench::fmt(p.reward, 6)});

  std::printf("# %zu path points; reward can decrease inside state 2 "
              "sojourns (second-order effect)\n",
              path.size());
  return 0;
}
