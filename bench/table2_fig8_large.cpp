// Table 2 / Figure 8 — the large model: C = N = 200,000 ON-OFF sources
// (200,001 states), sigma^2 = 10, first three moments of the accumulated
// reward at t = 0.01..0.05.
//
// Paper reference points (2.4 GHz PC, 2003): q = 800,000; at t = 0.05 and
// epsilon = 1e-9 the iteration count was G = 41,588 (with the paper's d and
// the misprinted tail index; the corrected bound lands within a few hundred
// of that); the 5 time points took 3 hours because each was solved
// separately. This implementation shares one U-sweep across all 5 points —
// the iterates U^(n)(k) do not depend on t — so the whole figure costs one
// G_max-length sweep.
//
// Flags: --states N (default 200000), --epsilon, --moments,
// --kernel panel|legacy|both (sweep kernel selection, default panel),
// --storage csr|sellcs|both (sparse storage for Q', default csr),
// --threads t1,t2,... (solver thread counts to sweep; default: the current
// linalg::num_threads() only). Every (storage, kernel, threads) combination
// runs the full multi-time solve and emits one BenchRecord, so
//   table2_fig8_large --states 50000 --storage both --kernel both \
//       --threads 1,2,4,8,16
// produces a complete scaling curve in one invocation (the BENCH_PR7.json
// recipe — see EXPERIMENTS.md). The moment table is printed once, from the
// first combination: results are bit-identical across storages, kernels and
// thread counts, which the sweep asserts.
// --json <path> writes the machine-readable BenchRecords (--json-append
// <path> merges into an existing snapshot instead — how the ON/OFF
// observability pair lands in one BENCH_PR3.json), --stats 1 prints the
// solver telemetry summary (obs::report) after the table, and
// --metrics-out <path> dumps the cumulative obs registry (Prometheus
// text, or JSON when the path ends in .json).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "linalg/parallel.hpp"
#include "models/onoff.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Table 2 / Figure 8",
                      "large ON-OFF model: moments at t = 0.01..0.05");

  models::OnOffMultiplexerParams params = models::table2_params();
  params.num_sources = bench::arg_size(argc, argv, "--states", 200000);
  params.capacity = static_cast<double>(params.num_sources);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);
  const std::size_t n = bench::arg_size(argc, argv, "--moments", 3);

  bench::Stopwatch sw_build;
  const auto model = models::make_onoff_multiplexer(params);
  const auto scaled = core::scale_model(model);
  std::printf("# N = %zu sources (%zu states), q = %s, d = %s, build %.2f s\n",
              params.num_sources, model.num_states(),
              bench::fmt(scaled.q, 8).c_str(), bench::fmt(scaled.d, 8).c_str(),
              sw_build.seconds());

  const std::vector<double> times{0.01, 0.02, 0.03, 0.04, 0.05};
  const std::string kernel_flag =
      bench::arg_string(argc, argv, "--kernel", "panel");
  std::vector<std::string> kernels;
  if (kernel_flag == "both") {
    kernels = {"panel", "legacy"};
  } else if (kernel_flag == "panel" || kernel_flag == "legacy") {
    kernels = {kernel_flag};
  } else {
    std::fprintf(stderr,
                 "table2_fig8_large: --kernel expects panel|legacy|both, "
                 "got \"%s\"\n",
                 kernel_flag.c_str());
    return 2;
  }
  const std::string storage_flag =
      bench::arg_string(argc, argv, "--storage", "csr");
  std::vector<std::string> storages;
  if (storage_flag == "both") {
    storages = {"csr", "sellcs"};
  } else if (storage_flag == "csr" || storage_flag == "sellcs") {
    storages = {storage_flag};
  } else {
    std::fprintf(stderr,
                 "table2_fig8_large: --storage expects csr|sellcs|both, "
                 "got \"%s\"\n",
                 storage_flag.c_str());
    return 2;
  }
  const std::vector<std::size_t> thread_counts = bench::arg_size_list(
      argc, argv, "--threads", {somrm::linalg::num_threads()});

  const std::string append_path =
      bench::arg_string(argc, argv, "--json-append", "");
  bench::JsonWriter writer(
      !append_path.empty() ? append_path
                           : bench::arg_string(argc, argv, "--json", ""),
      /*append=*/!append_path.empty());

  const core::RandomizationMomentSolver solver(model);
  std::vector<core::MomentResult> reference;  // first combination's results

  for (const std::string& storage : storages)
  for (const std::string& kernel : kernels) {
    core::MomentSolverOptions opts;
    opts.max_moment = n;
    opts.epsilon = eps;
    opts.kernel = kernel == "legacy" ? core::SweepKernel::kFusedVectors
                                     : core::SweepKernel::kPanel;
    opts.storage = storage == "sellcs" ? core::StorageFormat::kSellCs
                                       : core::StorageFormat::kCsr;
    for (const std::size_t threads : thread_counts) {
      somrm::linalg::set_num_threads(threads);

      bench::Stopwatch sw;
      auto results = solver.solve_multi(times, opts);
      const double seconds = sw.seconds();

      if (reference.empty()) {
        bench::print_row({"t", "qt", "G", "moment1", "moment2", "moment3"});
        for (const auto& r : results)
          bench::print_row({bench::fmt(r.time, 4), bench::fmt(r.q * r.time, 8),
                            std::to_string(r.truncation_point),
                            bench::fmt(r.weighted[1], 10),
                            bench::fmt(r.weighted[2], 10),
                            bench::fmt(n >= 3 ? r.weighted[3] : 0.0, 10)});

        const double m = model.generator().matrix().mean_row_nnz();
        std::printf("# all %zu time points from ONE shared sweep of G_max = "
                    "%zu iterations\n",
                    times.size(), results.back().truncation_point);
        std::printf("# paper: G = 41,588 at eps = 1e-9 (t = 0.05), 3 h for 5 "
                    "separate solves on 2003 hardware\n");
        std::printf("# per-iteration cost: (%0.1f + 2) vector ops x %zu "
                    "states x %zu moment vectors (matches the section-6 "
                    "count)\n",
                    m, model.num_states(), n + 1);
        std::printf("# kernel,simd,storage,threads,wall_s,sweep_s,gflops\n");
      } else {
        // The whole sweep must be bit-identical to the first combination —
        // that is the panel/SIMD/storage/threading determinism contract.
        for (std::size_t ti = 0; ti < results.size(); ++ti)
          for (std::size_t j = 0; j <= n; ++j)
            if (results[ti].weighted[j] != reference[ti].weighted[j]) {
              std::fprintf(stderr,
                           "table2_fig8_large: kernel %s (%s storage) at %zu "
                           "threads diverged from the first run (t=%g, "
                           "moment %zu)\n",
                           kernel.c_str(), storage.c_str(), threads,
                           results[ti].time, j);
              return 1;
            }
      }

      const auto& stats = results.back().stats;
      std::printf("# %s,%s,%s,%zu,%.4f,%.4f,%.3f\n", kernel.c_str(),
                  stats.simd.c_str(), stats.storage.c_str(), threads, seconds,
                  stats.sweep_seconds, stats.effective_gflops);

      if (bench::arg_size(argc, argv, "--stats", 0) != 0)
        std::printf("%s", obs::report(stats).c_str());

      bench::BenchRecord record{};
      record.bench = "table2_fig8_large[" + kernel + "]";
      record.states = model.num_states();
      record.threads = threads;
      record.wall_s = seconds;
      record.moments = n;
      bench::fill_from_stats(record, stats);
      record.threads = threads;  // requested count, even past the host cores
      writer.add(std::move(record));

      if (reference.empty()) reference = std::move(results);
    }
  }
  somrm::linalg::set_num_threads(0);

  writer.write();

  const std::string metrics_out =
      bench::arg_string(argc, argv, "--metrics-out", "");
  if (!metrics_out.empty()) {
    obs::set_metrics_path(metrics_out);
    obs::write_metrics();
  }
  return 0;
}
