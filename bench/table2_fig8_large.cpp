// Table 2 / Figure 8 — the large model: C = N = 200,000 ON-OFF sources
// (200,001 states), sigma^2 = 10, first three moments of the accumulated
// reward at t = 0.01..0.05.
//
// Paper reference points (2.4 GHz PC, 2003): q = 800,000; at t = 0.05 and
// epsilon = 1e-9 the iteration count was G = 41,588 (with the paper's d and
// the misprinted tail index; the corrected bound lands within a few hundred
// of that); the 5 time points took 3 hours because each was solved
// separately. This implementation shares one U-sweep across all 5 points —
// the iterates U^(n)(k) do not depend on t — so the whole figure costs one
// G_max-length sweep.
//
// Flags: --states N (default 200000), --epsilon, --moments,
// --kernel panel|legacy (sweep kernel selection, default panel),
// --json <path> to write a machine-readable BenchRecord of the solve
// (--json-append <path> merges into an existing snapshot instead — how the
// ON/OFF observability pair lands in one BENCH_PR3.json), and --stats 1 to
// print the solver telemetry summary (obs::report) after the table.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "linalg/parallel.hpp"
#include "models/onoff.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Table 2 / Figure 8",
                      "large ON-OFF model: moments at t = 0.01..0.05");

  models::OnOffMultiplexerParams params = models::table2_params();
  params.num_sources = bench::arg_size(argc, argv, "--states", 200000);
  params.capacity = static_cast<double>(params.num_sources);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);
  const std::size_t n = bench::arg_size(argc, argv, "--moments", 3);

  bench::Stopwatch sw_build;
  const auto model = models::make_onoff_multiplexer(params);
  const auto scaled = core::scale_model(model);
  std::printf("# N = %zu sources (%zu states), q = %s, d = %s, build %.2f s\n",
              params.num_sources, model.num_states(),
              bench::fmt(scaled.q, 8).c_str(), bench::fmt(scaled.d, 8).c_str(),
              sw_build.seconds());

  const std::vector<double> times{0.01, 0.02, 0.03, 0.04, 0.05};
  core::MomentSolverOptions opts;
  opts.max_moment = n;
  opts.epsilon = eps;
  const std::string kernel = bench::arg_string(argc, argv, "--kernel", "panel");
  opts.kernel = kernel == "legacy" ? core::SweepKernel::kFusedVectors
                                   : core::SweepKernel::kPanel;

  bench::Stopwatch sw;
  const core::RandomizationMomentSolver solver(model);
  const auto results = solver.solve_multi(times, opts);
  const double seconds = sw.seconds();

  bench::print_row({"t", "qt", "G", "moment1", "moment2", "moment3"});
  for (const auto& r : results)
    bench::print_row({bench::fmt(r.time, 4), bench::fmt(r.q * r.time, 8),
                      std::to_string(r.truncation_point),
                      bench::fmt(r.weighted[1], 10),
                      bench::fmt(r.weighted[2], 10),
                      bench::fmt(n >= 3 ? r.weighted[3] : 0.0, 10)});

  const double m = model.generator().matrix().mean_row_nnz();
  std::printf("# all %zu time points from ONE shared sweep of G_max = %zu "
              "iterations in %.2f s\n",
              times.size(), results.back().truncation_point, seconds);
  std::printf("# paper: G = 41,588 at eps = 1e-9 (t = 0.05), 3 h for 5 "
              "separate solves on 2003 hardware\n");
  std::printf("# per-iteration cost: (%0.1f + 2) vector ops x %zu states x "
              "%zu moment vectors (matches the section-6 count)\n",
              m, model.num_states(), n + 1);

  if (bench::arg_size(argc, argv, "--stats", 0) != 0)
    std::printf("%s", obs::report(results.back().stats).c_str());

  const std::string append_path =
      bench::arg_string(argc, argv, "--json-append", "");
  bench::JsonWriter writer(
      !append_path.empty() ? append_path
                           : bench::arg_string(argc, argv, "--json", ""),
      /*append=*/!append_path.empty());
  bench::BenchRecord record{};
  record.bench = "table2_fig8_large[" + kernel + "]";
  record.states = model.num_states();
  record.threads = somrm::linalg::num_threads();
  record.wall_s = seconds;
  record.moments = n;
  bench::fill_from_stats(record, results.back().stats);
  writer.add(std::move(record));
  writer.write();
  return 0;
}
