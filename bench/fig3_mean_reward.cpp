// Figure 3 — mean accumulated reward E[B(t)] of the Table-1 model for
// sigma^2 in {0, 1, 10}, started from all-OFF, plus the steady-state-start
// reference line (a straight line with the stationary reward rate).
//
// The figure's two claims, both checked by the test suite and visible in
// the printed series: (a) the mean does not depend on the variance
// parameter, (b) the all-OFF transient mean is concave, bending from slope
// C = 32 at t = 0 towards the stationary slope 32 * 4/7 ~ 18.29.

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "ctmc/stationary.hpp"
#include "models/onoff.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Figure 3",
                      "mean accumulated reward vs t; 3 variance values + "
                      "steady-state line");

  const double t_max = bench::arg_double(argc, argv, "--tmax", 1.0);
  const std::size_t points = bench::arg_size(argc, argv, "--points", 20);

  const std::vector<double> sigmas{0.0, 1.0, 10.0};
  std::vector<core::RandomizationMomentSolver> solvers;
  solvers.reserve(sigmas.size());
  for (double s2 : sigmas)
    solvers.emplace_back(
        models::make_onoff_multiplexer(models::table1_params(s2)));

  const auto model0 =
      models::make_onoff_multiplexer(models::table1_params(0.0));
  const auto pi_ss = ctmc::stationary_distribution_gth(model0.generator());
  const double ss_rate = model0.stationary_reward_rate(pi_ss);

  std::vector<double> times(points);
  for (std::size_t k = 0; k < points; ++k)
    times[k] = t_max * static_cast<double>(k + 1) / static_cast<double>(points);

  core::MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.epsilon = 1e-10;

  bench::Stopwatch sw;
  std::vector<std::vector<core::MomentResult>> results;
  results.reserve(sigmas.size());
  for (const auto& solver : solvers)
    results.push_back(solver.solve_multi(times, opts));

  bench::print_row({"t", "mean_sigma2_0", "mean_sigma2_1", "mean_sigma2_10",
                    "steady_state_start"});
  bench::print_row({"0", "0", "0", "0", "0"});
  for (std::size_t k = 0; k < points; ++k)
    bench::print_row({bench::fmt(times[k], 6),
                      bench::fmt(results[0][k].weighted[1]),
                      bench::fmt(results[1][k].weighted[1]),
                      bench::fmt(results[2][k].weighted[1]),
                      bench::fmt(ss_rate * times[k])});

  std::printf("# stationary slope %s, initial slope C = 32; computed in "
              "%.3f s (G at t_max: %zu)\n",
              bench::fmt(ss_rate, 8).c_str(), sw.seconds(),
              results[2].back().truncation_point);
  return 0;
}
