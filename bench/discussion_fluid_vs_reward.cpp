// Section 4 discussion — second-order REWARD models vs second-order FLUID
// models: "the same partial differential equation characterize the system
// distribution of both models inside the valid region, but ... different
// boundary conditions apply ... hence unfortunately, the relatively simple
// solution of second-order Markov reward models is not applicable for the
// solution of second-order fluid models."
//
// This harness takes one (Q, R, S) data set, computes the exact unbounded
// reward CDF (transform solver) and simulates the reflected fluid level,
// printing both CDFs side by side: identical dynamics, visibly different
// laws once the boundary at 0 is felt.

#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "density/density_common.hpp"
#include "density/transform_solver.hpp"
#include "sim/fluid_simulator.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Section 4 discussion",
                      "reward (unbounded) vs fluid (reflected at 0): same "
                      "(Q,R,S), different boundary conditions");

  const double t = bench::arg_double(argc, argv, "--time", 2.0);
  const std::size_t reps = bench::arg_size(argc, argv, "--reps", 20000);

  // Alternating source: net inflow +1 or -2, both noisy.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<linalg::Triplet>{{0, 1, 2.0}, {1, 0, 2.0}});
  const core::SecondOrderMrm model(std::move(gen), linalg::Vec{1.0, -2.0},
                                   linalg::Vec{0.5, 0.5},
                                   linalg::Vec{1.0, 0.0});

  density::TransformSolverOptions topts;
  topts.grid = {-12.0, 12.0, 2048};
  const auto reward_density = density::density_via_transform(model, t, topts);

  const sim::FluidSimulator fluid(model);
  sim::FluidSimulationOptions fopts;
  fopts.num_replications = reps;
  fopts.seed = 20040628;
  auto levels = fluid.sample_levels(t, fopts);
  std::sort(levels.begin(), levels.end());

  bench::print_row({"x", "cdf_reward_unbounded", "cdf_fluid_reflected"});
  for (double x = -4.0; x <= 6.0 + 1e-9; x += 0.5) {
    const double reward_cdf =
        density::cdf_from_density(reward_density.x, reward_density.weighted,
                                  x);
    const double fluid_cdf = sim::empirical_cdf(levels, x, /*sorted=*/true);
    bench::print_row({bench::fmt(x, 4), bench::fmt(reward_cdf, 6),
                      bench::fmt(fluid_cdf, 6)});
  }

  std::printf("# reward mass below 0 at t=%g: %s (the fluid has none) — the\n"
              "# boundary condition, not the dynamics, separates the models\n",
              t,
              bench::fmt(density::cdf_from_density(
                             reward_density.x, reward_density.weighted, 0.0),
                         4)
                  .c_str());
  return 0;
}
