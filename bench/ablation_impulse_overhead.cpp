// Ablation — cost of the impulse extension.
//
// The paper argues second-order analysis costs practically the same as
// first-order; this harness extends the claim to impulse rewards: per
// iteration the impulse solver adds one sparse matvec per (moment order x
// non-zero impulse matrix), so n = 3 moments with impulses on every
// transition roughly doubles the per-iteration work but leaves G and the
// asymptotics unchanged.

#include <cstdio>

#include "bench_common.hpp"
#include "core/first_order.hpp"
#include "core/impulse_randomization.hpp"
#include "models/birth_death.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Ablation: impulse-extension overhead",
                      "same birth-death chain, growing solver generality");

  const std::size_t states = bench::arg_size(argc, argv, "--states", 20000);
  const double t = bench::arg_double(argc, argv, "--time", 1.0);
  const std::size_t repeats = bench::arg_size(argc, argv, "--repeats", 5);

  const auto chain = models::make_birth_death_mrm(
      states, [](std::size_t) { return 3.0; }, [](std::size_t) { return 4.0; },
      [states](std::size_t i) { return static_cast<double>(states - i); },
      [](std::size_t i) { return 0.5 * static_cast<double>(i); });

  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;

  const double reps = static_cast<double>(repeats);
  const auto time_it = [&](auto&& fn) {
    bench::Stopwatch sw;
    double checksum = 0.0;
    for (std::size_t r = 0; r < repeats; ++r) checksum += fn();
    return std::pair<double, double>(sw.seconds() / reps, checksum / reps);
  };

  // First-order (variances dropped).
  const core::FirstOrderMrm fo(chain.generator(), chain.drifts(),
                               chain.initial());
  const core::FirstOrderMomentSolver fo_solver(fo);
  const auto [fo_time, fo_sum] =
      time_it([&] { return fo_solver.solve(t, opts).weighted[1]; });

  // Second-order.
  const core::RandomizationMomentSolver so_solver(chain);
  const auto [so_time, so_sum] =
      time_it([&] { return so_solver.solve(t, opts).weighted[1]; });

  // Second-order + deterministic impulses on every transition.
  const auto imp_det =
      core::SecondOrderImpulseMrm::uniform_impulse(chain, 0.1, 0.0);
  const core::ImpulseMomentSolver imp_det_solver(imp_det);
  const auto [det_time, det_sum] =
      time_it([&] { return imp_det_solver.solve(t, opts).weighted[1]; });

  // Second-order + normal impulses on every transition.
  const auto imp_rand =
      core::SecondOrderImpulseMrm::uniform_impulse(chain, 0.1, 0.05);
  const core::ImpulseMomentSolver imp_rand_solver(imp_rand);
  const auto [rand_time, rand_sum] =
      time_it([&] { return imp_rand_solver.solve(t, opts).weighted[1]; });

  bench::print_row({"solver", "mean_seconds", "relative", "E[B(t)]"});
  bench::print_row({"first_order", bench::fmt(fo_time, 4), "1.00",
                    bench::fmt(fo_sum, 8)});
  bench::print_row({"second_order", bench::fmt(so_time, 4),
                    bench::fmt(so_time / fo_time, 3),
                    bench::fmt(so_sum, 8)});
  bench::print_row({"impulse_deterministic", bench::fmt(det_time, 4),
                    bench::fmt(det_time / fo_time, 3),
                    bench::fmt(det_sum, 8)});
  bench::print_row({"impulse_normal", bench::fmt(rand_time, 4),
                    bench::fmt(rand_time / fo_time, 3),
                    bench::fmt(rand_sum, 8)});

  std::printf("# %zu states, t = %g, eps = %g, %zu repeats per row\n", states,
              t, opts.epsilon, repeats);
  return 0;
}
