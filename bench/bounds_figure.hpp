// Shared driver for Figures 5, 6 and 7: moment-based bounds on the CDF of
// the accumulated reward B(0.5) of the Table-1 model, computed from 23
// moments as in the paper, printed over a grid spanning mean +- 4 sd, with
// a 50k-replication empirical CDF as ground-truth reference.

#pragma once

/// Runs the figure for one sigma^2 value; returns the process exit code.
int run_bounds_figure(const char* artifact, double sigma2, int argc,
                      char** argv);
