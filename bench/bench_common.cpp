#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/moment_utils.hpp"

namespace somrm::bench {

void print_header(const std::string& artifact, const std::string& summary) {
  std::printf("# %s\n# %s\n", artifact.c_str(), summary.c_str());
}

void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf("%s%s", i ? "," : "", cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

namespace {
const char* find_arg(int argc, char** argv, const std::string& name) {
  for (int i = 1; i + 1 < argc; ++i)
    if (name == argv[i]) return argv[i + 1];
  return nullptr;
}
}  // namespace

double arg_double(int argc, char** argv, const std::string& name,
                  double fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::strtod(v, nullptr) : fallback;
}

std::size_t arg_size(int argc, char** argv, const std::string& name,
                     std::size_t fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? static_cast<std::size_t>(std::strtoull(v, nullptr, 10))
           : fallback;
}

std::string arg_string(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::string(v) : fallback;
}

void JsonWriter::add(BenchRecord record) {
  if (enabled()) records_.push_back(std::move(record));
}

void JsonWriter::write() const {
  if (!enabled()) return;
  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f) throw std::runtime_error("JsonWriter: cannot open " + path_);
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const BenchRecord& r = records_[i];
    std::fprintf(f,
                 "  {\"bench\": \"%s\", \"states\": %zu, \"threads\": %zu, "
                 "\"wall_s\": %.9g, \"moments\": %zu}%s\n",
                 r.bench.c_str(), r.states, r.threads, r.wall_s, r.moments,
                 i + 1 < records_.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

namespace {

linalg::Vec centered_moments_of(const core::SecondOrderMrm& model, double t,
                                std::size_t num_moments, double epsilon,
                                double& mean_out, std::size_t& g_out) {
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions mean_opts;
  mean_opts.max_moment = 1;
  mean_opts.epsilon = std::min(epsilon, 1e-10);
  mean_out = solver.solve(t, mean_opts).weighted[1];

  core::MomentSolverOptions opts;
  opts.max_moment = num_moments;
  opts.epsilon = epsilon;
  opts.center = mean_out / t;
  auto res = solver.solve(t, opts);
  g_out = res.truncation_point;
  return std::move(res.weighted);
}

}  // namespace

CenteredBoundPipeline::CenteredBoundPipeline(const core::SecondOrderMrm& model,
                                             double t,
                                             std::size_t num_moments,
                                             double epsilon)
    : t_(t),
      centered_moments_(centered_moments_of(model, t, num_moments, epsilon,
                                            mean_, truncation_point_)),
      bounder_(centered_moments_) {}

double CenteredBoundPipeline::stddev() const {
  return std::sqrt(core::variance_from_raw(centered_moments_));
}

}  // namespace somrm::bench
