#include "bench_common.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "core/moment_utils.hpp"

namespace somrm::bench {

void print_header(const std::string& artifact, const std::string& summary) {
  std::printf("# %s\n# %s\n", artifact.c_str(), summary.c_str());
}

void print_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i)
    std::printf("%s%s", i ? "," : "", cells[i].c_str());
  std::printf("\n");
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.precision(precision);
  os << v;
  return os.str();
}

namespace {
const char* find_arg(int argc, char** argv, const std::string& name) {
  // Scan every slot including the last: a flag in the final position has no
  // value, which must be reported, not silently treated as "absent" (a typo
  // like `... --states` used to fall back to the default without a word).
  for (int i = 1; i < argc; ++i) {
    if (name != argv[i]) continue;
    if (i + 1 >= argc)
      throw std::invalid_argument("bench: flag " + name +
                                  " is missing its value");
    return argv[i + 1];
  }
  return nullptr;
}
}  // namespace

double arg_double(int argc, char** argv, const std::string& name,
                  double fallback) {
  const char* v = find_arg(argc, argv, name);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0')
    throw std::invalid_argument("bench: flag " + name +
                                " expects a number, got \"" + v + "\"");
  return parsed;
}

std::size_t arg_size(int argc, char** argv, const std::string& name,
                     std::size_t fallback) {
  const char* v = find_arg(argc, argv, name);
  if (!v) return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || std::strchr(v, '-') != nullptr)
    throw std::invalid_argument("bench: flag " + name +
                                " expects a non-negative integer, got \"" +
                                std::string(v) + "\"");
  return static_cast<std::size_t>(parsed);
}

std::string arg_string(int argc, char** argv, const std::string& name,
                       const std::string& fallback) {
  const char* v = find_arg(argc, argv, name);
  return v ? std::string(v) : fallback;
}

std::vector<std::size_t> arg_size_list(int argc, char** argv,
                                       const std::string& name,
                                       std::vector<std::size_t> fallback) {
  const char* v = find_arg(argc, argv, name);
  if (!v) return fallback;
  std::vector<std::size_t> out;
  const std::string list(v);
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::string item =
        list.substr(pos, comma == std::string::npos ? comma : comma - pos);
    char* end = nullptr;
    const unsigned long long parsed = std::strtoull(item.c_str(), &end, 10);
    if (item.empty() || end == item.c_str() || *end != '\0' ||
        item.find('-') != std::string::npos)
      throw std::invalid_argument(
          "bench: flag " + name +
          " expects comma-separated non-negative integers, got \"" + list +
          "\"");
    out.push_back(static_cast<std::size_t>(parsed));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (raw) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

std::string git_sha() {
#ifdef SOMRM_GIT_SHA
  return SOMRM_GIT_SHA;
#else
  return "unknown";
#endif
}

void fill_from_stats(BenchRecord& record, const obs::SolverStats& stats) {
  record.kernel = stats.kernel;
  record.simd = stats.simd;
  record.storage = stats.storage;
  record.padding_ratio = stats.padding_ratio;
  if (stats.threads > 0) record.threads = stats.threads;
  record.truncation_point = 0;
  for (std::size_t g : stats.truncation_points)
    record.truncation_point = std::max(record.truncation_point, g);
  record.sweep_s = stats.sweep_seconds;
  record.spmv_gflops = stats.effective_gflops;
  record.load_imbalance = stats.load_imbalance;
  record.cache_hits = stats.cache_hits;
  record.cache_misses = stats.cache_misses;
  record.cache_evictions = stats.cache_evictions;
  record.cache_coalesced = stats.cache_coalesced;
}

void JsonWriter::add(BenchRecord record) {
  if (enabled()) {
    if (record.git_sha.empty()) record.git_sha = bench::git_sha();
    records_.push_back(std::move(record));
  }
}

namespace {

void print_record(std::FILE* f, const BenchRecord& r, bool trailing_comma) {
  const std::string bench = json_escape(r.bench);
  const std::string sha = json_escape(r.git_sha);
  const std::string kernel = json_escape(r.kernel);
  const std::string simd = json_escape(r.simd);
  const std::string storage = json_escape(r.storage);
  std::fprintf(
      f,
      "  {\"bench\": \"%s\", \"states\": %zu, \"threads\": %zu, "
      "\"wall_s\": %.9g, \"moments\": %zu, \"git_sha\": \"%s\", "
      "\"kernel\": \"%s\", \"simd\": \"%s\", \"storage\": \"%s\", "
      "\"padding_ratio\": %.9g, \"observability\": %s, "
      "\"truncation_point\": %zu, \"sweep_s\": %.9g, "
      "\"spmv_gflops\": %.9g, \"load_imbalance\": %.9g, "
      "\"cache_hits\": %zu, \"cache_misses\": %zu, "
      "\"cache_evictions\": %zu, \"cache_coalesced\": %zu, "
      "\"latency_p50_ms\": %.9g, \"latency_p99_ms\": %.9g, "
      "\"qps\": %.9g, \"clients\": %zu}%s\n",
      bench.c_str(), r.states, r.threads, r.wall_s, r.moments, sha.c_str(),
      kernel.c_str(), simd.c_str(), storage.c_str(), r.padding_ratio,
      r.observability ? "true" : "false",
      r.truncation_point, r.sweep_s, r.spmv_gflops, r.load_imbalance,
      r.cache_hits, r.cache_misses, r.cache_evictions, r.cache_coalesced,
      r.latency_p50_ms, r.latency_p99_ms, r.qps, r.clients,
      trailing_comma ? "," : "");
}

/// Reads the existing JSON array body (the text between the outer
/// brackets) so append mode can splice new records after it. Returns an
/// empty string when the file does not exist (treated as an empty array).
std::string existing_array_body(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (!f) return {};
  std::string content;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0)
    content.append(buf, got);
  std::fclose(f);
  const std::size_t open = content.find('[');
  const std::size_t close = content.rfind(']');
  if (open == std::string::npos || close == std::string::npos ||
      close < open)
    throw std::runtime_error("JsonWriter: " + path +
                             " is not a JSON array; cannot append");
  std::string body = content.substr(open + 1, close - open - 1);
  // Trim whitespace so "no prior records" is detectable.
  const std::size_t first = body.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return {};
  const std::size_t last = body.find_last_not_of(" \t\r\n");
  return body.substr(first, last - first + 1);
}

}  // namespace

void JsonWriter::write() const {
  if (!enabled()) return;
  // Read the prior records (append mode) BEFORE truncating anything, then
  // write the merged array to a sibling temp file and rename it into place.
  // The old flow reopened the same path with "w", so a crash mid-write (or
  // a failed existing_array_body parse after the open) destroyed the
  // accumulated snapshot it was trying to extend; rename(2) on the same
  // directory is atomic, so readers now see either the old file or the
  // complete new one, never a torn prefix.
  const std::string body = append_ ? existing_array_body(path_) : "";
  const std::string tmp_path = path_ + ".tmp";
  std::FILE* f = std::fopen(tmp_path.c_str(), "w");
  if (!f) throw std::runtime_error("JsonWriter: cannot open " + tmp_path);
  std::fprintf(f, "[\n");
  if (!body.empty())
    std::fprintf(f, "  %s%s\n", body.c_str(),
                 records_.empty() ? "" : ",");
  for (std::size_t i = 0; i < records_.size(); ++i)
    print_record(f, records_[i], i + 1 < records_.size());
  std::fprintf(f, "]\n");
  const bool write_failed = std::ferror(f) != 0;
  if (std::fclose(f) != 0 || write_failed) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("JsonWriter: failed writing " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), path_.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    throw std::runtime_error("JsonWriter: cannot rename " + tmp_path +
                             " to " + path_);
  }
}

namespace {

linalg::Vec centered_moments_of(const core::SecondOrderMrm& model, double t,
                                std::size_t num_moments, double epsilon,
                                double& mean_out, std::size_t& g_out) {
  const core::RandomizationMomentSolver solver(model);
  core::MomentSolverOptions mean_opts;
  mean_opts.max_moment = 1;
  mean_opts.epsilon = std::min(epsilon, 1e-10);
  mean_out = solver.solve(t, mean_opts).weighted[1];

  core::MomentSolverOptions opts;
  opts.max_moment = num_moments;
  opts.epsilon = epsilon;
  opts.center = mean_out / t;
  auto res = solver.solve(t, opts);
  g_out = res.truncation_point;
  return std::move(res.weighted);
}

}  // namespace

CenteredBoundPipeline::CenteredBoundPipeline(const core::SecondOrderMrm& model,
                                             double t,
                                             std::size_t num_moments,
                                             double epsilon)
    : t_(t),
      centered_moments_(centered_moments_of(model, t, num_moments, epsilon,
                                            mean_, truncation_point_)),
      bounder_(centered_moments_) {}

double CenteredBoundPipeline::stddev() const {
  return std::sqrt(core::variance_from_raw(centered_moments_));
}

}  // namespace somrm::bench
