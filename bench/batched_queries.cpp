// Batched serving benchmark: many queries against ONE model, answered by a
// core::SolveSession (one shared U-sweep + cheap per-query finalize)
// versus the same queries as independent RandomizationMomentSolver solves
// (one full sweep each). The session results must be BIT-IDENTICAL to the
// independent ones — the retained-accumulator path is the same arithmetic
// — so this harness verifies exact equality and exits non-zero on any
// mismatch before reporting the speedup.
//
// Query mix: --queries Q initial vectors pi_0..pi_{Q-1} (deterministically
// generated, all distinct), cycling over the session's 5-point time grid,
// all at the session's max moment order. This is the ROADMAP's heavy
// multi-user traffic shape: same model, different users, different pi.
//
// Flags: --states N (ON-OFF sources, default 50000), --queries Q (default
// 64), --moments n (default 4), --epsilon, --kernel panel|legacy,
// --skip-independent 1 (session path only — for quick cache-stat runs),
// --json <path> / --json-append <path> for BenchRecords
// (batched_queries_independent + batched_queries_session, the latter
// carrying the session cache counters and the per-query latency_p50_ms /
// latency_p99_ms / qps fields from the SessionReport), --stats 1 for the
// telemetry summary of the last session query, --metrics-out <path> to
// dump the cumulative obs registry (Prometheus text, or JSON when the
// path ends in .json).

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "core/solve_session.hpp"
#include "linalg/parallel.hpp"
#include "linalg/vec.hpp"
#include "models/onoff.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "prob/rng.hpp"

namespace {

/// Q distinct initial distributions over num_states states, deterministic
/// across runs (fixed-seed engine): strictly positive uniform weights
/// normalized to sum to 1.
std::vector<somrm::linalg::Vec> make_initials(std::size_t q,
                                              std::size_t num_states) {
  somrm::prob::Rng rng(20260806);
  std::vector<somrm::linalg::Vec> out;
  out.reserve(q);
  for (std::size_t i = 0; i < q; ++i) {
    somrm::linalg::Vec pi(num_states, 0.0);
    for (std::size_t s = 0; s < num_states; ++s)
      pi[s] = rng.uniform01() + 1e-6;
    somrm::linalg::normalize_probability(pi);
    out.push_back(std::move(pi));
  }
  return out;
}

bool bit_identical(const somrm::core::MomentResult& a,
                   const somrm::core::MomentResult& b) {
  if (a.weighted.size() != b.weighted.size()) return false;
  for (std::size_t j = 0; j < a.weighted.size(); ++j)
    if (a.weighted[j] != b.weighted[j]) return false;
  if (a.per_state.size() != b.per_state.size()) return false;
  for (std::size_t j = 0; j < a.per_state.size(); ++j)
    for (std::size_t i = 0; i < a.per_state[j].size(); ++i)
      if (a.per_state[j][i] != b.per_state[j][i]) return false;
  return a.truncation_point == b.truncation_point &&
         a.error_bound == b.error_bound;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header(
      "batched_queries",
      "SolveSession batch vs independent solves: one shared sweep, many pi");

  models::OnOffMultiplexerParams params = models::table2_params();
  params.num_sources = bench::arg_size(argc, argv, "--states", 50000);
  params.capacity = static_cast<double>(params.num_sources);
  const std::size_t num_queries = bench::arg_size(argc, argv, "--queries", 64);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);
  const std::size_t n = bench::arg_size(argc, argv, "--moments", 4);
  const bool skip_independent =
      bench::arg_size(argc, argv, "--skip-independent", 0) != 0;

  bench::Stopwatch sw_build;
  const auto model = models::make_onoff_multiplexer(params);
  const auto scaled = core::scale_model(model);
  std::printf("# N = %zu sources (%zu states), q = %s, build %.2f s\n",
              params.num_sources, model.num_states(),
              bench::fmt(scaled.q, 8).c_str(), sw_build.seconds());

  const std::vector<double> times{0.01, 0.02, 0.03, 0.04, 0.05};
  core::MomentSolverOptions opts;
  opts.max_moment = n;
  opts.epsilon = eps;
  const std::string kernel = bench::arg_string(argc, argv, "--kernel", "panel");
  opts.kernel = kernel == "legacy" ? core::SweepKernel::kFusedVectors
                                   : core::SweepKernel::kPanel;

  const auto initials = make_initials(num_queries, model.num_states());
  std::vector<core::SessionQuery> queries(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries[i].time_index = i % times.size();
    queries[i].initial = initials[i];
  }

  // Session path: one sweep (cache miss) + Q cheap finalizes.
  const auto cache = std::make_shared<core::SweepCache>();
  const core::SolveSession session(model, times, opts, cache);
  bench::Stopwatch sw_session;
  const auto batch = session.query_batch(queries);
  const double session_s = sw_session.seconds();
  const core::SweepCacheStats cs = session.cache_stats();
  const core::SessionReport sr = session.report();
  const double latency_p50_ms =
      static_cast<double>(sr.latency_p50_ns) * 1e-6;
  const double latency_p99_ms =
      static_cast<double>(sr.latency_p99_ns) * 1e-6;
  const double qps =
      session_s > 0.0 ? static_cast<double>(num_queries) / session_s : 0.0;
  std::printf("# session: %zu queries in %.3f s (%.2f ms/query); cache: "
              "%zu hits, %zu misses, %zu evictions, %zu coalesced\n",
              num_queries, session_s,
              1e3 * session_s / static_cast<double>(num_queries), cs.hits,
              cs.misses, cs.evictions, cs.coalesced);
  std::printf("# latency: p50 %.3f ms, p99 %.3f ms; throughput %.1f q/s\n",
              latency_p50_ms, latency_p99_ms, qps);

  // Independent path: one full solve per query, each with its own pi.
  double independent_s = 0.0;
  bool identical = true;
  if (!skip_independent) {
    bench::Stopwatch sw_ind;
    for (std::size_t i = 0; i < num_queries; ++i) {
      const core::RandomizationMomentSolver solver(
          model.with_initial(initials[i]));
      const auto reference = solver.solve(times[queries[i].time_index], opts);
      if (!bit_identical(reference, batch[i])) {
        identical = false;
        std::printf("# MISMATCH at query %zu (t = %g)\n", i,
                    times[queries[i].time_index]);
      }
    }
    independent_s = sw_ind.seconds();
    std::printf("# independent: %zu solves in %.3f s; speedup %.1fx; "
                "bit-identical: %s\n",
                num_queries, independent_s, independent_s / session_s,
                identical ? "yes" : "NO");
  }

  bench::print_row({"mode", "queries", "wall_s", "ms_per_query"});
  bench::print_row({"session", std::to_string(num_queries),
                    bench::fmt(session_s, 6),
                    bench::fmt(1e3 * session_s /
                                   static_cast<double>(num_queries), 6)});
  if (!skip_independent)
    bench::print_row({"independent", std::to_string(num_queries),
                      bench::fmt(independent_s, 6),
                      bench::fmt(1e3 * independent_s /
                                     static_cast<double>(num_queries), 6)});

  if (bench::arg_size(argc, argv, "--stats", 0) != 0)
    std::printf("%s", obs::report(batch.back().stats).c_str());

  const std::string append_path =
      bench::arg_string(argc, argv, "--json-append", "");
  bench::JsonWriter writer(
      !append_path.empty() ? append_path
                           : bench::arg_string(argc, argv, "--json", ""),
      /*append=*/!append_path.empty());
  bench::BenchRecord session_rec{};
  session_rec.bench = "batched_queries_session[" + kernel + "]";
  session_rec.states = model.num_states();
  session_rec.threads = linalg::num_threads();
  session_rec.wall_s = session_s;
  session_rec.moments = n;
  bench::fill_from_stats(session_rec, batch.back().stats);
  session_rec.latency_p50_ms = latency_p50_ms;
  session_rec.latency_p99_ms = latency_p99_ms;
  session_rec.qps = qps;
  writer.add(std::move(session_rec));
  if (!skip_independent) {
    bench::BenchRecord ind_rec{};
    ind_rec.bench = "batched_queries_independent[" + kernel + "]";
    ind_rec.states = model.num_states();
    ind_rec.threads = linalg::num_threads();
    ind_rec.wall_s = independent_s;
    ind_rec.moments = n;
    ind_rec.kernel = batch.back().stats.kernel;
    writer.add(std::move(ind_rec));
  }
  writer.write();

  const std::string metrics_out =
      bench::arg_string(argc, argv, "--metrics-out", "");
  if (!metrics_out.empty()) {
    obs::set_metrics_path(metrics_out);
    obs::write_metrics();
  }

  if (!identical) {
    std::printf("# FAILED: session batch is not bit-identical to "
                "independent solves\n");
    return 1;
  }
  return 0;
}
