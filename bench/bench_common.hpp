// Shared helpers for the figure/table reproduction harnesses: consistent
// table printing, wall-clock timing, simple CLI flag parsing, and the
// centered-moment + bound pipeline used by Figures 5-7.

#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

#include "bounds/moment_bounds.hpp"
#include "core/model.hpp"
#include "core/randomization.hpp"
#include "obs/telemetry.hpp"

namespace somrm::bench {

/// Prints a banner naming the experiment and the paper artifact it
/// regenerates.
void print_header(const std::string& artifact, const std::string& summary);

/// Prints a row of columns separated by commas (CSV-ish, pasteable into
/// any plotting tool).
void print_row(const std::vector<std::string>& cells);

/// Formats a double with enough digits for plotting.
std::string fmt(double v, int precision = 8);

/// Wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Looks up "--name value" in argv; returns fallback when the flag is
/// absent. Throws std::invalid_argument (naming the flag) when the flag is
/// present without a value — including in the last argv slot — or, for the
/// numeric variants, when the value does not parse completely as a number
/// (arg_size additionally rejects negatives). Malformed CLI input must
/// abort the bench, not silently run a default-sized measurement.
double arg_double(int argc, char** argv, const std::string& name,
                  double fallback);
std::size_t arg_size(int argc, char** argv, const std::string& name,
                     std::size_t fallback);
std::string arg_string(int argc, char** argv, const std::string& name,
                       const std::string& fallback);

/// Parses "--name v1,v2,..." as a comma-separated list of non-negative
/// integers (e.g. `--threads 1,2,4,8,16`). Returns fallback when the flag
/// is absent; throws std::invalid_argument (naming the flag) for an empty
/// list or any element that fails arg_size's rules.
std::vector<std::size_t> arg_size_list(int argc, char** argv,
                                       const std::string& name,
                                       std::vector<std::size_t> fallback);

/// Escapes a string for embedding inside a JSON string literal: quote,
/// backslash, and control characters (\b \f \n \r \t, \u00XX otherwise).
std::string json_escape(const std::string& s);

/// Git commit the binary was built from (SOMRM_GIT_SHA compile definition,
/// injected by bench/CMakeLists.txt; "unknown" when not a git checkout).
std::string git_sha();

/// One machine-readable benchmark measurement. Every harness that supports
/// `--json <path>` emits records of this shape so perf trajectories can be
/// tracked across PRs (see BENCH_PR2.json / BENCH_PR3.json for the
/// committed snapshots). The telemetry fields (kernel, truncation_point,
/// sweep_s, spmv_gflops, load_imbalance) come from the solver's
/// obs::SolverStats via fill_from_stats(); the timing-derived ones stay
/// zero when the library was built with -DSOMRM_OBSERVABILITY=OFF.
struct BenchRecord {
  std::string bench;        ///< benchmark / case name
  std::size_t states = 0;   ///< model size (0 when not applicable)
  std::size_t threads = 0;  ///< solver thread count used
  double wall_s = 0.0;      ///< wall-clock seconds (per iteration)
  std::size_t moments = 0;  ///< max moment order (0 when not applicable)
  std::string git_sha;      ///< commit of the binary (bench::git_sha())
  std::string kernel;       ///< sweep kernel that ran ("" when no solve)
  std::string simd;         ///< SIMD dispatch level ("" when no solve)
  std::string storage;      ///< sparse storage streamed ("" when no solve)
  double padding_ratio = 0.0;  ///< SELL-C-σ zero-padding fraction (0 for CSR)
  bool observability = somrm::obs::kEnabled;  ///< telemetry compiled in?
  std::size_t truncation_point = 0;  ///< Theorem-4 G_max of the sweep
  double sweep_s = 0.0;              ///< U-recursion sweep seconds
  double spmv_gflops = 0.0;          ///< effective sweep GFLOP/s
  double load_imbalance = 0.0;       ///< 1 - busy/(threads * sweep wall)
  // SolveSession sweep-cache counters (batched_queries bench; all zero for
  // benches that solve directly without a session cache).
  std::size_t cache_hits = 0;
  std::size_t cache_misses = 0;
  std::size_t cache_evictions = 0;
  std::size_t cache_coalesced = 0;
  // Per-query latency distribution and throughput (batched_queries; zero
  // for single-solve benches). Quantiles are the EXACT order statistics of
  // the SessionReport's per-query records — the fields ROADMAP item 2's
  // traffic-replay bench gates on via bench_diff --latency-tol.
  double latency_p50_ms = 0.0;
  double latency_p99_ms = 0.0;
  double qps = 0.0;  ///< queries / wall second for the measured phase
  /// Client threads driving the serving engine (traffic_replay; 0 for
  /// benches without a client side). Part of the bench_diff identity key:
  /// latency/qps at 1 client and at 32 clients are different experiments.
  std::size_t clients = 0;
};

/// Copies the solver-telemetry fields of @p stats into @p record (kernel,
/// threads, truncation point, sweep seconds, effective GFLOP/s, load
/// imbalance). Leaves the bench identity fields alone.
void fill_from_stats(BenchRecord& record, const obs::SolverStats& stats);

/// Collects BenchRecords and writes them as a JSON array of objects.
/// A writer built with an empty path is disabled: add() and write() become
/// no-ops, so call sites need no branching on whether --json was given.
/// With append = true (the `--json-append` flag), write() merges the new
/// records into an existing JSON array at the path instead of replacing it
/// — that is how ON/OFF overhead pairs land in one BENCH_PR3.json.
class JsonWriter {
 public:
  explicit JsonWriter(std::string path, bool append = false)
      : path_(std::move(path)), append_(append) {}

  bool enabled() const { return !path_.empty(); }
  void add(BenchRecord record);

  /// Writes all collected records to the path, durably: the merged array
  /// goes to "<path>.tmp" first and is renamed into place, so an existing
  /// snapshot is never truncated before its replacement is complete.
  /// String fields are JSON-escaped. Throws std::runtime_error when the
  /// temp file cannot be opened/written/renamed (or, in append mode, when
  /// the existing file is not a JSON array).
  void write() const;

 private:
  std::string path_;
  bool append_ = false;
  std::vector<BenchRecord> records_;
};

/// The Figures 5-7 pipeline: mean solve, centered high-order solve, and a
/// MomentBounder over the centered moments. bounds_at() takes x in original
/// reward units.
class CenteredBoundPipeline {
 public:
  /// @param num_moments highest moment order fed to the bounder (the paper
  /// used 23); epsilon is the Theorem-4 budget for the centered solve.
  CenteredBoundPipeline(const core::SecondOrderMrm& model, double t,
                        std::size_t num_moments, double epsilon);

  double mean() const { return mean_; }
  double stddev() const;
  std::size_t rule_size() const { return bounder_.rule_size(); }
  std::size_t truncation_point() const { return truncation_point_; }

  bounds::CdfBounds bounds_at(double x) const {
    return bounder_.bounds_at(x - mean_);
  }

 private:
  double mean_ = 0.0;
  double t_ = 0.0;
  std::size_t truncation_point_ = 0;
  linalg::Vec centered_moments_;
  bounds::MomentBounder bounder_;
};

}  // namespace somrm::bench
