#include "bounds_figure.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "models/onoff.hpp"
#include "sim/simulator.hpp"

int run_bounds_figure(const char* artifact, double sigma2, int argc,
                      char** argv) {
  using namespace somrm;

  bench::print_header(
      artifact, "moment-based bounds on Pr(B(0.5) <= x), 23 moments, "
                "Table-1 model");

  const double t = bench::arg_double(argc, argv, "--time", 0.5);
  const std::size_t num_moments =
      bench::arg_size(argc, argv, "--moments", 23);
  const std::size_t grid = bench::arg_size(argc, argv, "--grid", 33);
  const std::size_t reps = bench::arg_size(argc, argv, "--reps", 50000);

  const auto model =
      models::make_onoff_multiplexer(models::table1_params(sigma2));

  bench::Stopwatch sw;
  const bench::CenteredBoundPipeline pipeline(model, t, num_moments, 1e-13);
  const double analysis_seconds = sw.seconds();

  const sim::Simulator simulator(model);
  auto samples = simulator.sample_rewards(t, reps, 20040628);
  std::sort(samples.begin(), samples.end());

  const double mean = pipeline.mean();
  const double sd = pipeline.stddev();
  std::printf("# sigma^2 = %g: E[B] = %s, sd = %s, rule size = %zu points, "
              "G = %zu\n",
              sigma2, bench::fmt(mean, 8).c_str(), bench::fmt(sd, 6).c_str(),
              pipeline.rule_size(), pipeline.truncation_point());

  bench::print_row({"x", "lower_bound", "upper_bound", "empirical_cdf"});
  for (std::size_t k = 0; k < grid; ++k) {
    const double x =
        mean + (-4.0 + 8.0 * static_cast<double>(k) / (grid - 1)) * sd;
    const auto b = pipeline.bounds_at(x);
    const double ecdf = sim::empirical_cdf(samples, x, /*sorted=*/true);
    bench::print_row({bench::fmt(x, 6), bench::fmt(b.lower, 6),
                      bench::fmt(b.upper, 6), bench::fmt(ecdf, 6)});
  }

  std::printf("# bound analysis %.4f s (+ %zu-sample reference simulation); "
              "gap at the mean reflects %zu usable moments\n",
              analysis_seconds, reps, 2 * (pipeline.rule_size() - 1));
  return 0;
}
