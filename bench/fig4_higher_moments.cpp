// Figure 4 — second and third moments of the accumulated reward vs t for
// the Table-1 model with sigma^2 in {0, 1, 10}. The paper's observation:
// larger per-state variances give uniformly larger higher moments (the
// curves for sigma^2 = 10 sit on top).

#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "models/onoff.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Figure 4",
                      "2nd and 3rd moment of the accumulated reward vs t");

  const double t_max = bench::arg_double(argc, argv, "--tmax", 1.0);
  const std::size_t points = bench::arg_size(argc, argv, "--points", 20);

  const std::vector<double> sigmas{0.0, 1.0, 10.0};
  std::vector<double> times(points);
  for (std::size_t k = 0; k < points; ++k)
    times[k] = t_max * static_cast<double>(k + 1) / static_cast<double>(points);

  core::MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-10;

  bench::Stopwatch sw;
  std::vector<std::vector<core::MomentResult>> results;
  for (double s2 : sigmas) {
    const core::RandomizationMomentSolver solver(
        models::make_onoff_multiplexer(models::table1_params(s2)));
    results.push_back(solver.solve_multi(times, opts));
  }

  bench::print_row({"t", "m2_sigma2_0", "m2_sigma2_1", "m2_sigma2_10",
                    "m3_sigma2_0", "m3_sigma2_1", "m3_sigma2_10"});
  for (std::size_t k = 0; k < points; ++k)
    bench::print_row({bench::fmt(times[k], 6),
                      bench::fmt(results[0][k].weighted[2]),
                      bench::fmt(results[1][k].weighted[2]),
                      bench::fmt(results[2][k].weighted[2]),
                      bench::fmt(results[0][k].weighted[3]),
                      bench::fmt(results[1][k].weighted[3]),
                      bench::fmt(results[2][k].weighted[3])});

  std::printf("# higher sigma^2 => larger higher moments at every t; "
              "computed in %.3f s\n", sw.seconds());
  return 0;
}
