// Table 1 / Figure 2 — the small ON-OFF multiplexer model: parameters,
// derived structure (birth-death rates, per-state rewards), and the
// section-6 scaling constants (q, d, G) for each sigma^2 the paper uses.

#include <cstdio>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "ctmc/stationary.hpp"
#include "models/onoff.hpp"

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("Table 1 / Figure 2",
                      "ON-OFF multiplexer: C=32, N=32, alpha=4, beta=3, r=1");

  const double t = bench::arg_double(argc, argv, "--time", 0.5);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);

  bench::print_row({"sigma2", "states", "q", "d_safe", "d_paper",
                    "S'_substochastic_paper", "G(n=3)", "mean_row_nnz"});
  for (double sigma2 : {0.0, 1.0, 10.0}) {
    const auto model =
        models::make_onoff_multiplexer(models::table1_params(sigma2));
    const auto safe = core::scale_model(model);
    const auto paper =
        core::scale_model(model, core::DriftScalePolicy::kPaper);
    const std::size_t g = core::RandomizationMomentSolver::truncation_point(
        safe.q * t, 3, safe.d, eps);
    bench::print_row(
        {bench::fmt(sigma2, 3), std::to_string(model.num_states()),
         bench::fmt(safe.q, 6), bench::fmt(safe.d, 6),
         bench::fmt(paper.d, 6),
         core::is_reward_scaling_substochastic(paper) ? "yes" : "NO",
         std::to_string(g),
         bench::fmt(model.generator().matrix().mean_row_nnz(), 4)});
  }

  // Figure 2 annotations: the per-state rates/rewards of the birth-death
  // chain (first and last few states).
  const auto model =
      models::make_onoff_multiplexer(models::table1_params(10.0));
  std::printf("# per-state structure (i, birth=(N-i)b, death=i*a, r_i, "
              "sigma_i^2):\n");
  bench::print_row({"state", "birth_rate", "death_rate", "r", "sigma2"});
  for (std::size_t i : {0ul, 1ul, 2ul, 16ul, 30ul, 31ul, 32ul}) {
    const auto& q = model.generator().matrix();
    const double birth = i + 1 < model.num_states() ? q.at(i, i + 1) : 0.0;
    const double death = i > 0 ? q.at(i, i - 1) : 0.0;
    bench::print_row({std::to_string(i), bench::fmt(birth, 4),
                      bench::fmt(death, 4), bench::fmt(model.drifts()[i], 4),
                      bench::fmt(model.variances()[i], 4)});
  }

  const auto pi = ctmc::stationary_distribution_gth(model.generator());
  std::printf("# stationary reward rate (fig 3 reference slope): %s\n",
              bench::fmt(model.stationary_reward_rate(pi), 8).c_str());
  return 0;
}
