// Traffic replay: ~10^6 synthetic queries from many client threads against
// one model, served by the concurrent serve::ServeEngine (key-grouped
// batching over a shared SolveSession), self-checked for bit-identity
// against synchronous SolveSession::query_batch results computed on an
// INDEPENDENT session and cache.
//
// Query mix (deterministic, fixed-seed): the distinct-combination table is
// the cross product of the 5-point time grid, a moment-order mix (session
// max and max-1), --distinct-pi initial vectors, and {plain} union
// --weight-classes terminal-weight vectors. Query i replays combo
// i % combos — the heavy serving shape where millions of requests hash to
// a few hundred distinct (time, order, pi, w) combinations but arrive
// interleaved from every client.
//
// Self-check: the reference result for every combo is computed ONCE by a
// synchronous query_batch on a session that shares nothing with the
// engine. Every replayed query's weighted moments / truncation point /
// error bound must equal its combo's reference exactly; the full
// per-state panels are compared for the first replay of each combo (the
// rest share the same retained sweep by construction). Any mismatch makes
// the bench exit non-zero.
//
// Warm restart: with --snapshot <path>, the cold phase saves the sweep
// cache on completion, then a SECOND engine + session + cache (a
// simulated process restart) reloads it and replays --warm-queries
// queries. The warm phase must finish with ZERO cache misses and >= 1 hit
// — the snapshot served every query with no sweep run — and its results
// are checked against the same references, which pins the snapshot
// round-trip bit-exactness end to end.
//
// Flags: --states N (default 50000), --queries Q (default 1000000),
// --clients C (default 8), --workers W (engine workers, default
// max(2, C/4)), --moments n (default 4), --epsilon, --window-us (batching
// window, default 200), --max-queue (default 1024), --outstanding
// (pipelined submits per client, default 16), --distinct-pi (default 8),
// --weight-classes (default 2), --snapshot path (enables the warm phase),
// --warm-queries (default min(Q, 10 * combos)), --json / --json-append
// (BenchRecords traffic_replay_cold / traffic_replay_warm carrying
// latency_p50_ms / latency_p99_ms / qps / clients), --metrics-out.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/scaling.hpp"
#include "core/solve_session.hpp"
#include "linalg/parallel.hpp"
#include "linalg/vec.hpp"
#include "models/onoff.hpp"
#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "prob/rng.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"

namespace {

using somrm::core::MomentResult;
using somrm::core::SessionQuery;

/// K distinct strictly-positive probability vectors, deterministic across
/// runs (same generator discipline as batched_queries).
std::vector<somrm::linalg::Vec> make_initials(std::size_t k,
                                              std::size_t num_states) {
  somrm::prob::Rng rng(20260806);
  std::vector<somrm::linalg::Vec> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    somrm::linalg::Vec pi(num_states, 0.0);
    for (std::size_t s = 0; s < num_states; ++s)
      pi[s] = rng.uniform01() + 1e-6;
    somrm::linalg::normalize_probability(pi);
    out.push_back(std::move(pi));
  }
  return out;
}

/// K distinct non-negative terminal-weight vectors with max > 0.
std::vector<somrm::linalg::Vec> make_weight_classes(std::size_t k,
                                                    std::size_t num_states) {
  somrm::prob::Rng rng(20260807);
  std::vector<somrm::linalg::Vec> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    somrm::linalg::Vec w(num_states, 0.0);
    for (std::size_t s = 0; s < num_states; ++s)
      w[s] = rng.uniform01() + 0.5;
    out.push_back(std::move(w));
  }
  return out;
}

bool bit_identical(const MomentResult& a, const MomentResult& b) {
  if (a.weighted != b.weighted) return false;
  if (a.per_state.size() != b.per_state.size()) return false;
  for (std::size_t j = 0; j < a.per_state.size(); ++j)
    if (a.per_state[j] != b.per_state[j]) return false;
  return a.truncation_point == b.truncation_point &&
         a.error_bound == b.error_bound;
}

/// Cheap per-query check: the pi-contracted moments plus the sweep
/// attribution fields. The full per-state panels are checked once per
/// combo via bit_identical.
bool weighted_identical(const MomentResult& a, const MomentResult& b) {
  return a.weighted == b.weighted &&
         a.truncation_point == b.truncation_point &&
         a.error_bound == b.error_bound;
}

std::int64_t exact_quantile(const std::vector<std::int64_t>& sorted,
                            double q) {
  if (sorted.empty()) return 0;
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

struct PhaseOutcome {
  double wall_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double qps = 0.0;
  std::uint64_t rejected = 0;
  std::uint64_t mismatches = 0;
  somrm::core::SweepCacheStats cache;
  somrm::serve::ServeEngineStats engine;
};

/// Replays @p total queries (combo i % combos.size()) through @p engine
/// from @p clients threads, each pipelining up to @p outstanding submits.
/// Every completed result is weighted-checked against its reference;
/// results[k] (one per combo, when non-null) receives the first replay of
/// combo k for the full per-state check.
PhaseOutcome run_phase(somrm::serve::ServeEngine& engine,
                       const std::vector<SessionQuery>& combos,
                       const std::vector<MomentResult>& refs,
                       std::vector<MomentResult>* first_results,
                       std::size_t total, std::size_t clients,
                       std::size_t outstanding) {
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::vector<std::int64_t>> lat(clients);

  const auto client = [&](std::size_t c) {
    std::deque<std::pair<std::size_t, std::future<somrm::serve::ServeResult>>>
        inflight;
    std::vector<std::int64_t>& my_lat = lat[c];
    const auto drain_oldest = [&] {
      auto [idx, fut] = std::move(inflight.front());
      inflight.pop_front();
      somrm::serve::ServeResult r = fut.get();
      my_lat.push_back(r.total_ns);
      const std::size_t combo = idx % combos.size();
      if (!weighted_identical(r.result, refs[combo]))
        mismatches.fetch_add(1, std::memory_order_relaxed);
      // First full replay cycle: keep the complete result for the
      // per-state bit check (slot idx has exactly one writer).
      if (first_results && idx < combos.size())
        (*first_results)[idx] = std::move(r.result);
    };
    for (std::size_t i = c; i < total; i += clients) {
      for (;;) {
        try {
          inflight.emplace_back(i, engine.submit(combos[i % combos.size()]));
          break;
        } catch (const somrm::serve::RejectedError&) {
          // Admission control pushed back: free a slot (or yield when we
          // have none in flight) and retry — clients own backpressure.
          rejected.fetch_add(1, std::memory_order_relaxed);
          if (!inflight.empty())
            drain_oldest();
          else
            std::this_thread::yield();
        }
      }
      if (inflight.size() >= outstanding) drain_oldest();
    }
    while (!inflight.empty()) drain_oldest();
  };

  somrm::bench::Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) threads.emplace_back(client, c);
  for (std::thread& t : threads) t.join();

  PhaseOutcome out;
  out.wall_s = sw.seconds();
  out.rejected = rejected.load();
  out.mismatches = mismatches.load();
  std::vector<std::int64_t> merged;
  merged.reserve(total);
  for (const auto& v : lat) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  out.p50_ms = static_cast<double>(exact_quantile(merged, 0.50)) * 1e-6;
  out.p99_ms = static_cast<double>(exact_quantile(merged, 0.99)) * 1e-6;
  out.qps = out.wall_s > 0.0 ? static_cast<double>(total) / out.wall_s : 0.0;
  out.cache = engine.session()->cache_stats();
  out.engine = engine.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace somrm;

  bench::print_header("traffic_replay",
                      "concurrent serving engine under synthetic traffic: "
                      "key-grouped batching, admission control, snapshots");

  models::OnOffMultiplexerParams params = models::table2_params();
  params.num_sources = bench::arg_size(argc, argv, "--states", 50000);
  params.capacity = static_cast<double>(params.num_sources);
  const std::size_t total = bench::arg_size(argc, argv, "--queries", 1000000);
  const std::size_t clients = bench::arg_size(argc, argv, "--clients", 8);
  const std::size_t n = bench::arg_size(argc, argv, "--moments", 4);
  const double eps = bench::arg_double(argc, argv, "--epsilon", 1e-9);
  const std::size_t distinct_pi =
      bench::arg_size(argc, argv, "--distinct-pi", 8);
  const std::size_t weight_classes =
      bench::arg_size(argc, argv, "--weight-classes", 2);
  const std::size_t outstanding =
      std::max<std::size_t>(1, bench::arg_size(argc, argv, "--outstanding", 16));
  const std::string snapshot_path =
      bench::arg_string(argc, argv, "--snapshot", "");
  if (clients == 0 || total == 0 || distinct_pi == 0) {
    std::fprintf(stderr, "--clients, --queries, --distinct-pi must be >= 1\n");
    return 2;
  }

  serve::ServeEngineOptions eopts;
  eopts.num_workers = bench::arg_size(argc, argv, "--workers",
                                      std::max<std::size_t>(2, clients / 4));
  eopts.max_queue = bench::arg_size(argc, argv, "--max-queue", 1024);
  eopts.batch_window_ns =
      static_cast<std::int64_t>(bench::arg_size(argc, argv, "--window-us",
                                                200)) *
      1000;

  bench::Stopwatch sw_build;
  const auto model = models::make_onoff_multiplexer(params);
  const auto scaled = core::scale_model(model);
  std::printf("# N = %zu sources (%zu states), q = %s, build %.2f s\n",
              params.num_sources, model.num_states(),
              bench::fmt(scaled.q, 8).c_str(), sw_build.seconds());

  const std::vector<double> times{0.01, 0.02, 0.03, 0.04, 0.05};
  core::MomentSolverOptions opts;
  opts.max_moment = n;
  opts.epsilon = eps;

  // Distinct-combination table: time x order-mix x pi x (plain + weight
  // classes), flattened in a fixed order so query i -> combo i % combos.
  const auto initials = make_initials(distinct_pi, model.num_states());
  const auto weights = make_weight_classes(weight_classes, model.num_states());
  const std::vector<std::size_t> orders =
      n > 1 ? std::vector<std::size_t>{n, n - 1} : std::vector<std::size_t>{n};
  std::vector<SessionQuery> combos;
  combos.reserve(times.size() * orders.size() * distinct_pi *
                 (1 + weight_classes));
  for (std::size_t ti = 0; ti < times.size(); ++ti)
    for (std::size_t order : orders)
      for (std::size_t p = 0; p < distinct_pi; ++p)
        for (std::size_t w = 0; w <= weight_classes; ++w) {
          SessionQuery q;
          q.time_index = ti;
          q.max_moment = order;
          q.initial = initials[p];
          if (w > 0) q.terminal_weights = weights[w - 1];
          combos.push_back(std::move(q));
        }
  std::printf("# %zu queries over %zu distinct combos, %zu clients, "
              "%zu workers, window %lld us, queue bound %zu\n",
              total, combos.size(), clients, eopts.num_workers,
              static_cast<long long>(eopts.batch_window_ns / 1000),
              eopts.max_queue);

  // References: synchronous query_batch on a session + cache the engine
  // never touches. This is the ground truth every replayed query is
  // checked against.
  bench::Stopwatch sw_ref;
  const core::SolveSession ref_session(model, times, opts,
                                       std::make_shared<core::SweepCache>());
  const std::vector<MomentResult> refs = ref_session.query_batch(combos);
  std::printf("# references: %zu synchronous results in %.2f s\n",
              refs.size(), sw_ref.seconds());

  // ---- cold phase ----
  auto cold_session = std::make_shared<core::SolveSession>(
      model, times, opts, std::make_shared<core::SweepCache>());
  serve::ServeEngineOptions cold_opts = eopts;  // no snapshot: cold by design
  auto cold_engine =
      std::make_unique<serve::ServeEngine>(cold_session, cold_opts);
  std::vector<MomentResult> first_cold(combos.size());
  const PhaseOutcome cold = run_phase(*cold_engine, combos, refs, &first_cold,
                                      total, clients, outstanding);
  std::size_t full_mismatches = 0;
  for (std::size_t k = 0; k < combos.size(); ++k)
    if (k < total && !bit_identical(first_cold[k], refs[k])) ++full_mismatches;
  std::printf("# cold: %.2f s wall, p50 %.3f ms, p99 %.3f ms, %.0f q/s; "
              "%llu batches (largest %zu), %llu rejected; cache %zu miss / "
              "%zu hit / %zu coalesced; mismatches %llu+%zu\n",
              cold.wall_s, cold.p50_ms, cold.p99_ms, cold.qps,
              static_cast<unsigned long long>(cold.engine.batches),
              cold.engine.largest_batch,
              static_cast<unsigned long long>(cold.rejected),
              cold.cache.misses, cold.cache.hits, cold.cache.coalesced,
              static_cast<unsigned long long>(cold.mismatches),
              full_mismatches);

  bool failed = cold.mismatches > 0 || full_mismatches > 0;

  // ---- warm phase (simulated restart) ----
  PhaseOutcome warm;
  bool ran_warm = false;
  if (!snapshot_path.empty()) {
    cold_engine->stop();
    {
      serve::ServeEngineOptions save_opts = cold_opts;
      save_opts.snapshot_path = snapshot_path;
      // Borrow the engine's save path without re-running: persist the cold
      // session's cache directly.
      const std::size_t saved =
          serve::save_snapshot(*cold_session->cache(), snapshot_path);
      std::printf("# snapshot: %zu sweep(s) -> %s\n", saved,
                  snapshot_path.c_str());
    }
    cold_engine.reset();

    const std::size_t warm_total = [&] {
      const std::size_t flag =
          bench::arg_size(argc, argv, "--warm-queries", 0);
      if (flag != 0) return flag;
      return std::min(total, 10 * combos.size());
    }();
    auto warm_session = std::make_shared<core::SolveSession>(
        model, times, opts, std::make_shared<core::SweepCache>());
    serve::ServeEngineOptions warm_opts = eopts;
    warm_opts.snapshot_path = snapshot_path;
    serve::ServeEngine warm_engine(warm_session, warm_opts);
    const core::SweepCacheStats preload = warm_session->cache_stats();
    std::printf("# warm start: %zu sweep(s) reloaded\n", preload.entries);

    std::vector<MomentResult> first_warm(combos.size());
    warm = run_phase(warm_engine, combos, refs, &first_warm, warm_total,
                     clients, outstanding);
    ran_warm = true;
    std::size_t warm_full = 0;
    for (std::size_t k = 0; k < combos.size(); ++k)
      if (k < warm_total && !bit_identical(first_warm[k], refs[k]))
        ++warm_full;
    std::printf("# warm: %zu queries, %.2f s wall, p50 %.3f ms, p99 %.3f "
                "ms, %.0f q/s; cache %zu miss / %zu hit; mismatches "
                "%llu+%zu\n",
                warm_total, warm.wall_s, warm.p50_ms, warm.p99_ms, warm.qps,
                warm.cache.misses, warm.cache.hits,
                static_cast<unsigned long long>(warm.mismatches), warm_full);
    // The warm contract: every query served from the reloaded snapshot —
    // at least one hit happened before (and instead of) any sweep.
    if (warm.cache.misses != 0 || warm.cache.hits == 0) {
      std::printf("# FAILED: warm phase ran %zu sweep(s) (%zu hits) — "
                  "snapshot did not serve the restart\n",
                  warm.cache.misses, warm.cache.hits);
      failed = true;
    }
    if (warm.mismatches > 0 || warm_full > 0) failed = true;
  }

  bench::print_row({"phase", "queries", "wall_s", "p50_ms", "p99_ms", "qps"});
  bench::print_row({"cold", std::to_string(total), bench::fmt(cold.wall_s, 6),
                    bench::fmt(cold.p50_ms, 6), bench::fmt(cold.p99_ms, 6),
                    bench::fmt(cold.qps, 8)});
  if (ran_warm)
    bench::print_row({"warm",
                      std::to_string(warm.engine.submitted),
                      bench::fmt(warm.wall_s, 6), bench::fmt(warm.p50_ms, 6),
                      bench::fmt(warm.p99_ms, 6), bench::fmt(warm.qps, 8)});

  const std::string append_path =
      bench::arg_string(argc, argv, "--json-append", "");
  bench::JsonWriter writer(
      !append_path.empty() ? append_path
                           : bench::arg_string(argc, argv, "--json", ""),
      /*append=*/!append_path.empty());
  const auto make_record = [&](const char* name, const PhaseOutcome& ph,
                               std::size_t queries) {
    bench::BenchRecord rec{};
    rec.bench = name;
    rec.states = model.num_states();
    rec.threads = linalg::num_threads();
    rec.wall_s = ph.wall_s;
    rec.moments = n;
    bench::fill_from_stats(rec, refs.back().stats);
    rec.cache_hits = ph.cache.hits;
    rec.cache_misses = ph.cache.misses;
    rec.cache_evictions = ph.cache.evictions;
    rec.cache_coalesced = ph.cache.coalesced;
    rec.latency_p50_ms = ph.p50_ms;
    rec.latency_p99_ms = ph.p99_ms;
    rec.qps = ph.qps;
    rec.clients = clients;
    (void)queries;
    return rec;
  };
  writer.add(make_record("traffic_replay_cold", cold, total));
  if (ran_warm)
    writer.add(make_record("traffic_replay_warm", warm,
                           warm.engine.submitted));
  writer.write();

  const std::string metrics_out =
      bench::arg_string(argc, argv, "--metrics-out", "");
  if (!metrics_out.empty()) {
    obs::set_metrics_path(metrics_out);
    obs::write_metrics();
  }

  if (failed) {
    std::printf("# FAILED: replay diverged from synchronous query_batch\n");
    return 1;
  }
  std::printf("# bit-identical to synchronous query_batch: yes\n");
  return 0;
}
