// Kernel microbenchmarks (google-benchmark) substantiating the section-6
// complexity claims:
//  * the iteration step costs (m+2) vector-vector products per moment
//    (m = mean non-zeros per generator row) => linear in the state count,
//  * second-order analysis costs practically the same as first-order,
//  * G grows like qt (plus an O(sqrt(qt)) spread),
//  * a multi-time solve shares one sweep instead of paying per time point.

// Flags beyond google-benchmark's own: `--json <path>` writes every run as
// a machine-readable BenchRecord via bench_common's JsonWriter;
// `--json-append <path>` merges the runs into an existing snapshot instead
// of replacing it (see EXPERIMENTS.md); `--threads t1,t2,...` selects the
// solver thread counts BM_SolveVsThreads sweeps (default 1,2,4 — pass
// `--threads 1,2,4,8,16` for the full scaling curve).

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/first_order.hpp"
#include "core/randomization.hpp"
#include "linalg/csr.hpp"
#include "linalg/parallel.hpp"
#include "linalg/sellcs.hpp"
#include "linalg/simd.hpp"
#include "models/birth_death.hpp"

namespace {

using namespace somrm;

core::SecondOrderMrm make_chain(std::size_t states, double sigma2) {
  return models::make_birth_death_mrm(
      states, [](std::size_t) { return 3.0; }, [](std::size_t) { return 4.0; },
      [states](std::size_t i) {
        return static_cast<double>(states - i);
      },
      [sigma2](std::size_t i) {
        return sigma2 * static_cast<double>(i);
      });
}

// Solve time vs state count at fixed qt: should scale linearly.
void BM_SolveVsStates(benchmark::State& state) {
  const auto states = static_cast<std::size_t>(state.range(0));
  const core::RandomizationMomentSolver solver(make_chain(states, 1.0));
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  for (auto _ : state) {
    auto res = solver.solve(1.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["moments"] = 3.0;  // MomentSolverOptions default
}
BENCHMARK(BM_SolveVsStates)->Arg(256)->Arg(1024)->Arg(4096)->Arg(16384);

// Second-order vs first-order cost on the same chain (the paper's headline
// cost claim). Both compute 3 moments at the same epsilon.
void BM_SecondOrder(benchmark::State& state) {
  const core::RandomizationMomentSolver solver(make_chain(4096, 1.0));
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  for (auto _ : state) {
    auto res = solver.solve(1.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
}
BENCHMARK(BM_SecondOrder);

void BM_FirstOrder(benchmark::State& state) {
  const auto chain = make_chain(4096, 0.0);
  const core::FirstOrderMrm fo(chain.generator(), chain.drifts(),
                               chain.initial());
  const core::FirstOrderMomentSolver solver(fo);
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  for (auto _ : state) {
    auto res = solver.solve(1.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
}
BENCHMARK(BM_FirstOrder);

// Moment-order sweep: cost is linear in the number of moment vectors.
void BM_SolveVsMomentOrder(benchmark::State& state) {
  const core::RandomizationMomentSolver solver(make_chain(4096, 1.0));
  core::MomentSolverOptions opts;
  opts.max_moment = static_cast<std::size_t>(state.range(0));
  opts.epsilon = 1e-9;
  for (auto _ : state) {
    auto res = solver.solve(1.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
  state.counters["states"] = 4096.0;
  state.counters["moments"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SolveVsMomentOrder)->Arg(1)->Arg(3)->Arg(7)->Arg(15);

// One multi-time sweep vs five independent solves.
void BM_MultiTimeSharedSweep(benchmark::State& state) {
  const core::RandomizationMomentSolver solver(make_chain(2048, 1.0));
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  const std::vector<double> times{0.2, 0.4, 0.6, 0.8, 1.0};
  for (auto _ : state) {
    auto res = solver.solve_multi(times, opts);
    benchmark::DoNotOptimize(res.data());
  }
}
BENCHMARK(BM_MultiTimeSharedSweep);

void BM_MultiTimeSeparateSolves(benchmark::State& state) {
  const core::RandomizationMomentSolver solver(make_chain(2048, 1.0));
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  const std::vector<double> times{0.2, 0.4, 0.6, 0.8, 1.0};
  for (auto _ : state) {
    for (double t : times) {
      auto res = solver.solve(t, opts);
      benchmark::DoNotOptimize(res.weighted.data());
    }
  }
}
BENCHMARK(BM_MultiTimeSeparateSolves);

// Thread-count sweep over the fused randomization sweep. Args are
// (threads, states); the interesting comparison is wall time at fixed N as
// threads grow — on a multi-core host the N >= 10,000 rows should show the
// near-linear row-parallel speedup, while N = 1024 stays below the grain
// and runs inline regardless. Results are bit-identical across the sweep
// (deterministic partition, row-owned writes), so only time varies.
// Registered dynamically in main() so `--threads 1,2,4,8,16` picks the
// sweep points.
void BM_SolveVsThreads(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto states = static_cast<std::size_t>(state.range(1));
  const core::RandomizationMomentSolver solver(make_chain(states, 1.0));
  core::MomentSolverOptions opts;
  opts.epsilon = 1e-9;
  linalg::set_num_threads(threads);
  for (auto _ : state) {
    auto res = solver.solve(1.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
  linalg::set_num_threads(0);
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["states"] = static_cast<double>(states);
}

// CSR x panel row-kernel throughput per SIMD dispatch level, isolated from
// the solver (no truncation search, no Poisson windows — just
// multiply_panel on a birth-death-shaped matrix). Registered dynamically in
// main() once per level the build compiled in AND the host supports, so a
// portable build shows scalar only while -DSOMRM_NATIVE=ON on an AVX-512
// host shows all three. All levels produce bit-identical panels
// (test_simd_panel); this benchmark shows what that contract costs.
void BM_PanelRowsSimd(benchmark::State& state, linalg::simd::Level level) {
  const std::size_t states = 40000, width = 5;
  const auto model = make_chain(states, 1.0);
  const linalg::CsrMatrix& a = model.generator().matrix();
  linalg::Panel x(a.cols(), width), y(a.rows(), width);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < width; ++j)
      x(i, j) = 1.0 + 1.0 / static_cast<double>(i + j + 1);
  linalg::set_num_threads(1);
  linalg::simd::set_level(level);
  for (auto _ : state) {
    a.multiply_panel(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  linalg::simd::set_level(linalg::simd::highest_supported());
  linalg::set_num_threads(0);
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = 1.0;
  // 2 flops (mul + add) per stored entry per panel column, per iteration.
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(width),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::OneK::kIs1000);
}

// SELL-C-σ x panel row-kernel throughput per SIMD dispatch level: the same
// matrix, panel, and flop count as BM_PanelRowsSimd, streamed from the
// sliced-ELLPACK layout instead of CSR. The bench asserts the output panel
// is bit-identical to the CSR product before timing — the storage contract
// in miniature. (A birth-death chain is near-uniform in row length, so the
// padding ratio is tiny; the interesting comparison is streaming cost.)
void BM_PanelRowsSellCs(benchmark::State& state, linalg::simd::Level level) {
  const std::size_t states = 40000, width = 5;
  const auto model = make_chain(states, 1.0);
  const linalg::CsrMatrix& a = model.generator().matrix();
  const auto sell = linalg::SellCsMatrix::from_csr(a);
  linalg::Panel x(a.cols(), width), y(a.rows(), width);
  for (std::size_t i = 0; i < x.rows(); ++i)
    for (std::size_t j = 0; j < width; ++j)
      x(i, j) = 1.0 + 1.0 / static_cast<double>(i + j + 1);
  linalg::set_num_threads(1);
  linalg::simd::set_level(level);
  linalg::Panel y_csr(a.rows(), width);
  a.multiply_panel(x, y_csr);
  sell.multiply_panel(x, y);
  for (std::size_t i = 0; i < y.rows(); ++i)
    for (std::size_t j = 0; j < width; ++j)
      if (y(i, j) != y_csr(i, j)) {
        state.SkipWithError("SELL-C-s panel diverged from CSR");
        linalg::simd::set_level(linalg::simd::highest_supported());
        linalg::set_num_threads(0);
        return;
      }
  for (auto _ : state) {
    sell.multiply_panel(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  linalg::simd::set_level(linalg::simd::highest_supported());
  linalg::set_num_threads(0);
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = 1.0;
  state.counters["padding"] = sell.padding_ratio();
  // 2 flops (mul + add) per STORED entry per panel column — padding lanes
  // are never touched, so the flop count matches CSR exactly.
  state.counters["gflops"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * static_cast<double>(width),
      benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::OneK::kIs1000);
}

// Panel (multi-vector SpMM) sweep kernel vs the pre-panel fused kernel that
// re-streams the CSR structure once per moment order, single-threaded so
// the ratio isolates the memory-traffic win. Args: (states, max_moment).
// The two kernels are bit-identical (RandomizationThreadTest); only time
// differs. The (50000, 4) pair is the ISSUE-2 acceptance measurement.
void run_sweep_kernel(benchmark::State& state, core::SweepKernel kernel) {
  const auto states = static_cast<std::size_t>(state.range(0));
  const auto moments = static_cast<std::size_t>(state.range(1));
  const core::RandomizationMomentSolver solver(make_chain(states, 1.0));
  core::MomentSolverOptions opts;
  opts.max_moment = moments;
  opts.epsilon = 1e-9;
  opts.kernel = kernel;
  linalg::set_num_threads(1);
  for (auto _ : state) {
    auto res = solver.solve(20.0, opts);
    benchmark::DoNotOptimize(res.weighted.data());
  }
  linalg::set_num_threads(0);
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = 1.0;
  state.counters["moments"] = static_cast<double>(moments);
}

void BM_SweepPanel(benchmark::State& state) {
  run_sweep_kernel(state, core::SweepKernel::kPanel);
}
BENCHMARK(BM_SweepPanel)
    ->Args({512, 2})
    ->Args({50000, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SweepLegacy(benchmark::State& state) {
  run_sweep_kernel(state, core::SweepKernel::kFusedVectors);
}
BENCHMARK(BM_SweepLegacy)
    ->Args({512, 2})
    ->Args({50000, 4})
    ->Unit(benchmark::kMillisecond);

// G growth vs qt: not a timing — report G as a counter (iterations are a
// single truncation-point computation, which is itself worth timing since
// it runs a Poisson tail search).
void BM_TruncationPoint(benchmark::State& state) {
  const double qt = static_cast<double>(state.range(0));
  std::size_t g = 0;
  for (auto _ : state) {
    g = core::RandomizationMomentSolver::truncation_point(qt, 3, 0.5, 1e-9);
    benchmark::DoNotOptimize(g);
  }
  state.counters["G"] = static_cast<double>(g);
  state.counters["G_over_qt"] = static_cast<double>(g) / qt;
}
BENCHMARK(BM_TruncationPoint)->Arg(100)->Arg(1000)->Arg(10000)->Arg(40000);

// Console output as usual, plus a {bench, states, threads, wall_s, moments}
// record per run into the shared JsonWriter when --json was given.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(bench::JsonWriter& writer)
      : writer_(writer) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const auto counter = [&run](const char* name) -> std::size_t {
        const auto it = run.counters.find(name);
        return it == run.counters.end()
                   ? 0
                   : static_cast<std::size_t>(it->second.value);
      };
      bench::BenchRecord rec;
      rec.bench = run.benchmark_name();
      rec.states = counter("states");
      rec.threads = counter("threads");
      rec.moments = counter("moments");
      rec.wall_s = run.iterations > 0
                       ? run.real_accumulated_time /
                             static_cast<double>(run.iterations)
                       : run.real_accumulated_time;
      writer_.add(std::move(rec));
    }
  }

 private:
  bench::JsonWriter& writer_;
};

}  // namespace

int main(int argc, char** argv) {
  // Pull out --json / --json-append / --threads before
  // benchmark::Initialize, which rejects flags it does not know.
  const std::string json_path =
      somrm::bench::arg_string(argc, argv, "--json", "");
  const std::string json_append_path =
      somrm::bench::arg_string(argc, argv, "--json-append", "");
  const std::vector<std::size_t> thread_list =
      somrm::bench::arg_size_list(argc, argv, "--threads", {1, 2, 4});
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string arg(argv[i]);
    if ((arg == "--json" || arg == "--json-append" || arg == "--threads") &&
        i + 1 < argc) {
      ++i;
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data()))
    return 1;

  for (const std::size_t t : thread_list)
    for (const std::size_t n : {1024, 10000, 40000})
      benchmark::RegisterBenchmark("BM_SolveVsThreads", BM_SolveVsThreads)
          ->Args({static_cast<std::int64_t>(t), static_cast<std::int64_t>(n)})
          ->Unit(benchmark::kMillisecond)
          ->UseRealTime();
  for (int lvl = 0; lvl <= static_cast<int>(somrm::linalg::simd::highest_supported());
       ++lvl) {
    const auto level = static_cast<somrm::linalg::simd::Level>(lvl);
    benchmark::RegisterBenchmark(
        (std::string("BM_PanelRowsSimd/") +
         somrm::linalg::simd::level_name(level))
            .c_str(),
        BM_PanelRowsSimd, level)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        (std::string("BM_PanelRowsSellCs/") +
         somrm::linalg::simd::level_name(level))
            .c_str(),
        BM_PanelRowsSellCs, level)
        ->Unit(benchmark::kMillisecond);
  }

  somrm::bench::JsonWriter writer(
      !json_append_path.empty() ? json_append_path : json_path,
      /*append=*/!json_append_path.empty());
  JsonCapturingReporter reporter(writer);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  writer.write();
  benchmark::Shutdown();
  return 0;
}
