// Figure 5 — bounds for the distribution of the accumulated reward of
// the Table-1 model at t = 0.5 with sigma^2 = 0, from 23 moments.

#include "bounds_figure.hpp"

int main(int argc, char** argv) {
  return run_bounds_figure("Figure 5", 0.0, argc, argv);
}
