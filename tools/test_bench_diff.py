#!/usr/bin/env python3
"""Unit tests for bench_diff.py input handling and regression detection.

Run directly (python3 tools/test_bench_diff.py) or via ctest (label
`lint`). Uses only the standard library.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
BENCH_DIFF = TOOLS / "bench_diff.py"


def record(bench: str, wall_s: float, **kw) -> dict:
    rec = {"bench": bench, "states": 64, "threads": 1, "moments": 2,
           "wall_s": wall_s}
    rec.update(kw)
    return rec


def run_diff(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(BENCH_DIFF), *argv],
        capture_output=True, text=True)


class BenchDiffTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, name: str, payload) -> str:
        path = self.dir / name
        if isinstance(payload, str):
            path.write_text(payload, encoding="utf-8")
        else:
            path.write_text(json.dumps(payload), encoding="utf-8")
        return str(path)

    def test_missing_baseline_exits_2_with_message(self) -> None:
        cand = self.write("cand.json", [record("sweep", 1.0)])
        proc = run_diff(str(self.dir / "nope.json"), cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read snapshot", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_malformed_json_exits_2_with_message(self) -> None:
        base = self.write("base.json", "{not json")
        cand = self.write("cand.json", [record("sweep", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("not valid JSON", proc.stderr)
        self.assertIn("line 1", proc.stderr)
        self.assertNotIn("Traceback", proc.stderr)

    def test_non_array_payload_exits_2(self) -> None:
        base = self.write("base.json", {"bench": "sweep"})
        cand = self.write("cand.json", [record("sweep", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("expected a JSON array", proc.stderr)

    def test_non_object_record_exits_2(self) -> None:
        base = self.write("base.json", [record("sweep", 1.0), "oops"])
        cand = self.write("cand.json", [record("sweep", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("record 1", proc.stderr)

    def test_no_overlap_exits_2(self) -> None:
        base = self.write("base.json", [record("a", 1.0)])
        cand = self.write("cand.json", [record("b", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 2)
        self.assertIn("no records matched", proc.stderr)

    def test_regression_exits_1(self) -> None:
        base = self.write("base.json", [record("sweep", 1.0)])
        cand = self.write("cand.json", [record("sweep", 1.5)])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("REGRESSION", proc.stdout)

    def test_within_threshold_exits_0(self) -> None:
        base = self.write("base.json", [record("sweep", 1.0)])
        cand = self.write("cand.json", [record("sweep", 1.05)])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("none regressed", proc.stdout)

    def test_improvement_exits_0(self) -> None:
        base = self.write("base.json", [record("sweep", 2.0)])
        cand = self.write("cand.json", [record("sweep", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_kernel_variants_matched_separately(self) -> None:
        # Two rows of one bench differing only in the sweep kernel must not
        # collide last-wins: the regressed panel row has to be flagged even
        # though the fused_vectors row (written later in the array) improved.
        base = self.write("base.json", [
            record("kernel_scaling", 1.0, kernel="panel"),
            record("kernel_scaling", 2.0, kernel="fused_vectors"),
        ])
        cand = self.write("cand.json", [
            record("kernel_scaling", 1.5, kernel="panel"),
            record("kernel_scaling", 1.0, kernel="fused_vectors"),
        ])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("kernel_scaling[panel,", proc.stdout)
        self.assertIn("kernel_scaling[fused_vectors,", proc.stdout)
        self.assertEqual(proc.stdout.count("REGRESSION"), 1)

    def test_simd_variants_matched_separately(self) -> None:
        # scalar and avx512 rows of one (bench, kernel, threads) identity
        # live side by side in BENCH_PR6.json; the regressed avx512 row must
        # be flagged without the scalar row (same key otherwise) colliding.
        base = self.write("base.json", [
            record("table2", 2.0, kernel="panel", simd="scalar"),
            record("table2", 1.0, kernel="panel", simd="avx512"),
        ])
        cand = self.write("cand.json", [
            record("table2", 2.0, kernel="panel", simd="scalar"),
            record("table2", 1.5, kernel="panel", simd="avx512"),
        ])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("table2[panel,avx512,", proc.stdout)
        self.assertEqual(proc.stdout.count("REGRESSION"), 1)

    def test_storage_variants_matched_separately(self) -> None:
        # csr and sellcs rows of one (bench, kernel, simd, threads) identity
        # live side by side in BENCH_PR7.json; the regressed sellcs row must
        # be flagged without the csr row (same key otherwise) colliding.
        base = self.write("base.json", [
            record("table2", 2.0, kernel="panel", storage="csr"),
            record("table2", 1.0, kernel="panel", storage="sellcs"),
        ])
        cand = self.write("cand.json", [
            record("table2", 2.0, kernel="panel", storage="csr"),
            record("table2", 1.5, kernel="panel", storage="sellcs"),
        ])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("table2[panel,sellcs,", proc.stdout)
        self.assertEqual(proc.stdout.count("REGRESSION"), 1)

    def test_thread_counts_gate_independently(self) -> None:
        # A 1→16 scaling curve: only the 8-thread point regressed, and the
        # diff must name exactly that point.
        base = self.write("base.json", [
            record("table2", 8.0 / t, kernel="panel", threads=t)
            for t in (1, 2, 4, 8, 16)])
        cand_recs = [record("table2", 8.0 / t, kernel="panel", threads=t)
                     for t in (1, 2, 4, 16)]
        cand_recs.append(record("table2", 4.0, kernel="panel", threads=8))
        cand = self.write("cand.json", cand_recs)
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(proc.stdout.count("REGRESSION"), 1)
        self.assertIn("T=8", proc.stdout)

    def test_reordered_snapshots_match_by_identity(self) -> None:
        # Same records, opposite array order: positional matching would pair
        # a 1.0 s record against a 10.0 s one and report a huge regression.
        recs = [record("sweep", 1.0, kernel="panel", threads=1),
                record("sweep", 10.0, kernel="panel", threads=8)]
        base = self.write("base.json", recs)
        cand = self.write("cand.json", list(reversed(recs)))
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("none regressed", proc.stdout)

    def test_missing_kernel_field_still_matches(self) -> None:
        # Pre-kernel snapshots (no "kernel" key) keep matching records that
        # also lack it — the key defaults to an empty kernel on both sides.
        base = self.write("base.json", [record("sweep", 1.0)])
        cand = self.write("cand.json", [record("sweep", 1.02)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("sweep[N=64", proc.stdout)

    def test_unmatched_records_reported_but_pass(self) -> None:
        base = self.write("base.json",
                          [record("sweep", 1.0), record("old", 1.0)])
        cand = self.write("cand.json",
                          [record("sweep", 1.0), record("new", 1.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("only in baseline", proc.stdout)
        self.assertIn("only in candidate", proc.stdout)

    # -- the opt-in --latency-tol p99 gate --

    def test_latency_gate_off_by_default(self) -> None:
        # Without --latency-tol a 10x p99 blow-up is invisible: only wall_s
        # gates, and it did not move.
        base = self.write("base.json",
                          [record("batched", 1.0, latency_p99_ms=2.0)])
        cand = self.write("cand.json",
                          [record("batched", 1.0, latency_p99_ms=20.0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("LATENCY", proc.stdout)

    def test_latency_regression_exits_1(self) -> None:
        base = self.write("base.json",
                          [record("batched", 1.0, latency_p99_ms=2.0)])
        cand = self.write("cand.json",
                          [record("batched", 1.0, latency_p99_ms=3.0)])
        proc = run_diff(base, cand, "--latency-tol", "0.25")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("LATENCY REGRESSION", proc.stdout)
        self.assertIn("p99 latency", proc.stderr)

    def test_latency_within_tolerance_exits_0(self) -> None:
        base = self.write("base.json",
                          [record("batched", 1.0, latency_p99_ms=2.0)])
        cand = self.write("cand.json",
                          [record("batched", 1.0, latency_p99_ms=2.2)])
        proc = run_diff(base, cand, "--latency-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("LATENCY REGRESSION", proc.stdout)

    def test_latency_missing_field_is_skipped(self) -> None:
        # A pre-PR8 baseline has no latency_p99_ms key at all; the gate must
        # skip the pair (reporting it), not crash or fail.
        base = self.write("base.json", [record("batched", 1.0)])
        cand = self.write("cand.json",
                          [record("batched", 1.0, latency_p99_ms=5.0)])
        proc = run_diff(base, cand, "--latency-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("skipped: latency missing or zero", proc.stdout)

    def test_latency_zero_field_is_skipped(self) -> None:
        # Benches that never measure latency write 0.0 — also not gateable.
        base = self.write("base.json",
                          [record("table2", 1.0, latency_p99_ms=0.0)])
        cand = self.write("cand.json",
                          [record("table2", 1.0, latency_p99_ms=0.0)])
        proc = run_diff(base, cand, "--latency-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("skipped: latency missing or zero", proc.stdout)

    # -- the clients identity field (traffic_replay) --

    def test_client_counts_matched_separately(self) -> None:
        # An 8-client and a 32-client run of one bench are different
        # experiments: only the regressed 32-client row may be flagged.
        base = self.write("base.json", [
            record("traffic_replay_cold", 1.0, clients=8),
            record("traffic_replay_cold", 2.0, clients=32),
        ])
        cand = self.write("cand.json", [
            record("traffic_replay_cold", 1.0, clients=8),
            record("traffic_replay_cold", 3.0, clients=32),
        ])
        proc = run_diff(base, cand, "--threshold", "0.10")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("C=32", proc.stdout)
        self.assertEqual(proc.stdout.count("REGRESSION"), 1)

    def test_missing_clients_field_still_matches(self) -> None:
        # Pre-PR10 snapshots have no "clients" key; they must keep matching
        # records that also lack it (both default to 0).
        base = self.write("base.json", [record("batched", 1.0)])
        cand = self.write("cand.json", [record("batched", 1.0, clients=0)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("none regressed", proc.stdout)

    # -- the opt-in --qps-tol throughput gate --

    def test_qps_gate_off_by_default(self) -> None:
        # Without --qps-tol a throughput collapse is invisible as long as
        # wall_s held (e.g. a fixed-duration run serving fewer queries).
        base = self.write("base.json",
                          [record("replay", 1.0, qps=10000.0, clients=8)])
        cand = self.write("cand.json",
                          [record("replay", 1.0, qps=1000.0, clients=8)])
        proc = run_diff(base, cand)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("QPS", proc.stdout)

    def test_qps_drop_exits_1(self) -> None:
        base = self.write("base.json",
                          [record("replay", 1.0, qps=10000.0, clients=8)])
        cand = self.write("cand.json",
                          [record("replay", 1.0, qps=7000.0, clients=8)])
        proc = run_diff(base, cand, "--qps-tol", "0.25")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("QPS REGRESSION", proc.stdout)
        self.assertIn("qps", proc.stderr)

    def test_qps_gain_is_not_a_regression(self) -> None:
        # Higher is better: a qps increase must never trip the gate, even a
        # large one (the latency gate's sign convention would flag it).
        base = self.write("base.json",
                          [record("replay", 1.0, qps=1000.0, clients=8)])
        cand = self.write("cand.json",
                          [record("replay", 1.0, qps=9000.0, clients=8)])
        proc = run_diff(base, cand, "--qps-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("QPS REGRESSION", proc.stdout)

    def test_qps_within_tolerance_exits_0(self) -> None:
        base = self.write("base.json",
                          [record("replay", 1.0, qps=10000.0, clients=8)])
        cand = self.write("cand.json",
                          [record("replay", 1.0, qps=9000.0, clients=8)])
        proc = run_diff(base, cand, "--qps-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertNotIn("QPS REGRESSION", proc.stdout)

    def test_qps_missing_or_zero_is_skipped(self) -> None:
        # Pre-PR10 baselines lack qps; single-solve benches write 0.0 —
        # neither is gateable and neither may fail the diff.
        base = self.write("base.json", [record("batched", 1.0)])
        cand = self.write("cand.json", [record("batched", 1.0, qps=5000.0)])
        proc = run_diff(base, cand, "--qps-tol", "0.25")
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("skipped: qps missing or zero", proc.stdout)


if __name__ == "__main__":
    unittest.main()
