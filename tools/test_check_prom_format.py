#!/usr/bin/env python3
"""Unit tests for check_prom_format.py.

Run directly (python3 tools/test_check_prom_format.py) or via ctest (label
`lint`). Uses only the standard library.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
CHECKER = TOOLS / "check_prom_format.py"

VALID = """\
# HELP somrm_session_cache_hit_total Cumulative count of session.cache.hit.
# TYPE somrm_session_cache_hit_total counter
somrm_session_cache_hit_total 7
# HELP somrm_mem_peak_rss_bytes Last sampled value of mem.peak_rss_bytes.
# TYPE somrm_mem_peak_rss_bytes gauge
somrm_mem_peak_rss_bytes 4734976
# HELP somrm_session_query_latency_ns Distribution of session.query.latency_ns.
# TYPE somrm_session_query_latency_ns histogram
somrm_session_query_latency_ns_bucket{le="1023"} 2
somrm_session_query_latency_ns_bucket{le="2047"} 5
somrm_session_query_latency_ns_bucket{le="+Inf"} 8
somrm_session_query_latency_ns_sum 12345
somrm_session_query_latency_ns_count 8
"""


def run_checker(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(CHECKER), *argv],
        capture_output=True, text=True)


class CheckPromFormatTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.dir = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, text: str) -> str:
        path = self.dir / "metrics.prom"
        path.write_text(text, encoding="utf-8")
        return str(path)

    def test_valid_file_passes(self) -> None:
        proc = run_checker(self.write(VALID))
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("OK", proc.stdout)

    def test_empty_file_passes(self) -> None:
        # An OFF-build run exports nothing; an empty registry is not a
        # format violation.
        proc = run_checker(self.write(""))
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_missing_file_exits_2(self) -> None:
        proc = run_checker(str(self.dir / "nope.prom"))
        self.assertEqual(proc.returncode, 2)
        self.assertIn("cannot read", proc.stderr)

    def test_sample_without_type_fails(self) -> None:
        proc = run_checker(self.write("somrm_x_total 1\n"))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no preceding # TYPE", proc.stderr)

    def test_counter_must_end_in_total(self) -> None:
        text = ("# HELP somrm_x Cumulative count of x.\n"
                "# TYPE somrm_x counter\n"
                "somrm_x 1\n")
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("must end in '_total'", proc.stderr)

    def test_bad_value_fails(self) -> None:
        text = ("# HELP somrm_x Last sampled value of x.\n"
                "# TYPE somrm_x gauge\n"
                "somrm_x banana\n")
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("bad sample value", proc.stderr)

    def test_histogram_without_inf_bucket_fails(self) -> None:
        text = VALID.replace(
            'somrm_session_query_latency_ns_bucket{le="+Inf"} 8\n', "")
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn('missing le="+Inf"', proc.stderr)

    def test_histogram_decreasing_cumulative_fails(self) -> None:
        text = VALID.replace(
            'somrm_session_query_latency_ns_bucket{le="2047"} 5',
            'somrm_session_query_latency_ns_bucket{le="2047"} 1')
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("cumulative bucket counts decrease", proc.stderr)

    def test_histogram_inf_must_equal_count(self) -> None:
        text = VALID.replace("somrm_session_query_latency_ns_count 8",
                             "somrm_session_query_latency_ns_count 9")
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("+Inf bucket", proc.stderr)

    def test_histogram_missing_sum_fails(self) -> None:
        text = VALID.replace("somrm_session_query_latency_ns_sum 12345\n", "")
        proc = run_checker(self.write(text))
        self.assertEqual(proc.returncode, 1)
        self.assertIn("missing _sum", proc.stderr)

    def test_required_metric_present_passes(self) -> None:
        proc = run_checker(self.write(VALID), "--require-metric",
                           "somrm_session_query_latency_ns")
        self.assertEqual(proc.returncode, 0, proc.stderr)

    def test_required_metric_absent_fails(self) -> None:
        proc = run_checker(self.write(VALID), "--require-metric",
                           "somrm_absent_metric")
        self.assertEqual(proc.returncode, 1)
        self.assertIn("somrm_absent_metric", proc.stderr)


if __name__ == "__main__":
    unittest.main()
