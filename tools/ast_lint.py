#!/usr/bin/env python3
"""AST-grounded determinism lint for the somrm sources.

Re-implements the determinism rules of tools/lint_determinism.py on the
clang AST (libclang + compile_commands.json), where regex cannot follow —
through macro expansions, typedef/using aliases, lambda captures, and
operator overloads — and adds a bit-identity rule set the regex version has
no way to express. Diagnostics carry exact file:line:col locations (the
macro EXPANSION site, so a waiver comment on the use line works).

Rules (see DESIGN.md section 8.4 for the rule -> contract table):

  no-unordered-iteration   any declaration or expression whose CANONICAL
                           type involves std::unordered_{map,set,multimap,
                           multiset} — canonical types see through
                           typedefs and using-aliases, so `using M =
                           std::unordered_map<...>` does not hide one.
  no-raw-entropy           calls to rand/srand/time (global or std::),
                           std::random_device use, and
                           std::chrono::system_clock::now() — hidden
                           global entropy or wall-clock numeric inputs.
                           steady_clock is allowed: it feeds telemetry
                           timings, never numeric results.
  no-adhoc-fp-reduction    std::accumulate / std::reduce calls OUTSIDE a
                           linalg/ path component whose result type is
                           floating-point. Integer folds are examined and
                           allowed (recorded as a refinement, so
                           cross-validation against the regex lint, which
                           flags every accumulate, stays sound).
  no-shared-capture        a compound assignment (or operator+= call)
                           inside a parallel_for / parallel_for_reduce
                           lambda whose left-hand side is a BARE variable
                           reference declared OUTSIDE the lambda — a
                           captured accumulator is a data race and an
                           order-dependent FP sum. Subscripted stores
                           (out[i] += ...) are the deterministic
                           row-partitioned idiom and are not flagged;
                           std::atomic targets are race-free and recorded
                           as refinements.
  no-std-fma               calls to std::fma/fmaf/fmal or __builtin_fma* —
                           fused multiply-add rounds once where the
                           portable baseline rounds twice, breaking
                           bit-identity with the -ffp-contract=off build.
  no-fp-contract           `#pragma STDC FP_CONTRACT ON/DEFAULT` or
                           `#pragma clang fp contract(fast|on)` — re-enables
                           the contraction the build globally forbids.
  no-fast-math             -ffast-math / -funsafe-math-optimizations /
                           -fassociative-math / -freciprocal-math in a TU's
                           compile command, or `#pragma GCC optimize` /
                           optimize attributes naming fast-math — value
                           reassociation destroys the fixed-order
                           reduction contract.

The pragma/flag rules are lexical by necessity (pragmas and builtins do not
surface as AST cursors); everything else is resolved on the AST.

Waivers use the same syntax as lint_determinism.py: a trailing
`// lint:allow(<rule>)` on the offending line, or a file-scoped
`// lint:allow-file(<rule>)` anywhere in the file.

Results are cached per TU under --cache-dir keyed by the SHA-256 of the TU
bytes, its transitive project-header closure, the extracted compile flags,
this tool's own bytes, and the libclang version — the same scheme as
tools/run_clang_tidy_cached.py. Unlike the tidy cache, stamps store the
TU's findings/refinements as JSON, so dirty TUs are cached too and
--cross-validate works from cache.

Exit codes: 0 clean, 1 findings (or cross-validation failure), 2 usage /
environment error, 77 libclang unavailable (skip; pass --require to turn
that into an error, as CI does).
"""

from __future__ import annotations

import argparse
import glob
import hashlib
import json
import re
import shlex
import sys
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOL_DIR))

from lint_determinism import ALLOW_FILE_RE, ALLOW_RE  # noqa: E402
from run_clang_tidy_cached import project_includes  # noqa: E402

RULES = (
    "no-unordered-iteration",
    "no-raw-entropy",
    "no-adhoc-fp-reduction",
    "no-shared-capture",
    "no-std-fma",
    "no-fp-contract",
    "no-fast-math",
)

SKIP_EXIT = 77

UNORDERED_TYPES = ("std::unordered_map<", "std::unordered_set<",
                   "std::unordered_multimap<", "std::unordered_multiset<")
ENTROPY_FUNCS = {"rand", "srand", "time"}
FMA_FUNCS = {"fma", "fmaf", "fmal"}
FAST_MATH_FLAGS = ("-ffast-math", "-funsafe-math-optimizations",
                   "-fassociative-math", "-freciprocal-math", "-Ofast")

FP_CONTRACT_ON_RE = re.compile(
    r"#\s*pragma\s+STDC\s+FP_CONTRACT\s+(ON|DEFAULT)\b"
    r"|#\s*pragma\s+clang\s+fp\s+contract\s*\(\s*(fast|on)\s*\)")
FAST_MATH_PRAGMA_RE = re.compile(
    r"#\s*pragma\s+GCC\s+optimize.*fast-math"
    r"|__attribute__\s*\(\s*\(\s*optimize\s*\(.*fast-math")
BUILTIN_FMA_RE = re.compile(r"\b__builtin_fmaf?l?\s*\(")


def load_cindex():
    """Import clang.cindex and make sure a libclang is actually loadable.
    Returns the module, or None when the environment has no usable
    libclang (the GCC-only container: annotations are no-ops there and
    this lint skips; CI installs clang + python3-clang and runs it)."""
    try:
        from clang import cindex
    except ImportError:
        return None
    try:
        cindex.Index.create()
        return cindex
    except Exception:
        pass
    candidates = []
    for pattern in ("/usr/lib/llvm-*/lib/libclang*.so*",
                    "/usr/lib/x86_64-linux-gnu/libclang*.so*",
                    "/usr/lib/libclang*.so*",
                    "/usr/local/lib/libclang*.so*"):
        candidates.extend(sorted(glob.glob(pattern), reverse=True))
    for cand in candidates:
        try:
            cindex.Config.loaded = False
            cindex.Config.set_library_file(cand)
            cindex.Index.create()
            return cindex
        except Exception:
            continue
    return None


class Finding:
    def __init__(self, path: str, line: int, col: int, rule: str, msg: str):
        self.path = path  # repo-root-relative, "/"-separated
        self.line = line
        self.col = col
        self.rule = rule
        self.msg = msg

    def key(self):
        return (self.path, self.line, self.col, self.rule)

    def __str__(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.msg}"

    def to_json(self):
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule": self.rule, "msg": self.msg}

    @staticmethod
    def from_json(d):
        return Finding(d["path"], d["line"], d["col"], d["rule"], d["msg"])


class FileLines:
    """Waiver lookup: lazily loaded source lines + file-scoped waivers."""

    def __init__(self):
        self._lines: dict[str, list[str]] = {}
        self._file_waived: dict[str, set[str]] = {}

    def _load(self, path: str):
        if path in self._lines:
            return
        try:
            text = Path(path).read_text(encoding="utf-8", errors="replace")
        except OSError:
            text = ""
        lines = text.splitlines()
        self._lines[path] = lines
        waived = set()
        for raw in lines:
            for m in ALLOW_FILE_RE.finditer(raw):
                if m.group(1) in RULES:
                    waived.add(m.group(1))
        self._file_waived[path] = waived

    def line(self, path: str, lineno: int) -> str:
        self._load(path)
        lines = self._lines[path]
        return lines[lineno - 1] if 1 <= lineno <= len(lines) else ""

    def waived(self, path: str, lineno: int, rule: str) -> bool:
        self._load(path)
        if rule in self._file_waived[path]:
            return True
        m = ALLOW_RE.search(self.line(path, lineno))
        return bool(m) and m.group(1) == rule


def extract_args(entry: dict) -> list[str]:
    """Pull the include/define/std flags clang needs to parse the TU out of
    a compile_commands.json entry; compiler-specific codegen flags are
    dropped (GCC's don't all exist in clang, and none affect parsing)."""
    if "arguments" in entry:
        argv = list(entry["arguments"])
    else:
        argv = shlex.split(entry.get("command", ""))
    directory = Path(entry.get("directory", "."))
    out: list[str] = []
    i = 1  # skip the compiler
    while i < len(argv):
        a = argv[i]
        if a.startswith("-I"):
            inc = a[2:] or (argv[i + 1] if i + 1 < len(argv) else "")
            if not a[2:]:
                i += 1
            p = Path(inc)
            out.append("-I" + str(p if p.is_absolute() else directory / p))
        elif a == "-isystem" and i + 1 < len(argv):
            p = Path(argv[i + 1])
            out += ["-isystem", str(p if p.is_absolute() else directory / p)]
            i += 1
        elif a.startswith("-D") or a.startswith("-std="):
            out.append(a)
        i += 1
    return out


def tu_flags(entry: dict) -> list[str]:
    """The full flag list of the entry (for the no-fast-math flag check)."""
    if "arguments" in entry:
        return list(entry["arguments"])
    return shlex.split(entry.get("command", ""))


def relpath(path: Path, repo: Path) -> str:
    try:
        return path.resolve().relative_to(repo).as_posix()
    except ValueError:
        return path.as_posix()


def is_fp_kind(cindex, ctype) -> bool:
    k = cindex.TypeKind
    return ctype.get_canonical().kind in (k.FLOAT, k.DOUBLE, k.LONGDOUBLE)


def in_std(cursor) -> bool:
    """True when the declaration lives at global scope, in namespace std,
    or in an extern "C" block — the homes of the libc/libstdc++ entropy and
    math functions the rules name."""
    parent = cursor.semantic_parent
    if parent is None:
        return False
    kind = parent.kind.name
    if kind in ("TRANSLATION_UNIT", "LINKAGE_SPEC"):
        return True
    return kind == "NAMESPACE" and parent.spelling in ("std", "")


def unwrap_expr(cindex, cursor):
    """Strip implicit casts / parens: descend single-child UNEXPOSED_EXPR
    and PAREN_EXPR wrappers."""
    kinds = (cindex.CursorKind.UNEXPOSED_EXPR, cindex.CursorKind.PAREN_EXPR)
    while cursor.kind in kinds:
        children = list(cursor.get_children())
        if len(children) != 1:
            break
        cursor = children[0]
    return cursor


class TuLinter:
    """One translation unit's AST walk: findings plus refinements (sites a
    coarser rule would flag that the AST examined and deliberately allowed
    — the records --cross-validate matches regex findings against)."""

    def __init__(self, cindex, repo: Path, lint_root: Path, files: FileLines):
        self.cindex = cindex
        self.repo = repo
        self.lint_root = lint_root.resolve()
        self.files = files
        self.findings: list[Finding] = []
        self.refinements: list[dict] = []
        self._seen: set = set()

    def _in_scope(self, location) -> bool:
        if location.file is None:
            return False
        try:
            Path(location.file.name).resolve().relative_to(self.lint_root)
            return True
        except ValueError:
            return False

    def _emit(self, location, rule: str, msg: str):
        abs_path = str(Path(location.file.name).resolve())
        if self.files.waived(abs_path, location.line, rule):
            return
        f = Finding(relpath(Path(abs_path), self.repo), location.line,
                    location.column, rule, msg)
        if f.key() not in self._seen:
            self._seen.add(f.key())
            self.findings.append(f)

    def _refine(self, location, rule: str, reason: str):
        self.refinements.append({
            "path": relpath(Path(location.file.name), self.repo),
            "line": location.line, "rule": rule, "reason": reason})

    def run(self, tu):
        ck = self.cindex.CursorKind
        for cursor in tu.cursor.walk_preorder():
            if not self._in_scope(cursor.location):
                continue
            if cursor.kind in (ck.VAR_DECL, ck.FIELD_DECL, ck.PARM_DECL,
                              ck.TYPEDEF_DECL, ck.TYPE_ALIAS_DECL):
                self._check_unordered(cursor)
            elif cursor.kind == ck.CALL_EXPR:
                self._check_call(cursor)

    # -- no-unordered-iteration --------------------------------------------

    def _check_unordered(self, cursor):
        canonical = cursor.type.get_canonical().spelling
        if any(t in canonical for t in UNORDERED_TYPES):
            self._emit(cursor.location, "no-unordered-iteration",
                       f"'{cursor.spelling or canonical}' involves a "
                       "std::unordered_* container (canonical type "
                       f"'{canonical}'): hash-table iteration order is "
                       "unspecified; use std::map/std::vector")

    # -- call-expression rules ---------------------------------------------

    def _check_call(self, cursor):
        ref = cursor.referenced
        if ref is None:
            return
        name = ref.spelling
        if name in ENTROPY_FUNCS and in_std(ref):
            self._emit(cursor.location, "no-raw-entropy",
                       f"call to {name}(): hidden global entropy / "
                       "wall-clock input; use a seeded <random> engine")
        elif name == "now" and ref.semantic_parent is not None and \
                ref.semantic_parent.spelling == "system_clock":
            self._emit(cursor.location, "no-raw-entropy",
                       "std::chrono::system_clock::now() is a wall-clock "
                       "read; use steady_clock (timing) or pass times in")
        elif name == "random_device" or (
                ref.semantic_parent is not None
                and ref.semantic_parent.spelling == "random_device"
                and ref.kind.name == "CONSTRUCTOR"):
            self._emit(cursor.location, "no-raw-entropy",
                       "std::random_device draws nondeterministic entropy; "
                       "use a fixed-seed engine")
        elif name in FMA_FUNCS and in_std(ref):
            self._emit(cursor.location, "no-std-fma",
                       f"call to {name}(): fused multiply-add rounds once "
                       "where the portable build rounds twice; bit-identity "
                       "with -ffp-contract=off is lost")
        elif name in ("accumulate", "reduce") and in_std(ref):
            self._check_fp_reduction(cursor, name)
        elif name in ("parallel_for", "parallel_for_reduce"):
            self._check_parallel_body(cursor)

    def _check_fp_reduction(self, cursor, name):
        path = Path(cursor.location.file.name)
        if "linalg" in path.parts:
            return  # the fixed-order kernels themselves live here
        if is_fp_kind(self.cindex, cursor.type):
            self._emit(cursor.location, "no-adhoc-fp-reduction",
                       f"std::{name} over floating-point values outside "
                       "linalg/: association order is unpinned; use the "
                       "fixed-order helpers (sum/dot/parallel_reduce)")
        else:
            self._refine(cursor.location, "no-adhoc-fp-reduction",
                         f"std::{name} examined: non-floating-point result "
                         f"type '{cursor.type.get_canonical().spelling}'")

    # -- no-shared-capture -------------------------------------------------

    def _check_parallel_body(self, call):
        ck = self.cindex.CursorKind
        for arg in call.get_children():
            for node in arg.walk_preorder():
                if node.kind == ck.LAMBDA_EXPR:
                    self._check_lambda(node)
                    break  # nested lambdas handled by the recursive walk

    def _check_lambda(self, lam):
        ck = self.cindex.CursorKind
        local_decls = set()
        for node in lam.walk_preorder():
            if node.kind in (ck.VAR_DECL, ck.PARM_DECL):
                local_decls.add(node.hash)
        compound_ops = ("operator+=", "operator-=", "operator*=",
                        "operator/=")
        for node in lam.walk_preorder():
            if node.kind == ck.COMPOUND_ASSIGNMENT_OPERATOR:
                # Children are exactly [LHS, RHS].
                candidates = list(node.get_children())[:1]
            elif (node.kind == ck.CALL_EXPR and node.referenced is not None
                  and node.referenced.spelling in compound_ops):
                # Operator-call child order varies (callee ref may come
                # first); the LHS is the first child resolving to a
                # variable reference.
                candidates = list(node.get_children())
            else:
                continue
            for child in candidates:
                lhs = unwrap_expr(self.cindex, child)
                if lhs.kind != ck.DECL_REF_EXPR:
                    continue  # out[i] += ... : row-partitioned store
                target = lhs.referenced
                if target is None or target.kind not in (
                        ck.VAR_DECL, ck.PARM_DECL, ck.FIELD_DECL):
                    continue
                if target.hash in local_decls:
                    break
                canonical = target.type.get_canonical().spelling
                if "atomic<" in canonical:
                    self._refine(node.location, "no-shared-capture",
                                 f"'{target.spelling}' examined: "
                                 "std::atomic target is race-free")
                    break
                self._emit(node.location, "no-shared-capture",
                           f"'{target.spelling}' is written inside a "
                           "parallel_for body but declared outside the "
                           "lambda: a captured accumulator is a data race "
                           "and an order-dependent FP sum; use "
                           "parallel_reduce or a per-chunk local")
                break


def lexical_pass(paths: set[Path], repo: Path, files: FileLines,
                 findings: list[Finding], seen: set):
    """Pragma/builtin rules that have no AST cursors."""
    for path in sorted(paths):
        abs_path = str(path.resolve())
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            continue
        for lineno, raw in enumerate(text.splitlines(), start=1):
            checks = (
                (FP_CONTRACT_ON_RE, "no-fp-contract",
                 "FP contraction re-enabled by pragma: the build pins "
                 "-ffp-contract=off for bit-identity"),
                (FAST_MATH_PRAGMA_RE, "no-fast-math",
                 "fast-math re-enabled by pragma/attribute: value "
                 "reassociation breaks the fixed-order reductions"),
                (BUILTIN_FMA_RE, "no-std-fma",
                 "__builtin_fma rounds once where the portable build "
                 "rounds twice; bit-identity is lost"),
            )
            for regex, rule, msg in checks:
                m = regex.search(raw)
                if not m:
                    continue
                if files.waived(abs_path, lineno, rule):
                    continue
                f = Finding(relpath(path, repo), lineno, m.start() + 1,
                            rule, msg)
                if f.key() not in seen:
                    seen.add(f.key())
                    findings.append(f)


def flags_pass(tu_path: Path, flags: list[str], repo: Path,
               findings: list[Finding], seen: set):
    for flag in flags:
        if flag in FAST_MATH_FLAGS:
            f = Finding(relpath(tu_path, repo), 1, 1, "no-fast-math",
                        f"TU compiled with {flag}: value reassociation "
                        "breaks the fixed-order reduction contract")
            if f.key() not in seen:
                seen.add(f.key())
                findings.append(f)


def cache_key(tu: Path, src_root: Path, args: list[str],
              libclang_version: str) -> str:
    h = hashlib.sha256()
    h.update(libclang_version.encode())
    h.update(Path(__file__).read_bytes())
    h.update(" ".join(args).encode())
    closure: set[Path] = set()
    project_includes(tu, src_root, closure)
    for dep in sorted(closure):
        h.update(str(dep).encode())
        h.update(dep.read_bytes())
    return h.hexdigest()


def cross_validate(findings: list[Finding], refinements: list[dict],
                   src_root: Path, repo: Path) -> list[str]:
    """Every regex-lint finding must be reproduced by an AST finding at the
    same file:line, or covered by a refinement record explaining why the
    AST deliberately narrowed it. Returns human-readable mismatches."""
    from lint_determinism import lint_file as regex_lint_file

    ast_sites = {(f.path, f.line, f.rule) for f in findings}
    refined_sites = {(r["path"], r["line"], r["rule"]) for r in refinements}
    problems: list[str] = []
    cpp_files = sorted(
        p for p in src_root.rglob("*")
        if p.suffix in {".hpp", ".cpp", ".h", ".cc"} and p.is_file())
    for path in cpp_files:
        for v in regex_lint_file(path, src_root):
            if v.rule == "unknown-rule":
                continue
            site = (Path(str(v.path)).as_posix(), v.lineno, v.rule)
            if site in ast_sites or site in refined_sites:
                continue
            problems.append(
                f"{v.path}:{v.lineno}: [{v.rule}] regex finding not "
                "reproduced by the AST lint and not covered by a "
                "refinement record")
    return problems


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--cache-dir", default=".astlint-cache",
                        help="directory for per-TU result stamps")
    parser.add_argument("--root", default=None,
                        help="restrict findings to this tree "
                             "(default: <repo>/src)")
    parser.add_argument("--src-root", default=None,
                        help="project include root for the header closure "
                             "(default: <repo>/src)")
    parser.add_argument("--require", action="store_true",
                        help="treat a missing libclang as an error "
                             "instead of a skip (CI mode)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write result stamps")
    parser.add_argument("--cross-validate", action="store_true",
                        help="check every lint_determinism.py finding is "
                             "reproduced or refined")
    parser.add_argument("files", nargs="*",
                        help="explicit TUs (default: every database entry "
                             "under --root)")
    args = parser.parse_args(argv)

    lint_root = (Path(args.root).resolve() if args.root
                 else TOOL_DIR.parent / "src")
    src_root = (Path(args.src_root).resolve() if args.src_root
                else TOOL_DIR.parent / "src")
    # Paths in findings are reported relative to the directory CONTAINING
    # the source root ("src/..." for the repo) — the same convention
    # lint_determinism.py uses, which is what lets --cross-validate match
    # the two tools' findings site by site.
    repo = src_root.parent

    cindex = load_cindex()
    if cindex is None:
        msg = ("ast_lint: libclang (python3-clang + libclang.so) not "
               "available in this environment")
        if args.require:
            print(msg, file=sys.stderr)
            return 2
        print(msg + "; skipping (exit 77)")
        return SKIP_EXIT

    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.is_file():
        print(f"ast_lint: {db_path} missing (configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)", file=sys.stderr)
        return 2
    database = json.loads(db_path.read_text())
    entries: dict[str, dict] = {}
    for entry in database:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        entries[str(f.resolve())] = entry

    if args.files:
        tus = [Path(f).resolve() for f in args.files]
    else:
        tus = sorted(Path(p) for p in entries
                     if Path(p).is_relative_to(lint_root))
    if not tus:
        print(f"ast_lint: no translation units under {lint_root}",
              file=sys.stderr)
        return 2

    index = cindex.Index.create()
    try:
        libclang_version = cindex.Config().lib.clang_getClangVersion()
        if isinstance(libclang_version, bytes):
            libclang_version = libclang_version.decode()
    except Exception:
        libclang_version = "libclang-unknown"

    cache_dir = Path(args.cache_dir)
    if not args.no_cache:
        cache_dir.mkdir(parents=True, exist_ok=True)

    files = FileLines()
    findings: list[Finding] = []
    refinements: list[dict] = []
    seen: set = set()
    checked = cached = 0
    parse_opts = cindex.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD

    for tu_path in tus:
        entry = entries.get(str(tu_path))
        clang_args = extract_args(entry) if entry else [
            "-std=c++20", f"-I{src_root}"]
        key = cache_key(tu_path, src_root, clang_args, libclang_version)
        stamp = cache_dir / f"{tu_path.stem}-{key[:24]}.json"
        if not args.no_cache and stamp.is_file():
            try:
                payload = json.loads(stamp.read_text())
                cached += 1
                for d in payload["findings"]:
                    f = Finding.from_json(d)
                    if f.key() not in seen:
                        seen.add(f.key())
                        findings.append(f)
                refinements.extend(payload["refinements"])
                continue
            except (json.JSONDecodeError, KeyError):
                pass  # corrupt stamp: fall through and re-lint
        checked += 1
        try:
            tu = index.parse(str(tu_path), args=clang_args,
                             options=parse_opts)
        except cindex.TranslationUnitLoadError as err:
            print(f"ast_lint: cannot parse {tu_path}: {err}",
                  file=sys.stderr)
            return 2
        fatal = [d for d in tu.diagnostics if d.severity >= 4]
        if fatal:
            print(f"ast_lint: fatal parse errors in {tu_path}:",
                  file=sys.stderr)
            for d in fatal:
                print(f"  {d}", file=sys.stderr)
            return 2

        linter = TuLinter(cindex, repo, lint_root, files)
        linter.run(tu)

        closure: set[Path] = set()
        project_includes(tu_path, src_root, closure)
        in_scope = {p for p in closure
                    if p.resolve().is_relative_to(lint_root)}
        tu_seen: set = set()
        lexical_pass(in_scope, repo, files, linter.findings, tu_seen)
        if entry:
            flags_pass(tu_path, tu_flags(entry), repo, linter.findings,
                       tu_seen)

        for f in linter.findings:
            if f.key() not in seen:
                seen.add(f.key())
                findings.append(f)
        refinements.extend(linter.refinements)
        if not args.no_cache:
            for old in cache_dir.glob(f"{tu_path.stem}-*.json"):
                old.unlink()
            stamp.write_text(json.dumps({
                "tu": str(tu_path), "key": key,
                "findings": [f.to_json() for f in linter.findings],
                "refinements": linter.refinements}) + "\n")

    findings.sort(key=Finding.key)
    for f in findings:
        print(f)

    status = 0
    if findings:
        print(f"ast_lint: {len(findings)} finding(s) across {len(tus)} "
              f"TU(s) ({checked} parsed, {cached} cached)", file=sys.stderr)
        status = 1
    else:
        print(f"ast_lint: OK ({len(tus)} TUs clean; {checked} parsed, "
              f"{cached} cached)")

    if args.cross_validate:
        problems = cross_validate(findings, refinements, src_root, repo)
        if problems:
            print("ast_lint: cross-validation against lint_determinism.py "
                  "FAILED:", file=sys.stderr)
            for p in problems:
                print(f"  {p}", file=sys.stderr)
            status = 1
        else:
            print("ast_lint: cross-validation OK (every regex finding "
                  "reproduced or refined)")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
