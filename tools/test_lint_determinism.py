#!/usr/bin/env python3
"""Unit tests for lint_determinism.py rule detection and waivers.

Run directly (python3 tools/test_lint_determinism.py) or via ctest (label
`lint`). Uses only the standard library: each test writes a tiny C++ tree
into a temp dir and runs the linter on it as a subprocess, pinning the
exit-code contract the CI job relies on.
"""

from __future__ import annotations

import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

TOOLS = Path(__file__).resolve().parent
LINT = TOOLS / "lint_determinism.py"


def run_lint(root: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINT), str(root)],
        capture_output=True, text=True)


class LintDeterminismTest(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name) / "src"
        self.root.mkdir()
        self.addCleanup(self._tmp.cleanup)

    def write(self, name: str, content: str) -> Path:
        path = self.root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        return path

    def test_clean_file_passes(self) -> None:
        self.write("a.cpp", "#include <map>\nstd::map<int, int> m;\n")
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_unordered_map_flagged(self) -> None:
        self.write("a.cpp", "std::unordered_map<int, int> m;\n")
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no-unordered-iteration", proc.stdout)

    def test_per_line_waiver_suppresses_one_line_only(self) -> None:
        self.write("a.cpp", (
            "std::unordered_map<int, int> ok;  "
            "// lint:allow(no-unordered-iteration)\n"
            "std::unordered_map<int, int> bad;\n"))
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertEqual(proc.stdout.count("[no-unordered-iteration]"), 1)
        self.assertIn("a.cpp:2", proc.stdout)

    def test_file_waiver_suppresses_named_rule_everywhere(self) -> None:
        self.write("a.cpp", (
            "// lint:allow-file(no-unordered-iteration)\n"
            "std::unordered_map<int, int> m1;\n"
            "std::unordered_set<int> m2;\n"))
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_file_waiver_does_not_leak_to_other_rules(self) -> None:
        self.write("a.cpp", (
            "// lint:allow-file(no-unordered-iteration)\n"
            "std::unordered_map<int, int> m;\n"
            "int r = rand();\n"))
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertNotIn("no-unordered-iteration", proc.stdout)
        self.assertIn("no-raw-entropy", proc.stdout)

    def test_file_waiver_does_not_leak_to_other_files(self) -> None:
        self.write("waived.cpp", (
            "// lint:allow-file(no-raw-entropy)\n"
            "int r = rand();\n"))
        self.write("other.cpp", "int r = rand();\n")
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("other.cpp", proc.stdout)
        self.assertNotIn("waived.cpp", proc.stdout)

    def test_file_waiver_with_unknown_rule_is_a_violation(self) -> None:
        self.write("a.cpp", (
            "// lint:allow-file(no-such-rule)\n"
            "std::map<int, int> m;\n"))
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("unknown rule 'no-such-rule'", proc.stdout)

    def test_file_waiver_covers_shared_capture(self) -> None:
        body = (
            "void f() {\n"
            "  double acc = 0.0;\n"
            "  parallel_for(0, n, [&](std::size_t i) {\n"
            "    acc += 1.0;\n"
            "  });\n"
            "}\n")
        self.write("bad.cpp", body)
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("no-shared-capture", proc.stdout)

        self.write("bad.cpp", "// lint:allow-file(no-shared-capture)\n" + body)
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_fp_reduction_flagged_outside_linalg_only(self) -> None:
        code = "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"
        self.write("core/a.cpp", code)
        self.write("linalg/b.cpp", code)
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("core/a.cpp", proc.stdout)
        self.assertNotIn("linalg/b.cpp", proc.stdout)

    def test_fp_reduction_permitted_in_linalg_sellcs(self) -> None:
        # Pins that new linalg storage backends (here the SELL-C-σ kernels)
        # are automatically inside the fixed-order-reduction boundary, while
        # the identical code outside linalg/ still violates.
        code = "double s = std::accumulate(v.begin(), v.end(), 0.0);\n"
        self.write("linalg/sellcs.cpp", code)
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

        self.write("core/sellcs.cpp", code)
        proc = run_lint(self.root)
        self.assertEqual(proc.returncode, 1)
        self.assertIn("core/sellcs.cpp", proc.stdout)
        self.assertNotIn("linalg/sellcs.cpp", proc.stdout)


if __name__ == "__main__":
    unittest.main()
