#!/usr/bin/env python3
"""Compare two BENCH_*.json snapshots and flag wall-clock regressions.

Usage:
    bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Both files are JSON arrays of BenchRecord objects as written by
bench_common's JsonWriter (``--json`` / ``--json-append`` on the bench
harnesses). Records are matched by the identity tuple
(bench, kernel, simd, storage, states, threads, moments, clients) — never
by array position, so reordered or partially re-run snapshots compare
correctly, and
two variants of one bench that differ only in the sweep kernel (panel vs
fused_vectors), the SIMD dispatch level (scalar vs avx2/avx512 rows of
one BENCH_PR6.json), or the sparse storage (csr vs sellcs rows of one
BENCH_PR7.json) are matched separately instead of colliding last-wins.
Thread counts are part of the key, so a 1→16 scaling curve gates per
thread count; client counts likewise (a traffic_replay run at 8 clients
and one at 32 are different experiments, and snapshots that predate the
field carry clients = 0 so they keep matching themselves). For each pair
the relative wall-clock change is
printed, and the exit code is non-zero when any matched record regressed by
more than the threshold (default 10%).

Records present in only one file are reported but do not affect the exit
code — adding a benchmark must not fail the diff that introduces it.

``--latency-tol R`` additionally gates the per-query p99 latency
(``latency_p99_ms``, written by batched_queries from the SessionReport's
exact order statistics). The gate is OPT-IN — without the flag latency
fields are ignored entirely — and tolerant of history: a matched pair
where either side is missing the field (pre-PR8 snapshot) or has it at
zero (no latency measured, e.g. a single-solve bench) is skipped, never
failed, so old baselines keep diffing cleanly.

``--qps-tol R`` gates serving throughput (``qps``, written by
traffic_replay / batched_queries) the same opt-in, history-tolerant way —
but inverted, because qps is higher-is-better: the pair fails when the
candidate's qps DROPPED by more than R relative to the baseline.

Exit codes: 0 no regression, 1 regression beyond a threshold (wall-clock
or, when --latency-tol / --qps-tol are given, p99 latency / qps), 2 input
error (missing/malformed snapshot, or no records matched).
"""

from __future__ import annotations

import argparse
import json
import sys


class SnapshotError(Exception):
    """A snapshot file is missing, unreadable, or not a bench-record array."""


def format_key(key: tuple) -> str:
    bench, kernel, simd, storage, states, threads, moments, clients = key
    kernel_part = f"{kernel}," if kernel else ""
    simd_part = f"{simd}," if simd else ""
    storage_part = f"{storage}," if storage else ""
    clients_part = f",C={clients}" if clients else ""
    return (f"{bench}[{kernel_part}{simd_part}{storage_part}"
            f"N={states},T={threads},n={moments}{clients_part}]")


def load_records(path: str) -> dict[tuple, dict]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            data = json.load(f)
    except OSError as err:
        raise SnapshotError(f"{path}: cannot read snapshot: {err}") from err
    except json.JSONDecodeError as err:
        raise SnapshotError(
            f"{path}: not valid JSON (line {err.lineno}, column {err.colno}: "
            f"{err.msg}); expected an array written by --json/--json-append"
        ) from err
    if not isinstance(data, list):
        raise SnapshotError(
            f"{path}: expected a JSON array of bench records, got "
            f"{type(data).__name__}")
    records = {}
    for i, rec in enumerate(data):
        if not isinstance(rec, dict):
            raise SnapshotError(
                f"{path}: record {i} is {type(rec).__name__}, expected an "
                "object with bench/states/threads/moments keys")
        key = (
            rec.get("bench", ""),
            rec.get("kernel", ""),
            # Older snapshots predate the simd and storage fields; ""
            # matches "" so pre-PR6/PR7 baselines still diff against
            # themselves cleanly.
            rec.get("simd", ""),
            rec.get("storage", ""),
            rec.get("states", 0),
            rec.get("threads", 0),
            rec.get("moments", 0),
            # Pre-PR10 snapshots predate the client-thread field; 0
            # matches 0, and benches without a client side always write 0.
            rec.get("clients", 0),
        )
        # Duplicate identity (e.g. appended re-runs): keep the last record,
        # which is the most recent measurement.
        records[key] = rec
    return records


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Diff two bench JSON snapshots; non-zero exit on "
        "wall-clock regression beyond the threshold."
    )
    parser.add_argument("baseline", help="baseline BENCH_*.json")
    parser.add_argument("candidate", help="candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative wall_s regression that fails the diff "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--latency-tol",
        type=float,
        default=None,
        metavar="R",
        help="opt-in relative latency_p99_ms regression gate (e.g. 0.25 = "
        "25%%); pairs missing the field or with it at zero are skipped",
    )
    parser.add_argument(
        "--qps-tol",
        type=float,
        default=None,
        metavar="R",
        help="opt-in relative qps DROP gate (e.g. 0.25 fails a >25%% "
        "throughput loss); qps is higher-is-better, and pairs missing the "
        "field or with it at zero are skipped",
    )
    args = parser.parse_args()

    try:
        base = load_records(args.baseline)
        cand = load_records(args.candidate)
    except SnapshotError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    matched = sorted(base.keys() & cand.keys())
    only_base = sorted(base.keys() - cand.keys())
    only_cand = sorted(cand.keys() - base.keys())

    regressions = []
    print(f"{'bench':50s} {'base_s':>12s} {'cand_s':>12s} {'delta':>8s}")
    for key in matched:
        b = float(base[key].get("wall_s", 0.0))
        c = float(cand[key].get("wall_s", 0.0))
        name = format_key(key)
        if b <= 0.0:
            print(f"{name:50s} {b:12.6g} {c:12.6g}    (no baseline time)")
            continue
        delta = (c - b) / b
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:50s} {b:12.6g} {c:12.6g} {delta:+8.1%}{marker}")

    if args.latency_tol is not None:
        print(f"\n{'bench (p99 latency)':50s} {'base_ms':>12s} "
              f"{'cand_ms':>12s} {'delta':>8s}")
        for key in matched:
            # Tolerate history: snapshots written before the latency fields
            # existed (or benches that never measure latency) either lack
            # the key or carry 0.0 — both mean "nothing to gate here".
            lb = float(base[key].get("latency_p99_ms", 0.0) or 0.0)
            lc = float(cand[key].get("latency_p99_ms", 0.0) or 0.0)
            name = format_key(key)
            if lb <= 0.0 or lc <= 0.0:
                print(f"{name:50s} {lb:12.6g} {lc:12.6g}    (skipped: "
                      "latency missing or zero)")
                continue
            ldelta = (lc - lb) / lb
            marker = ""
            if ldelta > args.latency_tol:
                marker = "  << LATENCY REGRESSION"
                regressions.append((f"{name} [p99 latency]", ldelta))
            print(f"{name:50s} {lb:12.6g} {lc:12.6g} {ldelta:+8.1%}{marker}")

    if args.qps_tol is not None:
        print(f"\n{'bench (qps)':50s} {'base_qps':>12s} "
              f"{'cand_qps':>12s} {'delta':>8s}")
        for key in matched:
            qb = float(base[key].get("qps", 0.0) or 0.0)
            qc = float(cand[key].get("qps", 0.0) or 0.0)
            name = format_key(key)
            if qb <= 0.0 or qc <= 0.0:
                print(f"{name:50s} {qb:12.6g} {qc:12.6g}    (skipped: "
                      "qps missing or zero)")
                continue
            # Higher is better: the regression is a DROP relative to base.
            qdelta = (qc - qb) / qb
            marker = ""
            if -qdelta > args.qps_tol:
                marker = "  << QPS REGRESSION"
                regressions.append((f"{name} [qps]", qdelta))
            print(f"{name:50s} {qb:12.6g} {qc:12.6g} {qdelta:+8.1%}{marker}")

    for key in only_base:
        print(f"only in baseline:  {format_key(key)}")
    for key in only_cand:
        print(f"only in candidate: {format_key(key)}")

    if not matched:
        print("error: no records matched between the two snapshots",
              file=sys.stderr)
        return 2

    if regressions:
        print(
            f"\n{len(regressions)} regression(s) beyond "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1

    print(f"\nOK: {len(matched)} matched record(s), none regressed beyond "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
