#!/usr/bin/env python3
"""clang-tidy driver with a content-hash cache.

Runs clang-tidy (using the project .clang-tidy and a compile_commands.json)
over every .cpp under src/, but skips files whose *inputs* are unchanged
since the last clean run. The cache key for a TU is the SHA-256 of:

  * the TU's own bytes,
  * the bytes of every project header it includes (transitively, resolved
    against src/),
  * the .clang-tidy config,
  * the clang-tidy version string.

so editing a header re-lints every TU that includes it, and bumping the
config or the tool re-lints everything. Files that produce diagnostics are
never cached, so re-runs keep reporting them until they are fixed.

Usage:
  tools/run_clang_tidy_cached.py --build-dir build [--cache-dir .tidy-cache]
                                 [--clang-tidy clang-tidy-18] [files...]

Exit codes: 0 clean, 1 diagnostics reported, 2 environment error
(clang-tidy or compile_commands.json missing).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import re
import shutil
import subprocess
import sys
from pathlib import Path

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.M)


def repo_root() -> Path:
    return Path(__file__).resolve().parent.parent


def project_includes(path: Path, src_root: Path, seen: set[Path]) -> None:
    """Collect the transitive project-header closure of @p path into seen."""
    if path in seen or not path.is_file():
        return
    seen.add(path)
    try:
        text = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        return
    for inc in INCLUDE_RE.findall(text):
        for base in (src_root, path.parent):
            cand = (base / inc).resolve()
            if cand.is_file():
                project_includes(cand, src_root, seen)
                break


def cache_key(tu: Path, src_root: Path, config_bytes: bytes,
              tool_version: bytes) -> str:
    h = hashlib.sha256()
    h.update(tool_version)
    h.update(config_bytes)
    closure: set[Path] = set()
    project_includes(tu, src_root, closure)
    for dep in sorted(closure):
        h.update(str(dep).encode())
        h.update(dep.read_bytes())
    return h.hexdigest()


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", default="build",
                        help="build dir containing compile_commands.json")
    parser.add_argument("--cache-dir", default=".tidy-cache",
                        help="directory for per-file result stamps")
    parser.add_argument("--clang-tidy", default="clang-tidy",
                        help="clang-tidy executable to use")
    parser.add_argument("files", nargs="*",
                        help="explicit TUs to check (default: src/**/*.cpp)")
    args = parser.parse_args(argv)

    root = repo_root()
    src_root = root / "src"
    tidy = shutil.which(args.clang_tidy)
    if tidy is None:
        print(f"run_clang_tidy_cached: {args.clang_tidy} not found on PATH",
              file=sys.stderr)
        return 2
    build_dir = Path(args.build_dir)
    if not (build_dir / "compile_commands.json").is_file():
        print(f"run_clang_tidy_cached: {build_dir}/compile_commands.json "
              "missing (configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)",
              file=sys.stderr)
        return 2

    config_bytes = (root / ".clang-tidy").read_bytes()
    tool_version = subprocess.run(
        [tidy, "--version"], capture_output=True, text=True,
        check=True).stdout.encode()

    if args.files:
        tus = [Path(f).resolve() for f in args.files]
    else:
        tus = sorted(src_root.rglob("*.cpp"))

    cache_dir = Path(args.cache_dir)
    cache_dir.mkdir(parents=True, exist_ok=True)

    failed = 0
    skipped = 0
    for tu in tus:
        key = cache_key(tu, src_root, config_bytes, tool_version)
        stamp = cache_dir / f"{tu.stem}-{key[:24]}.ok"
        if stamp.is_file():
            skipped += 1
            continue
        print(f"clang-tidy {tu.relative_to(root)}", flush=True)
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", str(tu)],
            capture_output=True, text=True)
        output = (proc.stdout + proc.stderr).strip()
        has_diag = proc.returncode != 0 or re.search(
            r"(warning|error):", proc.stdout)
        if has_diag:
            print(output)
            failed += 1
        else:
            # Drop stale stamps for this TU, then record the clean run.
            for old in cache_dir.glob(f"{tu.stem}-*.ok"):
                old.unlink()
            stamp.write_text(json.dumps({"tu": str(tu), "key": key}) + "\n")

    total = len(tus)
    print(f"run_clang_tidy_cached: {total - failed - skipped} checked, "
          f"{skipped} cached, {failed} with diagnostics")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
