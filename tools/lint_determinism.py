#!/usr/bin/env python3
"""Determinism lint for the somrm sources.

The moment solver is specified to be bit-reproducible for a fixed thread
count (DESIGN.md section 8). That property is easy to lose through a
handful of innocuous-looking C++ idioms, so this lint rejects them at CI
time instead of waiting for a flaky numerical diff:

  no-unordered-iteration   std::unordered_{map,set} in src/ — hash-table
                           iteration order is unspecified and varies
                           across libstdc++ versions, so any numeric
                           output derived from it is nondeterministic.
  no-raw-entropy           rand(), srand(), std::rand(), or time(...) in
                           src/ — hidden global entropy / wall-clock
                           inputs. Seeded std::mt19937* engines are fine.
  no-adhoc-fp-reduction    std::accumulate / std::reduce over floats
                           outside src/linalg/ — floating-point
                           reductions must go through the fixed-order
                           helpers in linalg (sum/dot/parallel_reduce) so
                           the association order is pinned. Every file
                           under a linalg/ path component is exempt: that
                           is where the fixed-order kernels themselves
                           live (csr.cpp, sellcs.cpp, vec.cpp, ...), and
                           new linalg storage backends qualify
                           automatically.
  no-shared-capture        `x += ...` inside a parallel_for body where x
                           is not declared in the body — a by-reference
                           captured accumulator is both a data race and
                           an order-dependent FP sum.

Relationship to tools/ast_lint.py: all four rules are re-grounded on the
clang AST there (canonical types see through aliases, diagnostics follow
macro expansions, capture analysis resolves the declaration a `+=` LHS
references), plus bit-identity rules regex cannot express (no-std-fma,
no-fp-contract, no-fast-math). This regex version is deliberately kept as
the zero-dependency fallback that runs in environments without libclang;
`ast_lint.py --cross-validate` asserts the two agree — every finding here
must be reproduced by an AST finding at the same site or covered by one
of its refinement records (see DESIGN.md section 8.4).

False positives can be waived per line with a trailing
`// lint:allow(<rule-name>)` comment, or for a whole file with a
`// lint:allow-file(<rule-name>)` comment on its own line (conventionally
next to the file header explaining why); both waiver forms must name the
rule they suppress. File-scoped waivers exist for files whose every use of
a pattern is deliberate — e.g. a deterministic hash-free cache keyed by
sorted vectors that still mentions unordered containers in comments-of-code
idioms — where per-line waivers would outnumber the code.

Exit codes: 0 clean, 1 violations found, 2 usage / IO error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

RULES = (
    "no-unordered-iteration",
    "no-raw-entropy",
    "no-adhoc-fp-reduction",
    "no-shared-capture",
)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"//\s*lint:allow-file\(([a-z-]+)\)")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
RAW_ENTROPY_RE = re.compile(r"(?<![\w:])(?:std::)?(?:rand|srand|time)\s*\(")
FP_REDUCTION_RE = re.compile(r"\bstd::(?:accumulate|reduce)\s*[<(]")
PARALLEL_FOR_RE = re.compile(r"\bparallel_for(?:_reduce)?\s*\(")
COMPOUND_ADD_RE = re.compile(r"(?<![-+<>=!*/&|^%])\b([A-Za-z_]\w*)\s*\+=")
LOCAL_DECL_RE = re.compile(
    r"\b(?:double|float|int|long|std::size_t|size_t|auto)\s+([A-Za-z_]\w*)\s*[={(]"
)


def strip_noise(line: str) -> str:
    """Drop string literals and the trailing // comment so pattern matches
    only fire on code. (Block comments are handled by the caller.)"""
    line = STRING_RE.sub('""', line)
    return LINE_COMMENT_RE.sub("", line)


class Violation:
    def __init__(self, path: Path, lineno: int, rule: str, message: str):
        self.path = path
        self.lineno = lineno
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.lineno}: [{self.rule}] {self.message}"


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return bool(m) and m.group(1) == rule


def find_parallel_bodies(lines: list[str]) -> list[tuple[int, int]]:
    """Return (start, end) 0-based line ranges of parallel_for(...) call
    bodies, matched by brace balance from the call site."""
    bodies = []
    i = 0
    while i < len(lines):
        code = strip_noise(lines[i])
        if PARALLEL_FOR_RE.search(code):
            depth = 0
            seen_brace = False
            j = i
            while j < len(lines):
                for ch in strip_noise(lines[j]):
                    if ch == "{":
                        depth += 1
                        seen_brace = True
                    elif ch == "}":
                        depth -= 1
                if seen_brace and depth <= 0:
                    break
                j += 1
            bodies.append((i, min(j, len(lines) - 1)))
            i = j + 1
        else:
            i += 1
    return bodies


def lint_file(path: Path, src_root: Path) -> list[Violation]:
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as err:
        print(f"lint_determinism: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)

    # Blank out /* ... */ block comments, preserving line structure.
    text = re.sub(
        r"/\*.*?\*/", lambda m: re.sub(r"[^\n]", " ", m.group(0)), text,
        flags=re.S)
    lines = text.splitlines()
    rel = path.relative_to(src_root.parent)
    in_linalg = "linalg" in path.parts

    # File-scoped waivers: every rule named by a lint:allow-file(...) line
    # anywhere in the file is suppressed for the whole file. Unknown rule
    # names are themselves violations — a typo must not silently waive
    # nothing (or everything).
    file_waived: set[str] = set()
    out: list[Violation] = []
    for idx, raw in enumerate(lines, start=1):
        for m in ALLOW_FILE_RE.finditer(raw):
            rule = m.group(1)
            if rule in RULES:
                file_waived.add(rule)
            else:
                out.append(Violation(
                    rel, idx, "unknown-rule",
                    f"lint:allow-file names unknown rule '{rule}'; known "
                    f"rules: {', '.join(RULES)}"))

    for idx, raw in enumerate(lines, start=1):
        code = strip_noise(raw)
        if "no-unordered-iteration" in file_waived:
            pass
        elif UNORDERED_RE.search(code) and not allowed(raw, "no-unordered-iteration"):
            out.append(Violation(
                rel, idx, "no-unordered-iteration",
                "std::unordered_* iteration order is unspecified; use "
                "std::map/std::vector or add // lint:allow(no-unordered-iteration)"))
        if "no-raw-entropy" in file_waived:
            pass
        elif RAW_ENTROPY_RE.search(code) and not allowed(raw, "no-raw-entropy"):
            out.append(Violation(
                rel, idx, "no-raw-entropy",
                "rand()/srand()/time() inject hidden global state; use a "
                "seeded <random> engine"))
        if (not in_linalg and "no-adhoc-fp-reduction" not in file_waived
                and FP_REDUCTION_RE.search(code)
                and not allowed(raw, "no-adhoc-fp-reduction")):
            out.append(Violation(
                rel, idx, "no-adhoc-fp-reduction",
                "floating-point reductions must use the fixed-order helpers "
                "in linalg (sum/dot/parallel_reduce), not std::accumulate/"
                "std::reduce"))

    for start, end in find_parallel_bodies(lines):
        if "no-shared-capture" in file_waived:
            break
        declared: set[str] = set()
        for idx in range(start, end + 1):
            code = strip_noise(lines[idx])
            declared.update(LOCAL_DECL_RE.findall(code))
            for m in COMPOUND_ADD_RE.finditer(code):
                name = m.group(1)
                if name in declared:
                    continue
                if allowed(lines[idx], "no-shared-capture"):
                    continue
                out.append(Violation(
                    rel, idx + 1, "no-shared-capture",
                    f"'{name} +=' inside a parallel_for body but '{name}' is "
                    "not declared in the body: a captured accumulator is a "
                    "data race and an order-dependent FP sum; use "
                    "parallel_reduce or a per-chunk local"))
    return out


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "root", nargs="?", default=None,
        help="source tree to lint (default: <repo>/src next to this script)")
    args = parser.parse_args(argv)

    src_root = Path(args.root) if args.root else (
        Path(__file__).resolve().parent.parent / "src")
    if not src_root.is_dir():
        print(f"lint_determinism: source root {src_root} is not a directory",
              file=sys.stderr)
        return 2

    files = sorted(
        p for p in src_root.rglob("*")
        if p.suffix in {".hpp", ".cpp", ".h", ".cc"} and p.is_file())
    if not files:
        print(f"lint_determinism: no C++ sources under {src_root}",
              file=sys.stderr)
        return 2

    violations: list[Violation] = []
    for path in files:
        violations.extend(lint_file(path, src_root))

    for v in violations:
        print(v)
    if violations:
        print(f"lint_determinism: {len(violations)} violation(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    print(f"lint_determinism: OK ({len(files)} files clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
