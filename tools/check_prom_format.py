#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file written by obs::write_metrics.

Usage:
    check_prom_format.py METRICS.prom [--require-metric NAME]...

Checks the subset of the exposition format the somrm exporter emits:

* every non-comment line is ``name value`` or ``name{le="..."} value`` with
  a metric name matching ``[a-zA-Z_:][a-zA-Z0-9_:]*`` and a value that
  parses as a float;
* every sample is preceded by ``# HELP`` and ``# TYPE`` lines for its
  metric family, and the TYPE is one of counter / gauge / histogram;
* counter sample names end in ``_total``;
* every histogram family has a ``_bucket`` series with strictly increasing
  ``le`` bounds ending in ``le="+Inf"``, non-decreasing cumulative counts,
  a ``_sum`` and a ``_count`` sample, and the +Inf bucket equals _count.

``--require-metric NAME`` (repeatable) additionally fails unless a sample
of that exact family name is present — CI uses it to pin the session
histograms and memory gauges into the batched_queries export.

Exit codes: 0 valid, 1 format violation, 2 usage / unreadable file.
"""

from __future__ import annotations

import argparse
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{le=\"(?P<le>[^\"]+)\"\})?"
    r" (?P<value>\S+)$")
HELP_RE = re.compile(r"^# HELP (?P<name>\S+) (?P<text>.*)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>\S+) (?P<kind>counter|gauge|histogram)$")


def family_of(sample_name: str, kind: str) -> str:
    """Maps a sample name back to its TYPE-declared family name."""
    if kind == "histogram":
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                return sample_name[: -len(suffix)]
    return sample_name


def check(path: str, required: list[str]) -> list[str]:
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as err:
        print(f"error: cannot read {path}: {err}", file=sys.stderr)
        raise SystemExit(2) from err

    errors: list[str] = []
    helped: set[str] = set()
    types: dict[str, str] = {}
    seen_families: set[str] = set()
    # family -> list of (le, cumulative_count) in file order
    buckets: dict[str, list[tuple[float, float]]] = {}
    sums: set[str] = set()
    counts: dict[str, float] = {}

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = HELP_RE.match(line)
            if m:
                helped.add(m.group("name"))
                continue
            m = TYPE_RE.match(line)
            if m:
                types[m.group("name")] = m.group("kind")
                continue
            errors.append(f"line {lineno}: malformed comment line: {line!r}")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: malformed sample line: {line!r}")
            continue
        name, le, value = m.group("name"), m.group("le"), m.group("value")
        if not NAME_RE.match(name):
            errors.append(f"line {lineno}: bad metric name {name!r}")
            continue
        try:
            fvalue = float(value)
        except ValueError:
            errors.append(f"line {lineno}: bad sample value {value!r}")
            continue
        kind = None
        family = None
        for k in ("histogram", "counter", "gauge"):
            cand = family_of(name, k)
            if types.get(cand) == k:
                kind, family = k, cand
                break
        if kind is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE")
            continue
        if family not in helped:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # HELP")
        seen_families.add(family)
        if kind == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter sample {name!r} must end in "
                    "'_total'")
            if fvalue < 0:
                errors.append(f"line {lineno}: counter {name!r} is negative")
        elif kind == "histogram":
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket {name!r} lacks an "
                        "le label")
                else:
                    bound = float("inf") if le == "+Inf" else float(le)
                    buckets.setdefault(family, []).append((bound, fvalue))
            elif name.endswith("_sum"):
                sums.add(family)
            elif name.endswith("_count"):
                counts[family] = fvalue
        # gauges: any float value is fine

    for family, kind in types.items():
        if kind != "histogram" or family not in seen_families:
            continue
        series = buckets.get(family, [])
        if not series:
            errors.append(f"histogram {family}: no _bucket series")
            continue
        bounds = [b for b, _ in series]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            errors.append(
                f"histogram {family}: le bounds not strictly increasing")
        if bounds[-1] != float("inf"):
            errors.append(f"histogram {family}: missing le=\"+Inf\" bucket")
        values = [v for _, v in series]
        if any(b > a for a, b in zip(values[1:], values)):
            errors.append(
                f"histogram {family}: cumulative bucket counts decrease")
        if family not in sums:
            errors.append(f"histogram {family}: missing _sum sample")
        if family not in counts:
            errors.append(f"histogram {family}: missing _count sample")
        elif bounds[-1] == float("inf") and values[-1] != counts[family]:
            errors.append(
                f"histogram {family}: +Inf bucket ({values[-1]:g}) != _count "
                f"({counts[family]:g})")

    for name in required:
        if name not in seen_families:
            errors.append(f"required metric {name!r} not found")

    return errors


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Validate a Prometheus text-exposition metrics file.")
    parser.add_argument("path", help="metrics file to validate")
    parser.add_argument(
        "--require-metric", action="append", default=[], metavar="NAME",
        help="fail unless a sample family with this exact name is present "
        "(repeatable)")
    args = parser.parse_args()

    errors = check(args.path, args.require_metric)
    if errors:
        for e in errors:
            print(f"error: {e}", file=sys.stderr)
        return 1
    print(f"OK: {args.path} is valid Prometheus text exposition")
    return 0


if __name__ == "__main__":
    sys.exit(main())
