#!/usr/bin/env python3
"""Fixture tests for tools/ast_lint.py.

Each rule gets a pass/fail pair of synthetic translation units, built in a
temp tree with its own compile_commands.json, so the tests prove three
things per rule: it FIRES on the violating idiom, it stays QUIET on the
compliant one, and it honours the lint:allow / lint:allow-file waiver
syntax. Macro-expansion and lambda-capture cases are covered explicitly —
they are exactly what the regex lint cannot see and the reason ast_lint
exists. The fixtures declare their own minimal "std" shims so parsing
needs no system headers (fast, and independent of the libstdc++ install).

Skips with exit 77 when libclang is unavailable (the GCC-only container);
CI installs clang + python3-clang and runs the suite for real.
"""

from __future__ import annotations

import contextlib
import io
import json
import re
import sys
import tempfile
import unittest
from pathlib import Path

TOOL_DIR = Path(__file__).resolve().parent
sys.path.insert(0, str(TOOL_DIR))

import ast_lint  # noqa: E402

FINDING_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+):(?P<col>\d+): \[(?P<rule>[a-z-]+)\]")

# Minimal self-contained declarations standing in for the std entities the
# rules name, so fixture TUs parse with no system include path. The
# file-scoped waiver silences the regex lint's no-raw-entropy hits on the
# rand/srand/time DECLARATIONS below (the AST lint only flags calls), which
# keeps --cross-validate fixtures sound.
FAKE_STD = """\
#pragma once
// lint:allow-file(no-raw-entropy)
namespace std {
typedef unsigned long size_t;
template <class K, class V> struct unordered_map { unsigned long n; };
template <class T> struct unordered_set { unsigned long n; };
template <class K, class V> struct map { unsigned long n; };
template <class It, class T> T accumulate(It first, It last, T init);
template <class It, class T> T reduce(It first, It last, T init);
struct random_device { unsigned operator()(); };
template <class T> struct atomic {
  T v;
  atomic& operator+=(T);
  T fetch_add(T);
};
double fma(double, double, double);
namespace chrono {
struct system_clock { static long now(); };
struct steady_clock { static long now(); };
}  // namespace chrono
}  // namespace std
extern "C" {
int rand();
void srand(unsigned);
long time(long*);
}
template <class F>
void parallel_for(unsigned long total, F f, unsigned long grain) {
  f(0ul, total);
}
"""


class FixtureTree:
    """A temp src/ tree plus a synthetic compile_commands.json."""

    def __init__(self):
        self._tmp = tempfile.TemporaryDirectory(prefix="astlint_fixture_")
        root = Path(self._tmp.name)
        self.src = root / "src"
        self.src.mkdir()
        self.build = root / "build"
        self.build.mkdir()
        self.cache = root / "cache"
        self._entries: list[dict] = []
        self.add("fake_std.hpp", FAKE_STD)

    def cleanup(self):
        self._tmp.cleanup()

    def add(self, rel: str, text: str, extra_flags: tuple = ()) -> Path:
        path = self.src / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text)
        if path.suffix == ".cpp":
            self._entries.append({
                "directory": str(self.src),
                "command": " ".join(
                    ["clang++", "-std=c++17", f"-I{self.src}",
                     *extra_flags, "-c", str(path)]),
                "file": str(path),
            })
        return path

    def run(self, *extra: str, cache: bool = False):
        (self.build / "compile_commands.json").write_text(
            json.dumps(self._entries))
        argv = ["--build-dir", str(self.build), "--root", str(self.src),
                "--src-root", str(self.src)]
        argv += ["--cache-dir", str(self.cache)] if cache else ["--no-cache"]
        argv += list(extra)
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), contextlib.redirect_stderr(err):
            status = ast_lint.main(argv)
        findings = []
        for line in out.getvalue().splitlines():
            m = FINDING_RE.match(line)
            if m:
                findings.append((m.group("path"), int(m.group("line")),
                                 m.group("rule")))
        return status, findings, out.getvalue() + err.getvalue()


class AstLintFixtureTest(unittest.TestCase):
    def setUp(self):
        self.tree = FixtureTree()
        self.addCleanup(self.tree.cleanup)

    def assert_fires(self, findings, rel, line, rule):
        self.assertIn((f"src/{rel}", line, rule), findings)

    def assert_rule_quiet(self, findings, rule):
        self.assertEqual([f for f in findings if f[2] == rule], [])

    # -- no-unordered-iteration -------------------------------------------

    def test_unordered_fires_and_sees_through_aliases(self):
        self.tree.add("unordered_fail.cpp", """\
#include "fake_std.hpp"
std::unordered_map<int, int> direct;
using Hidden = std::unordered_map<int, int>;
Hidden aliased;
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "unordered_fail.cpp", 2,
                          "no-unordered-iteration")
        # The alias use has no "std::unordered_" text on its line — the
        # regex lint is blind to it; the canonical type is not.
        self.assert_fires(findings, "unordered_fail.cpp", 4,
                          "no-unordered-iteration")

    def test_unordered_pass_and_waivers(self):
        self.tree.add("unordered_pass.cpp", """\
#include "fake_std.hpp"
std::map<int, int> ordered;
std::unordered_map<int, int> waived;  // lint:allow(no-unordered-iteration)
""")
        self.tree.add("unordered_filewaived.cpp", """\
#include "fake_std.hpp"
// lint:allow-file(no-unordered-iteration)
std::unordered_map<int, int> a;
std::unordered_map<int, int> b;
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0)
        self.assert_rule_quiet(findings, "no-unordered-iteration")

    # -- no-raw-entropy ----------------------------------------------------

    def test_entropy_fires_on_calls_not_decls(self):
        self.tree.add("entropy_fail.cpp", """\
#include "fake_std.hpp"
int draw() { return rand(); }
long stamp() { return time(nullptr); }
long wall() { return std::chrono::system_clock::now(); }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "entropy_fail.cpp", 2, "no-raw-entropy")
        self.assert_fires(findings, "entropy_fail.cpp", 3, "no-raw-entropy")
        self.assert_fires(findings, "entropy_fail.cpp", 4, "no-raw-entropy")

    def test_entropy_pass_steady_clock_and_waiver(self):
        self.tree.add("entropy_pass.cpp", """\
#include "fake_std.hpp"
long tick() { return std::chrono::steady_clock::now(); }
int seeded() { return rand(); }  // lint:allow(no-raw-entropy)
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0)
        self.assert_rule_quiet(findings, "no-raw-entropy")

    def test_entropy_fires_through_macro_expansion(self):
        # The call is hidden behind a macro defined in a header: the regex
        # lint sees only the innocuous use line; the AST reports the
        # expansion site, where a waiver comment would also be honoured.
        self.tree.add("hidden.hpp", """\
#pragma once
#include "fake_std.hpp"
#define FRESH_VALUE() (rand() + 1)
""")
        self.tree.add("macro_fail.cpp", """\
#include "hidden.hpp"
int value() { return FRESH_VALUE(); }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "macro_fail.cpp", 2, "no-raw-entropy")

    # -- no-adhoc-fp-reduction --------------------------------------------

    def test_fp_reduction_fires_outside_linalg(self):
        self.tree.add("reduce_fail.cpp", """\
#include "fake_std.hpp"
double total(const double* p) { return std::accumulate(p, p + 3, 0.0); }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "reduce_fail.cpp", 2,
                          "no-adhoc-fp-reduction")

    def test_fp_reduction_allows_integers_and_linalg(self):
        self.tree.add("reduce_int.cpp", """\
#include "fake_std.hpp"
int count(const int* p) { return std::accumulate(p, p + 3, 0); }
""")
        self.tree.add("linalg/reduce_kernel.cpp", """\
#include "fake_std.hpp"
double sum(const double* p) { return std::accumulate(p, p + 3, 0.0); }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0)
        self.assert_rule_quiet(findings, "no-adhoc-fp-reduction")

    # -- no-shared-capture -------------------------------------------------

    def test_shared_capture_fires_on_captured_accumulator(self):
        self.tree.add("capture_fail.cpp", """\
#include "fake_std.hpp"
double run() {
  double acc = 0.0;
  parallel_for(8ul, [&](unsigned long b, unsigned long e) {
    acc += static_cast<double>(e - b);
  }, 1ul);
  return acc;
}
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "capture_fail.cpp", 5,
                          "no-shared-capture")

    def test_shared_capture_allows_locals_subscripts_atomics(self):
        self.tree.add("capture_pass.cpp", """\
#include "fake_std.hpp"
void run(double* out) {
  std::atomic<double> safe{};
  parallel_for(8ul, [&](unsigned long b, unsigned long e) {
    double local = 0.0;
    local += 1.0;
    for (unsigned long i = b; i < e; ++i) out[i] += local;
    safe += local;
  }, 1ul);
}
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0, findings)
        self.assert_rule_quiet(findings, "no-shared-capture")

    def test_shared_capture_waiver(self):
        self.tree.add("capture_waived.cpp", """\
#include "fake_std.hpp"
double run() {
  double acc = 0.0;
  parallel_for(1ul, [&](unsigned long b, unsigned long e) {
    acc += static_cast<double>(e - b);  // lint:allow(no-shared-capture)
  }, 1ul);
  return acc;
}
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0, findings)

    # -- no-std-fma --------------------------------------------------------

    def test_fma_fires_on_std_and_builtin(self):
        self.tree.add("fma_fail.cpp", """\
#include "fake_std.hpp"
double f(double a, double b, double c) { return std::fma(a, b, c); }
double g(double a, double b, double c) { return __builtin_fma(a, b, c); }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "fma_fail.cpp", 2, "no-std-fma")
        self.assert_fires(findings, "fma_fail.cpp", 3, "no-std-fma")

    def test_fma_waiver(self):
        self.tree.add("fma_waived.cpp", """\
#include "fake_std.hpp"
double f(double a, double b, double c) {
  return std::fma(a, b, c);  // lint:allow(no-std-fma)
}
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 0, findings)

    # -- no-fp-contract ----------------------------------------------------

    def test_fp_contract_pragma(self):
        self.tree.add("contract_fail.cpp", """\
#include "fake_std.hpp"
#pragma STDC FP_CONTRACT ON
double f(double a, double b, double c) { return a * b + c; }
""")
        self.tree.add("contract_pass.cpp", """\
#include "fake_std.hpp"
#pragma STDC FP_CONTRACT OFF
double g(double a, double b, double c) { return a * b + c; }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "contract_fail.cpp", 2, "no-fp-contract")
        self.assertNotIn(("src/contract_pass.cpp", 2, "no-fp-contract"),
                         findings)

    # -- no-fast-math ------------------------------------------------------

    def test_fast_math_flag_and_pragma(self):
        self.tree.add("fastmath_flag.cpp", """\
#include "fake_std.hpp"
double f(double a, double b) { return a + b; }
""", extra_flags=("-ffast-math",))
        self.tree.add("fastmath_pragma.cpp", """\
#include "fake_std.hpp"
#pragma GCC optimize("fast-math")
double g(double a, double b) { return a + b; }
""")
        status, findings, _ = self.tree.run()
        self.assertEqual(status, 1)
        self.assert_fires(findings, "fastmath_flag.cpp", 1, "no-fast-math")
        self.assert_fires(findings, "fastmath_pragma.cpp", 2, "no-fast-math")

    # -- cache -------------------------------------------------------------

    def test_cache_replays_findings(self):
        self.tree.add("cached_fail.cpp", """\
#include "fake_std.hpp"
std::unordered_map<int, int> m;
""")
        status1, findings1, _ = self.tree.run(cache=True)
        status2, findings2, out2 = self.tree.run(cache=True)
        self.assertEqual(status1, 1)
        self.assertEqual(status2, 1)
        self.assertEqual(findings1, findings2)
        self.assertIn("1 cached", out2)

    # -- cross-validation --------------------------------------------------

    def test_cross_validation_matches_regex_findings(self):
        # Every regex-visible violation must be reproduced at the same
        # site, and the integer-accumulate the regex flags (but the AST
        # examines and allows) must be covered by a refinement record.
        self.tree.add("xval.cpp", """\
#include "fake_std.hpp"
std::unordered_map<int, int> m;
int draw() { return rand(); }
int count(const int* p) { return std::accumulate(p, p + 3, 0); }
""")
        status, findings, out = self.tree.run("--cross-validate")
        self.assertEqual(status, 1)  # real findings exist...
        self.assertIn("cross-validation OK", out)  # ...but none unmatched

    def test_cross_validation_clean_tree(self):
        self.tree.add("clean.cpp", """\
#include "fake_std.hpp"
double f(double a, double b) { return a + b; }
""")
        status, findings, out = self.tree.run("--cross-validate")
        self.assertEqual(status, 0, out)
        self.assertIn("cross-validation OK", out)


def main() -> int:
    if ast_lint.load_cindex() is None:
        print("test_ast_lint: libclang (python3-clang + libclang.so) not "
              "available; skipping (exit 77)")
        return ast_lint.SKIP_EXIT
    suite = unittest.defaultTestLoader.loadTestsFromTestCase(
        AstLintFixtureTest)
    result = unittest.TextTestRunner(verbosity=2).run(suite)
    return 0 if result.wasSuccessful() else 1


if __name__ == "__main__":
    sys.exit(main())
