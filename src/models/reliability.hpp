// somrm/models/reliability.hpp
//
// Classic performability scenario (the domain MRMs come from): a
// multiprocessor with M processors that fail and get repaired. State i
// counts failed processors; with i failures the system delivers the
// processing power of M - i processors. The second-order extension models
// per-processor throughput jitter: while i processors are down, work
// accumulates with drift (M - i) * unit_power and variance
// (M - i) * unit_power_variance.
//
// Used by the reliability_performability example and by integration tests
// as a structurally different model family from the ON-OFF multiplexer
// (repair capacity makes the death rate saturate, unlike the linear
// ON-OFF chain).

#pragma once

#include <cstddef>

#include "core/model.hpp"

namespace somrm::models {

struct MachineRepairParams {
  std::size_t num_processors = 8;  ///< M
  double failure_rate = 0.1;       ///< per-processor failure rate lambda
  double repair_rate = 1.0;        ///< per-repairman repair rate mu
  std::size_t num_repairmen = 1;   ///< c, repairs happen c at a time at most
  double unit_power = 1.0;         ///< work rate contributed per live CPU
  double unit_power_variance = 0.0;  ///< throughput jitter per live CPU
  std::size_t initial_failed = 0;  ///< failed processors at time zero
};

/// Builds the machine-repair second-order MRM. States 0..M (failed count);
/// birth rate (failures) (M - i) lambda, death rate (repairs)
/// min(i, c) mu. Throws std::invalid_argument on non-positive rates or
/// out-of-range initial state.
core::SecondOrderMrm make_machine_repair(const MachineRepairParams& p);

}  // namespace somrm::models
