#include "models/birth_death.hpp"

#include <stdexcept>
#include <vector>

namespace somrm::models {

ctmc::Generator make_birth_death_generator(std::size_t num_states,
                                           const RateFn& birth_rate,
                                           const RateFn& death_rate) {
  if (num_states == 0)
    throw std::invalid_argument("make_birth_death_generator: empty chain");
  std::vector<linalg::Triplet> rates;
  rates.reserve(2 * num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    if (i + 1 < num_states) {
      const double b = birth_rate(i);
      if (b < 0.0)
        throw std::invalid_argument(
            "make_birth_death_generator: negative birth rate");
      if (b > 0.0) rates.push_back({i, i + 1, b});
    }
    if (i > 0) {
      const double d = death_rate(i);
      if (d < 0.0)
        throw std::invalid_argument(
            "make_birth_death_generator: negative death rate");
      if (d > 0.0) rates.push_back({i, i - 1, d});
    }
  }
  return ctmc::Generator::from_rates(num_states, rates);
}

core::SecondOrderMrm make_birth_death_mrm(std::size_t num_states,
                                          const RateFn& birth_rate,
                                          const RateFn& death_rate,
                                          const RewardFn& drift,
                                          const RewardFn& variance,
                                          std::size_t initial_state) {
  auto gen = make_birth_death_generator(num_states, birth_rate, death_rate);
  linalg::Vec drifts(num_states), variances(num_states);
  for (std::size_t i = 0; i < num_states; ++i) {
    drifts[i] = drift(i);
    variances[i] = variance(i);
  }
  return core::SecondOrderMrm(std::move(gen), std::move(drifts),
                              std::move(variances),
                              linalg::unit_vec(num_states, initial_state));
}

}  // namespace somrm::models
