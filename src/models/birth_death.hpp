// somrm/models/birth_death.hpp
//
// General birth-death CTMC builder. The ON-OFF multiplexer, machine-repair
// and M/M/c-style structure processes are all birth-death chains; the
// kernel-scaling benchmark also sweeps synthetic birth-death models of
// growing size through this builder.

#pragma once

#include <cstddef>
#include <functional>

#include "core/model.hpp"
#include "ctmc/generator.hpp"

namespace somrm::models {

/// Rate callback: rate for the transition out of state i. Birth applies for
/// i = 0..n-2 (to i+1), death for i = 1..n-1 (to i-1). Rates must be
/// non-negative; a zero rate removes the transition.
using RateFn = std::function<double(std::size_t i)>;

/// Builds the generator of a birth-death chain on states 0..num_states-1.
ctmc::Generator make_birth_death_generator(std::size_t num_states,
                                           const RateFn& birth_rate,
                                           const RateFn& death_rate);

/// Per-state reward callbacks for assembling a full second-order MRM on a
/// birth-death structure process.
using RewardFn = std::function<double(std::size_t i)>;

/// Builds a second-order MRM with birth-death structure. @p initial_state
/// gets probability one at time zero.
core::SecondOrderMrm make_birth_death_mrm(std::size_t num_states,
                                          const RateFn& birth_rate,
                                          const RateFn& death_rate,
                                          const RewardFn& drift,
                                          const RewardFn& variance,
                                          std::size_t initial_state = 0);

}  // namespace somrm::models
