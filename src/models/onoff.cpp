#include "models/onoff.hpp"

#include <stdexcept>
#include <vector>

namespace somrm::models {

OnOffMultiplexerParams table1_params(double rate_variance) {
  OnOffMultiplexerParams p;
  p.capacity = 32.0;
  p.num_sources = 32;
  p.on_rate = 4.0;
  p.off_rate = 3.0;
  p.peak_rate = 1.0;
  p.rate_variance = rate_variance;
  return p;
}

OnOffMultiplexerParams table2_params() {
  OnOffMultiplexerParams p;
  p.capacity = 200000.0;
  p.num_sources = 200000;
  p.on_rate = 4.0;
  p.off_rate = 3.0;
  p.peak_rate = 1.0;
  p.rate_variance = 10.0;
  return p;
}

core::SecondOrderMrm make_onoff_multiplexer(const OnOffMultiplexerParams& p) {
  if (p.num_sources == 0)
    throw std::invalid_argument("make_onoff_multiplexer: need >= 1 source");
  if (!(p.on_rate > 0.0) || !(p.off_rate > 0.0))
    throw std::invalid_argument(
        "make_onoff_multiplexer: ON/OFF rates must be positive");
  if (p.rate_variance < 0.0)
    throw std::invalid_argument(
        "make_onoff_multiplexer: negative rate variance");

  const std::size_t n = p.num_sources + 1;  // states 0..N active sources
  std::vector<linalg::Triplet> rates;
  rates.reserve(2 * p.num_sources);
  for (std::size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(i);
    if (i + 1 < n)
      rates.push_back({i, i + 1,
                       static_cast<double>(p.num_sources - i) * p.off_rate});
    if (i > 0) rates.push_back({i, i - 1, di * p.on_rate});
  }
  auto gen = ctmc::Generator::from_rates(n, rates);

  linalg::Vec drifts(n), variances(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double di = static_cast<double>(i);
    drifts[i] = p.capacity - di * p.peak_rate;
    variances[i] = di * p.rate_variance;
  }

  linalg::Vec initial = linalg::unit_vec(n, 0);  // all sources OFF
  return core::SecondOrderMrm(std::move(gen), std::move(drifts),
                              std::move(variances), std::move(initial));
}

}  // namespace somrm::models
