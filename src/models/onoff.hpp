// somrm/models/onoff.hpp
//
// The paper's section-7 example: a channel of capacity C serving N ON-OFF
// class-1 sources (exponential ON with parameter alpha, OFF with parameter
// beta). During ON, a source emits at rate r with variance sigma^2. The
// background CTMC counts active sources (a birth-death chain on 0..N,
// Figure 2); the reward tracked is the capacity left for class-2 traffic:
//
//   state i:  r_i = C - i r,   sigma_i^2 = i sigma^2,
//   q_{i,i+1} = (N - i) beta,  q_{i,i-1} = i alpha.
//
// The paper starts all sources OFF (initial mass on state 0).

#pragma once

#include <cstddef>

#include "core/model.hpp"

namespace somrm::models {

struct OnOffMultiplexerParams {
  double capacity = 32.0;        ///< C, channel capacity
  std::size_t num_sources = 32;  ///< N, number of ON-OFF sources
  double on_rate = 4.0;          ///< alpha, ON -> OFF rate (ON ~ Exp(alpha))
  double off_rate = 3.0;         ///< beta, OFF -> ON rate
  double peak_rate = 1.0;        ///< r, per-source transmission rate when ON
  double rate_variance = 0.0;    ///< sigma^2, per-source variance when ON
};

/// Parameters of Table 1 (sigma^2 passed per experiment: 0, 1 or 10).
OnOffMultiplexerParams table1_params(double rate_variance);

/// Parameters of Table 2 (the large model: C = N = 200,000, sigma^2 = 10).
OnOffMultiplexerParams table2_params();

/// Builds the second-order MRM of Figure 2; N+1 states, all sources OFF at
/// time zero. Throws std::invalid_argument for non-positive rates or zero
/// sources.
core::SecondOrderMrm make_onoff_multiplexer(const OnOffMultiplexerParams& p);

}  // namespace somrm::models
