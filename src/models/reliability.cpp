#include "models/reliability.hpp"

#include <algorithm>
#include <stdexcept>

#include "models/birth_death.hpp"

namespace somrm::models {

core::SecondOrderMrm make_machine_repair(const MachineRepairParams& p) {
  if (p.num_processors == 0)
    throw std::invalid_argument("make_machine_repair: need >= 1 processor");
  if (!(p.failure_rate > 0.0) || !(p.repair_rate > 0.0))
    throw std::invalid_argument(
        "make_machine_repair: failure/repair rates must be positive");
  if (p.num_repairmen == 0)
    throw std::invalid_argument("make_machine_repair: need >= 1 repairman");
  if (p.unit_power_variance < 0.0)
    throw std::invalid_argument("make_machine_repair: negative variance");
  if (p.initial_failed > p.num_processors)
    throw std::invalid_argument("make_machine_repair: bad initial state");

  const std::size_t m = p.num_processors;
  return make_birth_death_mrm(
      m + 1,
      [&p, m](std::size_t i) {
        return static_cast<double>(m - i) * p.failure_rate;
      },
      [&p](std::size_t i) {
        return static_cast<double>(std::min(i, p.num_repairmen)) *
               p.repair_rate;
      },
      [&p, m](std::size_t i) {
        return static_cast<double>(m - i) * p.unit_power;
      },
      [&p, m](std::size_t i) {
        return static_cast<double>(m - i) * p.unit_power_variance;
      },
      p.initial_failed);
}

}  // namespace somrm::models
