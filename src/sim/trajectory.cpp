#include "sim/trajectory.hpp"

#include <algorithm>
#include <stdexcept>

#include "prob/rng.hpp"

namespace somrm::sim {

std::vector<TrajectoryPoint> sample_trajectory(
    const core::SecondOrderMrm& model, const TrajectoryOptions& options) {
  if (!(options.horizon > 0.0))
    throw std::invalid_argument("sample_trajectory: horizon must be positive");
  if (!(options.sample_step > 0.0))
    throw std::invalid_argument("sample_trajectory: step must be positive");

  somrm::prob::Rng rng(options.seed);
  const auto& exit_rates = model.generator().exit_rates();

  std::vector<TrajectoryPoint> path;
  std::size_t state = rng.discrete(model.initial());
  double clock = 0.0;
  double reward = 0.0;
  path.push_back({clock, state, reward});

  // Next scheduled events: state jump and grid sample.
  double next_jump =
      exit_rates[state] > 0.0
          ? rng.exponential(exit_rates[state])
          : options.horizon + 1.0;
  double next_grid = options.sample_step;

  while (clock < options.horizon) {
    const double next_event =
        std::min({next_jump, next_grid, options.horizon});
    const double dt = next_event - clock;
    if (dt > 0.0) {
      reward += rng.normal(model.drifts()[state] * dt,
                           model.variances()[state] * dt);
      clock = next_event;
    }

    if (clock == next_jump && clock < options.horizon) {
      const auto row = model.generator().jump_distribution(state);
      state = row.targets[rng.discrete(row.probabilities)];
      path.push_back({clock, state, reward});
      next_jump = exit_rates[state] > 0.0
                      ? clock + rng.exponential(exit_rates[state])
                      : options.horizon + 1.0;
    }
    if (clock == next_grid) {
      path.push_back({clock, state, reward});
      next_grid += options.sample_step;
    }
    if (clock >= options.horizon) {
      if (path.back().time < options.horizon)
        path.push_back({options.horizon, state, reward});
      break;
    }
  }
  return path;
}

}  // namespace somrm::sim
