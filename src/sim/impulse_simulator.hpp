// somrm/sim/impulse_simulator.hpp
//
// Monte Carlo baseline for impulse-reward second-order MRMs: the plain
// jump/sojourn simulation of sim/simulator.hpp plus a normal impulse
// N(m_ik, w_ik) drawn at every transition i -> k. Validates the impulse
// randomization solver the same way the plain simulator validates the
// plain solver.

#pragma once

#include "core/impulse_model.hpp"
#include "prob/rng.hpp"
#include "sim/simulator.hpp"  // SimulationOptions, SimulationResult

namespace somrm::sim {

class ImpulseSimulator {
 public:
  explicit ImpulseSimulator(core::SecondOrderImpulseMrm model);

  /// One accumulated-reward sample B(t), impulses included.
  double sample_reward(double t, somrm::prob::Rng& rng) const;

  /// @p count i.i.d. samples of B(t).
  std::vector<double> sample_rewards(double t, std::size_t count,
                                     std::uint64_t seed) const;

  /// Moment estimates with standard errors.
  SimulationResult estimate_moments(double t,
                                    const SimulationOptions& options) const;

  const core::SecondOrderImpulseMrm& model() const { return model_; }

 private:
  core::SecondOrderImpulseMrm model_;
  std::vector<ctmc::Generator::JumpRow> jump_rows_;
};

}  // namespace somrm::sim
