// somrm/sim/fluid_simulator.hpp
//
// Second-order *fluid* model simulator — the sibling system the paper
// contrasts against in section 4: same (Q, R, S) data, but the continuous
// variable is a buffer LEVEL, reflected at 0 (and optionally capped at a
// finite buffer size), instead of an unbounded accumulated reward. The same
// PDE governs both inside the valid region; the boundary conditions differ,
// and the paper stresses that its efficient reward solution therefore does
// NOT carry over to fluid models. The discussion bench uses this simulator
// to make that difference visible on one model.
//
// Within a sojourn the level follows a Brownian motion with (r_i, sigma_i^2)
// reflected at the boundaries; simulation discretizes the sojourn in steps
// of at most max_step and applies reflection per step (an O(sqrt(step))
// -accurate scheme; the tests compare only against closed forms with
// generous tolerances).

#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "core/model.hpp"
#include "prob/rng.hpp"

namespace somrm::sim {

struct FluidSimulationOptions {
  std::size_t num_replications = 10000;
  std::uint64_t seed = 0xF1D0;
  double initial_level = 0.0;
  /// Upper buffer bound; infinity = unbounded above (reflect at 0 only).
  double buffer_size = std::numeric_limits<double>::infinity();
  /// Largest Euler step inside a sojourn.
  double max_step = 1e-3;
};

class FluidSimulator {
 public:
  /// The model's drifts/variances are reinterpreted as net input rates and
  /// variances of the fluid buffer.
  explicit FluidSimulator(core::SecondOrderMrm model);

  /// Samples the buffer level at time t.
  double sample_level(double t, double initial_level, double buffer_size,
                      double max_step, somrm::prob::Rng& rng) const;

  /// Replicated level samples at time t.
  std::vector<double> sample_levels(double t,
                                    const FluidSimulationOptions& options) const;

 private:
  core::SecondOrderMrm model_;
  std::vector<ctmc::Generator::JumpRow> jump_rows_;
};

}  // namespace somrm::sim
