#include "sim/impulse_simulator.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::sim {

ImpulseSimulator::ImpulseSimulator(core::SecondOrderImpulseMrm model)
    : model_(std::move(model)) {
  const std::size_t n = model_.num_states();
  jump_rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    jump_rows_.push_back(model_.base().generator().jump_distribution(i));
}

double ImpulseSimulator::sample_reward(double t, somrm::prob::Rng& rng) const {
  if (!(t >= 0.0))
    throw std::invalid_argument(
        "ImpulseSimulator::sample_reward: t must be >= 0");

  const auto& base = model_.base();
  std::size_t state = rng.discrete(base.initial());
  double clock = 0.0;
  double reward = 0.0;
  const auto& exit_rates = base.generator().exit_rates();

  while (clock < t) {
    const double exit_rate = exit_rates[state];
    double sojourn;
    bool jumps = false;
    if (exit_rate <= 0.0) {
      sojourn = t - clock;
    } else {
      sojourn = rng.exponential(exit_rate);
      if (sojourn >= t - clock) {
        sojourn = t - clock;
      } else {
        jumps = true;
      }
    }
    reward += rng.normal(base.drifts()[state] * sojourn,
                         base.variances()[state] * sojourn);
    clock += sojourn;
    if (!jumps) break;

    const auto& row = jump_rows_[state];
    const std::size_t next = row.targets[rng.discrete(row.probabilities)];
    // Impulse of the transition state -> next; only transitions strictly
    // before the horizon reach this point.
    const double m = model_.impulse_mean().at(state, next);
    const double w = model_.impulse_var().at(state, next);
    if (m != 0.0 || w != 0.0) reward += rng.normal(m, w);
    state = next;
  }
  return reward;
}

std::vector<double> ImpulseSimulator::sample_rewards(double t,
                                                     std::size_t count,
                                                     std::uint64_t seed) const {
  somrm::prob::Rng rng(seed);
  std::vector<double> out(count);
  for (double& v : out) v = sample_reward(t, rng);
  return out;
}

SimulationResult ImpulseSimulator::estimate_moments(
    double t, const SimulationOptions& options) const {
  if (options.num_replications == 0)
    throw std::invalid_argument("estimate_moments: need >= 1 replication");

  const std::size_t n = options.max_moment;
  const double count = static_cast<double>(options.num_replications);
  linalg::Vec sum_pow(n + 1, 0.0), sum_pow_sq(n + 1, 0.0);
  somrm::prob::Rng rng(options.seed);
  for (std::size_t rep = 0; rep < options.num_replications; ++rep) {
    const double b = sample_reward(t, rng);
    double p = 1.0;
    for (std::size_t j = 0; j <= n; ++j) {
      sum_pow[j] += p;
      sum_pow_sq[j] += p * p;
      p *= b;
    }
  }

  SimulationResult out;
  out.num_replications = options.num_replications;
  out.moments.resize(n + 1);
  out.standard_errors.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j) {
    const double mean = sum_pow[j] / count;
    out.moments[j] = mean;
    const double var = std::max(0.0, sum_pow_sq[j] / count - mean * mean);
    out.standard_errors[j] = std::sqrt(var / count);
  }
  return out;
}

}  // namespace somrm::sim
