// somrm/sim/trajectory.hpp
//
// Sample-path recorder for Figure 1: simulates one trajectory of a
// second-order MRM and reports both the structure-state jumps and the
// accumulated reward B(t) sampled on a fine grid. Within a sojourn the
// Brownian reward is refined by independent normal increments between grid
// points (exact joint distribution — a Brownian path restricted to a grid
// IS a Gaussian random walk on that grid), so the plotted path has the
// correct law at every plotted point.

#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"

namespace somrm::sim {

struct TrajectoryPoint {
  double time = 0.0;
  std::size_t state = 0;
  double reward = 0.0;
};

struct TrajectoryOptions {
  double horizon = 2.0;       ///< simulate on [0, horizon]
  double sample_step = 0.01;  ///< grid spacing for reward samples
  std::uint64_t seed = 42;
};

/// One sampled trajectory. Points are emitted at every grid time and at
/// every state-transition epoch (so the state column changes exactly at
/// jump times). Reward increments between consecutive points are sampled
/// from the exact normal law of the occupying state.
std::vector<TrajectoryPoint> sample_trajectory(
    const core::SecondOrderMrm& model, const TrajectoryOptions& options = {});

}  // namespace somrm::sim
