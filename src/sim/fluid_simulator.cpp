#include "sim/fluid_simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace somrm::sim {

FluidSimulator::FluidSimulator(core::SecondOrderMrm model)
    : model_(std::move(model)) {
  const std::size_t n = model_.num_states();
  jump_rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    jump_rows_.push_back(model_.generator().jump_distribution(i));
}

double FluidSimulator::sample_level(double t, double initial_level,
                                    double buffer_size, double max_step,
                                    somrm::prob::Rng& rng) const {
  if (!(t >= 0.0))
    throw std::invalid_argument("FluidSimulator: t must be >= 0");
  if (!(max_step > 0.0))
    throw std::invalid_argument("FluidSimulator: max_step must be > 0");
  if (initial_level < 0.0 || initial_level > buffer_size)
    throw std::invalid_argument("FluidSimulator: initial level out of range");

  const auto& exit_rates = model_.generator().exit_rates();
  std::size_t state = rng.discrete(model_.initial());
  double clock = 0.0;
  double level = initial_level;

  while (clock < t) {
    const double exit_rate = exit_rates[state];
    const double sojourn =
        exit_rate > 0.0 ? std::min(rng.exponential(exit_rate), t - clock)
                        : t - clock;
    const double r = model_.drifts()[state];
    const double s2 = model_.variances()[state];

    if (s2 == 0.0) {
      // Piecewise-linear level: clamp once (no oscillation possible).
      level = std::clamp(level + r * sojourn, 0.0, buffer_size);
    } else {
      const auto steps = static_cast<std::size_t>(
          std::ceil(sojourn / max_step));
      const double h = sojourn / static_cast<double>(steps);
      for (std::size_t k = 0; k < steps; ++k) {
        level += rng.normal(r * h, s2 * h);
        level = std::clamp(level, 0.0, buffer_size);
      }
    }

    clock += sojourn;
    if (clock >= t) break;
    const auto& row = jump_rows_[state];
    state = row.targets[rng.discrete(row.probabilities)];
  }
  return level;
}

std::vector<double> FluidSimulator::sample_levels(
    double t, const FluidSimulationOptions& options) const {
  if (options.num_replications == 0)
    throw std::invalid_argument("FluidSimulator: need >= 1 replication");
  somrm::prob::Rng rng(options.seed);
  std::vector<double> out(options.num_replications);
  for (double& v : out)
    v = sample_level(t, options.initial_level, options.buffer_size,
                     options.max_step, rng);
  return out;
}

}  // namespace somrm::sim
