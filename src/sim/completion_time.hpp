// somrm/sim/completion_time.hpp
//
// Completion time Theta(x) = inf{ t : B(t) >= x } — the dual measure of the
// accumulated reward, central to performability ("when is this much work
// done?"). For second-order models B(t) is not monotone, so within a
// sojourn the reward may cross the remaining-work barrier even when the
// endpoint sample does not. The simulator handles this exactly:
//
//  * per sojourn it samples the endpoint increment N(r tau, sigma^2 tau),
//  * then decides "did the Brownian path cross the barrier inside the
//    sojourn" with the exact Brownian-bridge crossing probability
//    Pr(max > b | endpoints a0, a1) = exp(-2 (b - a0)(b - a1) / (sigma^2 tau)),
//  * and if it crossed, localizes the crossing epoch by recursive bisection
//    of the bridge (each halving applies the same exact formula), down to a
//    configurable time resolution.
//
// For sigma = 0 and positive rates B is monotone and Theta is related to
// the reward distribution by Pr(Theta(x) > t) = Pr(B(t) < x), which the
// test suite uses as an exact anchor.

#pragma once

#include <cstdint>
#include <vector>

#include "core/model.hpp"
#include "prob/rng.hpp"
#include "sim/simulator.hpp"  // SimulationResult

namespace somrm::sim {

struct CompletionTimeOptions {
  std::size_t num_replications = 10000;
  std::uint64_t seed = 0xC0FFEE;
  /// Give up and censor a replication at this horizon.
  double horizon = 1e6;
  /// Bisection stops when the bracketing interval is below this.
  double time_resolution = 1e-9;
};

struct CompletionTimeSample {
  double time = 0.0;      ///< crossing epoch, or the horizon when censored
  bool completed = false; ///< false => censored at the horizon
};

class CompletionTimeSimulator {
 public:
  explicit CompletionTimeSimulator(core::SecondOrderMrm model);

  /// One completion-time sample for barrier @p work (> 0).
  CompletionTimeSample sample(double work, somrm::prob::Rng& rng,
                              double horizon, double time_resolution) const;

  /// Replicated samples; censored replications report the horizon.
  std::vector<CompletionTimeSample> sample_many(
      double work, const CompletionTimeOptions& options) const;

  /// Mean/estimates over completed replications plus the completion
  /// fraction within the horizon.
  struct Estimate {
    double mean = 0.0;
    double stddev = 0.0;
    double completion_probability = 0.0;  ///< fraction completed by horizon
    std::size_t num_completed = 0;
  };
  Estimate estimate(double work, const CompletionTimeOptions& options) const;

 private:
  core::SecondOrderMrm model_;
  std::vector<ctmc::Generator::JumpRow> jump_rows_;
};

}  // namespace somrm::sim
