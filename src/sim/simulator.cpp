#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace somrm::sim {

Simulator::Simulator(core::SecondOrderMrm model) : model_(std::move(model)) {
  const std::size_t n = model_.num_states();
  jump_rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    jump_rows_.push_back(model_.generator().jump_distribution(i));
}

double Simulator::sample_reward(double t, somrm::prob::Rng& rng) const {
  if (!(t >= 0.0))
    throw std::invalid_argument("Simulator::sample_reward: t must be >= 0");

  std::size_t state = rng.discrete(model_.initial());
  double clock = 0.0;
  double reward = 0.0;
  const auto& exit_rates = model_.generator().exit_rates();

  while (clock < t) {
    const double exit_rate = exit_rates[state];
    double sojourn;
    if (exit_rate <= 0.0) {
      sojourn = t - clock;  // absorbing: stay until the horizon
    } else {
      sojourn = std::min(rng.exponential(exit_rate), t - clock);
    }
    // Exact Brownian increment over the (possibly truncated) sojourn.
    reward += rng.normal(model_.drifts()[state] * sojourn,
                         model_.variances()[state] * sojourn);
    clock += sojourn;
    if (clock >= t) break;
    const auto& row = jump_rows_[state];
    state = row.targets[rng.discrete(row.probabilities)];
  }
  return reward;
}

std::vector<double> Simulator::sample_rewards(double t, std::size_t count,
                                              std::uint64_t seed) const {
  somrm::prob::Rng rng(seed);
  std::vector<double> out(count);
  for (double& v : out) v = sample_reward(t, rng);
  return out;
}

SimulationResult Simulator::estimate_moments(
    double t, const SimulationOptions& options) const {
  if (options.num_replications == 0)
    throw std::invalid_argument("estimate_moments: need >= 1 replication");

  const std::size_t n = options.max_moment;
  const double count = static_cast<double>(options.num_replications);

  // Accumulate sums of B^j and B^{2j} (the latter for standard errors).
  linalg::Vec sum_pow(n + 1, 0.0), sum_pow_sq(n + 1, 0.0);
  somrm::prob::Rng rng(options.seed);
  for (std::size_t rep = 0; rep < options.num_replications; ++rep) {
    const double b = sample_reward(t, rng);
    double p = 1.0;
    for (std::size_t j = 0; j <= n; ++j) {
      sum_pow[j] += p;
      sum_pow_sq[j] += p * p;
      p *= b;
    }
  }

  SimulationResult out;
  out.num_replications = options.num_replications;
  out.moments.resize(n + 1);
  out.standard_errors.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j) {
    const double mean = sum_pow[j] / count;
    out.moments[j] = mean;
    const double var =
        std::max(0.0, sum_pow_sq[j] / count - mean * mean);
    out.standard_errors[j] = std::sqrt(var / count);
  }
  return out;
}

double empirical_cdf(std::span<const double> samples, double x, bool sorted) {
  if (samples.empty())
    throw std::invalid_argument("empirical_cdf: no samples");
  if (sorted) {
    const auto it = std::upper_bound(samples.begin(), samples.end(), x);
    return static_cast<double>(it - samples.begin()) /
           static_cast<double>(samples.size());
  }
  std::size_t below = 0;
  for (double s : samples)
    if (s <= x) ++below;
  return static_cast<double>(below) / static_cast<double>(samples.size());
}

}  // namespace somrm::sim
