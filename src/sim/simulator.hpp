// somrm/sim/simulator.hpp
//
// Monte Carlo baseline for second-order MRMs: exact CTMC jump simulation
// plus exact normal sampling of the per-sojourn reward increment (given a
// sojourn of length tau in state i, the increment is N(r_i tau,
// sigma_i^2 tau) — no time discretization error). The paper used such a
// simulation tool as one of its three cross-checks.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "linalg/vec.hpp"
#include "prob/rng.hpp"

namespace somrm::sim {

struct SimulationOptions {
  std::size_t num_replications = 10000;
  std::uint64_t seed = 0x5eed;
  std::size_t max_moment = 3;
};

struct SimulationResult {
  /// Raw-moment estimates of B(t), orders 0..max_moment.
  linalg::Vec moments;
  /// Standard errors of the moment estimates (order 0 has error 0).
  linalg::Vec standard_errors;
  std::size_t num_replications = 0;
};

class Simulator {
 public:
  explicit Simulator(core::SecondOrderMrm model);

  /// Draws one accumulated-reward sample B(t) (fresh trajectory).
  double sample_reward(double t, somrm::prob::Rng& rng) const;

  /// Draws @p count i.i.d. samples of B(t).
  std::vector<double> sample_rewards(double t, std::size_t count,
                                     std::uint64_t seed) const;

  /// Moment estimates with standard errors.
  SimulationResult estimate_moments(double t,
                                    const SimulationOptions& options) const;

  const core::SecondOrderMrm& model() const { return model_; }

 private:
  core::SecondOrderMrm model_;
  /// Jump-chain rows cached per state (targets + probabilities).
  std::vector<ctmc::Generator::JumpRow> jump_rows_;
};

/// Empirical CDF value of @p samples at @p x (samples need not be sorted;
/// sort once and reuse sorted=true for repeated evaluation).
double empirical_cdf(std::span<const double> samples, double x,
                     bool sorted = false);

}  // namespace somrm::sim
