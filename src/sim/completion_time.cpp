#include "sim/completion_time.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::sim {

namespace {

/// Pr( max of a Brownian bridge from a0 to a1 with total variance var
/// exceeds b ). Exactly 1 when either endpoint already reaches b; a sigma=0
/// segment (var <= 0) is a straight line, which crosses only through its
/// endpoints — never in between — so the answer is 0 once both endpoints
/// are below b. The exp() is clamped so callers always see a probability in
/// [0, 1] even when the exponent degenerates (e.g. subnormal var).
double bridge_cross_probability(double a0, double a1, double b, double var) {
  if (a0 >= b || a1 >= b) return 1.0;
  if (var <= 0.0) return 0.0;
  return std::min(1.0, std::exp(-2.0 * (b - a0) * (b - a1) / var));
}

/// First-crossing epoch of the barrier b by a Brownian bridge over
/// [t0, t0 + dt] from a0 to a1 with variance parameter s2, conditioned on
/// the bridge crossing. Recursive bisection; each level samples the exact
/// bridge midpoint and picks the half containing the FIRST crossing with
/// the exact conditional probability.
double localize_crossing(double t0, double dt, double a0, double a1, double b,
                         double s2, double resolution,
                         somrm::prob::Rng& rng) {
  if (s2 <= 0.0) {
    // Deterministic segment: the path is the straight line from a0 to a1,
    // so the first-crossing epoch is exact — no bisection (which would
    // degenerate: every conditional bridge probability is 0/0).
    if (a0 >= b) return t0;
    if (a1 > a0) return t0 + dt * (b - a0) / (a1 - a0);
    return t0 + dt;  // cannot cross; only reachable on a misuse call
  }
  while (dt > resolution) {
    const double half = 0.5 * dt;
    // Bridge midpoint: mean (a0+a1)/2, variance s2 * dt / 4.
    const double mid = rng.normal(0.5 * (a0 + a1), 0.25 * s2 * dt);
    const double p1 = bridge_cross_probability(a0, mid, b, s2 * half);
    const double p2 = bridge_cross_probability(mid, a1, b, s2 * half);
    const double p_overall = 1.0 - (1.0 - p1) * (1.0 - p2);
    const double p_first = p_overall > 0.0 ? p1 / p_overall : 1.0;
    if (rng.uniform01() < p_first) {
      a1 = mid;
    } else {
      t0 += half;
      a0 = mid;
    }
    dt = half;
  }
  return t0 + 0.5 * dt;
}

}  // namespace

CompletionTimeSimulator::CompletionTimeSimulator(core::SecondOrderMrm model)
    : model_(std::move(model)) {
  const std::size_t n = model_.num_states();
  jump_rows_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    jump_rows_.push_back(model_.generator().jump_distribution(i));
}

CompletionTimeSample CompletionTimeSimulator::sample(
    double work, somrm::prob::Rng& rng, double horizon,
    double time_resolution) const {
  if (!(work > 0.0))
    throw std::invalid_argument("CompletionTimeSimulator: work must be > 0");
  if (!(horizon > 0.0) || !(time_resolution > 0.0))
    throw std::invalid_argument(
        "CompletionTimeSimulator: horizon/resolution must be > 0");

  const auto& exit_rates = model_.generator().exit_rates();
  std::size_t state = rng.discrete(model_.initial());
  double clock = 0.0;
  double level = 0.0;

  while (clock < horizon) {
    const double exit_rate = exit_rates[state];
    const double sojourn =
        exit_rate > 0.0 ? std::min(rng.exponential(exit_rate),
                                   horizon - clock)
                        : horizon - clock;
    const double r = model_.drifts()[state];
    const double s2 = model_.variances()[state];
    const double barrier = work - level;

    if (s2 == 0.0) {
      // Deterministic segment: crosses iff it climbs far enough.
      if (r > 0.0 && r * sojourn >= barrier)
        return {clock + barrier / r, true};
      level += r * sojourn;
    } else {
      const double inc = rng.normal(r * sojourn, s2 * sojourn);
      const double p_cross =
          bridge_cross_probability(0.0, inc, barrier, s2 * sojourn);
      if (p_cross >= 1.0 || rng.uniform01() < p_cross) {
        const double epoch = localize_crossing(
            clock, sojourn, 0.0, inc, barrier, s2, time_resolution, rng);
        return {epoch, true};
      }
      level += inc;
    }

    clock += sojourn;
    if (clock >= horizon) break;
    const auto& row = jump_rows_[state];
    state = row.targets[rng.discrete(row.probabilities)];
  }
  return {horizon, false};
}

std::vector<CompletionTimeSample> CompletionTimeSimulator::sample_many(
    double work, const CompletionTimeOptions& options) const {
  somrm::prob::Rng rng(options.seed);
  std::vector<CompletionTimeSample> out;
  out.reserve(options.num_replications);
  for (std::size_t i = 0; i < options.num_replications; ++i)
    out.push_back(
        sample(work, rng, options.horizon, options.time_resolution));
  return out;
}

CompletionTimeSimulator::Estimate CompletionTimeSimulator::estimate(
    double work, const CompletionTimeOptions& options) const {
  const auto samples = sample_many(work, options);
  Estimate est;
  double sum = 0.0, sum_sq = 0.0;
  for (const auto& s : samples) {
    if (!s.completed) continue;
    ++est.num_completed;
    sum += s.time;
    sum_sq += s.time * s.time;
  }
  est.completion_probability =
      static_cast<double>(est.num_completed) /
      static_cast<double>(samples.size());
  if (est.num_completed > 0) {
    const double n = static_cast<double>(est.num_completed);
    est.mean = sum / n;
    est.stddev = std::sqrt(std::max(0.0, sum_sq / n - est.mean * est.mean));
  }
  return est;
}

}  // namespace somrm::sim
