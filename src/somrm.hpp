// somrm.hpp — umbrella header for the somrm library.
//
// Pulls in the full public API. Individual components can be included
// directly (each header documents its own scope); this header is for
// applications that want everything.
//
// Namespaces:
//   somrm::core    — model types and moment solvers (the paper's results)
//   somrm::ctmc    — structure-chain substrate
//   somrm::density — distribution solvers (PDE, transform)
//   somrm::bounds  — moment-based distribution bounds and estimates
//   somrm::sim     — Monte Carlo baselines and trajectory tools
//   somrm::models  — ready-made model builders
//   somrm::io      — text model and query files
//   somrm::serve   — concurrent serving engine + sweep-cache snapshots
//   somrm::linalg / somrm::prob — numerics underneath

#pragma once

#include "bounds/density_estimate.hpp"
#include "bounds/moment_bounds.hpp"
#include "bounds/quadrature.hpp"
#include "core/asymptotics.hpp"
#include "core/first_order.hpp"
#include "core/impulse_model.hpp"
#include "core/impulse_randomization.hpp"
#include "core/model.hpp"
#include "core/moment_utils.hpp"
#include "core/ode_solver.hpp"
#include "core/piecewise.hpp"
#include "core/randomization.hpp"
#include "core/scaling.hpp"
#include "core/solve_session.hpp"
#include "ctmc/generator.hpp"
#include "ctmc/occupancy.hpp"
#include "ctmc/stationary.hpp"
#include "ctmc/transient.hpp"
#include "density/density_common.hpp"
#include "density/pde_solver.hpp"
#include "density/transform_solver.hpp"
#include "io/model_io.hpp"
#include "io/query_io.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/expm.hpp"
#include "linalg/fft.hpp"
#include "linalg/tridiag.hpp"
#include "linalg/vec.hpp"
#include "models/birth_death.hpp"
#include "models/onoff.hpp"
#include "models/reliability.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "prob/normal.hpp"
#include "prob/poisson.hpp"
#include "prob/rng.hpp"
#include "serve/engine.hpp"
#include "serve/snapshot.hpp"
#include "sim/completion_time.hpp"
#include "sim/fluid_simulator.hpp"
#include "sim/impulse_simulator.hpp"
#include "sim/simulator.hpp"
#include "sim/trajectory.hpp"
