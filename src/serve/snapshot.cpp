#include "serve/snapshot.hpp"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>
#include <vector>

#include "linalg/panel.hpp"

namespace somrm::serve {

namespace {

constexpr char kMagic[8] = {'S', 'O', 'M', 'R', 'M', 'S', 'W', 'P'};
constexpr std::uint32_t kEndianProbe = 0x01020304u;

std::uint64_t fnv1a64(const char* data, std::size_t bytes) {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Append-only byte sink. Integers and doubles go in by memcpy of their
/// host representation; the endianness probe in the header is what makes
/// that safe to read back.
class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }

  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }

  void doubles(std::span<const double> xs) {
    u64(xs.size());
    raw(xs.data(), xs.size() * sizeof(double));
  }

  void sizes(std::span<const std::size_t> xs) {
    u64(xs.size());
    for (std::size_t x : xs) u64(static_cast<std::uint64_t>(x));
  }

  const std::string& buffer() const { return buf_; }

 private:
  void raw(const void* data, std::size_t bytes) {
    if (bytes) buf_.append(static_cast<const char*>(data), bytes);
  }

  std::string buf_;
};

/// Bounds-checked cursor over the loaded file body. Every read validates
/// the remaining byte count BEFORE allocating, so a corrupt length field
/// yields a "truncated" error instead of a gigabyte allocation.
class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint8_t u8() {
    std::uint8_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v;
    raw(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    raw(&v, sizeof v);
    return v;
  }
  double f64() {
    double v;
    raw(&v, sizeof v);
    return v;
  }

  std::string str() {
    const std::uint64_t n = len(u64(), 1);
    std::string s(data_ + cur_, static_cast<std::size_t>(n));
    cur_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<double> doubles() {
    const std::uint64_t n = len(u64(), sizeof(double));
    std::vector<double> xs(static_cast<std::size_t>(n));
    raw(xs.data(), static_cast<std::size_t>(n) * sizeof(double));
    return xs;
  }

  void doubles_into(std::span<double> out) {
    const std::uint64_t n = len(u64(), sizeof(double));
    if (n != out.size()) throw SnapshotError("truncated (panel size mismatch)");
    raw(out.data(), out.size() * sizeof(double));
  }

  std::vector<std::size_t> sizes() {
    const std::uint64_t n = len(u64(), sizeof(std::uint64_t));
    std::vector<std::size_t> xs(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < xs.size(); ++i)
      xs[i] = static_cast<std::size_t>(u64());
    return xs;
  }

  std::size_t remaining() const { return size_ - cur_; }

  /// Validates that @p n elements of @p elem_bytes each still fit.
  std::uint64_t len(std::uint64_t n, std::size_t elem_bytes) {
    if (n > remaining() / elem_bytes)
      throw SnapshotError("truncated (length field exceeds file size)");
    return n;
  }

 private:
  void raw(void* out, std::size_t bytes) {
    if (bytes > remaining()) throw SnapshotError("truncated");
    std::memcpy(out, data_ + cur_, bytes);
    cur_ += bytes;
  }

  const char* data_;
  std::size_t size_;
  std::size_t cur_ = 0;
};

void write_stats(Writer& w, const obs::SolverStats& s) {
  w.str(s.kernel);
  w.str(s.simd);
  w.str(s.reorder);
  w.str(s.storage);
  w.f64(s.padding_ratio);
  w.f64(s.chunk_occupancy);
  w.u64(s.bandwidth_before);
  w.u64(s.bandwidth_after);
  w.u64(s.panel_width);
  w.u64(s.threads);
  w.sizes(s.truncation_points);
  w.sizes(s.window_widths);
  w.u64(s.sweep_steps);
  w.u64(s.active_weight_sum);
  w.u64(s.sweep_flops);
  w.f64(s.scale_seconds);
  w.f64(s.truncation_seconds);
  w.f64(s.window_seconds);
  w.f64(s.sweep_seconds);
  w.f64(s.finalize_seconds);
  w.f64(s.total_seconds);
  w.f64(s.effective_gflops);
  w.f64(s.busy_seconds);
  w.f64(s.load_imbalance);
  w.u64(s.cache_hits);
  w.u64(s.cache_misses);
  w.u64(s.cache_evictions);
  w.u64(s.cache_coalesced);
  w.u8(s.cache_over_budget ? 1 : 0);
}

obs::SolverStats read_stats(Reader& r) {
  obs::SolverStats s;
  s.kernel = r.str();
  s.simd = r.str();
  s.reorder = r.str();
  s.storage = r.str();
  s.padding_ratio = r.f64();
  s.chunk_occupancy = r.f64();
  s.bandwidth_before = static_cast<std::size_t>(r.u64());
  s.bandwidth_after = static_cast<std::size_t>(r.u64());
  s.panel_width = static_cast<std::size_t>(r.u64());
  s.threads = static_cast<std::size_t>(r.u64());
  s.truncation_points = r.sizes();
  s.window_widths = r.sizes();
  s.sweep_steps = static_cast<std::size_t>(r.u64());
  s.active_weight_sum = static_cast<std::size_t>(r.u64());
  s.sweep_flops = static_cast<std::size_t>(r.u64());
  s.scale_seconds = r.f64();
  s.truncation_seconds = r.f64();
  s.window_seconds = r.f64();
  s.sweep_seconds = r.f64();
  s.finalize_seconds = r.f64();
  s.total_seconds = r.f64();
  s.effective_gflops = r.f64();
  s.busy_seconds = r.f64();
  s.load_imbalance = r.f64();
  s.cache_hits = static_cast<std::size_t>(r.u64());
  s.cache_misses = static_cast<std::size_t>(r.u64());
  s.cache_evictions = static_cast<std::size_t>(r.u64());
  s.cache_coalesced = static_cast<std::size_t>(r.u64());
  s.cache_over_budget = r.u8() != 0;
  return s;
}

void write_sweep(Writer& w, const core::RetainedSweep& sw) {
  w.doubles(sw.times);
  w.u64(sw.max_moment);
  w.f64(sw.epsilon);
  w.f64(sw.center);
  w.f64(sw.q);
  w.f64(sw.d);
  w.f64(sw.shift);
  w.f64(sw.prefactor);
  w.u8(sw.terminal_weighted ? 1 : 0);
  w.u8(sw.degenerate ? 1 : 0);
  w.sizes(sw.truncation_points);
  w.doubles(sw.error_bounds);
  w.u64(sw.acc.size());
  for (const linalg::Panel& p : sw.acc) {
    w.u64(p.rows());
    w.u64(p.width());
    w.doubles(p.span());
  }
  write_stats(w, sw.stats);
}

core::RetainedSweep read_sweep(Reader& r) {
  core::RetainedSweep sw;
  sw.times = r.doubles();
  sw.max_moment = static_cast<std::size_t>(r.u64());
  sw.epsilon = r.f64();
  sw.center = r.f64();
  sw.q = r.f64();
  sw.d = r.f64();
  sw.shift = r.f64();
  sw.prefactor = r.f64();
  sw.terminal_weighted = r.u8() != 0;
  sw.degenerate = r.u8() != 0;
  sw.truncation_points = r.sizes();
  sw.error_bounds = r.doubles();
  const std::uint64_t panels = r.len(r.u64(), 1);
  sw.acc.reserve(static_cast<std::size_t>(panels));
  for (std::uint64_t i = 0; i < panels; ++i) {
    const std::uint64_t rows = r.u64();
    const std::uint64_t width = r.len(r.u64(), 1);
    if (width != 0 && rows > r.remaining() / (width * sizeof(double)))
      throw SnapshotError("truncated (panel dimensions exceed file size)");
    linalg::Panel p(static_cast<std::size_t>(rows),
                    static_cast<std::size_t>(width));
    r.doubles_into(p.span());
    sw.acc.push_back(std::move(p));
  }
  sw.stats = read_stats(r);
  return sw;
}

}  // namespace

std::size_t save_snapshot(const core::SweepCache& cache,
                          const std::string& path) {
  const auto entries = cache.entries_snapshot();

  // Header + entries into one buffer, checksum appended last.
  Writer w;
  for (char c : kMagic) w.u8(static_cast<std::uint8_t>(c));
  w.u32(kSnapshotFormatVersion);
  w.u32(kEndianProbe);
  w.u64(entries.size());
  for (const auto& [key, sweep] : entries) {
    w.str(key);
    write_sweep(w, *sweep);
  }
  std::string buf = w.buffer();
  const std::uint64_t check = fnv1a64(buf.data(), buf.size());
  buf.append(reinterpret_cast<const char*>(&check), sizeof check);

  // JsonWriter idiom: write the whole image to a temp file in the target
  // directory, then rename over the destination so readers only ever see
  // a complete snapshot.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f)
    throw SnapshotError("cannot open '" + tmp +
                        "' for writing: " + std::strerror(errno));
  const std::size_t written = std::fwrite(buf.data(), 1, buf.size(), f);
  const bool ok = written == buf.size() && std::fflush(f) == 0 && !std::ferror(f);
  if (std::fclose(f) != 0 || !ok) {
    std::remove(tmp.c_str());
    throw SnapshotError("short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw SnapshotError("cannot rename '" + tmp + "' to '" + path +
                        "': " + std::strerror(errno));
  }
  return entries.size();
}

std::size_t load_snapshot(core::SweepCache& cache, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    if (errno == ENOENT) return 0;  // missing snapshot = cold start
    throw SnapshotError("cannot open '" + path +
                        "': " + std::strerror(errno));
  }
  std::string buf;
  char chunk[1 << 16];
  std::size_t got;
  while ((got = std::fread(chunk, 1, sizeof chunk, f)) > 0)
    buf.append(chunk, got);
  const bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) throw SnapshotError("read error on '" + path + "'");

  constexpr std::size_t kHeaderBytes = sizeof kMagic + 2 * sizeof(std::uint32_t);
  if (buf.size() < kHeaderBytes + sizeof(std::uint64_t))
    throw SnapshotError("truncated (file smaller than header)");
  if (std::memcmp(buf.data(), kMagic, sizeof kMagic) != 0)
    throw SnapshotError("bad magic (not a somrm sweep snapshot)");
  std::uint32_t version;
  std::memcpy(&version, buf.data() + sizeof kMagic, sizeof version);
  if (version != kSnapshotFormatVersion)
    throw SnapshotError("format version mismatch (file has " +
                        std::to_string(version) + ", reader expects " +
                        std::to_string(kSnapshotFormatVersion) + ")");
  std::uint32_t endian;
  std::memcpy(&endian, buf.data() + sizeof kMagic + sizeof version,
              sizeof endian);
  if (endian != kEndianProbe)
    throw SnapshotError("endianness mismatch (snapshot written on a host "
                        "with different byte order)");

  const std::size_t body_bytes = buf.size() - sizeof(std::uint64_t);
  std::uint64_t stored_check;
  std::memcpy(&stored_check, buf.data() + body_bytes, sizeof stored_check);
  if (fnv1a64(buf.data(), body_bytes) != stored_check)
    throw SnapshotError("checksum mismatch (truncated or corrupted snapshot)");

  Reader r(buf.data() + kHeaderBytes, body_bytes - kHeaderBytes);
  const std::uint64_t count = r.len(r.u64(), 1);
  std::vector<std::pair<std::string, core::SweepCache::EntryPtr>> loaded;
  loaded.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string key = r.str();
    auto sweep = std::make_shared<const core::RetainedSweep>(read_sweep(r));
    loaded.emplace_back(std::move(key), std::move(sweep));
  }

  // Entries were saved MRU-first; inserting in reverse replays them
  // LRU-first, so the restored cache ends up with the saved recency order
  // (and, under a tight budget, keeps the MRU tail — the entries a warm
  // restart most wants).
  std::size_t inserted = 0;
  for (auto it = loaded.rbegin(); it != loaded.rend(); ++it)
    if (cache.insert(it->first, std::move(it->second))) ++inserted;
  return inserted;
}

}  // namespace somrm::serve
