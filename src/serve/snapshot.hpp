// somrm/serve/snapshot.hpp
//
// Sweep-cache persistence: serializes retained sweeps together with their
// cache keys so a warm SweepCache survives process restarts — after a
// reload, the first query against a persisted (model, solve key, weights)
// combination is a cache HIT and runs no sweep at all.
//
// Format (version 1, fixed-width little-style host integers, cross-endian
// loads rejected by the probe word):
//
//   magic    "SOMRMSWP"                         8 bytes
//   version  u32  kSnapshotFormatVersion
//   endian   u32  0x01020304 as written by the saving host
//   count    u64  number of cache entries
//   entry*   key (u64 length + bytes), then the core::RetainedSweep
//            payload: times / scalars / flags / truncation_points /
//            error_bounds / accumulator panels (u64 rows, u64 width,
//            rows*width doubles) / the sweep-phase SolverStats
//   check    u64  FNV-1a-64 over every byte before it
//
// Every double travels by bit pattern, so the round trip is bit-exact:
// core::bit_identical(saved, loaded) holds for each entry, and a finalize
// against the reloaded sweep produces the same bits as against the
// original. Writes use the JsonWriter idiom — temp file in the target
// directory, then std::rename — so a concurrent reader (or a crash
// mid-save) never observes a half-written snapshot.

#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/solve_session.hpp"

namespace somrm::serve {

/// Current snapshot format version. Bumped on any layout change; a reader
/// refuses other versions rather than guessing at field offsets.
inline constexpr std::uint32_t kSnapshotFormatVersion = 1;

/// Snapshot save/load failure. The what() string names the reason: "bad
/// magic", "format version mismatch", "endianness mismatch", "checksum
/// mismatch", "truncated", or an I/O-flavoured message with the path.
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& message)
      : std::runtime_error("snapshot: " + message) {}
};

/// Serializes every entry of @p cache (most recently used first) to
/// @p path atomically. Returns the number of entries written. Throws
/// SnapshotError when the file cannot be created or written.
std::size_t save_snapshot(const core::SweepCache& cache,
                          const std::string& path);

/// Loads a snapshot into @p cache via SweepCache::insert: keys already
/// resident win over the snapshot's, hit/miss counters do not move, and
/// entries are inserted least-recently-used first so the saved recency
/// order is reproduced (the byte budget applies as usual — a snapshot
/// larger than the budget keeps only its MRU tail). A missing file is a
/// cold start, not an error: returns 0. Any other defect — bad magic,
/// version or endianness mismatch, checksum failure, truncation — throws
/// SnapshotError. Returns the number of entries actually inserted.
std::size_t load_snapshot(core::SweepCache& cache, const std::string& path);

}  // namespace somrm::serve
