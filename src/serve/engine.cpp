#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/export.hpp"
#include "obs/telemetry.hpp"
#include "serve/snapshot.hpp"

namespace somrm::serve {

namespace {

/// Engine-side clock: steady_clock directly, NOT obs::now_ns — the queue
/// and serving latencies are part of the result contract and must be real
/// in SOMRM_OBSERVABILITY=OFF builds too.
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

obs::Metric& submitted_metric() {
  static obs::Metric& m = obs::metric("serve.submitted");
  return m;
}
obs::Metric& rejected_metric() {
  static obs::Metric& m = obs::metric("serve.rejected");
  return m;
}
obs::Metric& batch_metric() {
  static obs::Metric& m = obs::metric("serve.batch");
  return m;
}
obs::Metric& queue_wait_metric() {
  static obs::Metric& m = obs::metric("serve.queue_ns");
  return m;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::gauge("serve.queue.depth");
  return g;
}

}  // namespace

ServeEngine::ServeEngine(std::shared_ptr<const core::SolveSession> session,
                         ServeEngineOptions options)
    : session_(std::move(session)), options_(std::move(options)) {
  if (!session_)
    throw std::invalid_argument("ServeEngine: session must not be null");
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (!options_.snapshot_path.empty())
    load_snapshot(*session_->cache(), options_.snapshot_path);
  support::MutexLock lock(join_mutex_);
  workers_.reserve(options_.num_workers);
  for (std::size_t i = 0; i < options_.num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ServeEngine::~ServeEngine() { stop(); }

void ServeEngine::enqueue(Pending&& p) {
  {
    support::MutexLock lock(mutex_);
    if (stopping_) {
      ++counters_.rejected_stopped;
      rejected_metric().add(1);
      throw RejectedError(RejectReason::kStopped,
                          "ServeEngine: stopped, not accepting queries");
    }
    if (queue_.size() >= options_.max_queue) {
      ++counters_.rejected_queue_full;
      rejected_metric().add(1);
      throw RejectedError(
          RejectReason::kQueueFull,
          "ServeEngine: pending queue full (" +
              std::to_string(options_.max_queue) +
              " queries); retry after draining some results");
    }
    queue_.push_back(std::move(p));
    ++counters_.submitted;
    submitted_metric().add(1);
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  // notify_all, not notify_one: the waiter this queue entry is most useful
  // to may be a group leader lingering in its batching window for exactly
  // this key, while an idle worker should also wake for a different key.
  cv_.notify_all();
}

std::future<ServeResult> ServeEngine::submit(core::SessionQuery query) {
  session_->validate_query(query);  // malformed queries fail synchronously
  Pending p;
  p.key = session_->sweep_key(query.terminal_weights);
  p.query = std::move(query);
  p.enqueue_ns = steady_now_ns();
  std::future<ServeResult> fut = p.promise.get_future();
  enqueue(std::move(p));
  return fut;
}

void ServeEngine::submit(core::SessionQuery query, ServeCallback callback) {
  if (!callback)
    throw std::invalid_argument("ServeEngine: callback must not be empty");
  session_->validate_query(query);
  Pending p;
  p.key = session_->sweep_key(query.terminal_weights);
  p.query = std::move(query);
  p.enqueue_ns = steady_now_ns();
  p.use_callback = true;
  p.callback = std::move(callback);
  enqueue(std::move(p));
}

void ServeEngine::gather_same_key_locked(const std::string& key,
                                         std::list<Pending>& group) {
  for (auto it = queue_.begin();
       it != queue_.end() && group.size() < options_.max_batch;) {
    if (it->key == key) {
      auto next = std::next(it);
      group.splice(group.end(), queue_, it);
      it = next;
    } else {
      ++it;
    }
  }
}

void ServeEngine::worker_loop() {
  for (;;) {
    std::list<Pending> group;
    {
      support::MutexLock lock(mutex_);
      while (queue_.empty() && !stopping_) cv_.wait(mutex_);
      if (queue_.empty()) return;  // stopping and fully drained
      // Leader: take the oldest query, group everything already queued
      // under its sweep key, then linger up to the batching window for
      // same-key stragglers. Stopping flushes early; a straggler that
      // misses the window (or lands on another worker) forms its own
      // group and coalesces at the SweepCache instead.
      group.splice(group.end(), queue_, queue_.begin());
      const std::string key = group.front().key;
      gather_same_key_locked(key, group);
      if (options_.batch_window_ns > 0) {
        const auto deadline =
            std::chrono::steady_clock::now() +
            std::chrono::nanoseconds(options_.batch_window_ns);
        while (group.size() < options_.max_batch && !stopping_) {
          const auto now = std::chrono::steady_clock::now();
          if (now >= deadline) break;
          cv_.wait_for(mutex_, deadline - now);
          gather_same_key_locked(key, group);
        }
      }
      queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    }
    run_group(std::move(group));
  }
}

bool ServeEngine::drain_one() {
  std::list<Pending> group;
  {
    support::MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    group.splice(group.end(), queue_, queue_.begin());
    gather_same_key_locked(group.front().key, group);
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  run_group(std::move(group));
  return true;
}

void ServeEngine::run_group(std::list<Pending> group) {
  if (group.empty()) return;
  const std::size_t batch_size = group.size();
  std::vector<core::SessionQuery> queries;
  queries.reserve(batch_size);
  for (const Pending& p : group) queries.push_back(p.query);

  const std::int64_t exec_t0 = steady_now_ns();
  std::vector<core::MomentResult> results;
  std::vector<core::QueryRecord> records;
  std::exception_ptr error;
  try {
    results = session_->query_batch(queries, &records);
  } catch (...) {
    error = std::current_exception();
  }
  const std::int64_t done = steady_now_ns();

  // Account the batch BEFORE delivering: the moment set_value runs a client's
  // .get() returns, and stats() must already show that query as
  // completed/failed. Only the callback-throw tally — unknowable until the
  // callbacks actually run — is folded in afterwards.
  batch_metric().add(1, static_cast<std::int64_t>(batch_size));
  {
    support::MutexLock lock(mutex_);
    ++counters_.batches;
    counters_.largest_batch = std::max(counters_.largest_batch, batch_size);
    if (error)
      counters_.failed += batch_size;
    else
      counters_.completed += batch_size;
  }

  std::uint64_t callback_throws = 0;
  std::size_t i = 0;
  for (Pending& p : group) {
    if (error) {
      if (p.use_callback) {
        try {
          p.callback(ServeResult{}, error);
        } catch (...) {
          ++callback_throws;
        }
      } else {
        p.promise.set_exception(error);
      }
    } else {
      ServeResult sr;
      sr.result = std::move(results[i]);
      sr.record = std::move(records[i]);
      sr.queue_ns = exec_t0 - p.enqueue_ns;
      sr.total_ns = done - p.enqueue_ns;
      sr.batch_size = batch_size;
      queue_wait_metric().add(1, sr.queue_ns);
      if (p.use_callback) {
        try {
          p.callback(std::move(sr), nullptr);
        } catch (...) {
          ++callback_throws;
        }
      } else {
        p.promise.set_value(std::move(sr));
      }
    }
    ++i;
  }

  if (callback_throws > 0) {
    support::MutexLock lock(mutex_);
    counters_.failed += callback_throws;
  }

  // Worker tick: resample the memory gauges so a long hit-only serving run
  // exports live values instead of the last cache miss's (stale-gauge
  // fix; evictions resample too, this covers the steady state).
  if constexpr (obs::kEnabled) {
    static obs::Gauge& rss_gauge = obs::gauge("mem.peak_rss_bytes");
    rss_gauge.set(obs::peak_rss_bytes());
    static obs::Gauge& cache_bytes_gauge = obs::gauge("session.cache.bytes");
    cache_bytes_gauge.set(
        static_cast<std::int64_t>(session_->cache_stats().bytes));
  }
}

void ServeEngine::stop() {
  {
    support::MutexLock lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  {
    support::MutexLock lock(join_mutex_);
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
  }
  // Manual mode (and the window between "stopping" and the last join):
  // whatever was accepted must still be answered — drain inline so no
  // future is left forever pending.
  while (drain_one()) {
  }
}

ServeEngineStats ServeEngine::stats() const {
  support::MutexLock lock(mutex_);
  ServeEngineStats out = counters_;
  out.queue_depth = queue_.size();
  return out;
}

std::size_t ServeEngine::save_snapshot() const {
  if (options_.snapshot_path.empty())
    throw std::logic_error(
        "ServeEngine: save_snapshot() requires a snapshot_path");
  return serve::save_snapshot(*session_->cache(), options_.snapshot_path);
}

}  // namespace somrm::serve
