// somrm/serve/engine.hpp
//
// Concurrent serving executor over core::SolveSession.
//
// SolveSession made multi-query serving cheap (one sweep per distinct
// terminal-weight vector, finalize-only queries after that) but left the
// caller to do the batching: a client thread calling query() pays the full
// sweep latency alone on a cold key, and concurrent clients only meet at
// the SweepCache's coalescing, AFTER each has resolved its own sweep. The
// ServeEngine closes that gap at the front door:
//
//  * Admission control — submit() validates the query synchronously
//    (std::invalid_argument, exactly query()'s checks) and then either
//    accepts it into a bounded queue or rejects it with a typed
//    RejectedError. It NEVER blocks the client on a full queue;
//    backpressure is the caller's policy, not a hidden stall.
//  * Key-grouped batching — queued queries are grouped by their sweep-cache
//    key (SolveSession::sweep_key — the content-hash base_key plus the
//    weights hash), i.e. BEFORE any sweep runs. A group leader lingers up
//    to a short batching window for same-key stragglers, then executes the
//    whole group as one SolveSession::query_batch, which also shares the
//    per-(time, order) finalize work between pi-only-differing queries.
//    Same-key groups that land on different workers still coalesce at the
//    SweepCache, so splitting is a throughput wrinkle, never a correctness
//    one — results stay bit-identical to a synchronous query_batch.
//  * Streaming results — each submit() returns a std::future (or feeds a
//    callback) carrying the MomentResult, the session's QueryRecord
//    attribution for this query, and the engine-side queue/total timings.
//    Timings are measured with steady_clock directly, so they are real
//    even in SOMRM_OBSERVABILITY=OFF builds.
//  * Warm restarts — with a snapshot_path, construction reloads the sweep
//    cache from disk (serve/snapshot.hpp) and save_snapshot() persists it,
//    so a restarted server's first queries are cache hits.
//
// Telemetry: serve.submitted / serve.rejected / serve.batch /
// serve.queue_ns metrics, a serve.queue.depth gauge, and a per-batch
// worker tick that resamples mem.peak_rss_bytes and session.cache.bytes so
// a long hit-only run exports live values (the stale-gauge fix).

#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/solve_session.hpp"
#include "support/thread_annotations.hpp"

namespace somrm::serve {

/// Why a submit() was refused admission.
enum class RejectReason : std::uint8_t {
  kQueueFull = 0,  ///< pending queue at max_queue; retry later or shed load
  kStopped = 1,    ///< engine is stopping / stopped; no new work accepted
};

/// Typed admission-control rejection thrown by submit(). Distinct from
/// std::invalid_argument (a malformed query) — a rejected query is well
/// formed and may be retried once the queue drains.
class RejectedError : public std::runtime_error {
 public:
  RejectedError(RejectReason reason, const std::string& message)
      : std::runtime_error(message), reason_(reason) {}

  RejectReason reason() const { return reason_; }

 private:
  RejectReason reason_;
};

struct ServeEngineOptions {
  /// Worker threads executing groups. 0 = manual mode: nothing executes
  /// until drain_one() is called, which unit tests use to pin grouping and
  /// admission behaviour deterministically.
  std::size_t num_workers = 2;
  /// Pending-queue bound; submit() beyond it throws RejectedError
  /// (kQueueFull) instead of blocking.
  std::size_t max_queue = 1024;
  /// How long a group leader lingers for same-key stragglers before
  /// executing, in nanoseconds. 0 = execute immediately with whatever is
  /// already queued. Stopping flushes early.
  std::int64_t batch_window_ns = 200'000;
  /// Largest group executed as one query_batch.
  std::size_t max_batch = 256;
  /// Sweep-cache snapshot file: loaded on construction (missing file =
  /// cold start), written by save_snapshot(). Empty = no persistence.
  std::string snapshot_path;
};

/// One completed query as streamed back to the submitting client.
struct ServeResult {
  core::MomentResult result;
  /// The session's attribution record for THIS query (same content as the
  /// SessionReport ring entry) — cache outcome, sweep key, finalize time.
  core::QueryRecord record;
  std::int64_t queue_ns = 0;   ///< submit -> group execution start
  std::int64_t total_ns = 0;   ///< submit -> completion (serving latency)
  std::size_t batch_size = 0;  ///< size of the group this query rode in
};

/// Monotonic counters + current depth, as of stats().
struct ServeEngineStats {
  std::uint64_t submitted = 0;            ///< accepted into the queue
  std::uint64_t rejected_queue_full = 0;  ///< refused: queue at max_queue
  std::uint64_t rejected_stopped = 0;     ///< refused: engine stopping
  std::uint64_t completed = 0;            ///< results delivered
  std::uint64_t failed = 0;               ///< completions with an exception
  std::uint64_t batches = 0;              ///< groups executed
  std::size_t largest_batch = 0;          ///< biggest group so far
  std::size_t queue_depth = 0;            ///< pending right now
};

/// Result sink for the callback flavour of submit(). Exactly one of
/// (result, error) is meaningful: error == nullptr on success. Invoked on
/// a worker thread; must not throw (a throwing callback is swallowed and
/// counted in ServeEngineStats::failed).
using ServeCallback =
    std::function<void(ServeResult&&, std::exception_ptr error)>;

class ServeEngine {
 public:
  /// Starts options.num_workers worker threads and, when
  /// options.snapshot_path names an existing snapshot, warms the session's
  /// sweep cache from it (SnapshotError propagates — a corrupt snapshot is
  /// a refused start, not a silent cold one).
  explicit ServeEngine(std::shared_ptr<const core::SolveSession> session,
                       ServeEngineOptions options = {});

  /// stop()s and joins.
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Validates @p query (throws std::invalid_argument like
  /// SolveSession::query) and enqueues it. Throws RejectedError when the
  /// queue is full or the engine is stopping — never blocks. The future
  /// carries the result or the query_batch exception.
  std::future<ServeResult> submit(core::SessionQuery query)
      SOMRM_EXCLUDES(mutex_);

  /// Callback flavour: @p callback fires on a worker thread when the query
  /// completes (or fails). Admission errors still throw synchronously.
  void submit(core::SessionQuery query, ServeCallback callback)
      SOMRM_EXCLUDES(mutex_);

  /// Manual-mode pump: pops one key group (no batching-window wait) and
  /// executes it on the calling thread. Returns false when the queue was
  /// empty. Usable whatever num_workers is, but intended for 0.
  bool drain_one() SOMRM_EXCLUDES(mutex_);

  /// Stops accepting work, drains everything already accepted (workers
  /// finish their queues; in manual mode the queue is drained inline),
  /// joins the workers. Idempotent; called by the destructor.
  void stop() SOMRM_EXCLUDES(mutex_);

  ServeEngineStats stats() const SOMRM_EXCLUDES(mutex_);

  /// Persists the session's sweep cache to options.snapshot_path
  /// (atomically; see serve/snapshot.hpp). Returns the entry count.
  /// Throws std::logic_error when no snapshot_path was configured.
  std::size_t save_snapshot() const;

  const std::shared_ptr<const core::SolveSession>& session() const {
    return session_;
  }
  const ServeEngineOptions& options() const { return options_; }

 private:
  /// One accepted query waiting for (or riding in) a group.
  struct Pending {
    core::SessionQuery query;
    std::string key;  ///< SolveSession::sweep_key — the grouping identity
    std::int64_t enqueue_ns = 0;
    bool use_callback = false;
    std::promise<ServeResult> promise;
    ServeCallback callback;
  };

  void enqueue(Pending&& p) SOMRM_EXCLUDES(mutex_);
  void worker_loop() SOMRM_EXCLUDES(mutex_);
  /// Splices queued entries matching @p key onto @p group (up to
  /// max_batch). Caller holds mutex_.
  void gather_same_key_locked(const std::string& key,
                              std::list<Pending>& group)
      SOMRM_REQUIRES(mutex_);
  /// Executes one group via query_batch and delivers every completion.
  void run_group(std::list<Pending> group) SOMRM_EXCLUDES(mutex_);

  std::shared_ptr<const core::SolveSession> session_;
  ServeEngineOptions options_;

  mutable support::Mutex mutex_;
  support::CondVar cv_;
  std::list<Pending> queue_ SOMRM_GUARDED_BY(mutex_);
  bool stopping_ SOMRM_GUARDED_BY(mutex_) = false;
  ServeEngineStats counters_ SOMRM_GUARDED_BY(mutex_);

  // Started in the constructor, joined under join_mutex_ by stop() (which
  // may be called concurrently; the second caller waits, then finds the
  // threads unjoinable).
  support::Mutex join_mutex_;
  std::vector<std::thread> workers_ SOMRM_GUARDED_BY(join_mutex_);
};

}  // namespace somrm::serve
