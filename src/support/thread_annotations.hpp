// somrm/support/thread_annotations.hpp
//
// Compiler-enforced thread-safety: clang capability-analysis attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html) behind SOMRM_
// macros that expand to nothing on every other compiler, plus the annotated
// Mutex / MutexLock / CondVar wrappers the analysis needs to see lock
// acquisition at all.
//
// Why wrappers instead of std::mutex: with libstdc++, std::mutex and
// std::lock_guard carry no capability attributes, so clang's analysis
// cannot tell that `std::lock_guard<std::mutex> lock(m_)` acquires `m_` —
// every SOMRM_GUARDED_BY member would warn on every access. The wrappers
// are zero-cost shims over the std primitives whose lock/unlock functions
// ARE annotated, which is the whole trick: the analysis is purely
// syntactic and flow-based, it just needs the acquire/release points named.
//
// House rules for mutex-protected state (see CONTRIBUTING "Annotating
// shared state"):
//  * Every field a mutex protects is declared SOMRM_GUARDED_BY(that mutex).
//  * Private helpers that expect the lock held are SOMRM_REQUIRES(mutex)
//    (the `_locked` suffix convention stays — the annotation enforces it).
//  * Public entry points that take the lock themselves are
//    SOMRM_EXCLUDES(mutex) so re-entry deadlocks are compile errors.
//  * Data owned by one thread (per-thread arenas, relaxed atomics) is NOT
//    guarded — the analysis models lock discipline, not ownership; those
//    invariants stay documented in prose and enforced by TSan.
//
// The clang CI leg builds with -Werror=thread-safety, so a guarded field
// read outside its mutex is a build break, not a review comment.

#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#define SOMRM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SOMRM_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Marks a class as a capability (a lockable resource) named @p x in
/// diagnostics, e.g. class SOMRM_CAPABILITY("mutex") Mutex.
#define SOMRM_CAPABILITY(x) SOMRM_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (MutexLock below).
#define SOMRM_SCOPED_CAPABILITY SOMRM_THREAD_ANNOTATION(scoped_lockable)

/// Field annotation: reads and writes require holding @p x.
#define SOMRM_GUARDED_BY(x) SOMRM_THREAD_ANNOTATION(guarded_by(x))

/// Pointer-field annotation: dereferences require holding @p x (the pointer
/// itself is unguarded).
#define SOMRM_PT_GUARDED_BY(x) SOMRM_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function annotation: caller must hold the named capabilities.
#define SOMRM_REQUIRES(...) \
  SOMRM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function annotation: caller must hold the named capabilities shared.
#define SOMRM_REQUIRES_SHARED(...) \
  SOMRM_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// Function annotation: acquires the named capabilities (exclusive).
#define SOMRM_ACQUIRE(...) \
  SOMRM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function annotation: releases the named capabilities.
#define SOMRM_RELEASE(...) \
  SOMRM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function annotation: acquires the capabilities iff the return value
/// equals @p ret (first argument).
#define SOMRM_TRY_ACQUIRE(...) \
  SOMRM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Function annotation: caller must NOT hold the named capabilities —
/// makes self-deadlock (re-entrant locking) a compile error.
#define SOMRM_EXCLUDES(...) SOMRM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define SOMRM_RETURN_CAPABILITY(x) SOMRM_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Use only with a
/// comment explaining the invariant the analysis cannot express.
#define SOMRM_NO_THREAD_SAFETY_ANALYSIS \
  SOMRM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace somrm::support {

/// std::mutex with its acquire/release points visible to the capability
/// analysis. Same size and cost as std::mutex; satisfies BasicLockable, so
/// CondVar (condition_variable_any) can wait on it directly.
class SOMRM_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SOMRM_ACQUIRE() { mu_.lock(); }
  void unlock() SOMRM_RELEASE() { mu_.unlock(); }
  bool try_lock() SOMRM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex (the std::lock_guard shape, annotated). Not
/// movable, not relockable: one scope, one acquisition — code that needs
/// to drop and retake a lock should use two scopes, which the analysis
/// (and a reader) can follow branch by branch.
class SOMRM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SOMRM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SOMRM_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable that waits on an annotated Mutex directly
/// (condition_variable_any unlocks/relocks whatever BasicLockable it is
/// given). Waits are expressed as explicit `while (!cond) cv.wait(mu);`
/// loops in code holding a MutexLock on @p mu — predicate lambdas would be
/// analyzed as unannotated functions and warn on every guarded read.
/// During the wait the mutex is momentarily released; the analysis does
/// not model that (it still considers the caller to hold @p mu), which is
/// exactly the contract a condition wait re-establishes before returning.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases @p mu, blocks until notified, reacquires @p mu.
  /// Spurious wakeups happen; always wait in a condition loop.
  void wait(Mutex& mu) SOMRM_REQUIRES(mu) { cv_.wait(mu); }

  /// wait() with a relative deadline: returns std::cv_status::timeout when
  /// @p rel_time elapsed without a notification. The same condition-loop
  /// rule applies — callers re-check their predicate AND their deadline,
  /// since a notify and a timeout can race.
  template <class Rep, class Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& rel_time)
      SOMRM_REQUIRES(mu) {
    return cv_.wait_for(mu, rel_time);
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace somrm::support
