#include "obs/histogram.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "support/thread_annotations.hpp"

namespace somrm::obs {

// ---------------------------------------------------------------------------
// Bucket geometry — pure arithmetic, compiled in both builds.
// ---------------------------------------------------------------------------

namespace {
// 4 sub-buckets per power-of-two octave: relative width <= 25%.
constexpr unsigned kSubBits = 2;
constexpr std::size_t kSubMask = (std::size_t{1} << kSubBits) - 1;
}  // namespace

std::size_t histogram_bucket_index(std::int64_t value) {
  if (value <= 0) return 0;
  const std::uint64_t u = static_cast<std::uint64_t>(value);
  const unsigned msb = 63u - static_cast<unsigned>(std::countl_zero(u));
  if (msb < kSubBits) return static_cast<std::size_t>(u);  // 1..3 exact
  const std::size_t sub =
      static_cast<std::size_t>(u >> (msb - kSubBits)) & kSubMask;
  return ((static_cast<std::size_t>(msb) - 1) << kSubBits) | sub;
}

std::int64_t histogram_bucket_lower(std::size_t index) {
  if (index < (std::size_t{1} << kSubBits))
    return static_cast<std::int64_t>(index);
  const unsigned msb = static_cast<unsigned>(index >> kSubBits) + 1;
  const std::int64_t base = static_cast<std::int64_t>(
      (std::size_t{1} << kSubBits) + (index & kSubMask));
  return base << (msb - kSubBits);
}

std::int64_t histogram_bucket_upper(std::size_t index) {
  if (index + 1 >= kHistogramBuckets)
    return std::numeric_limits<std::int64_t>::max();
  return histogram_bucket_lower(index + 1);
}

std::int64_t histogram_quantile_from_counts(
    std::span<const std::int64_t> buckets, double q) {
  std::int64_t total = 0;
  for (std::int64_t c : buckets) total += c;
  if (total <= 0) return 0;
  // 1-based rank of the order statistic the quantile names. q is clamped
  // so q <= 0 asks for the minimum and q >= 1 for the maximum.
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::int64_t rank = static_cast<std::int64_t>(
      std::ceil(clamped * static_cast<double>(total)));
  rank = std::max<std::int64_t>(rank, 1);
  rank = std::min(rank, total);
  std::int64_t cumulative = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= rank) return histogram_bucket_lower(b);
  }
  return histogram_bucket_lower(buckets.empty() ? 0 : buckets.size() - 1);
}

#if SOMRM_OBSERVABILITY

// ---------------------------------------------------------------------------
// Registry — mirrors telemetry.cpp's Metric registry: per-thread arenas of
// relaxed atomics, retired totals for exited threads, leaked singletons so
// the state survives static destruction order at exit.
// ---------------------------------------------------------------------------

namespace {

constexpr std::size_t kMaxHistograms = 16;

/// One thread's arena for one histogram: the bucket cells plus the value
/// sum. The owning thread is the only writer; merge readers use relaxed
/// loads — per-bucket integer sums commute, so the merged histogram is
/// deterministic however threads were scheduled.
struct HistArena {
  std::array<std::atomic<std::int64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::int64_t> sum{0};
};

using HistSlots = std::array<HistArena, kMaxHistograms>;

struct HistRegistry {
  support::Mutex mutex;
  // index == histogram id
  std::vector<std::string> names SOMRM_GUARDED_BY(mutex);
  // registered thread arenas (arena cells are per-thread atomics, unguarded)
  std::vector<HistSlots*> live SOMRM_GUARDED_BY(mutex);
  // Retired totals of threads that already exited.
  std::array<std::array<std::int64_t, kHistogramBuckets>, kMaxHistograms>
      retired_buckets SOMRM_GUARDED_BY(mutex){};
  std::array<std::int64_t, kMaxHistograms> retired_sum SOMRM_GUARDED_BY(mutex){};
};

HistRegistry& hist_registry() {
  static HistRegistry* r = new HistRegistry();  // leaked: usable during exit
  return *r;
}

struct ThreadHistSlots {
  HistSlots slots{};
  ThreadHistSlots() {
    HistRegistry& r = hist_registry();
    support::MutexLock lock(r.mutex);
    r.live.push_back(&slots);
  }
  ~ThreadHistSlots() {
    HistRegistry& r = hist_registry();
    support::MutexLock lock(r.mutex);
    for (std::size_t h = 0; h < kMaxHistograms; ++h) {
      for (std::size_t b = 0; b < kHistogramBuckets; ++b)
        r.retired_buckets[h][b] +=
            slots[h].buckets[b].load(std::memory_order_relaxed);
      r.retired_sum[h] += slots[h].sum.load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), &slots));
  }
};

HistSlots& thread_hist_slots() {
  thread_local ThreadHistSlots t;
  return t.slots;
}

/// Merged bucket counts + sum for one histogram id.
void merge_one(std::size_t id, std::vector<std::int64_t>& buckets,
               std::int64_t& sum) {
  HistRegistry& r = hist_registry();
  support::MutexLock lock(r.mutex);
  buckets.assign(r.retired_buckets[id].begin(), r.retired_buckets[id].end());
  sum = r.retired_sum[id];
  for (HistSlots* s : r.live) {
    for (std::size_t b = 0; b < kHistogramBuckets; ++b)
      buckets[b] += (*s)[id].buckets[b].load(std::memory_order_relaxed);
    sum += (*s)[id].sum.load(std::memory_order_relaxed);
  }
}

}  // namespace

void Histogram::record(std::int64_t value) {
  HistArena& arena = thread_hist_slots()[id_];
  arena.buckets[histogram_bucket_index(value)].fetch_add(
      1, std::memory_order_relaxed);
  arena.sum.fetch_add(value, std::memory_order_relaxed);
}

std::int64_t Histogram::count() const {
  std::vector<std::int64_t> buckets;
  std::int64_t sum = 0;
  merge_one(id_, buckets, sum);
  std::int64_t total = 0;
  for (std::int64_t c : buckets) total += c;
  return total;
}

std::int64_t Histogram::sum() const {
  std::vector<std::int64_t> buckets;
  std::int64_t sum = 0;
  merge_one(id_, buckets, sum);
  return sum;
}

std::vector<std::int64_t> Histogram::bucket_counts() const {
  std::vector<std::int64_t> buckets;
  std::int64_t sum = 0;
  merge_one(id_, buckets, sum);
  return buckets;
}

std::int64_t Histogram::quantile(double q) const {
  return histogram_quantile_from_counts(bucket_counts(), q);
}

Histogram& histogram(std::string_view name) {
  HistRegistry& r = hist_registry();
  support::MutexLock lock(r.mutex);
  // Handles are stable: leaked pointer vector, same pattern as obs::metric.
  static std::vector<Histogram*>* handles = new std::vector<Histogram*>();
  for (std::size_t i = 0; i < r.names.size(); ++i)
    if (r.names[i] == name) return *(*handles)[i];
  if (r.names.size() >= kMaxHistograms)
    throw std::length_error("obs::histogram: registry capacity exceeded");
  r.names.emplace_back(name);
  handles->push_back(new Histogram(r.names.size() - 1));
  return *handles->back();
}

std::vector<HistogramSample> histogram_snapshot() {
  HistRegistry& r = hist_registry();
  std::vector<std::string> names;
  {
    support::MutexLock lock(r.mutex);
    names = r.names;
  }
  std::vector<HistogramSample> out(names.size());
  for (std::size_t i = 0; i < names.size(); ++i) {
    out[i].name = names[i];
    merge_one(i, out[i].buckets, out[i].sum);
    for (std::int64_t c : out[i].buckets) out[i].count += c;
  }
  std::sort(out.begin(), out.end(),
            [](const HistogramSample& a, const HistogramSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_histograms() {
  HistRegistry& r = hist_registry();
  support::MutexLock lock(r.mutex);
  for (auto& per_hist : r.retired_buckets) per_hist.fill(0);
  r.retired_sum.fill(0);
  for (HistSlots* s : r.live) {
    for (HistArena& arena : *s) {
      for (auto& cell : arena.buckets)
        cell.store(0, std::memory_order_relaxed);
      arena.sum.store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // SOMRM_OBSERVABILITY

}  // namespace somrm::obs
