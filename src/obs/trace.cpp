#include "obs/trace.hpp"

#if SOMRM_OBSERVABILITY

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "support/thread_annotations.hpp"

namespace somrm::obs {

namespace {

struct Event {
  const char* name;
  const char* cat;
  char ph;  // 'X' complete, 'i' instant, 'C' counter
  std::int64_t ts_ns;
  std::int64_t dur_ns;
  std::uint32_t tid;
  const char* key0;
  double value0;
  const char* key1;
  double value1;
};

struct ThreadBuffer;

/// Global trace state. Leaked so atexit flushing and late thread exits can
/// still reach it during shutdown.
struct TraceState {
  support::Mutex mutex;
  std::string path SOMRM_GUARDED_BY(mutex);  // "" = disabled
  std::atomic<bool> enabled{false};          // lock-free fast-path flag
  // registered thread buffers; each buffer's event list has its OWN mutex
  // (see ThreadBuffer) so recording never contends on — or races with —
  // this registration lock
  std::vector<ThreadBuffer*> live SOMRM_GUARDED_BY(mutex);
  // buffers of exited threads
  std::vector<Event> orphaned SOMRM_GUARDED_BY(mutex);
  // drained by earlier write_trace() calls
  std::vector<Event> flushed SOMRM_GUARDED_BY(mutex);
  std::uint32_t next_tid SOMRM_GUARDED_BY(mutex) = 0;
  bool atexit_registered SOMRM_GUARDED_BY(mutex) = false;
};

TraceState& state() {
  static TraceState* s = [] {
    auto* st = new TraceState();
    if (const char* env = std::getenv("SOMRM_TRACE")) {
      if (*env != '\0') {
        support::MutexLock lock(st->mutex);
        st->path = env;
        st->enabled.store(true, std::memory_order_relaxed);
        st->atexit_registered = true;
        std::atexit([] { write_trace(); });
      }
    }
    return st;
  }();
  return *s;
}

/// One thread's event buffer. The events vector is guarded by the buffer's
/// own mutex: the owning thread appends under it, and write_trace drains
/// under it, so recording concurrent with a flush is safe (it used to be a
/// documented caller's-responsibility race — annotating this file is what
/// surfaced it). Lock order is state().mutex before any buffer mutex;
/// push_event takes only its own buffer mutex, so no cycle exists.
struct ThreadBuffer {
  support::Mutex mutex;
  std::vector<Event> events SOMRM_GUARDED_BY(mutex);
  std::uint32_t tid = 0;  // immutable after construction
  ThreadBuffer() {
    TraceState& s = state();
    support::MutexLock lock(s.mutex);
    tid = s.next_tid++;
    {
      support::MutexLock buf_lock(mutex);
      events.reserve(1024);
    }
    s.live.push_back(this);
  }
  ~ThreadBuffer() {
    TraceState& s = state();
    support::MutexLock lock(s.mutex);
    support::MutexLock buf_lock(mutex);
    s.orphaned.insert(s.orphaned.end(), events.begin(), events.end());
    s.live.erase(std::find(s.live.begin(), s.live.end(), this));
  }
};

ThreadBuffer& thread_buffer() {
  thread_local ThreadBuffer t;
  return t;
}

void push_event(Event e) {
  ThreadBuffer& buf = thread_buffer();
  e.tid = buf.tid;
  support::MutexLock lock(buf.mutex);
  buf.events.push_back(e);
}

void register_atexit_locked(TraceState& s) SOMRM_REQUIRES(s.mutex) {
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { write_trace(); });
  }
}

void write_json_escaped(std::FILE* f, const char* str) {
  for (const char* p = str; *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\')
      std::fprintf(f, "\\%c", c);
    else if (static_cast<unsigned char>(c) < 0x20)
      std::fprintf(f, "\\u%04x", c);
    else
      std::fputc(c, f);
  }
}

}  // namespace

bool trace_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void set_trace_path(const std::string& path) {
  write_trace();  // flush buffered events to the previous path, if any
  TraceState& s = state();
  support::MutexLock lock(s.mutex);
  s.path = path;
  s.flushed.clear();  // a new path starts a fresh trace
  s.enabled.store(!path.empty(), std::memory_order_relaxed);
  if (!path.empty()) register_atexit_locked(s);
}

std::string trace_path() {
  TraceState& s = state();
  support::MutexLock lock(s.mutex);
  return s.path;
}

void trace_complete(const char* name, const char* cat, std::int64_t ts_ns,
                    std::int64_t dur_ns, const char* key0, double value0,
                    const char* key1, double value1) {
  if (!trace_enabled()) return;
  push_event(Event{name, cat, 'X', ts_ns, dur_ns, 0, key0, value0, key1,
                   value1});
}

void trace_instant(const char* name, const char* cat, const char* key0,
                   double value0) {
  if (!trace_enabled()) return;
  push_event(Event{name, cat, 'i', now_ns(), 0, 0, key0, value0, nullptr,
                   0.0});
}

void trace_counter(const char* name, double value) {
  if (!trace_enabled()) return;
  push_event(Event{name, "counter", 'C', now_ns(), 0, 0, "value", value,
               nullptr, 0.0});
}

void write_trace() {
  TraceState& s = state();
  std::vector<Event> events;
  std::string path;
  {
    support::MutexLock lock(s.mutex);
    path = s.path;
    if (path.empty()) return;
    // Drain every buffer into the cumulative flushed list, then write the
    // whole list: repeated flushes (explicit + the atexit one) each rewrite
    // the complete trace instead of the most recent increment only. Each
    // live buffer is drained under its own mutex (lock order: s.mutex
    // first, buffer mutex second), so threads recording events concurrently
    // with this flush are safe — their events land in either this trace
    // write or the next one, never torn.
    s.flushed.insert(s.flushed.end(), s.orphaned.begin(), s.orphaned.end());
    s.orphaned.clear();
    for (ThreadBuffer* buf : s.live) {
      support::MutexLock buf_lock(buf->mutex);
      s.flushed.insert(s.flushed.end(), buf->events.begin(),
                       buf->events.end());
      buf->events.clear();
    }
    events = s.flushed;
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     return a.ts_ns != b.ts_ns ? a.ts_ns < b.ts_ns
                                               : a.tid < b.tid;
                   });
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;  // tracing is best-effort; never fail the solve
  std::fprintf(f, "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n");
  bool first = true;
  // Thread-name metadata so Perfetto labels the tracks.
  std::uint32_t max_tid = 0;
  for (const Event& e : events) max_tid = std::max(max_tid, e.tid);
  for (std::uint32_t t = 0; t <= max_tid && !events.empty(); ++t) {
    std::fprintf(f,
                 "%s{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
                 "\"tid\": %u, \"args\": {\"name\": \"%s%u\"}}",
                 first ? "" : ",\n", t, t == 0 ? "somrm-main-" : "somrm-worker-",
                 t);
    first = false;
  }
  for (const Event& e : events) {
    std::fprintf(f, "%s{\"name\": \"", first ? "" : ",\n");
    first = false;
    write_json_escaped(f, e.name);
    std::fprintf(f, "\", \"cat\": \"");
    write_json_escaped(f, e.cat);
    std::fprintf(f, "\", \"ph\": \"%c\", \"ts\": %.3f, \"pid\": 1, \"tid\": %u",
                 e.ph, static_cast<double>(e.ts_ns) * 1e-3, e.tid);
    if (e.ph == 'X')
      std::fprintf(f, ", \"dur\": %.3f", static_cast<double>(e.dur_ns) * 1e-3);
    if (e.ph == 'i') std::fprintf(f, ", \"s\": \"t\"");
    if (e.key0 != nullptr || e.key1 != nullptr) {
      std::fprintf(f, ", \"args\": {");
      if (e.key0 != nullptr) {
        std::fprintf(f, "\"");
        write_json_escaped(f, e.key0);
        std::fprintf(f, "\": %.17g", e.value0);
      }
      if (e.key1 != nullptr) {
        std::fprintf(f, "%s\"", e.key0 != nullptr ? ", " : "");
        write_json_escaped(f, e.key1);
        std::fprintf(f, "\": %.17g", e.value1);
      }
      std::fprintf(f, "}");
    }
    std::fprintf(f, "}");
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
}

}  // namespace somrm::obs

#endif  // SOMRM_OBSERVABILITY
