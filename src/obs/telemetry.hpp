// somrm/obs/telemetry.hpp
//
// Solver telemetry: named counters with scoped timers, per-thread
// accumulation, and the SolverStats struct embedded in MomentResult.
//
// Design constraints (see DESIGN.md §7):
//  * Instrumented code must stay bit-identical: telemetry never touches the
//    numeric data flow — it only reads clocks and bumps integer cells — and
//    all merged quantities are integer sums, which commute, so the merged
//    totals are deterministic regardless of which thread ran which range.
//  * TSan-clean: every cell a thread writes is its own (thread_local arena,
//    one cell per metric), stored as relaxed atomics so the merging reader
//    needs no handshake with the owning thread.
//  * Compiled out entirely under -DSOMRM_OBSERVABILITY=OFF: the whole API
//    collapses to inline no-ops (now_ns() returns 0, Metric::add() is
//    empty), so call sites need no #if and the optimizer deletes them.
//
// Usage in a hot loop:
//
//   static somrm::obs::Metric& m = somrm::obs::metric("sweep.step");
//   const std::int64_t t0 = somrm::obs::now_ns();
//   ... work ...
//   m.add(1, somrm::obs::now_ns() - t0);
//
// The function-local static makes the name lookup once; add() is two
// relaxed fetch_adds on cells owned by the calling thread.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#ifndef SOMRM_OBSERVABILITY
#define SOMRM_OBSERVABILITY 1
#endif

namespace somrm::obs {

/// True when the library was built with telemetry collection compiled in.
constexpr bool kEnabled = SOMRM_OBSERVABILITY != 0;

/// Per-solve statistics embedded in core::MomentResult (and the impulse
/// result). The structural fields (kernel, truncation_points, window
/// widths, sweep_steps) are byproducts of the solve and are filled even in
/// SOMRM_OBSERVABILITY=OFF builds; the timing/throughput fields require
/// telemetry and stay zero when it is compiled out.
///
/// Mapping to the paper's Theorem-4 quantities: truncation_points[j] is
/// G(epsilon) for moment order j (the max over the requested time points),
/// sweep_steps is the G_max actually iterated (the shared multi-time
/// sweep's length), and window_widths[ti] is the number of Poisson weights
/// Pois(k; q t_i) above DBL_MIN — the k-range that actually contributes to
/// V^(n)(t_i).
struct SolverStats {
  /// Sweep kernel that ran: "panel", "fused_vectors", "degenerate" (q == 0
  /// closed form), or "impulse_panel"/"impulse_fused_vectors".
  std::string kernel;
  /// SIMD level the CSR×panel row kernels dispatch to ("scalar" in
  /// portable builds; "avx2"/"avx512" under -DSOMRM_NATIVE=ON when the CPU
  /// supports it). Bit-exact either way — this records speed, not values.
  std::string simd;
  /// Bandwidth-reduction reorder applied at sweep setup: "none", "rcm",
  /// or "degree" (MomentSolverOptions::reorder). Outputs are permuted back,
  /// so this too records locality, not values.
  std::string reorder;
  /// Sparse storage Q' was streamed from: "csr", "sellcs"
  /// (MomentSolverOptions::storage), or "none" for the degenerate q == 0
  /// closed form, which builds no sparse matrix at all. Bit-exact either
  /// way — like simd/reorder, this records traffic, not values.
  std::string storage;
  /// SELL-C-σ padding diagnostics: the fraction of allocated entry slots
  /// that are zero padding and its complement nnz / allocated. 0 and 1
  /// respectively for CSR (nothing padded) and the degenerate path.
  double padding_ratio = 0.0;
  double chunk_occupancy = 1.0;
  /// CSR bandwidth of Q' before/after the reorder (equal when reorder is
  /// "none" or the computed permutation was the identity).
  std::size_t bandwidth_before = 0;
  std::size_t bandwidth_after = 0;
  /// Panel width n+1 streamed per CSR pass (0 for the degenerate path).
  std::size_t panel_width = 0;
  /// linalg::num_threads() at solve time.
  std::size_t threads = 0;
  /// Theorem-4 G(epsilon) per moment order 0..n (max over time points).
  std::vector<std::size_t> truncation_points;
  /// Poisson weight-window width per requested time point.
  std::vector<std::size_t> window_widths;
  /// U-recursion steps executed (== G_max of the shared sweep).
  std::size_t sweep_steps = 0;
  /// Sum over steps of the number of active (time point, weight) pairs.
  std::size_t active_weight_sum = 0;
  /// Floating-point ops in the sweep's CSR dot products: 2 * stored
  /// entries * panel lanes, summed over steps (diagonal and accumulation
  /// terms excluded — this is the SpMM traffic the paper's section-6 cost
  /// model counts).
  std::size_t sweep_flops = 0;

  // -- timing (zero when SOMRM_OBSERVABILITY=OFF) --
  double scale_seconds = 0.0;       ///< model scaling / matrix build
  double truncation_seconds = 0.0;  ///< Theorem-4 G search
  double window_seconds = 0.0;      ///< Poisson weight-window build
  double sweep_seconds = 0.0;       ///< the U-recursion sweep itself
  double finalize_seconds = 0.0;    ///< unscale + shift + pi-weighting
  double total_seconds = 0.0;       ///< whole solve call
  /// 2 * sweep_flops / sweep_seconds, in GFLOP/s (0 when untimed).
  double effective_gflops = 0.0;
  /// Worker busy-seconds inside the sweep's parallel regions.
  double busy_seconds = 0.0;
  /// 1 - busy / (threads * sweep wall): 0 = perfectly balanced, -> 1 when
  /// most worker capacity idles (includes serial portions of the sweep).
  double load_imbalance = 0.0;

  // -- batched-serving cache (filled by core::SolveSession queries with the
  //    session cache's cumulative totals at query time; all zero for direct
  //    solver calls, which never touch a cache) --
  std::size_t cache_hits = 0;       ///< queries served from a retained sweep
  std::size_t cache_misses = 0;     ///< queries that ran a fresh sweep
  std::size_t cache_evictions = 0;  ///< sweeps dropped by the LRU byte budget
  std::size_t cache_coalesced = 0;  ///< misses that joined an in-flight sweep
  /// Cache footprint currently exceeds its byte budget (a single retained
  /// sweep larger than the whole budget — eviction never drops the MRU
  /// entry, so the overshoot is permanent until the entry ages out).
  bool cache_over_budget = false;
};

/// One merged metric as returned by snapshot().
struct MetricSample {
  std::string name;
  std::int64_t count = 0;     ///< sum of add() counts across threads
  std::int64_t total_ns = 0;  ///< sum of add() durations across threads
  double seconds() const { return static_cast<double>(total_ns) * 1e-9; }
};

/// One gauge as returned by gauge_snapshot().
struct GaugeSample {
  std::string name;
  std::int64_t value = 0;  ///< last value set()
};

#if SOMRM_OBSERVABILITY

/// A named counter/timer pair. Handles are stable for the process lifetime;
/// add() touches only cells owned by the calling thread.
class Metric {
 public:
  /// Adds @p count occurrences and @p ns nanoseconds to this thread's cell.
  void add(std::int64_t count, std::int64_t ns = 0);

  /// Merged totals across all threads (live and retired). Safe to call
  /// concurrently with add(); the value is a momentary relaxed snapshot.
  std::int64_t count() const;
  std::int64_t total_ns() const;

 private:
  friend Metric& metric(std::string_view name);
  explicit Metric(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Finds or creates the metric named @p name. Throws std::length_error past
/// the fixed registry capacity (64 metrics). Cache the reference in a
/// function-local static at hot call sites.
Metric& metric(std::string_view name);

/// Monotonic nanoseconds since process start (0 when telemetry is off).
std::int64_t now_ns();

/// RAII timer: adds one count plus the elapsed nanoseconds on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Metric& m) : metric_(m), start_(now_ns()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { metric_.add(1, now_ns() - start_); }

 private:
  Metric& metric_;
  std::int64_t start_;
};

/// A named point-in-time gauge (memory footprints, cache occupancy).
/// Unlike Metric, a gauge is a single process-wide cell holding the LAST
/// value set — samples overwrite, they do not accumulate — so it models
/// "current level" quantities that have no meaningful cross-thread sum.
/// set()/value() are one relaxed atomic store/load.
class Gauge {
 public:
  void set(std::int64_t value);
  std::int64_t value() const;

 private:
  friend Gauge& gauge(std::string_view name);
  explicit Gauge(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Finds or creates the gauge named @p name. Throws std::length_error past
/// the fixed registry capacity (32 gauges).
Gauge& gauge(std::string_view name);

/// Merged totals of every registered metric, sorted by name (deterministic
/// presentation regardless of registration order).
std::vector<MetricSample> snapshot();

/// Every registered gauge with its last-set value, sorted by name.
std::vector<GaugeSample> gauge_snapshot();

/// Zeros every metric cell. Only meaningful between solves (concurrent
/// add() calls may survive the reset).
void reset_metrics();

#else  // SOMRM_OBSERVABILITY == 0: the whole surface is an inline no-op.

class Metric {
 public:
  void add(std::int64_t, std::int64_t = 0) {}
  std::int64_t count() const { return 0; }
  std::int64_t total_ns() const { return 0; }
};

inline Metric& metric(std::string_view) {
  static Metric dummy;
  return dummy;
}

class Gauge {
 public:
  void set(std::int64_t) {}
  std::int64_t value() const { return 0; }
};

inline Gauge& gauge(std::string_view) {
  static Gauge dummy;
  return dummy;
}

inline std::int64_t now_ns() { return 0; }

class ScopedTimer {
 public:
  explicit ScopedTimer(Metric&) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
};

inline std::vector<MetricSample> snapshot() { return {}; }
inline std::vector<GaugeSample> gauge_snapshot() { return {}; }
inline void reset_metrics() {}

#endif  // SOMRM_OBSERVABILITY

/// Seconds between two now_ns() readings (0 when telemetry is off).
inline double seconds_between(std::int64_t t0, std::int64_t t1) {
  return static_cast<double>(t1 - t0) * 1e-9;
}

/// Human-readable per-solve summary (phase times, Theorem-4 quantities,
/// kernel throughput). Works in OFF builds too — timing lines then show
/// the structural fields only.
std::string report(const SolverStats& stats);

/// Human-readable dump of the cumulative registry (empty-bodied in OFF
/// builds). Rendered from the SAME obs::metrics_snapshot() the Prometheus
/// and JSON exporters consume (obs/export.hpp, where this is defined), so
/// the human and machine views cannot drift. Includes gauges, histogram
/// quantiles, and derived SpMV throughput when the spmv.* metrics are
/// present.
std::string report();

}  // namespace somrm::obs
