// somrm/obs/export.hpp
//
// Metrics export layer: one canonical registry snapshot (counters, gauges,
// histograms) rendered three ways — Prometheus text exposition, a JSON
// document, and the human-readable obs::report() dump. All three render
// from the SAME MetricsSnapshot, so the views cannot drift.
//
// Runtime enablement mirrors traces (obs/trace.hpp): set
// SOMRM_METRICS=<path> in the environment (read once at first use) or call
// set_metrics_path(). write_metrics() — registered atexit on first
// enablement — dumps the cumulative registry to the path; a path ending in
// ".json" selects the JSON document, anything else the Prometheus text
// format. Writes are best-effort: a failed open never fails the solve.
//
// Prometheus naming: metric names are prefixed "somrm_" and dots become
// underscores. Counters end in "_total" (plus "_seconds_total" when the
// metric carries time); gauges keep the bare name; histograms emit the
// standard cumulative "_bucket{le=...}" series (trailing all-zero buckets
// elided), "_sum", and "_count".
//
// Under -DSOMRM_OBSERVABILITY=OFF the snapshot is empty, SOMRM_METRICS is
// ignored, and no file is ever written; the pure renderers stay available
// (they are functions of the snapshot value, not of global state).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"

namespace somrm::obs {

/// One coherent sample of the whole registry. Every exporter (Prometheus,
/// JSON, report()) consumes this struct, nothing else.
struct MetricsSnapshot {
  std::vector<MetricSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
};

/// Peak resident set size of this process in bytes (VmHWM from
/// /proc/self/status), or 0 when unavailable (non-Linux, masked /proc).
/// A pure system read — available in ON and OFF builds.
std::int64_t peak_rss_bytes();

/// Renders @p snap in Prometheus text exposition format (ends with a
/// trailing newline; empty registry renders to an empty string).
std::string render_prometheus(const MetricsSnapshot& snap);

/// Renders @p snap as the canonical JSON document:
///   {"counters": [{"name", "count", "total_ns"}...],
///    "gauges": [{"name", "value"}...],
///    "histograms": [{"name", "count", "sum", "p50", "p90", "p99", "p999",
///                    "buckets": [{"upper", "count"}...]}...]}
/// Arrays are sorted by name; bucket lists carry only non-empty buckets.
std::string render_json(const MetricsSnapshot& snap);

#if SOMRM_OBSERVABILITY

/// Samples the registry: every counter, gauge, and histogram, each list
/// sorted by name. Refreshes the "mem.peak_rss_bytes" gauge first so
/// exports always carry the current peak RSS.
MetricsSnapshot metrics_snapshot();

/// Enables metrics export to @p path ("" disables). Also the hook
/// SOMRM_METRICS resolves to. Registers the atexit flush on first
/// enablement.
void set_metrics_path(const std::string& path);

/// Currently configured path ("" when disabled).
std::string metrics_path();

/// Writes the cumulative registry to the configured path now (format by
/// extension: ".json" selects JSON, anything else Prometheus text). No-op
/// when disabled; repeated calls each rewrite the complete cumulative
/// state. Best-effort: failures are silent.
void write_metrics();

#else  // SOMRM_OBSERVABILITY == 0

inline MetricsSnapshot metrics_snapshot() { return {}; }
inline void set_metrics_path(const std::string&) {}
inline std::string metrics_path() { return {}; }
inline void write_metrics() {}

#endif  // SOMRM_OBSERVABILITY

}  // namespace somrm::obs
