#include "obs/export.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "support/thread_annotations.hpp"

namespace somrm::obs {

// ---------------------------------------------------------------------------
// Pure parts — compiled in both builds.
// ---------------------------------------------------------------------------

namespace {

std::string export_format_seconds(double s) {
  char buf[64];
  if (s >= 1.0)
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  return buf;
}

/// "somrm_" prefix, dots (and any other non-[a-zA-Z0-9_]) to underscores —
/// the Prometheus metric-name charset.
std::string prom_name(const std::string& name) {
  std::string out = "somrm_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out += buf;
}

/// Index of the last non-zero bucket, or SIZE_MAX when all are zero.
std::size_t last_nonzero(const std::vector<std::int64_t>& buckets) {
  std::size_t last = static_cast<std::size_t>(-1);
  for (std::size_t b = 0; b < buckets.size(); ++b)
    if (buckets[b] != 0) last = b;
  return last;
}

}  // namespace

std::int64_t peak_rss_bytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::int64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      long long v = 0;
      if (std::sscanf(line + 6, "%lld", &v) == 1) kb = v;
      break;
    }
  }
  std::fclose(f);
  return kb * 1024;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const MetricSample& m : snap.counters) {
    const std::string base = prom_name(m.name);
    out += "# HELP " + base + "_total Cumulative count of " + m.name + ".\n";
    out += "# TYPE " + base + "_total counter\n";
    out += base + "_total ";
    append_i64(out, m.count);
    out.push_back('\n');
    if (m.total_ns != 0) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.9f", m.seconds());
      out += "# HELP " + base + "_seconds_total Cumulative seconds in " +
             m.name + ".\n";
      out += "# TYPE " + base + "_seconds_total counter\n";
      out += base + "_seconds_total " + buf + "\n";
    }
  }
  for (const GaugeSample& g : snap.gauges) {
    const std::string base = prom_name(g.name);
    out += "# HELP " + base + " Last sampled value of " + g.name + ".\n";
    out += "# TYPE " + base + " gauge\n";
    out += base + " ";
    append_i64(out, g.value);
    out.push_back('\n');
  }
  for (const HistogramSample& h : snap.histograms) {
    const std::string base = prom_name(h.name);
    out += "# HELP " + base + " Distribution of " + h.name + ".\n";
    out += "# TYPE " + base + " histogram\n";
    // Cumulative le series: our buckets are [lower, upper) over integers,
    // so le = upper - 1 is the exact inclusive bound. Trailing all-zero
    // buckets (and the INT64_MAX-bounded last one) fold into +Inf.
    std::size_t last = last_nonzero(h.buckets);
    if (last == static_cast<std::size_t>(-1) ||
        last + 1 >= kHistogramBuckets)
      last = last == static_cast<std::size_t>(-1) ? 0 : kHistogramBuckets - 2;
    std::int64_t cumulative = 0;
    for (std::size_t b = 0; b <= last && b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      out += base + "_bucket{le=\"";
      append_i64(out, histogram_bucket_upper(b) - 1);
      out += "\"} ";
      append_i64(out, cumulative);
      out.push_back('\n');
    }
    out += base + "_bucket{le=\"+Inf\"} ";
    append_i64(out, h.count);
    out.push_back('\n');
    out += base + "_sum ";
    append_i64(out, h.sum);
    out.push_back('\n');
    out += base + "_count ";
    append_i64(out, h.count);
    out.push_back('\n');
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"counters\": [";
  bool first = true;
  for (const MetricSample& m : snap.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_json_escaped(out, m.name);
    out += "\", \"count\": ";
    append_i64(out, m.count);
    out += ", \"total_ns\": ";
    append_i64(out, m.total_ns);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"gauges\": [";
  first = true;
  for (const GaugeSample& g : snap.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_json_escaped(out, g.name);
    out += "\", \"value\": ";
    append_i64(out, g.value);
    out += "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"histograms\": [";
  first = true;
  for (const HistogramSample& h : snap.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"";
    append_json_escaped(out, h.name);
    out += "\", \"count\": ";
    append_i64(out, h.count);
    out += ", \"sum\": ";
    append_i64(out, h.sum);
    out += ", \"p50\": ";
    append_i64(out, h.quantile(0.50));
    out += ", \"p90\": ";
    append_i64(out, h.quantile(0.90));
    out += ", \"p99\": ";
    append_i64(out, h.quantile(0.99));
    out += ", \"p999\": ";
    append_i64(out, h.quantile(0.999));
    out += ", \"buckets\": [";
    bool bfirst = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      out += bfirst ? "" : ", ";
      bfirst = false;
      out += "{\"upper\": ";
      append_i64(out, histogram_bucket_upper(b));
      out += ", \"count\": ";
      append_i64(out, h.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

#if SOMRM_OBSERVABILITY

// ---------------------------------------------------------------------------
// Export state — mirrors trace.cpp's TraceState: env read once at first
// use, atexit flush registered on first enablement, leaked so the atexit
// handler can still reach it during shutdown.
// ---------------------------------------------------------------------------

namespace {

struct MetricsState {
  support::Mutex mutex;
  std::string path SOMRM_GUARDED_BY(mutex);  // "" = disabled
  bool atexit_registered SOMRM_GUARDED_BY(mutex) = false;
};

MetricsState& metrics_state() {
  static MetricsState* s = [] {
    auto* st = new MetricsState();
    if (const char* env = std::getenv("SOMRM_METRICS")) {
      if (*env != '\0') {
        support::MutexLock lock(st->mutex);
        st->path = env;
        st->atexit_registered = true;
        std::atexit([] { write_metrics(); });
      }
    }
    return st;
  }();
  return *s;
}

void register_metrics_atexit_locked(MetricsState& s) SOMRM_REQUIRES(s.mutex) {
  if (!s.atexit_registered) {
    s.atexit_registered = true;
    std::atexit([] { write_metrics(); });
  }
}

/// Eager SOMRM_METRICS probe. Traces read their env var lazily because
/// every trace call touches the trace state; nothing touches the metrics
/// state during a run unless a path was set explicitly, so the env hook
/// (and its atexit flush) must be armed at static-init time instead.
[[maybe_unused]] const bool g_metrics_env_probed = (metrics_state(), true);

}  // namespace

MetricsSnapshot metrics_snapshot() {
  // Refresh the peak-RSS gauge so every export carries it, without a /proc
  // read on the query hot path.
  static Gauge& rss = gauge("mem.peak_rss_bytes");
  rss.set(peak_rss_bytes());
  MetricsSnapshot snap;
  snap.counters = snapshot();
  snap.gauges = gauge_snapshot();
  snap.histograms = histogram_snapshot();
  return snap;
}

void set_metrics_path(const std::string& path) {
  write_metrics();  // flush cumulative state to the previous path, if any
  MetricsState& s = metrics_state();
  support::MutexLock lock(s.mutex);
  s.path = path;
  if (!path.empty()) register_metrics_atexit_locked(s);
}

std::string metrics_path() {
  MetricsState& s = metrics_state();
  support::MutexLock lock(s.mutex);
  return s.path;
}

void write_metrics() {
  std::string path;
  {
    MetricsState& s = metrics_state();
    support::MutexLock lock(s.mutex);
    path = s.path;
  }
  if (path.empty()) return;
  const bool json = path.size() >= 5 &&
                    path.compare(path.size() - 5, 5, ".json") == 0;
  const MetricsSnapshot snap = metrics_snapshot();
  const std::string body = json ? render_json(snap) : render_prometheus(snap);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return;  // export is best-effort; never fail the solve
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
}

std::string report() {
  const MetricsSnapshot snap = metrics_snapshot();
  std::ostringstream os;
  os << "somrm telemetry (cumulative)\n";
  std::int64_t spmv_flops = 0, spmv_ns = 0;
  for (const MetricSample& m : snap.counters) {
    os << "  " << m.name << ": count=" << m.count;
    if (m.total_ns > 0) os << " time=" << export_format_seconds(m.seconds());
    os << "\n";
    if (m.name == "spmv.flops") spmv_flops = m.count;
    if (m.name == "spmv.calls") spmv_ns = m.total_ns;
  }
  for (const GaugeSample& g : snap.gauges)
    os << "  gauge " << g.name << ": " << g.value << "\n";
  for (const HistogramSample& h : snap.histograms) {
    os << "  hist " << h.name << ": count=" << h.count << " sum=" << h.sum
       << " p50=" << h.quantile(0.50) << " p90=" << h.quantile(0.90)
       << " p99=" << h.quantile(0.99) << " p999=" << h.quantile(0.999)
       << "\n";
  }
  if (spmv_flops > 0 && spmv_ns > 0) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f",
                  static_cast<double>(spmv_flops) /
                      static_cast<double>(spmv_ns));
    os << "  spmv effective GFLOP/s: " << buf << "\n";
  }
  return os.str();
}

#else  // SOMRM_OBSERVABILITY == 0

std::string report() { return "somrm telemetry: compiled out\n"; }

#endif  // SOMRM_OBSERVABILITY

}  // namespace somrm::obs
