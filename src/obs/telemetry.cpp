#include "obs/telemetry.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "support/thread_annotations.hpp"

namespace somrm::obs {

namespace {

std::string format_seconds(double s) {
  char buf[64];
  if (s >= 1.0)
    std::snprintf(buf, sizeof buf, "%.3f s", s);
  else if (s >= 1e-3)
    std::snprintf(buf, sizeof buf, "%.3f ms", s * 1e3);
  else
    std::snprintf(buf, sizeof buf, "%.1f us", s * 1e6);
  return buf;
}

}  // namespace

#if SOMRM_OBSERVABILITY

namespace {

constexpr std::size_t kMaxMetrics = 64;

/// One thread's accumulator for one metric. The owning thread is the only
/// writer; the merge reader uses relaxed loads — integer sums commute, so
/// the merged totals are deterministic however threads were scheduled.
struct Cell {
  std::atomic<std::int64_t> count{0};
  std::atomic<std::int64_t> ns{0};
};

using Slots = std::array<Cell, kMaxMetrics>;

/// Registry: metric names, live per-thread arenas, and the retained totals
/// of threads that already exited (pool rebuilds on set_num_threads).
struct Registry {
  support::Mutex mutex;
  // index == metric id
  std::vector<std::string> names SOMRM_GUARDED_BY(mutex);
  // registered thread arenas (the arenas' cells are per-thread atomics and
  // stay unguarded; the pointer list itself is mutex-protected)
  std::vector<Slots*> live SOMRM_GUARDED_BY(mutex);
  std::array<std::int64_t, kMaxMetrics> retired_count SOMRM_GUARDED_BY(mutex){};
  std::array<std::int64_t, kMaxMetrics> retired_ns SOMRM_GUARDED_BY(mutex){};
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: usable during exit
  return *r;
}

struct ThreadSlots {
  Slots slots{};
  ThreadSlots() {
    Registry& r = registry();
    support::MutexLock lock(r.mutex);
    r.live.push_back(&slots);
  }
  ~ThreadSlots() {
    Registry& r = registry();
    support::MutexLock lock(r.mutex);
    for (std::size_t i = 0; i < kMaxMetrics; ++i) {
      r.retired_count[i] += slots[i].count.load(std::memory_order_relaxed);
      r.retired_ns[i] += slots[i].ns.load(std::memory_order_relaxed);
    }
    r.live.erase(std::find(r.live.begin(), r.live.end(), &slots));
  }
};

Slots& thread_slots() {
  thread_local ThreadSlots t;
  return t.slots;
}

}  // namespace

void Metric::add(std::int64_t count, std::int64_t ns) {
  Cell& cell = thread_slots()[id_];
  cell.count.fetch_add(count, std::memory_order_relaxed);
  if (ns != 0) cell.ns.fetch_add(ns, std::memory_order_relaxed);
}

std::int64_t Metric::count() const {
  Registry& r = registry();
  support::MutexLock lock(r.mutex);
  std::int64_t total = r.retired_count[id_];
  for (Slots* s : r.live)
    total += (*s)[id_].count.load(std::memory_order_relaxed);
  return total;
}

std::int64_t Metric::total_ns() const {
  Registry& r = registry();
  support::MutexLock lock(r.mutex);
  std::int64_t total = r.retired_ns[id_];
  for (Slots* s : r.live)
    total += (*s)[id_].ns.load(std::memory_order_relaxed);
  return total;
}

Metric& metric(std::string_view name) {
  Registry& r = registry();
  support::MutexLock lock(r.mutex);
  // Handles are stable: store them in a leaked deque-like vector of
  // pointers so references survive registry growth.
  static std::vector<Metric*>* handles = new std::vector<Metric*>();
  for (std::size_t i = 0; i < r.names.size(); ++i)
    if (r.names[i] == name) return *(*handles)[i];
  if (r.names.size() >= kMaxMetrics)
    throw std::length_error("obs::metric: registry capacity exceeded");
  r.names.emplace_back(name);
  handles->push_back(new Metric(r.names.size() - 1));
  return *handles->back();
}

namespace {

constexpr std::size_t kMaxGauges = 32;

/// Gauge registry: one process-wide atomic cell per gauge (last-writer
/// wins — gauges model current levels, not accumulations).
struct GaugeRegistry {
  support::Mutex mutex;
  // index == gauge id
  std::vector<std::string> names SOMRM_GUARDED_BY(mutex);
  // last-writer-wins atomics; deliberately NOT guarded (set()/value() are
  // lock-free by design)
  std::array<std::atomic<std::int64_t>, kMaxGauges> cells{};
};

GaugeRegistry& gauge_registry() {
  static GaugeRegistry* r = new GaugeRegistry();  // leaked: usable at exit
  return *r;
}

}  // namespace

void Gauge::set(std::int64_t value) {
  gauge_registry().cells[id_].store(value, std::memory_order_relaxed);
}

std::int64_t Gauge::value() const {
  return gauge_registry().cells[id_].load(std::memory_order_relaxed);
}

Gauge& gauge(std::string_view name) {
  GaugeRegistry& r = gauge_registry();
  support::MutexLock lock(r.mutex);
  static std::vector<Gauge*>* handles = new std::vector<Gauge*>();
  for (std::size_t i = 0; i < r.names.size(); ++i)
    if (r.names[i] == name) return *(*handles)[i];
  if (r.names.size() >= kMaxGauges)
    throw std::length_error("obs::gauge: registry capacity exceeded");
  r.names.emplace_back(name);
  handles->push_back(new Gauge(r.names.size() - 1));
  return *handles->back();
}

std::vector<GaugeSample> gauge_snapshot() {
  GaugeRegistry& r = gauge_registry();
  support::MutexLock lock(r.mutex);
  std::vector<GaugeSample> out(r.names.size());
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    out[i].name = r.names[i];
    out[i].value = r.cells[i].load(std::memory_order_relaxed);
  }
  std::sort(out.begin(), out.end(),
            [](const GaugeSample& a, const GaugeSample& b) {
              return a.name < b.name;
            });
  return out;
}

std::int64_t now_ns() {
  static const std::chrono::steady_clock::time_point anchor =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - anchor)
      .count();
}

std::vector<MetricSample> snapshot() {
  Registry& r = registry();
  support::MutexLock lock(r.mutex);
  std::vector<MetricSample> out(r.names.size());
  for (std::size_t i = 0; i < r.names.size(); ++i) {
    out[i].name = r.names[i];
    out[i].count = r.retired_count[i];
    out[i].total_ns = r.retired_ns[i];
    for (Slots* s : r.live) {
      out[i].count += (*s)[i].count.load(std::memory_order_relaxed);
      out[i].total_ns += (*s)[i].ns.load(std::memory_order_relaxed);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

void reset_metrics() {
  Registry& r = registry();
  support::MutexLock lock(r.mutex);
  r.retired_count.fill(0);
  r.retired_ns.fill(0);
  for (Slots* s : r.live) {
    for (Cell& c : *s) {
      c.count.store(0, std::memory_order_relaxed);
      c.ns.store(0, std::memory_order_relaxed);
    }
  }
}

#endif  // SOMRM_OBSERVABILITY

std::string report(const SolverStats& stats) {
  std::ostringstream os;
  os << "solver stats (" << (stats.kernel.empty() ? "?" : stats.kernel)
     << " kernel, width " << stats.panel_width << ", " << stats.threads
     << " thread" << (stats.threads == 1 ? "" : "s") << ")\n";
  if (!stats.storage.empty()) {
    os << "  storage: " << stats.storage;
    if (stats.storage == "sellcs") {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.2f%% padding, %.4f occupancy",
                    stats.padding_ratio * 100.0, stats.chunk_occupancy);
      os << " (" << buf << ")";
    }
    os << "\n";
  }
  os << "  G(eps) per moment:";
  for (std::size_t g : stats.truncation_points) os << " " << g;
  os << "\n  Poisson window width per time point:";
  for (std::size_t w : stats.window_widths) os << " " << w;
  os << "\n  sweep: " << stats.sweep_steps << " steps, "
     << stats.active_weight_sum << " active weights";
  if (stats.sweep_seconds > 0.0) {
    os << ", " << format_seconds(stats.sweep_seconds);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", stats.effective_gflops);
    os << " (" << buf << " GFLOP/s)";
  }
  os << "\n";
  if (stats.total_seconds > 0.0) {
    os << "  phases: scale " << format_seconds(stats.scale_seconds)
       << ", truncation " << format_seconds(stats.truncation_seconds)
       << ", windows " << format_seconds(stats.window_seconds) << ", sweep "
       << format_seconds(stats.sweep_seconds) << ", finalize "
       << format_seconds(stats.finalize_seconds) << ", total "
       << format_seconds(stats.total_seconds) << "\n";
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", stats.load_imbalance);
    os << "  parallel: busy " << format_seconds(stats.busy_seconds)
       << ", load imbalance " << buf << "\n";
  }
  if (stats.cache_hits + stats.cache_misses + stats.cache_evictions +
          stats.cache_coalesced >
      0) {
    os << "  session cache: " << stats.cache_hits << " hit"
       << (stats.cache_hits == 1 ? "" : "s") << ", " << stats.cache_misses
       << " miss" << (stats.cache_misses == 1 ? "" : "es") << ", "
       << stats.cache_evictions << " evicted, " << stats.cache_coalesced
       << " coalesced"
       << (stats.cache_over_budget ? ", over budget" : "") << "\n";
  }
  return os.str();
}

}  // namespace somrm::obs
