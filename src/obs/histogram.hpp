// somrm/obs/histogram.hpp
//
// Fixed log-spaced-bucket histograms for latency (nanoseconds) and size
// (bytes) distributions, built on the same contract as obs::Metric
// (telemetry.hpp):
//
//  * Instrumentation never touches the numeric data flow: record() only
//    bumps integer cells, so solver output is bit-identical with
//    histograms recording or compiled out.
//  * Per-thread relaxed-atomic cells: each thread owns its bucket arena;
//    the merge reader sums cells with relaxed loads. Bucket counts are
//    integer sums, which commute, so the merged histogram is deterministic
//    regardless of which thread recorded which value — the SAME bucket
//    counts at 1/2/4/8 threads for the same recorded multiset
//    (HistogramMergeTest pins this).
//  * Cells of exited pool threads retire into per-histogram totals.
//  * Compiled out entirely under -DSOMRM_OBSERVABILITY=OFF: record() is an
//    empty inline, snapshots are empty. The pure bucket-geometry functions
//    (histogram_bucket_index / _lower / _upper, quantile_from_counts) stay
//    available in both builds — they are arithmetic, not instrumentation.
//
// Bucket geometry: values <= 0 land in bucket 0; values 1..3 get exact
// singleton buckets; beyond that every power-of-two octave [2^m, 2^(m+1))
// splits into 4 equal sub-buckets, so the relative bucket width is <= 25%
// everywhere. The geometry is fixed at compile time (248 buckets covering
// the full positive int64 range), which keeps per-thread arenas flat
// arrays and bucket indices branch-light integer bit tricks.
//
// Quantiles are EXACT FROM COUNTS: quantile(q) finds the bucket holding
// the ceil(q * count)-th smallest recorded value (1-based rank) and
// returns that bucket's inclusive lower bound. Within-bucket positions
// are indistinguishable by construction, so this is the exact order
// statistic at bucket resolution — a pure function of the merged counts,
// hence deterministic.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "obs/telemetry.hpp"  // SOMRM_OBSERVABILITY default

namespace somrm::obs {

/// Number of fixed log-spaced buckets (bucket 0 holds values <= 0; the
/// last bucket's upper bound is INT64_MAX).
constexpr std::size_t kHistogramBuckets = 248;

/// Bucket index for @p value (see geometry above). Pure arithmetic,
/// available in ON and OFF builds.
std::size_t histogram_bucket_index(std::int64_t value);

/// Inclusive lower bound of bucket @p index (0 for bucket 0).
std::int64_t histogram_bucket_lower(std::size_t index);

/// Exclusive upper bound of bucket @p index (INT64_MAX for the last).
std::int64_t histogram_bucket_upper(std::size_t index);

/// The exact-from-counts quantile over a merged bucket array: the lower
/// bound of the bucket containing the rank-ceil(q * total) smallest value
/// (q clamped to (0, 1]; rank at least 1). Returns 0 when the histogram is
/// empty. Pure function of the counts — deterministic by construction.
std::int64_t histogram_quantile_from_counts(
    std::span<const std::int64_t> buckets, double q);

/// One merged histogram as returned by histogram_snapshot().
struct HistogramSample {
  std::string name;
  std::int64_t count = 0;  ///< total recorded values across threads
  std::int64_t sum = 0;    ///< sum of recorded values across threads
  std::vector<std::int64_t> buckets;  ///< merged counts, kHistogramBuckets

  std::int64_t quantile(double q) const {
    return histogram_quantile_from_counts(buckets, q);
  }
};

#if SOMRM_OBSERVABILITY

/// A named fixed-bucket histogram. Handles are stable for the process
/// lifetime; record() touches only cells owned by the calling thread (two
/// relaxed fetch_adds: the bucket and the value sum).
class Histogram {
 public:
  /// Adds one observation of @p value to this thread's arena.
  void record(std::int64_t value);

  /// Merged totals across all threads (live and retired). Safe to call
  /// concurrently with record(); values are momentary relaxed snapshots.
  std::int64_t count() const;
  std::int64_t sum() const;
  std::vector<std::int64_t> bucket_counts() const;

  /// Exact-from-counts quantile of the merged buckets (see header note).
  std::int64_t quantile(double q) const;

 private:
  friend Histogram& histogram(std::string_view name);
  explicit Histogram(std::size_t id) : id_(id) {}
  std::size_t id_;
};

/// Finds or creates the histogram named @p name. Throws std::length_error
/// past the fixed registry capacity (16 histograms). Cache the reference
/// in a function-local static at hot call sites.
Histogram& histogram(std::string_view name);

/// Merged snapshots of every registered histogram, sorted by name.
std::vector<HistogramSample> histogram_snapshot();

/// Zeros every histogram cell. Only meaningful between solves (concurrent
/// record() calls may survive the reset).
void reset_histograms();

#else  // SOMRM_OBSERVABILITY == 0: inline no-ops, mirroring obs::Metric.

class Histogram {
 public:
  void record(std::int64_t) {}
  std::int64_t count() const { return 0; }
  std::int64_t sum() const { return 0; }
  std::vector<std::int64_t> bucket_counts() const { return {}; }
  std::int64_t quantile(double) const { return 0; }
};

inline Histogram& histogram(std::string_view) {
  static Histogram dummy;
  return dummy;
}

inline std::vector<HistogramSample> histogram_snapshot() { return {}; }
inline void reset_histograms() {}

#endif  // SOMRM_OBSERVABILITY

}  // namespace somrm::obs
