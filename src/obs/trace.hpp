// somrm/obs/trace.hpp
//
// Chrome trace_event / Perfetto-compatible JSON trace writer.
//
// Runtime enablement: set SOMRM_TRACE=<path> in the environment (read once
// at first use) or call set_trace_path(). Events buffer per thread (no
// locking on the hot path beyond one relaxed flag load when disabled) and
// are merged, sorted by timestamp, and written as
//   {"traceEvents": [ {"name": .., "ph": "X", "ts": .., "dur": ..}, .. ]}
// by write_trace() — registered atexit, so instrumented binaries need no
// explicit flush. Load the file at https://ui.perfetto.dev or
// chrome://tracing.
//
// All name/category/argument-key strings must be string literals (or
// otherwise outlive the process): events store the pointers.
//
// Under -DSOMRM_OBSERVABILITY=OFF everything here is an inline no-op and
// SOMRM_TRACE is ignored.

#pragma once

#include <cstdint>
#include <string>

#include "obs/telemetry.hpp"  // SOMRM_OBSERVABILITY default + now_ns()

namespace somrm::obs {

#if SOMRM_OBSERVABILITY

/// True when a trace path is configured. One relaxed atomic load — cheap
/// enough to guard per-iteration call sites.
bool trace_enabled();

/// Enables tracing to @p path ("" disables). Flushes any buffered events
/// to the previous path first. Also the hook SOMRM_TRACE resolves to.
void set_trace_path(const std::string& path);

/// Currently configured path ("" when disabled).
std::string trace_path();

/// Records a complete event ("ph":"X") spanning [ts_ns, ts_ns + dur_ns),
/// timestamps from now_ns(). Up to two numeric args; pass nullptr keys to
/// omit. No-op when tracing is disabled.
void trace_complete(const char* name, const char* cat, std::int64_t ts_ns,
                    std::int64_t dur_ns, const char* key0 = nullptr,
                    double value0 = 0.0, const char* key1 = nullptr,
                    double value1 = 0.0);

/// Records an instant event ("ph":"i", thread scope).
void trace_instant(const char* name, const char* cat,
                   const char* key0 = nullptr, double value0 = 0.0);

/// Records a counter sample ("ph":"C") — Perfetto renders these as a
/// stacked track per name.
void trace_counter(const char* name, double value);

/// RAII complete-event scope: records begin on construction, emits the
/// complete event on destruction. Captures enablement at construction so
/// a scope spanning a set_trace_path() call stays consistent.
class TraceScope {
 public:
  TraceScope(const char* name, const char* cat, const char* key0 = nullptr,
             double value0 = 0.0)
      : name_(name),
        cat_(cat),
        key0_(key0),
        value0_(value0),
        enabled_(trace_enabled()),
        start_(enabled_ ? now_ns() : 0) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope() {
    if (enabled_)
      trace_complete(name_, cat_, start_, now_ns() - start_, key0_, value0_);
  }

 private:
  const char* name_;
  const char* cat_;
  const char* key0_;
  double value0_;
  bool enabled_;
  std::int64_t start_;
};

/// Merges all thread buffers and rewrites the JSON file for the configured
/// path with every event recorded since the path was set (tracing stays
/// enabled; repeated flushes each write the complete cumulative trace).
/// No-op when disabled. Registered atexit on first enablement.
void write_trace();

#else  // SOMRM_OBSERVABILITY == 0

inline bool trace_enabled() { return false; }
inline void set_trace_path(const std::string&) {}
inline std::string trace_path() { return {}; }
inline void trace_complete(const char*, const char*, std::int64_t,
                           std::int64_t, const char* = nullptr, double = 0.0,
                           const char* = nullptr, double = 0.0) {}
inline void trace_instant(const char*, const char*, const char* = nullptr,
                          double = 0.0) {}
inline void trace_counter(const char*, double) {}

class TraceScope {
 public:
  TraceScope(const char*, const char*, const char* = nullptr, double = 0.0) {}
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
};

inline void write_trace() {}

#endif  // SOMRM_OBSERVABILITY

}  // namespace somrm::obs
