// somrm/linalg/csr.hpp
//
// Compressed-sparse-row matrix and an incremental COO-style builder.
//
// The randomization solver spends essentially all of its time in
// CsrMatrix::multiply, so the representation is the classic three-array CSR
// with row-major traversal. The builder accepts duplicate entries (they are
// summed) and unordered input; finalize() sorts and compacts.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "linalg/panel.hpp"
#include "linalg/vec.hpp"

namespace somrm::linalg {

/// One (row, col, value) coordinate entry used while assembling a matrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

class CsrMatrix;

/// Incremental builder for CsrMatrix. Entries may arrive in any order and
/// duplicates are summed, which makes assembling generators from transition
/// lists straightforward.
class CsrBuilder {
 public:
  /// Creates a builder for a @p rows x @p cols matrix.
  CsrBuilder(std::size_t rows, std::size_t cols);

  /// Adds @p value at (row, col). Throws std::out_of_range on bad indices.
  void add(std::size_t row, std::size_t col, double value);

  /// Number of raw (pre-compaction) entries added so far.
  std::size_t entry_count() const { return entries_.size(); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Sorts, merges duplicates, drops explicit zeros (unless
  /// @p keep_explicit_zeros) and produces the immutable CSR matrix.
  CsrMatrix build(bool keep_explicit_zeros = false) &&;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<Triplet> entries_;
};

/// Immutable CSR sparse matrix.
class CsrMatrix {
 public:
  /// Empty 0x0 matrix.
  CsrMatrix() = default;

  /// Builds directly from raw CSR arrays; validates the structure
  /// (monotone row pointers, in-range column indices, and strictly
  /// increasing — i.e. sorted, duplicate-free — columns within each row,
  /// which at()'s binary search relies on).
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values);

  /// Identity matrix of order @p n.
  static CsrMatrix identity(std::size_t n);

  /// Diagonal matrix with the given diagonal.
  static CsrMatrix diagonal(std::span<const double> diag);

  /// Builds from triplets (duplicates summed).
  static CsrMatrix from_triplets(std::size_t rows, std::size_t cols,
                                 std::span<const Triplet> triplets);

  /// Builds from raw CSR arrays whose within-row column order is caller-
  /// chosen: columns must be in-range and duplicate-free per row but need
  /// not be sorted. Used by the bandwidth-reduction reorder
  /// (linalg/reorder.hpp), which must keep each row's entries in their
  /// original relative order to preserve the kernels' floating-point
  /// accumulation chains. at() falls back to a linear row scan when the
  /// columns turn out unsorted (columns_sorted() == false); every multiply
  /// kernel is order-agnostic-correct (though order-sensitive in the last
  /// bit, which is exactly the point).
  static CsrMatrix from_unsorted_parts(std::size_t rows, std::size_t cols,
                                       std::vector<std::size_t> row_ptr,
                                       std::vector<std::size_t> col_idx,
                                       std::vector<double> values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return values_.size(); }

  /// True when every row's columns are strictly increasing (always true
  /// except for matrices built via from_unsorted_parts whose input really
  /// was unsorted).
  bool columns_sorted() const { return columns_sorted_; }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// Element lookup: binary search within the row when columns_sorted(),
  /// linear scan otherwise. O(log nnz_row) / O(nnz_row).
  double at(std::size_t row, std::size_t col) const;

  /// y = A * x. Requires x.size() == cols(), y.size() == rows(); x and y
  /// must not alias. Row-parallel via linalg::parallel_for for large
  /// matrices; bit-identical for every thread count.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// y += alpha * A * x. Row-parallel like multiply().
  void multiply_add(double alpha, std::span<const double> x,
                    std::span<double> y) const;

  /// Y = A * X for row-major panels: Y(i, j) = sum_k a_ik X(k, j) for every
  /// panel column j. One pass over the CSR structure multiplies each stored
  /// entry against width() contiguous doubles of X, instead of re-streaming
  /// the matrix once per column as width() independent multiply() calls
  /// would. Requires X.rows() == cols(), Y.rows() == rows(), equal widths;
  /// X and Y must not alias. Row-parallel; per element the accumulation
  /// order over the row's stored entries is exactly multiply()'s, so the
  /// result is bit-identical to width() independent SpMVs at every thread
  /// count.
  void multiply_panel(const Panel& x, Panel& y) const;

  /// Row-range SpMM worker shared by multiply_panel and the fused solver
  /// sweeps (which fold diagonal terms and accumulations into the same
  /// parallel pass). For rows [row_begin, row_end) computes
  ///   Y(i, dst_col + c)  op=  sum_k a_ik X(k, src_col + c),  c = 0..count-1
  /// where op is assignment when @p accumulate is false and += when true.
  /// Size/alias requirements as multiply_panel; the column windows must fit
  /// inside the respective panel widths. Serial — the caller owns the
  /// parallelism (callable from inside a parallel_for body).
  void multiply_panel_rows(const Panel& x, Panel& y, std::size_t row_begin,
                           std::size_t row_end, std::size_t src_col,
                           std::size_t dst_col, std::size_t count,
                           bool accumulate) const;

  /// Calls fn(col, value) for row i's stored entries in ascending k — the
  /// accumulation order every kernel uses. The fused solver sweeps are
  /// templated over the storage format via this hook; SellCsMatrix
  /// (linalg/sellcs.hpp) provides the same signature with its stride-C
  /// walk, so per element the arithmetic chain is shared.
  template <class Fn>
  void visit_row(std::size_t i, Fn&& fn) const {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k)
      fn(col_idx_[k], values_[k]);
  }

  /// y = A^T * x (row-major traversal with scatter). Large matrices are
  /// parallelized over a fixed partition of the rows into per-block partial
  /// buffers followed by a column-parallel pairwise tree reduction in fixed
  /// block order; both phases are independent of the thread count, so the
  /// result is bit-identical for every thread count (small matrices run the
  /// plain serial scatter).
  void multiply_transposed(std::span<const double> x,
                           std::span<double> y) const;

  /// Returns A^T as a new CSR matrix.
  CsrMatrix transposed() const;

  /// Returns alpha * A + beta * I (square matrices only). Used to form the
  /// uniformized matrix Q' = Q/q + I without densifying.
  CsrMatrix scaled_plus_identity(double alpha, double beta) const;

  /// Returns a copy of the main diagonal (length min(rows, cols)); absent
  /// entries are zero.
  Vec diagonal_vector() const;

  /// Row sums (length rows()).
  Vec row_sums() const;

  /// Mean number of stored entries per row; the paper's "m" in the
  /// complexity discussion of section 6.
  double mean_row_nnz() const;

  /// Maximum |a_ii| over the diagonal; the uniformization rate q for a
  /// generator matrix.
  double max_abs_diagonal() const;

  /// True if every stored entry is >= -tol.
  bool is_nonnegative(double tol = 0.0) const;

  /// True if every row sum is within tol of zero (generator property).
  bool has_zero_row_sums(double tol) const;

  /// True if every row sum is <= 1 + tol and entries are non-negative
  /// (sub-stochastic property relied on by Theorem 4's error bound).
  bool is_substochastic(double tol) const;

  /// Dense rendering for tests/diagnostics; throws for matrices larger than
  /// @p max_dim in either dimension.
  std::vector<Vec> to_dense(std::size_t max_dim = 512) const;

 private:
  CsrMatrix(std::size_t rows, std::size_t cols,
            std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
            std::vector<double> values, bool require_sorted);

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_{0};
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  bool columns_sorted_ = true;
};

}  // namespace somrm::linalg
