#include "linalg/bicgstab.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::linalg {

BicgstabResult bicgstab(const LinearOperator& apply_a, std::span<const double> b,
                        std::span<const double> x0,
                        std::span<const double> diag_precond,
                        const BicgstabOptions& options) {
  const std::size_t n = b.size();
  if (!x0.empty() && x0.size() != n)
    throw std::invalid_argument("bicgstab: x0 size mismatch");
  if (!diag_precond.empty() && diag_precond.size() != n)
    throw std::invalid_argument("bicgstab: preconditioner size mismatch");

  Vec inv_diag;
  if (!diag_precond.empty()) {
    inv_diag.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (diag_precond[i] == 0.0)
        throw std::invalid_argument("bicgstab: zero diagonal in preconditioner");
      inv_diag[i] = 1.0 / diag_precond[i];
    }
  }
  const auto precondition = [&inv_diag](std::span<const double> src,
                                        std::span<double> dst) {
    if (inv_diag.empty()) {
      std::copy(src.begin(), src.end(), dst.begin());
    } else {
      for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] * inv_diag[i];
    }
  };

  BicgstabResult out;
  out.x = x0.empty() ? zeros(n) : Vec(x0.begin(), x0.end());

  Vec r(n), tmp(n);
  apply_a(out.x, tmp);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - tmp[i];

  const double b_norm = norm2(b);
  const double target =
      std::max(options.abs_tolerance, options.rel_tolerance * b_norm);

  double r_norm = norm2(r);
  if (r_norm <= target) {
    out.converged = true;
    out.residual_norm = r_norm;
    return out;
  }

  const Vec r_hat = r;  // shadow residual
  Vec p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);
  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    const double rho = dot(r_hat, r);
    if (rho == 0.0) break;  // breakdown; return best iterate

    if (iter == 1) {
      p = r;
    } else {
      const double beta = (rho / rho_prev) * (alpha / omega);
      for (std::size_t i = 0; i < n; ++i)
        p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }

    precondition(p, y);
    apply_a(y, v);
    const double rhat_v = dot(r_hat, v);
    if (rhat_v == 0.0) break;
    alpha = rho / rhat_v;

    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];
    if (norm2(s) <= target) {
      axpy(alpha, y, out.x);
      apply_a(out.x, tmp);
      for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - tmp[i];
      out.converged = true;
      out.iterations = iter;
      out.residual_norm = norm2(r);
      return out;
    }

    precondition(s, z);
    apply_a(z, t);
    const double tt = dot(t, t);
    if (tt == 0.0) break;
    omega = dot(t, s) / tt;

    for (std::size_t i = 0; i < n; ++i)
      out.x[i] += alpha * y[i] + omega * z[i];
    for (std::size_t i = 0; i < n; ++i) r[i] = s[i] - omega * t[i];

    r_norm = norm2(r);
    out.iterations = iter;
    if (r_norm <= target) {
      out.converged = true;
      break;
    }
    if (omega == 0.0) break;
    rho_prev = rho;
  }

  apply_a(out.x, tmp);
  for (std::size_t i = 0; i < n; ++i) tmp[i] = b[i] - tmp[i];
  out.residual_norm = norm2(tmp);
  out.converged = out.converged || out.residual_norm <= target;
  return out;
}

}  // namespace somrm::linalg
