// somrm/linalg/bicgstab.hpp
//
// BiCGSTAB Krylov solver in operator form with optional Jacobi (diagonal)
// preconditioning. Used by the implicit-trapezoid Theorem-2 ODE solver to
// invert (I - h/2 Q) without forming a factorization: generators are sparse
// and strongly diagonally dominant after the trapezoid shift, so BiCGSTAB
// converges in a handful of iterations.

#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "linalg/vec.hpp"

namespace somrm::linalg {

/// Applies a linear operator: y = A x. x and y never alias.
using LinearOperator =
    std::function<void(std::span<const double> x, std::span<double> y)>;

struct BicgstabOptions {
  double rel_tolerance = 1e-12;   ///< stop when ||r|| <= rel_tol * ||b||
  double abs_tolerance = 1e-300;  ///< or when ||r|| <= abs_tol
  std::size_t max_iterations = 1000;
};

struct BicgstabResult {
  Vec x;                    ///< solution (best iterate)
  bool converged = false;   ///< tolerance reached
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - A x||_2
};

/// Solves A x = b. @p diag_precond, when non-empty, must hold the diagonal of
/// A; the solver then right-preconditions with its inverse. @p x0 is the
/// starting guess (defaults to zero when empty).
BicgstabResult bicgstab(const LinearOperator& apply_a, std::span<const double> b,
                        std::span<const double> x0 = {},
                        std::span<const double> diag_precond = {},
                        const BicgstabOptions& options = {});

}  // namespace somrm::linalg
