#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

#ifndef SOMRM_NATIVE
#define SOMRM_NATIVE 0
#endif

#if SOMRM_NATIVE && (defined(__x86_64__) || defined(__amd64__)) && \
    defined(__GNUC__)
#define SOMRM_SIMD_X86 1
#include <immintrin.h>
#else
#define SOMRM_SIMD_X86 0
#endif

namespace somrm::linalg::simd {

namespace {

#if SOMRM_SIMD_X86

// Width the panel chunking in csr.cpp guarantees (kPanelChunk there). The
// generic kernels keep their accumulators in fixed stack arrays of this
// many lanes.
constexpr std::size_t kMaxChunk = 32;

// ---- AVX2: 4 doubles per lane group, panel columns across lanes. -------
//
// Tail columns (cw % 4) use maskload/maskstore so lanes past the column
// window are neither read (no out-of-bounds touch at the end of the panel
// allocation) nor written (the destination window outside [0, cw) must
// stay untouched). Masked-off lanes compute v * 0.0 garbage that is never
// stored, which cannot perturb the live lanes.

__attribute__((target("avx2"))) inline __m256i avx2_tail_mask(
    std::size_t tail) {
  return _mm256_set_epi64x(0, tail > 2 ? -1 : 0, tail > 1 ? -1 : 0,
                           tail > 0 ? -1 : 0);
}

template <std::size_t CW>
__attribute__((target("avx2"))) void rows_avx2_fixed(
    const std::size_t* row_ptr, const std::size_t* col_idx,
    const double* values, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end,
    bool accumulate) {
  constexpr std::size_t kFull = CW / 4;
  constexpr std::size_t kTail = CW % 4;
  const __m256i tail_mask = avx2_tail_mask(kTail);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    __m256d acc[kFull > 0 ? kFull : 1];
    for (std::size_t v = 0; v < kFull; ++v) acc[v] = _mm256_setzero_pd();
    __m256d acc_tail = _mm256_setzero_pd();
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const __m256d vv = _mm256_set1_pd(values[k]);
      const double* xr = xbase + col_idx[k] * xw;
      for (std::size_t v = 0; v < kFull; ++v)
        acc[v] = _mm256_add_pd(acc[v],
                               _mm256_mul_pd(vv, _mm256_loadu_pd(xr + 4 * v)));
      if constexpr (kTail > 0)
        acc_tail = _mm256_add_pd(
            acc_tail,
            _mm256_mul_pd(vv, _mm256_maskload_pd(xr + 4 * kFull, tail_mask)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < kFull; ++v)
        _mm256_storeu_pd(
            yr + 4 * v, _mm256_add_pd(_mm256_loadu_pd(yr + 4 * v), acc[v]));
      if constexpr (kTail > 0)
        _mm256_maskstore_pd(
            yr + 4 * kFull, tail_mask,
            _mm256_add_pd(_mm256_maskload_pd(yr + 4 * kFull, tail_mask),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < kFull; ++v)
        _mm256_storeu_pd(yr + 4 * v, acc[v]);
      if constexpr (kTail > 0)
        _mm256_maskstore_pd(yr + 4 * kFull, tail_mask, acc_tail);
    }
  }
}

__attribute__((target("avx2"))) void rows_avx2_generic(
    const std::size_t* row_ptr, const std::size_t* col_idx,
    const double* values, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end, std::size_t cw,
    bool accumulate) {
  const std::size_t full = cw / 4;
  const std::size_t tail = cw % 4;
  const __m256i tail_mask = avx2_tail_mask(tail);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    __m256d acc[kMaxChunk / 4];
    for (std::size_t v = 0; v < full; ++v) acc[v] = _mm256_setzero_pd();
    __m256d acc_tail = _mm256_setzero_pd();
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const __m256d vv = _mm256_set1_pd(values[k]);
      const double* xr = xbase + col_idx[k] * xw;
      for (std::size_t v = 0; v < full; ++v)
        acc[v] = _mm256_add_pd(acc[v],
                               _mm256_mul_pd(vv, _mm256_loadu_pd(xr + 4 * v)));
      if (tail > 0)
        acc_tail = _mm256_add_pd(
            acc_tail,
            _mm256_mul_pd(vv, _mm256_maskload_pd(xr + 4 * full, tail_mask)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < full; ++v)
        _mm256_storeu_pd(
            yr + 4 * v, _mm256_add_pd(_mm256_loadu_pd(yr + 4 * v), acc[v]));
      if (tail > 0)
        _mm256_maskstore_pd(
            yr + 4 * full, tail_mask,
            _mm256_add_pd(_mm256_maskload_pd(yr + 4 * full, tail_mask),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < full; ++v)
        _mm256_storeu_pd(yr + 4 * v, acc[v]);
      if (tail > 0) _mm256_maskstore_pd(yr + 4 * full, tail_mask, acc_tail);
    }
  }
}

void panel_rows_avx2(const std::size_t* row_ptr, const std::size_t* col_idx,
                     const double* values, const double* xbase, std::size_t xw,
                     double* ybase, std::size_t yw, std::size_t row_begin,
                     std::size_t row_end, std::size_t cw, bool accumulate) {
  switch (cw) {
    case 1:
      rows_avx2_fixed<1>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 2:
      rows_avx2_fixed<2>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 3:
      rows_avx2_fixed<3>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 4:
      rows_avx2_fixed<4>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 5:
      rows_avx2_fixed<5>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 6:
      rows_avx2_fixed<6>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 7:
      rows_avx2_fixed<7>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    case 8:
      rows_avx2_fixed<8>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                         row_begin, row_end, accumulate);
      break;
    default:
      rows_avx2_generic(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                        row_begin, row_end, cw, accumulate);
      break;
  }
}

// ---- AVX-512F: 8 doubles per lane group, masked loads for every tail. --
//
// Widths <= 8 run in a single masked zmm accumulator; the mask both
// fault-suppresses the loads past the column window and keeps the stores
// inside it, so the per-lane arithmetic chain is exactly the scalar one.

template <std::size_t CW>
__attribute__((target("avx512f"))) void rows_avx512_fixed(
    const std::size_t* row_ptr, const std::size_t* col_idx,
    const double* values, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end,
    bool accumulate) {
  constexpr __mmask8 kMask = static_cast<__mmask8>((1u << CW) - 1u);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const __m512d vv = _mm512_set1_pd(values[k]);
      const double* xr = xbase + col_idx[k] * xw;
      acc = _mm512_add_pd(acc,
                          _mm512_mul_pd(vv, _mm512_maskz_loadu_pd(kMask, xr)));
    }
    double* yr = ybase + i * yw;
    if (accumulate)
      _mm512_mask_storeu_pd(
          yr, kMask, _mm512_add_pd(_mm512_maskz_loadu_pd(kMask, yr), acc));
    else
      _mm512_mask_storeu_pd(yr, kMask, acc);
  }
}

__attribute__((target("avx512f"))) void rows_avx512_generic(
    const std::size_t* row_ptr, const std::size_t* col_idx,
    const double* values, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end, std::size_t cw,
    bool accumulate) {
  const std::size_t full = cw / 8;
  const std::size_t tail = cw % 8;
  const __mmask8 tail_mask = static_cast<__mmask8>((1u << tail) - 1u);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    __m512d acc[kMaxChunk / 8];
    for (std::size_t v = 0; v < full; ++v) acc[v] = _mm512_setzero_pd();
    __m512d acc_tail = _mm512_setzero_pd();
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const __m512d vv = _mm512_set1_pd(values[k]);
      const double* xr = xbase + col_idx[k] * xw;
      for (std::size_t v = 0; v < full; ++v)
        acc[v] = _mm512_add_pd(
            acc[v], _mm512_mul_pd(vv, _mm512_loadu_pd(xr + 8 * v)));
      if (tail > 0)
        acc_tail = _mm512_add_pd(
            acc_tail, _mm512_mul_pd(vv, _mm512_maskz_loadu_pd(
                                            tail_mask, xr + 8 * full)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < full; ++v)
        _mm512_storeu_pd(
            yr + 8 * v, _mm512_add_pd(_mm512_loadu_pd(yr + 8 * v), acc[v]));
      if (tail > 0)
        _mm512_mask_storeu_pd(
            yr + 8 * full, tail_mask,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail_mask, yr + 8 * full),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < full; ++v)
        _mm512_storeu_pd(yr + 8 * v, acc[v]);
      if (tail > 0)
        _mm512_mask_storeu_pd(yr + 8 * full, tail_mask, acc_tail);
    }
  }
}

void panel_rows_avx512(const std::size_t* row_ptr, const std::size_t* col_idx,
                       const double* values, const double* xbase,
                       std::size_t xw, double* ybase, std::size_t yw,
                       std::size_t row_begin, std::size_t row_end,
                       std::size_t cw, bool accumulate) {
  switch (cw) {
    case 1:
      rows_avx512_fixed<1>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 2:
      rows_avx512_fixed<2>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 3:
      rows_avx512_fixed<3>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 4:
      rows_avx512_fixed<4>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 5:
      rows_avx512_fixed<5>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 6:
      rows_avx512_fixed<6>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 7:
      rows_avx512_fixed<7>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    case 8:
      rows_avx512_fixed<8>(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                           row_begin, row_end, accumulate);
      break;
    default:
      rows_avx512_generic(row_ptr, col_idx, values, xbase, xw, ybase, yw,
                          row_begin, row_end, cw, accumulate);
      break;
  }
}

// ---- SELL-C-σ variants: identical lane discipline, stride-C entry walk. -
//
// Row i's j-th entry sits at chunk_ptr[i / C] + j * C + (i % C); the loops
// below iterate j < row_len[i] only, so the padding slots of a chunk slab
// are never loaded — inert by construction, not by arithmetic accident.
// Per panel column the multiply-then-add chain is exactly the CSR kernels',
// so SELL-C-σ output is bit-identical to CSR output at every level.

template <std::size_t CW>
__attribute__((target("avx2"))) void sell_rows_avx2_fixed(
    const SellView& m, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end,
    bool accumulate) {
  constexpr std::size_t kFull = CW / 4;
  constexpr std::size_t kTail = CW % 4;
  const __m256i tail_mask = avx2_tail_mask(kTail);
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    __m256d acc[kFull > 0 ? kFull : 1];
    for (std::size_t v = 0; v < kFull; ++v) acc[v] = _mm256_setzero_pd();
    __m256d acc_tail = _mm256_setzero_pd();
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const __m256d vv = _mm256_set1_pd(m.values[e]);
      const double* xr = xbase + m.col_idx[e] * xw;
      for (std::size_t v = 0; v < kFull; ++v)
        acc[v] = _mm256_add_pd(acc[v],
                               _mm256_mul_pd(vv, _mm256_loadu_pd(xr + 4 * v)));
      if constexpr (kTail > 0)
        acc_tail = _mm256_add_pd(
            acc_tail,
            _mm256_mul_pd(vv, _mm256_maskload_pd(xr + 4 * kFull, tail_mask)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < kFull; ++v)
        _mm256_storeu_pd(
            yr + 4 * v, _mm256_add_pd(_mm256_loadu_pd(yr + 4 * v), acc[v]));
      if constexpr (kTail > 0)
        _mm256_maskstore_pd(
            yr + 4 * kFull, tail_mask,
            _mm256_add_pd(_mm256_maskload_pd(yr + 4 * kFull, tail_mask),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < kFull; ++v)
        _mm256_storeu_pd(yr + 4 * v, acc[v]);
      if constexpr (kTail > 0)
        _mm256_maskstore_pd(yr + 4 * kFull, tail_mask, acc_tail);
    }
  }
}

__attribute__((target("avx2"))) void sell_rows_avx2_generic(
    const SellView& m, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end, std::size_t cw,
    bool accumulate) {
  const std::size_t full = cw / 4;
  const std::size_t tail = cw % 4;
  const __m256i tail_mask = avx2_tail_mask(tail);
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    __m256d acc[kMaxChunk / 4];
    for (std::size_t v = 0; v < full; ++v) acc[v] = _mm256_setzero_pd();
    __m256d acc_tail = _mm256_setzero_pd();
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const __m256d vv = _mm256_set1_pd(m.values[e]);
      const double* xr = xbase + m.col_idx[e] * xw;
      for (std::size_t v = 0; v < full; ++v)
        acc[v] = _mm256_add_pd(acc[v],
                               _mm256_mul_pd(vv, _mm256_loadu_pd(xr + 4 * v)));
      if (tail > 0)
        acc_tail = _mm256_add_pd(
            acc_tail,
            _mm256_mul_pd(vv, _mm256_maskload_pd(xr + 4 * full, tail_mask)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < full; ++v)
        _mm256_storeu_pd(
            yr + 4 * v, _mm256_add_pd(_mm256_loadu_pd(yr + 4 * v), acc[v]));
      if (tail > 0)
        _mm256_maskstore_pd(
            yr + 4 * full, tail_mask,
            _mm256_add_pd(_mm256_maskload_pd(yr + 4 * full, tail_mask),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < full; ++v)
        _mm256_storeu_pd(yr + 4 * v, acc[v]);
      if (tail > 0) _mm256_maskstore_pd(yr + 4 * full, tail_mask, acc_tail);
    }
  }
}

void sell_panel_rows_avx2(const SellView& m, const double* xbase,
                          std::size_t xw, double* ybase, std::size_t yw,
                          std::size_t row_begin, std::size_t row_end,
                          std::size_t cw, bool accumulate) {
  switch (cw) {
    case 1:
      sell_rows_avx2_fixed<1>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 2:
      sell_rows_avx2_fixed<2>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 3:
      sell_rows_avx2_fixed<3>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 4:
      sell_rows_avx2_fixed<4>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 5:
      sell_rows_avx2_fixed<5>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 6:
      sell_rows_avx2_fixed<6>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 7:
      sell_rows_avx2_fixed<7>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    case 8:
      sell_rows_avx2_fixed<8>(m, xbase, xw, ybase, yw, row_begin, row_end,
                              accumulate);
      break;
    default:
      sell_rows_avx2_generic(m, xbase, xw, ybase, yw, row_begin, row_end, cw,
                             accumulate);
      break;
  }
}

template <std::size_t CW>
__attribute__((target("avx512f"))) void sell_rows_avx512_fixed(
    const SellView& m, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end,
    bool accumulate) {
  constexpr __mmask8 kMask = static_cast<__mmask8>((1u << CW) - 1u);
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    __m512d acc = _mm512_setzero_pd();
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const __m512d vv = _mm512_set1_pd(m.values[e]);
      const double* xr = xbase + m.col_idx[e] * xw;
      acc = _mm512_add_pd(acc,
                          _mm512_mul_pd(vv, _mm512_maskz_loadu_pd(kMask, xr)));
    }
    double* yr = ybase + i * yw;
    if (accumulate)
      _mm512_mask_storeu_pd(
          yr, kMask, _mm512_add_pd(_mm512_maskz_loadu_pd(kMask, yr), acc));
    else
      _mm512_mask_storeu_pd(yr, kMask, acc);
  }
}

__attribute__((target("avx512f"))) void sell_rows_avx512_generic(
    const SellView& m, const double* xbase, std::size_t xw, double* ybase,
    std::size_t yw, std::size_t row_begin, std::size_t row_end, std::size_t cw,
    bool accumulate) {
  const std::size_t full = cw / 8;
  const std::size_t tail = cw % 8;
  const __mmask8 tail_mask = static_cast<__mmask8>((1u << tail) - 1u);
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    __m512d acc[kMaxChunk / 8];
    for (std::size_t v = 0; v < full; ++v) acc[v] = _mm512_setzero_pd();
    __m512d acc_tail = _mm512_setzero_pd();
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const __m512d vv = _mm512_set1_pd(m.values[e]);
      const double* xr = xbase + m.col_idx[e] * xw;
      for (std::size_t v = 0; v < full; ++v)
        acc[v] = _mm512_add_pd(
            acc[v], _mm512_mul_pd(vv, _mm512_loadu_pd(xr + 8 * v)));
      if (tail > 0)
        acc_tail = _mm512_add_pd(
            acc_tail, _mm512_mul_pd(vv, _mm512_maskz_loadu_pd(
                                            tail_mask, xr + 8 * full)));
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t v = 0; v < full; ++v)
        _mm512_storeu_pd(
            yr + 8 * v, _mm512_add_pd(_mm512_loadu_pd(yr + 8 * v), acc[v]));
      if (tail > 0)
        _mm512_mask_storeu_pd(
            yr + 8 * full, tail_mask,
            _mm512_add_pd(_mm512_maskz_loadu_pd(tail_mask, yr + 8 * full),
                          acc_tail));
    } else {
      for (std::size_t v = 0; v < full; ++v)
        _mm512_storeu_pd(yr + 8 * v, acc[v]);
      if (tail > 0)
        _mm512_mask_storeu_pd(yr + 8 * full, tail_mask, acc_tail);
    }
  }
}

void sell_panel_rows_avx512(const SellView& m, const double* xbase,
                            std::size_t xw, double* ybase, std::size_t yw,
                            std::size_t row_begin, std::size_t row_end,
                            std::size_t cw, bool accumulate) {
  switch (cw) {
    case 1:
      sell_rows_avx512_fixed<1>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 2:
      sell_rows_avx512_fixed<2>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 3:
      sell_rows_avx512_fixed<3>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 4:
      sell_rows_avx512_fixed<4>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 5:
      sell_rows_avx512_fixed<5>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 6:
      sell_rows_avx512_fixed<6>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 7:
      sell_rows_avx512_fixed<7>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    case 8:
      sell_rows_avx512_fixed<8>(m, xbase, xw, ybase, yw, row_begin, row_end,
                                accumulate);
      break;
    default:
      sell_rows_avx512_generic(m, xbase, xw, ybase, yw, row_begin, row_end,
                               cw, accumulate);
      break;
  }
}

#endif  // SOMRM_SIMD_X86

Level clamp_to_supported(Level level) {
  const Level top = highest_supported();
  return static_cast<int>(level) > static_cast<int>(top) ? top : level;
}

/// SOMRM_SIMD is read once, like SOMRM_NUM_THREADS: an unrecognized value
/// degrades to "auto" rather than aborting a long bench run.
Level env_default_level() {
  const char* env = std::getenv("SOMRM_SIMD");
  if (env != nullptr) {
    const std::string v(env);
    if (v == "scalar") return Level::kScalar;
    if (v == "avx2") return clamp_to_supported(Level::kAvx2);
    if (v == "avx512") return clamp_to_supported(Level::kAvx512);
  }
  return highest_supported();
}

std::atomic<Level>& level_state() {
  static std::atomic<Level> level{env_default_level()};
  return level;
}

}  // namespace

Level highest_supported() {
#if SOMRM_SIMD_X86
  static const Level top = [] {
    if (__builtin_cpu_supports("avx512f")) return Level::kAvx512;
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    return Level::kScalar;
  }();
  return top;
#else
  return Level::kScalar;
#endif
}

Level active_level() { return level_state().load(std::memory_order_relaxed); }

void set_level(Level level) {
  level_state().store(clamp_to_supported(level), std::memory_order_relaxed);
}

const char* level_name(Level level) {
  switch (level) {
    case Level::kAvx512:
      return "avx512";
    case Level::kAvx2:
      return "avx2";
    case Level::kScalar:
    default:
      return "scalar";
  }
}

PanelRowsFn panel_rows_kernel() {
#if SOMRM_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512:
      return &panel_rows_avx512;
    case Level::kAvx2:
      return &panel_rows_avx2;
    case Level::kScalar:
    default:
      return nullptr;
  }
#else
  return nullptr;
#endif
}

SellPanelRowsFn sell_panel_rows_kernel() {
#if SOMRM_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512:
      return &sell_panel_rows_avx512;
    case Level::kAvx2:
      return &sell_panel_rows_avx2;
    case Level::kScalar:
    default:
      return nullptr;
  }
#else
  return nullptr;
#endif
}

}  // namespace somrm::linalg::simd
