// somrm/linalg/reorder.hpp
//
// CSR bandwidth-reduction orderings for the randomization sweep.
//
// The sweep's CSR×panel kernel reads x[col_idx[k] * width] for every stored
// entry; when a model builder emits states in an order that scatters
// neighbouring states far apart, those gathers miss cache. A reverse
// Cuthill–McKee (or plain ascending-degree) reordering of the states
// clusters the column indices near the diagonal, shrinking the working set
// per row without touching the arithmetic.
//
// Bit-exactness is preserved end to end: permute_symmetric keeps each
// row's stored entries in their ORIGINAL relative order (it does not
// re-sort columns), so the per-element multiply-then-add chain of every
// kernel is exactly the chain the unpermuted matrix runs — only the row
// identities move. A solver that permutes its inputs, sweeps, and
// un-permutes its outputs therefore returns bit-identical values
// (RandomizationMomentSolver via MomentSolverOptions::reorder; asserted by
// test_reorder.cpp).
//
// All orderings are deterministic: ties break on ascending state index,
// never on pointer values or hash order.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/panel.hpp"

namespace somrm::linalg {

/// Reverse Cuthill–McKee ordering of the symmetrized pattern of @p a
/// (square matrices only). Returns perm with perm[new_index] = old_index.
/// Components are seeded from the minimum-degree unvisited vertex and BFS
/// neighbours are visited in ascending (degree, index) order, so the result
/// is a pure function of the sparsity pattern.
std::vector<std::size_t> rcm_permutation(const CsrMatrix& a);

/// Ascending-degree ordering of the symmetrized pattern of @p a (square
/// matrices only): perm[new_index] = old_index, stable in the original
/// index for equal degrees. Cheaper than RCM and good enough for banded
/// patterns that are merely shuffled.
std::vector<std::size_t> degree_permutation(const CsrMatrix& a);

/// inverse[perm[i]] = i. Validates that @p perm is a permutation (every
/// index in [0, n) exactly once); throws std::invalid_argument otherwise.
std::vector<std::size_t> invert_permutation(std::span<const std::size_t> perm);

/// True when perm[i] == i for all i (reordering would be a no-op).
bool is_identity_permutation(std::span<const std::size_t> perm);

/// Symmetric permutation B = P A P^T of a square matrix: B(r, c) =
/// A(perm[r], perm[c]). Each output row keeps its source row's stored
/// entries in their original relative order — columns are REMAPPED, not
/// re-sorted — so every row's floating-point accumulation chain is
/// unchanged (see the header comment). The result therefore generally has
/// unsorted column indices (CsrMatrix::columns_sorted() == false). Throws
/// std::invalid_argument for non-square @p a or an invalid permutation.
CsrMatrix permute_symmetric(const CsrMatrix& a,
                            std::span<const std::size_t> perm);

/// Gathers @p x into permuted order: out[i] = x[perm[i]] (the order the
/// permuted matrix expects its operands in).
Vec permute_vector(std::span<const double> x,
                   std::span<const std::size_t> perm);

/// Scatters the rows of a panel computed in permuted order back to the
/// original order: out.row(perm[i]) = p.row(i). Inverse of row-gathering
/// by @p perm; applied to solver outputs so callers never see the permuted
/// order.
Panel unpermute_panel_rows(const Panel& p, std::span<const std::size_t> perm);

/// Bandwidth max |r - c| over the stored entries (0 for an empty matrix).
/// The quantity RCM minimizes; exposed for tests and bench telemetry.
std::size_t bandwidth(const CsrMatrix& a);

}  // namespace somrm::linalg
