#include "linalg/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace somrm::linalg {

bool is_power_of_two(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

namespace {

void transform(Cvec& data, bool inverse) {
  const std::size_t n = data.size();
  if (!is_power_of_two(n))
    throw std::invalid_argument("fft: size must be a power of two");
  if (n <= 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& v : data) v *= inv_n;
  }
}

}  // namespace

void fft(Cvec& data) { transform(data, /*inverse=*/false); }

void ifft(Cvec& data) { transform(data, /*inverse=*/true); }

}  // namespace somrm::linalg
