#include "linalg/expm.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::linalg {

namespace {

// Pade(13) numerator coefficients from Higham, "The scaling and squaring
// method for the matrix exponential revisited", SIAM J. Matrix Anal. 2005.
constexpr double kPade13[] = {
    64764752532480000.0, 32382376266240000.0, 7771770303897600.0,
    1187353796428800.0,  129060195264000.0,   10559470521600.0,
    670442572800.0,      33522128640.0,       1323241920.0,
    40840800.0,          960960.0,            16380.0,
    182.0,               1.0};

// theta_13: scaling threshold below which Pade(13) meets double precision.
constexpr double kTheta13 = 5.371920351148152;

}  // namespace

template <typename T>
Dense<T> expm(const Dense<T>& a) {
  if (a.rows() != a.cols())
    throw std::invalid_argument("expm: matrix must be square");
  const std::size_t n = a.rows();
  if (n == 0) return a;

  // Scale A by 2^-s so that ||A/2^s||_1 <= theta_13.
  const double norm = a.norm1();
  int s = 0;
  if (norm > kTheta13) {
    s = static_cast<int>(std::ceil(std::log2(norm / kTheta13)));
    if (s < 0) s = 0;
  }
  Dense<T> as = a;
  if (s > 0) as *= static_cast<T>(std::ldexp(1.0, -s));

  // Pade(13): U = A (b13 A6^2 + b11 A6 A4 ... ), V similarly with even coeffs.
  const Dense<T> ident = Dense<T>::identity(n);
  const Dense<T> a2 = as.multiply(as);
  const Dense<T> a4 = a2.multiply(a2);
  const Dense<T> a6 = a4.multiply(a2);

  Dense<T> w1 = a6 * static_cast<T>(kPade13[13]) +
                a4 * static_cast<T>(kPade13[11]) +
                a2 * static_cast<T>(kPade13[9]);
  Dense<T> w2 = a6 * static_cast<T>(kPade13[7]) +
                a4 * static_cast<T>(kPade13[5]) +
                a2 * static_cast<T>(kPade13[3]) +
                ident * static_cast<T>(kPade13[1]);
  Dense<T> u = as.multiply(a6.multiply(w1) + w2);

  Dense<T> z1 = a6 * static_cast<T>(kPade13[12]) +
                a4 * static_cast<T>(kPade13[10]) +
                a2 * static_cast<T>(kPade13[8]);
  Dense<T> v = a6.multiply(z1) + a6 * static_cast<T>(kPade13[6]) +
               a4 * static_cast<T>(kPade13[4]) +
               a2 * static_cast<T>(kPade13[2]) +
               ident * static_cast<T>(kPade13[0]);

  // Solve (V - U) F = (V + U).
  Dense<T> lhs = v - u;
  Dense<T> rhs = v + u;
  lhs.solve_in_place(rhs);
  Dense<T> f = std::move(rhs);

  for (int i = 0; i < s; ++i) f = f.multiply(f);
  return f;
}

template Dense<double> expm<double>(const Dense<double>&);
template Dense<std::complex<double>> expm<std::complex<double>>(
    const Dense<std::complex<double>>&);

}  // namespace somrm::linalg
