// somrm/linalg/simd.hpp
//
// Runtime-dispatched SIMD variants of the CSR×panel row kernels.
//
// The scalar kernels in csr.cpp accumulate each panel column independently:
// per output row, s[c] += values[k] * x[col_idx[k]*xw + c] in ascending k.
// The vector kernels here put each column in its own SIMD lane, so every
// lane executes exactly the scalar multiply-then-add chain in the same
// order — no FMA (explicit mul + add intrinsics; the build also pins
// -ffp-contract=off), no reassociation, no horizontal reduction. That is
// the SOMRM_NATIVE bit-exactness contract: enabling SIMD changes speed,
// never a single output bit, at any width and any thread count.
//
// The vector kernels are compiled in only under -DSOMRM_NATIVE=ON on
// x86-64; in every other build highest_supported() is kScalar and
// panel_rows_kernel() returns nullptr, so CsrMatrix falls through to the
// scalar reference. Which compiled-in level actually runs is decided at
// runtime from CPUID, overridable per-process with SOMRM_SIMD
// (scalar|avx2|avx512|auto, read once) or programmatically via set_level.

#pragma once

#include <cstddef>

namespace somrm::linalg::simd {

/// Instruction-set level of the panel row kernels, in increasing order so
/// levels compare with <.
enum class Level { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Highest level that is both compiled in (-DSOMRM_NATIVE=ON, x86-64) and
/// reported by the running CPU. kScalar in portable builds.
Level highest_supported();

/// The level panel_rows_kernel() currently dispatches to. Defaults to the
/// SOMRM_SIMD environment override clamped to highest_supported(), else
/// highest_supported() itself.
Level active_level();

/// Overrides the dispatch level, clamped to highest_supported(). Takes
/// effect for kernels launched after the call; bit-exactness makes the
/// hand-over point unobservable in the output.
void set_level(Level level);

/// Stable lowercase name ("scalar", "avx2", "avx512") for logs and bench
/// records.
const char* level_name(Level level);

/// SpMM row kernel: for rows i in [row_begin, row_end) and columns
/// c in [0, cw), y[i*yw + c] (+)= sum_k values[k] * x[col_idx[k]*xw + c]
/// with k ascending over row i's entries. Mirrors the scalar generic
/// kernel in csr.cpp; cw must not exceed the panel chunk (32).
using PanelRowsFn = void (*)(const std::size_t* row_ptr,
                             const std::size_t* col_idx, const double* values,
                             const double* xbase, std::size_t xw,
                             double* ybase, std::size_t yw,
                             std::size_t row_begin, std::size_t row_end,
                             std::size_t cw, bool accumulate);

/// The vector kernel for the active level, or nullptr when the active level
/// is kScalar (the caller runs its own scalar kernels).
PanelRowsFn panel_rows_kernel();

/// Raw view of a SELL-C-σ matrix (linalg/sellcs.hpp): row i's j-th stored
/// entry lives at chunk_ptr[i / chunk] + j * chunk + (i % chunk), and only
/// j < row_len[i] slots are real — kernels must never touch the padding.
struct SellView {
  const std::size_t* chunk_ptr;  ///< per-chunk slab offset (+ end sentinel)
  const std::size_t* row_len;    ///< stored entries per row
  const std::size_t* col_idx;    ///< slice-major columns
  const double* values;          ///< slice-major values
  std::size_t chunk;             ///< chunk height C
};

/// SELL-C-σ SpMM row kernel with the same column-window/accumulate contract
/// as PanelRowsFn: per row the stride-C entry walk is the row's CSR entry
/// order, and panel columns sit in the SIMD lanes, so each lane runs the
/// scalar multiply-then-add chain exactly (no FMA, no reassociation — the
/// same bit-exactness contract as the CSR kernels above).
using SellPanelRowsFn = void (*)(const SellView& m, const double* xbase,
                                 std::size_t xw, double* ybase, std::size_t yw,
                                 std::size_t row_begin, std::size_t row_end,
                                 std::size_t cw, bool accumulate);

/// The SELL-C-σ vector kernel for the active level, or nullptr when the
/// active level is kScalar (SellCsMatrix runs its scalar reference).
SellPanelRowsFn sell_panel_rows_kernel();

}  // namespace somrm::linalg::simd
