// somrm/linalg/expm.hpp
//
// Dense matrix exponential via Pade(13) with scaling and squaring
// (Higham 2005). Used by
//  * the transform-domain density solver, which needs
//    exp(t (Q - i w R - w^2/2 S)) for complex arguments, and
//  * tests that cross-check uniformization against exp(Qt).
//
// Intended for the small dense matrices of those use cases (N <= a few
// hundred); the randomization solver never forms a matrix exponential.

#pragma once

#include "linalg/dense.hpp"

namespace somrm::linalg {

/// Computes exp(A) for a square dense matrix.
template <typename T>
Dense<T> expm(const Dense<T>& a);

extern template Dense<double> expm<double>(const Dense<double>&);
extern template Dense<std::complex<double>> expm<std::complex<double>>(
    const Dense<std::complex<double>>&);

}  // namespace somrm::linalg
