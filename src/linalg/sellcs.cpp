#include "linalg/sellcs.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "linalg/parallel.hpp"

namespace {

// Mirrors the SpMM chunking of csr.cpp: the per-row accumulators live in a
// fixed stack array of this many columns, and wider panels re-stream the
// matrix once per chunk.
constexpr std::size_t kPanelChunk = 32;

// Minimum rows per parallel range for multiply_panel, matching csr.cpp's
// kMatvecGrain rationale (generator rows carry a handful of non-zeros).
constexpr std::size_t kMatvecGrain = 4096;

}  // namespace

namespace somrm::linalg {

std::vector<std::size_t> SellCsMatrix::sigma_sort_permutation(
    const CsrMatrix& a, std::size_t sigma) {
  const std::size_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  if (sigma <= 1) return perm;
  for (std::size_t w0 = 0; w0 < n; w0 += sigma) {
    const std::size_t w1 = std::min(n, w0 + sigma);
    std::stable_sort(perm.begin() + static_cast<std::ptrdiff_t>(w0),
                     perm.begin() + static_cast<std::ptrdiff_t>(w1),
                     [&](std::size_t lhs, std::size_t rhs) {
                       return row_ptr[lhs + 1] - row_ptr[lhs] >
                              row_ptr[rhs + 1] - row_ptr[rhs];
                     });
  }
  return perm;
}

SellCsMatrix SellCsMatrix::from_csr(const CsrMatrix& a, std::size_t chunk) {
  if (chunk != 4 && chunk != 8)
    throw std::invalid_argument(
        "SellCsMatrix::from_csr: chunk height must be 4 or 8 (got " +
        std::to_string(chunk) + ")");

  SellCsMatrix out;
  out.rows_ = a.rows();
  out.cols_ = a.cols();
  out.chunk_ = chunk;
  out.nnz_ = a.nnz();

  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();
  const std::size_t n = out.rows_;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;

  out.row_len_.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    out.row_len_[i] = row_ptr[i + 1] - row_ptr[i];

  out.chunk_ptr_.assign(num_chunks + 1, 0);
  for (std::size_t c = 0; c < num_chunks; ++c) {
    std::size_t longest = 0;
    const std::size_t r1 = std::min(n, (c + 1) * chunk);
    for (std::size_t i = c * chunk; i < r1; ++i)
      longest = std::max(longest, out.row_len_[i]);
    out.chunk_ptr_[c + 1] = out.chunk_ptr_[c] + longest * chunk;
  }

  // Padding slots stay (column 0, value 0.0): deterministic content for
  // hashing/serialization, but the kernels bound their walks by row_len and
  // never read them (see the header's inertness argument).
  out.col_idx_.assign(out.chunk_ptr_.back(), 0);
  out.values_.assign(out.chunk_ptr_.back(), 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t base = out.chunk_ptr_[i / chunk] + (i % chunk);
    for (std::size_t j = 0; j < out.row_len_[i]; ++j) {
      const std::size_t e = base + j * chunk;
      out.col_idx_[e] = col_idx[row_ptr[i] + j];
      out.values_[e] = values[row_ptr[i] + j];
    }
  }
  return out;
}

CsrMatrix SellCsMatrix::to_csr() const {
  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  for (std::size_t i = 0; i < rows_; ++i)
    row_ptr[i + 1] = row_ptr[i] + row_len_[i];
  std::vector<std::size_t> col_idx(nnz_);
  std::vector<double> values(nnz_);
  for (std::size_t i = 0; i < rows_; ++i) {
    std::size_t k = row_ptr[i];
    visit_row(i, [&](std::size_t col, double v) {
      col_idx[k] = col;
      values[k] = v;
      ++k;
    });
  }
  return CsrMatrix::from_unsorted_parts(rows_, cols_, std::move(row_ptr),
                                        std::move(col_idx), std::move(values));
}

namespace {

// Scalar reference kernels: the exact shape of csr.cpp's panel_rows_fixed /
// panel_rows_generic with the stride-C entry walk substituted for the
// row_ptr walk. Ascending j is the row's CSR entry order, so per column the
// accumulation chain is bit-identical to the CSR kernels'.
template <std::size_t CW>
void sell_rows_fixed(const simd::SellView& m, const double* xbase,
                     std::size_t xw, double* ybase, std::size_t yw,
                     std::size_t row_begin, std::size_t row_end,
                     bool accumulate) {
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    double s[CW];
    for (std::size_t c = 0; c < CW; ++c) s[c] = 0.0;
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const double v = m.values[e];
      const double* xr = xbase + m.col_idx[e] * xw;
      for (std::size_t c = 0; c < CW; ++c) s[c] += v * xr[c];
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t c = 0; c < CW; ++c) yr[c] += s[c];
    } else {
      for (std::size_t c = 0; c < CW; ++c) yr[c] = s[c];
    }
  }
}

void sell_rows_generic(const simd::SellView& m, const double* xbase,
                       std::size_t xw, double* ybase, std::size_t yw,
                       std::size_t row_begin, std::size_t row_end,
                       std::size_t cw, bool accumulate) {
  const std::size_t chunk = m.chunk;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t base = m.chunk_ptr[i / chunk] + (i % chunk);
    const std::size_t len = m.row_len[i];
    double s[kPanelChunk];
    for (std::size_t c = 0; c < cw; ++c) s[c] = 0.0;
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk;
      const double v = m.values[e];
      const double* xr = xbase + m.col_idx[e] * xw;
      for (std::size_t c = 0; c < cw; ++c) s[c] += v * xr[c];
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t c = 0; c < cw; ++c) yr[c] += s[c];
    } else {
      for (std::size_t c = 0; c < cw; ++c) yr[c] = s[c];
    }
  }
}

}  // namespace

void SellCsMatrix::multiply_panel(const Panel& x, Panel& y) const {
  if (x.rows() != cols_ || y.rows() != rows_ || x.width() != y.width())
    throw std::invalid_argument("SellCsMatrix::multiply_panel: size mismatch");
  const std::size_t width = x.width();
  if (width == 0) return;
  const std::size_t grain = std::max<std::size_t>(1, kMatvecGrain / width);
  parallel_for(
      rows_,
      [&](std::size_t row_begin, std::size_t row_end) {
        multiply_panel_rows(x, y, row_begin, row_end, /*src_col=*/0,
                            /*dst_col=*/0, width, /*accumulate=*/false);
      },
      grain);
}

void SellCsMatrix::multiply_panel_rows(const Panel& x, Panel& y,
                                       std::size_t row_begin,
                                       std::size_t row_end,
                                       std::size_t src_col,
                                       std::size_t dst_col, std::size_t count,
                                       bool accumulate) const {
  if (x.rows() != cols_ || y.rows() != rows_)
    throw std::invalid_argument(
        "SellCsMatrix::multiply_panel_rows: bad panels");
  if (row_end > rows_ || row_begin > row_end)
    throw std::invalid_argument("SellCsMatrix::multiply_panel_rows: bad rows");
  if (src_col + count > x.width() || dst_col + count > y.width())
    throw std::invalid_argument(
        "SellCsMatrix::multiply_panel_rows: column window out of range");
  const simd::SellView m = view();
  const simd::SellPanelRowsFn vector_kernel = simd::sell_panel_rows_kernel();
  for (std::size_t c0 = 0; c0 < count; c0 += kPanelChunk) {
    const std::size_t cw = std::min(kPanelChunk, count - c0);
    const double* xbase = x.data() + src_col + c0;
    double* ybase = y.data() + dst_col + c0;
    const std::size_t xw = x.width(), yw = y.width();
    if (vector_kernel != nullptr) {
      vector_kernel(m, xbase, xw, ybase, yw, row_begin, row_end, cw,
                    accumulate);
      continue;
    }
    switch (cw) {
      case 1:
        sell_rows_fixed<1>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 2:
        sell_rows_fixed<2>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 3:
        sell_rows_fixed<3>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 4:
        sell_rows_fixed<4>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 5:
        sell_rows_fixed<5>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 6:
        sell_rows_fixed<6>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 7:
        sell_rows_fixed<7>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      case 8:
        sell_rows_fixed<8>(m, xbase, xw, ybase, yw, row_begin, row_end,
                           accumulate);
        break;
      default:
        sell_rows_generic(m, xbase, xw, ybase, yw, row_begin, row_end, cw,
                          accumulate);
        break;
    }
  }
}

}  // namespace somrm::linalg
