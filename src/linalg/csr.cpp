#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "linalg/parallel.hpp"
#include "linalg/simd.hpp"
#include "obs/telemetry.hpp"

namespace {

// SpMV/SpMM telemetry: rows and stored entries streamed by the public
// matvec entry points, the multiply-accumulate count (2 flops each), and
// the call count + wall time. obs::report() derives effective GFLOP/s from
// spmv.flops / spmv.calls time. The fused solver sweeps bypass these entry
// points and account their traffic analytically in SolverStats instead.
// All of this is an inline no-op under SOMRM_OBSERVABILITY=OFF.
struct SpmvMetrics {
  somrm::obs::Metric& calls = somrm::obs::metric("spmv.calls");
  somrm::obs::Metric& rows = somrm::obs::metric("spmv.rows");
  somrm::obs::Metric& nnz = somrm::obs::metric("spmv.nnz");
  somrm::obs::Metric& flops = somrm::obs::metric("spmv.flops");

  void record(std::size_t matrix_rows, std::size_t matrix_nnz,
              std::size_t width, std::int64_t ns) {
    calls.add(1, ns);
    rows.add(static_cast<std::int64_t>(matrix_rows));
    nnz.add(static_cast<std::int64_t>(matrix_nnz));
    flops.add(static_cast<std::int64_t>(2 * matrix_nnz * width));
  }
};

SpmvMetrics& spmv_metrics() {
  static SpmvMetrics m;
  return m;
}
// Minimum rows per parallel range for the matvecs: generator rows carry only
// a handful of non-zeros, so anything below a few thousand rows is cheaper
// to run inline than to hand to the pool.
constexpr std::size_t kMatvecGrain = 4096;

// Panel columns processed per pass of the SpMM row kernel: the per-row
// accumulators live in a stack array of this size so the compiler keeps
// them in registers/vector lanes. Panels wider than this re-stream the
// matrix once per chunk — still a 1/kPanelChunk reduction in structure
// traffic, and the solver's widest panel (the 23-moment bounds pipeline,
// width 24) fits in one chunk.
constexpr std::size_t kPanelChunk = 32;

// multiply_transposed switches from the serial scatter to the blocked
// parallel path above this row count, and always partitions the rows into
// this fixed number of blocks. Both thresholds depend only on the matrix,
// never on the thread count, so the summation order per output element is
// a function of the input alone.
constexpr std::size_t kTransposeSerialRows = 4096;
constexpr std::size_t kTransposeBlocks = 8;
}  // namespace

namespace somrm::linalg {

CsrBuilder::CsrBuilder(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {}

void CsrBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("CsrBuilder::add: index out of range");
  entries_.push_back(Triplet{row, col, value});
}

CsrMatrix CsrBuilder::build(bool keep_explicit_zeros) && {
  std::sort(entries_.begin(), entries_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  std::vector<std::size_t> row_ptr(rows_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(entries_.size());
  values.reserve(entries_.size());

  std::size_t i = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    while (i < entries_.size() && entries_[i].row == r) {
      const std::size_t c = entries_[i].col;
      double v = 0.0;
      while (i < entries_.size() && entries_[i].row == r &&
             entries_[i].col == c) {
        v += entries_[i].value;
        ++i;
      }
      if (keep_explicit_zeros || v != 0.0) {
        col_idx.push_back(c);
        values.push_back(v);
      }
    }
    row_ptr[r + 1] = col_idx.size();
  }
  entries_.clear();
  return CsrMatrix(rows_, cols_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                std::move(values), /*require_sorted=*/true) {}

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values, bool require_sorted)
    : rows_(rows),
      cols_(cols),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  if (row_ptr_.size() != rows_ + 1)
    throw std::invalid_argument("CsrMatrix: row_ptr size must be rows+1");
  if (col_idx_.size() != values_.size())
    throw std::invalid_argument("CsrMatrix: col_idx/values size mismatch");
  if (row_ptr_.front() != 0 || row_ptr_.back() != values_.size())
    throw std::invalid_argument("CsrMatrix: bad row_ptr endpoints");
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1])
      throw std::invalid_argument("CsrMatrix: row_ptr not monotone");
  }
  for (std::size_t c : col_idx_) {
    if (c >= cols_)
      throw std::invalid_argument("CsrMatrix: column index out of range");
  }
  // at() binary-searches each row when columns are strictly increasing
  // within every row (sorted and duplicate-free) — the default ctor
  // enforces it instead of silently returning wrong entries for hand-built
  // matrices. from_unsorted_parts relaxes the ordering (a permuted matrix
  // keeps its original accumulation order, see linalg/reorder.hpp) but
  // still rejects duplicate columns, which no kernel tolerates.
  columns_sorted_ = true;
  for (std::size_t r = 0; r < rows_ && columns_sorted_; ++r) {
    for (std::size_t k = row_ptr_[r] + 1; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k - 1] >= col_idx_[k]) {
        columns_sorted_ = false;
        break;
      }
    }
  }
  if (!columns_sorted_) {
    if (require_sorted)
      throw std::invalid_argument(
          "CsrMatrix: row columns must be sorted and duplicate-free");
    // Duplicate check without sorting: an epoch-stamped scratch marks the
    // columns seen in the current row. O(nnz + cols).
    std::vector<std::size_t> seen_in_row(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        if (seen_in_row[col_idx_[k]] == r)
          throw std::invalid_argument(
              "CsrMatrix: duplicate column within a row");
        seen_in_row[col_idx_[k]] = r;
      }
    }
  }
  // Checked-build poison sweep: a NaN/Inf smuggled into any matrix (model
  // generator, uniformized DTMC, impulse-moment matrix) would propagate
  // silently through every sweep step.
  SOMRM_CHECK_FINITE(std::span<const double>(values_), "CsrMatrix values");
}

CsrMatrix CsrMatrix::from_unsorted_parts(std::size_t rows, std::size_t cols,
                                         std::vector<std::size_t> row_ptr,
                                         std::vector<std::size_t> col_idx,
                                         std::vector<double> values) {
  return CsrMatrix(rows, cols, std::move(row_ptr), std::move(col_idx),
                   std::move(values), /*require_sorted=*/false);
}

CsrMatrix CsrMatrix::identity(std::size_t n) {
  std::vector<std::size_t> row_ptr(n + 1);
  std::vector<std::size_t> col_idx(n);
  std::vector<double> values(n, 1.0);
  for (std::size_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (std::size_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::diagonal(std::span<const double> diag) {
  const std::size_t n = diag.size();
  std::vector<std::size_t> row_ptr(n + 1);
  std::vector<std::size_t> col_idx(n);
  std::vector<double> values(diag.begin(), diag.end());
  for (std::size_t i = 0; i <= n; ++i) row_ptr[i] = i;
  for (std::size_t i = 0; i < n; ++i) col_idx[i] = i;
  return CsrMatrix(n, n, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix CsrMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                   std::span<const Triplet> triplets) {
  CsrBuilder b(rows, cols);
  for (const Triplet& t : triplets) b.add(t.row, t.col, t.value);
  return std::move(b).build();
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_)
    throw std::out_of_range("CsrMatrix::at: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  if (!columns_sorted_) {
    const auto it = std::find(begin, end, col);
    if (it == end) return 0.0;
    return values_[static_cast<std::size_t>(it - col_idx_.begin())];
  }
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("CsrMatrix::multiply: size mismatch");
  const std::int64_t t0 = obs::now_ns();
  parallel_for(
      rows_,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r) {
          double acc = 0.0;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += values_[k] * x[col_idx_[k]];
          y[r] = acc;
        }
      },
      kMatvecGrain);
  spmv_metrics().record(rows_, nnz(), 1, obs::now_ns() - t0);
}

void CsrMatrix::multiply_add(double alpha, std::span<const double> x,
                             std::span<double> y) const {
  if (x.size() != cols_ || y.size() != rows_)
    throw std::invalid_argument("CsrMatrix::multiply_add: size mismatch");
  const std::int64_t t0 = obs::now_ns();
  parallel_for(
      rows_,
      [&](std::size_t row_begin, std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r) {
          double acc = 0.0;
          for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
            acc += values_[k] * x[col_idx_[k]];
          y[r] += alpha * acc;
        }
      },
      kMatvecGrain);
  spmv_metrics().record(rows_, nnz(), 1, obs::now_ns() - t0);
}

void CsrMatrix::multiply_panel(const Panel& x, Panel& y) const {
  if (x.rows() != cols_ || y.rows() != rows_ || x.width() != y.width())
    throw std::invalid_argument("CsrMatrix::multiply_panel: size mismatch");
  const std::size_t width = x.width();
  if (width == 0) return;
  const std::int64_t t0 = obs::now_ns();
  // Per-row cost scales with the width, so the grain shrinks accordingly.
  const std::size_t grain = std::max<std::size_t>(1, kMatvecGrain / width);
  parallel_for(
      rows_,
      [&](std::size_t row_begin, std::size_t row_end) {
        multiply_panel_rows(x, y, row_begin, row_end, /*src_col=*/0,
                            /*dst_col=*/0, width, /*accumulate=*/false);
      },
      grain);
  spmv_metrics().record(rows_, nnz(), width, obs::now_ns() - t0);
}

namespace {
// Row kernel with a compile-time column count: the accumulator lives in CW
// registers/vector lanes and every per-column loop is fully unrolled. The
// solver's panels are narrow (n+1 for max_moment n, typically 2..6), and at
// those widths a runtime-variable inner loop costs more in loop overhead
// than the whole dot product — dispatching to a fixed-width instantiation
// recovers it. The per-element arithmetic order (ascending k within each
// row, ascending column) is identical in every instantiation and in the
// generic fallback, so results are bit-identical regardless of which runs.
template <std::size_t CW>
void panel_rows_fixed(const std::vector<std::size_t>& row_ptr,
                      const std::vector<std::size_t>& col_idx,
                      const std::vector<double>& values, const double* xbase,
                      std::size_t xw, double* ybase, std::size_t yw,
                      std::size_t row_begin, std::size_t row_end,
                      bool accumulate) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double s[CW];
    for (std::size_t c = 0; c < CW; ++c) s[c] = 0.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double v = values[k];
      const double* xr = xbase + col_idx[k] * xw;
      for (std::size_t c = 0; c < CW; ++c) s[c] += v * xr[c];
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t c = 0; c < CW; ++c) yr[c] += s[c];
    } else {
      for (std::size_t c = 0; c < CW; ++c) yr[c] = s[c];
    }
  }
}

void panel_rows_generic(const std::vector<std::size_t>& row_ptr,
                        const std::vector<std::size_t>& col_idx,
                        const std::vector<double>& values, const double* xbase,
                        std::size_t xw, double* ybase, std::size_t yw,
                        std::size_t row_begin, std::size_t row_end,
                        std::size_t cw, bool accumulate) {
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double s[kPanelChunk];
    for (std::size_t c = 0; c < cw; ++c) s[c] = 0.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double v = values[k];
      const double* xr = xbase + col_idx[k] * xw;
      for (std::size_t c = 0; c < cw; ++c) s[c] += v * xr[c];
    }
    double* yr = ybase + i * yw;
    if (accumulate) {
      for (std::size_t c = 0; c < cw; ++c) yr[c] += s[c];
    } else {
      for (std::size_t c = 0; c < cw; ++c) yr[c] = s[c];
    }
  }
}
}  // namespace

void CsrMatrix::multiply_panel_rows(const Panel& x, Panel& y,
                                    std::size_t row_begin, std::size_t row_end,
                                    std::size_t src_col, std::size_t dst_col,
                                    std::size_t count, bool accumulate) const {
  if (x.rows() != cols_ || y.rows() != rows_)
    throw std::invalid_argument("CsrMatrix::multiply_panel_rows: bad panels");
  if (row_end > rows_ || row_begin > row_end)
    throw std::invalid_argument("CsrMatrix::multiply_panel_rows: bad rows");
  if (src_col + count > x.width() || dst_col + count > y.width())
    throw std::invalid_argument(
        "CsrMatrix::multiply_panel_rows: column window out of range");
  // Vector variants (SOMRM_NATIVE builds) lane the panel columns, so each
  // column keeps the scalar kernels' accumulation chain — dispatching here
  // trades only speed, never output bits (see linalg/simd.hpp).
  const simd::PanelRowsFn vector_kernel = simd::panel_rows_kernel();
  for (std::size_t c0 = 0; c0 < count; c0 += kPanelChunk) {
    const std::size_t cw = std::min(kPanelChunk, count - c0);
    const double* xbase = x.data() + src_col + c0;
    double* ybase = y.data() + dst_col + c0;
    const std::size_t xw = x.width(), yw = y.width();
    if (vector_kernel != nullptr) {
      vector_kernel(row_ptr_.data(), col_idx_.data(), values_.data(), xbase,
                    xw, ybase, yw, row_begin, row_end, cw, accumulate);
      continue;
    }
    switch (cw) {
      case 1:
        panel_rows_fixed<1>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 2:
        panel_rows_fixed<2>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 3:
        panel_rows_fixed<3>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 4:
        panel_rows_fixed<4>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 5:
        panel_rows_fixed<5>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 6:
        panel_rows_fixed<6>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 7:
        panel_rows_fixed<7>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      case 8:
        panel_rows_fixed<8>(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                            row_begin, row_end, accumulate);
        break;
      default:
        panel_rows_generic(row_ptr_, col_idx_, values_, xbase, xw, ybase, yw,
                           row_begin, row_end, cw, accumulate);
        break;
    }
  }
}

namespace {
// Pairwise tree sum of partial[first..first+count) at column c, leaves in
// ascending block order. The association pattern depends only on the block
// count, never on the thread count.
double tree_sum_col(const std::vector<Vec>& partial, std::size_t first,
                    std::size_t count, std::size_t c) {
  if (count == 1) return partial[first][c];
  const std::size_t half = count / 2;
  return tree_sum_col(partial, first, half, c) +
         tree_sum_col(partial, first + half, count - half, c);
}
}  // namespace

void CsrMatrix::multiply_transposed(std::span<const double> x,
                                    std::span<double> y) const {
  if (x.size() != rows_ || y.size() != cols_)
    throw std::invalid_argument("CsrMatrix::multiply_transposed: size mismatch");
  const std::int64_t t0 = obs::now_ns();
  if (rows_ < kTransposeSerialRows) {
    std::fill(y.begin(), y.end(), 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
      const double xr = x[r];
      if (xr == 0.0) continue;
      for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
        y[col_idx_[k]] += values_[k] * xr;
    }
    spmv_metrics().record(rows_, nnz(), 1, obs::now_ns() - t0);
    return;
  }
  // Scatter phase: each fixed row block accumulates into its own buffer
  // (blocks distributed over threads; a block's buffer content is the same
  // whichever thread computes it).
  const auto blocks = partition_ranges(rows_, kTransposeBlocks);
  std::vector<Vec> partial(blocks.size(), Vec(cols_, 0.0));
  parallel_for(
      blocks.size(),
      [&](std::size_t b_begin, std::size_t b_end) {
        for (std::size_t b = b_begin; b < b_end; ++b) {
          Vec& buf = partial[b];
          for (std::size_t r = blocks[b].begin; r < blocks[b].end; ++r) {
            const double xr = x[r];
            if (xr == 0.0) continue;
            for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
              buf[col_idx_[k]] += values_[k] * xr;
          }
        }
      },
      /*grain=*/1);
  // Reduce phase: column-parallel, fixed pairwise tree over the blocks.
  parallel_for(
      cols_,
      [&](std::size_t c_begin, std::size_t c_end) {
        for (std::size_t c = c_begin; c < c_end; ++c)
          y[c] = tree_sum_col(partial, 0, partial.size(), c);
      },
      kMatvecGrain);
  spmv_metrics().record(rows_, nnz(), 1, obs::now_ns() - t0);
}

CsrMatrix CsrMatrix::transposed() const {
  CsrBuilder b(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      b.add(col_idx_[k], r, values_[k]);
  return std::move(b).build(/*keep_explicit_zeros=*/true);
}

CsrMatrix CsrMatrix::scaled_plus_identity(double alpha, double beta) const {
  if (rows_ != cols_)
    throw std::invalid_argument("scaled_plus_identity: matrix must be square");
  CsrBuilder b(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    bool diag_seen = false;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      double v = alpha * values_[k];
      if (col_idx_[k] == r) {
        v += beta;
        diag_seen = true;
      }
      b.add(r, col_idx_[k], v);
    }
    if (!diag_seen && beta != 0.0) b.add(r, r, beta);
  }
  return std::move(b).build(/*keep_explicit_zeros=*/true);
}

Vec CsrMatrix::diagonal_vector() const {
  Vec d(std::min(rows_, cols_), 0.0);
  for (std::size_t r = 0; r < d.size(); ++r) d[r] = at(r, r);
  return d;
}

Vec CsrMatrix::row_sums() const {
  Vec s(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s[r] += values_[k];
  return s;
}

double CsrMatrix::mean_row_nnz() const {
  if (rows_ == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(rows_);
}

double CsrMatrix::max_abs_diagonal() const {
  double q = 0.0;
  const std::size_t n = std::min(rows_, cols_);
  for (std::size_t r = 0; r < n; ++r) q = std::max(q, std::abs(at(r, r)));
  return q;
}

bool CsrMatrix::is_nonnegative(double tol) const {
  return std::all_of(values_.begin(), values_.end(),
                     [tol](double v) { return v >= -tol; });
}

bool CsrMatrix::has_zero_row_sums(double tol) const {
  const Vec s = row_sums();
  return std::all_of(s.begin(), s.end(),
                     [tol](double v) { return std::abs(v) <= tol; });
}

bool CsrMatrix::is_substochastic(double tol) const {
  if (!is_nonnegative(tol)) return false;
  const Vec s = row_sums();
  return std::all_of(s.begin(), s.end(),
                     [tol](double v) { return v <= 1.0 + tol; });
}

std::vector<Vec> CsrMatrix::to_dense(std::size_t max_dim) const {
  if (rows_ > max_dim || cols_ > max_dim)
    throw std::invalid_argument("CsrMatrix::to_dense: matrix too large");
  std::vector<Vec> dense(rows_, Vec(cols_, 0.0));
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      dense[r][col_idx_[k]] += values_[k];
  return dense;
}

}  // namespace somrm::linalg
