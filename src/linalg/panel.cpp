#include "linalg/panel.hpp"

#include <algorithm>
#include <stdexcept>

namespace somrm::linalg {

Panel::Panel(std::size_t rows, std::size_t width, double value)
    : rows_(rows), width_(width), data_(rows * width, value) {}

void Panel::fill(double value) {
  std::fill(data_.begin(), data_.end(), value);
}

void Panel::fill_col(std::size_t j, double value) {
  if (j >= width_) throw std::out_of_range("Panel::fill_col: bad column");
  for (std::size_t i = 0; i < rows_; ++i) data_[i * width_ + j] = value;
}

void Panel::set_col(std::size_t j, std::span<const double> src) {
  if (j >= width_) throw std::out_of_range("Panel::set_col: bad column");
  if (src.size() != rows_)
    throw std::invalid_argument("Panel::set_col: size mismatch");
  for (std::size_t i = 0; i < rows_; ++i) data_[i * width_ + j] = src[i];
}

Vec Panel::col(std::size_t j) const {
  if (j >= width_) throw std::out_of_range("Panel::col: bad column");
  Vec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = data_[i * width_ + j];
  return out;
}

void Panel::swap(Panel& other) noexcept {
  std::swap(rows_, other.rows_);
  std::swap(width_, other.width_);
  data_.swap(other.data_);
}

}  // namespace somrm::linalg
