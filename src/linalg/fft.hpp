// somrm/linalg/fft.hpp
//
// Minimal iterative radix-2 complex FFT. The transform-domain density solver
// evaluates the characteristic function of B(t) on a uniform frequency grid
// and inverts it to a density with one inverse FFT; no external FFT
// dependency is needed at those sizes (<= 2^16 points).

#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace somrm::linalg {

using Cvec = std::vector<std::complex<double>>;

/// True when n is a power of two (and positive).
bool is_power_of_two(std::size_t n);

/// In-place forward DFT: X[k] = sum_j x[j] e^{-2 pi i j k / n}.
/// Throws std::invalid_argument unless size is a power of two.
void fft(Cvec& data);

/// In-place inverse DFT including the 1/n normalization.
void ifft(Cvec& data);

}  // namespace somrm::linalg
