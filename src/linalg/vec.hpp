// somrm/linalg/vec.hpp
//
// Dense vector primitives used throughout the library.
//
// A vector is a plain std::vector<double>; the functions here are the small
// set of BLAS-1 style kernels the solvers need. They are free functions (not
// a wrapper class) so call sites stay interoperable with the standard
// library and with user code.

#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace somrm::linalg {

/// Dense vector of doubles. All solver state in the library uses this type.
using Vec = std::vector<double>;

/// Returns a vector of length @p n with every element equal to @p value.
Vec constant_vec(std::size_t n, double value);

/// Returns the all-ones vector of length @p n (the paper's column vector h).
Vec ones(std::size_t n);

/// Returns the all-zeros vector of length @p n.
Vec zeros(std::size_t n);

/// Returns the unit coordinate vector e_i of length @p n.
Vec unit_vec(std::size_t n, std::size_t i);

/// Dot product <x, y>. Requires x.size() == y.size().
double dot(std::span<const double> x, std::span<const double> y);

/// y += alpha * x (classic axpy). Requires x.size() == y.size().
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(double alpha, std::span<double> x);

/// Euclidean norm ||x||_2.
double norm2(std::span<const double> x);

/// Maximum norm ||x||_inf.
double norm_inf(std::span<const double> x);

/// Sum of elements.
double sum(std::span<const double> x);

/// Largest element (requires non-empty input).
double max_elem(std::span<const double> x);

/// Smallest element (requires non-empty input).
double min_elem(std::span<const double> x);

/// Componentwise |x - y| maximum. Requires equal sizes.
double max_abs_diff(std::span<const double> x, std::span<const double> y);

/// True when every element is finite (no NaN/Inf).
bool all_finite(std::span<const double> x);

/// True when every element is >= -tol.
bool is_nonnegative(std::span<const double> x, double tol = 0.0);

/// Normalizes x so its elements sum to one. Throws std::invalid_argument if
/// the sum is not positive.
void normalize_probability(std::span<double> x);

/// Short human-readable rendering "[a, b, ...]" for diagnostics; at most
/// @p max_elems elements are printed.
std::string to_string(std::span<const double> x, std::size_t max_elems = 16);

}  // namespace somrm::linalg
