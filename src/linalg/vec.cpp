#include "linalg/vec.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace somrm::linalg {

Vec constant_vec(std::size_t n, double value) { return Vec(n, value); }

Vec ones(std::size_t n) { return Vec(n, 1.0); }

Vec zeros(std::size_t n) { return Vec(n, 0.0); }

Vec unit_vec(std::size_t n, std::size_t i) {
  if (i >= n) throw std::out_of_range("unit_vec: index out of range");
  Vec e(n, 0.0);
  e[i] = 1.0;
  return e;
}

double dot(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

double norm2(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v * v;
  return std::sqrt(acc);
}

double norm_inf(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc = std::max(acc, std::abs(v));
  return acc;
}

double sum(std::span<const double> x) {
  double acc = 0.0;
  for (double v : x) acc += v;
  return acc;
}

double max_elem(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("max_elem: empty vector");
  return *std::max_element(x.begin(), x.end());
}

double min_elem(std::span<const double> x) {
  if (x.empty()) throw std::invalid_argument("min_elem: empty vector");
  return *std::min_element(x.begin(), x.end());
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size())
    throw std::invalid_argument("max_abs_diff: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i)
    acc = std::max(acc, std::abs(x[i] - y[i]));
  return acc;
}

bool all_finite(std::span<const double> x) {
  return std::all_of(x.begin(), x.end(),
                     [](double v) { return std::isfinite(v); });
}

bool is_nonnegative(std::span<const double> x, double tol) {
  return std::all_of(x.begin(), x.end(), [tol](double v) { return v >= -tol; });
}

void normalize_probability(std::span<double> x) {
  const double s = sum(x);
  if (!(s > 0.0))
    throw std::invalid_argument("normalize_probability: non-positive sum");
  scale(1.0 / s, x);
}

std::string to_string(std::span<const double> x, std::size_t max_elems) {
  std::ostringstream os;
  os << '[';
  const std::size_t shown = std::min(x.size(), max_elems);
  for (std::size_t i = 0; i < shown; ++i) {
    if (i > 0) os << ", ";
    os << x[i];
  }
  if (shown < x.size()) os << ", ... (" << x.size() << " elems)";
  os << ']';
  return os.str();
}

}  // namespace somrm::linalg
