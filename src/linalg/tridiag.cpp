#include "linalg/tridiag.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace somrm::linalg {

std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs) {
  const std::size_t n = diag.size();
  if (lower.size() != n || upper.size() != n || rhs.size() != n)
    throw std::invalid_argument("solve_tridiagonal: size mismatch");
  if (n == 0) return {};

  std::vector<double> c_prime(n, 0.0);
  std::vector<double> d_prime(n, 0.0);

  if (diag[0] == 0.0)
    throw std::runtime_error("solve_tridiagonal: zero pivot at row 0");
  c_prime[0] = upper[0] / diag[0];
  d_prime[0] = rhs[0] / diag[0];

  for (std::size_t i = 1; i < n; ++i) {
    const double denom = diag[i] - lower[i] * c_prime[i - 1];
    if (denom == 0.0)
      throw std::runtime_error("solve_tridiagonal: zero pivot");
    if (i + 1 < n) c_prime[i] = upper[i] / denom;
    d_prime[i] = (rhs[i] - lower[i] * d_prime[i - 1]) / denom;
  }

  std::vector<double> x(n);
  x[n - 1] = d_prime[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = d_prime[i] - c_prime[i] * x[i + 1];
  return x;
}

template <typename Real>
TridiagEigen<Real> symmetric_tridiagonal_eigen(std::vector<Real> diag,
                                               std::vector<Real> offdiag) {
  const std::size_t n = diag.size();
  if (n == 0) return {};
  if (offdiag.size() + 1 != n)
    throw std::invalid_argument(
        "symmetric_tridiagonal_eigen: offdiag must have size n-1");

  // e is padded to length n; z0 tracks the first row of the accumulated
  // orthogonal transform (starts as e_0^T since Z starts as identity).
  std::vector<Real> d = std::move(diag);
  std::vector<Real> e(n, Real{0});
  std::copy(offdiag.begin(), offdiag.end(), e.begin());
  std::vector<Real> z0(n, Real{0});
  z0[0] = Real{1};

  const Real eps = std::numeric_limits<Real>::epsilon();

  for (std::size_t l = 0; l < n; ++l) {
    int iter = 0;
    std::size_t m;
    do {
      for (m = l; m + 1 < n; ++m) {
        const Real dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= eps * dd) break;
      }
      if (m != l) {
        if (iter++ == 50)
          throw std::runtime_error(
              "symmetric_tridiagonal_eigen: QL failed to converge");
        Real g = (d[l + 1] - d[l]) / (Real{2} * e[l]);
        Real r = std::hypot(g, Real{1});
        g = d[m] - d[l] + e[l] / (g + (g >= Real{0} ? std::abs(r) : -std::abs(r)));
        Real s{1}, c{1}, p{0};
        bool underflow = false;
        for (std::size_t i = m; i-- > l;) {
          Real f = s * e[i];
          const Real b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == Real{0}) {
            d[i + 1] -= p;
            e[m] = Real{0};
            underflow = true;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + Real{2} * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          // First row of the eigenvector matrix.
          f = z0[i + 1];
          z0[i + 1] = s * z0[i] + c * f;
          z0[i] = c * z0[i] - s * f;
        }
        if (underflow) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = Real{0};
      }
    } while (m != l);
  }

  // Sort eigenvalues (and matching first components) ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&d](std::size_t a, std::size_t b) { return d[a] < d[b]; });

  TridiagEigen<Real> out;
  out.eigenvalues.resize(n);
  out.first_components.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    out.eigenvalues[k] = d[order[k]];
    out.first_components[k] = z0[order[k]];
  }
  return out;
}

template TridiagEigen<double> symmetric_tridiagonal_eigen<double>(
    std::vector<double>, std::vector<double>);
template TridiagEigen<long double> symmetric_tridiagonal_eigen<long double>(
    std::vector<long double>, std::vector<long double>);

}  // namespace somrm::linalg
