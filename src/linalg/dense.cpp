#include "linalg/dense.hpp"

#include <cmath>
#include <cstdlib>

namespace somrm::linalg {

namespace {

double abs_of(double v) { return std::abs(v); }
double abs_of(const std::complex<double>& v) { return std::abs(v); }

}  // namespace

template <typename T>
double Dense<T>::norm1() const {
  double best = 0.0;
  for (std::size_t j = 0; j < cols_; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) col += abs_of((*this)(i, j));
    best = std::max(best, col);
  }
  return best;
}

template <typename T>
double Dense<T>::norm_max() const {
  double best = 0.0;
  for (const T& v : data_) best = std::max(best, abs_of(v));
  return best;
}

template <typename T>
void Dense<T>::solve_in_place(Dense& b) const {
  if (rows_ != cols_)
    throw std::invalid_argument("Dense::solve_in_place: matrix must be square");
  if (b.rows() != rows_)
    throw std::invalid_argument("Dense::solve_in_place: rhs shape mismatch");

  Dense a = *this;  // working copy; elimination destroys it
  const std::size_t n = rows_;
  const std::size_t m = b.cols();

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t piv = k;
    double best = abs_of(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double cand = abs_of(a(i, k));
      if (cand > best) {
        best = cand;
        piv = i;
      }
    }
    if (best == 0.0)
      throw std::runtime_error("Dense::solve_in_place: singular matrix");
    if (piv != k) {
      for (std::size_t j = k; j < n; ++j) std::swap(a(k, j), a(piv, j));
      for (std::size_t j = 0; j < m; ++j) std::swap(b(k, j), b(piv, j));
    }
    const T inv_pivot = T{1} / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T factor = a(i, k) * inv_pivot;
      if (factor == T{}) continue;
      a(i, k) = T{};
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= factor * a(k, j);
      for (std::size_t j = 0; j < m; ++j) b(i, j) -= factor * b(k, j);
    }
  }
  // Back substitution.
  for (std::size_t kk = n; kk-- > 0;) {
    const T inv_pivot = T{1} / a(kk, kk);
    for (std::size_t j = 0; j < m; ++j) {
      T acc = b(kk, j);
      for (std::size_t c = kk + 1; c < n; ++c) acc -= a(kk, c) * b(c, j);
      b(kk, j) = acc * inv_pivot;
    }
  }
}

template class Dense<double>;
template class Dense<std::complex<double>>;

}  // namespace somrm::linalg
