#include "linalg/parallel.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>

#include "obs/telemetry.hpp"
#include "support/thread_annotations.hpp"

namespace somrm::linalg {

namespace {

/// Busy-time accounting for the load-imbalance gauge: every range a thread
/// executes adds its wall time to parallel.busy; the submitting side times
/// the whole job into parallel.jobs. idle = threads * job wall - busy.
/// Inline no-ops when SOMRM_OBSERVABILITY=OFF.
obs::Metric& busy_metric() {
  static obs::Metric& m = obs::metric("parallel.busy");
  return m;
}
obs::Metric& jobs_metric() {
  static obs::Metric& m = obs::metric("parallel.jobs");
  return m;
}

/// Persistent pool of workers executing one range-job at a time. The job is
/// published under the mutex with a generation counter; workers and the
/// submitting thread pull ranges from a shared cursor, so an uneven machine
/// load cannot change which indices belong to which range — only which
/// thread happens to execute a range, which the bit-identical partition
/// makes irrelevant.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers) {
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
      threads_.emplace_back([this] { worker_loop(); });
  }

  ~ThreadPool() {
    {
      support::MutexLock lock(mutex_);
      stop_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
  }

  std::size_t worker_count() const { return threads_.size(); }

  void run(const std::vector<IndexRange>& ranges,
           const std::function<void(std::size_t, std::size_t)>& body)
      SOMRM_EXCLUDES(mutex_, submit_mutex_) {
    support::MutexLock submit_lock(submit_mutex_);
    {
      support::MutexLock lock(mutex_);
      ranges_ = &ranges;
      body_ = &body;
      next_range_ = 0;
      pending_ = ranges.size();
      error_ = nullptr;
      ++generation_;
    }
    wake_cv_.notify_all();
    execute_ranges();  // the submitting thread is a worker too
    support::MutexLock lock(mutex_);
    while (pending_ != 0) done_cv_.wait(mutex_);
    ranges_ = nullptr;
    body_ = nullptr;
    if (error_) {
      std::exception_ptr err = error_;
      error_ = nullptr;
      std::rethrow_exception(err);
    }
  }

 private:
  void execute_ranges() SOMRM_EXCLUDES(mutex_) {
    for (;;) {
      IndexRange range;
      const std::function<void(std::size_t, std::size_t)>* body = nullptr;
      {
        support::MutexLock lock(mutex_);
        if (ranges_ == nullptr || next_range_ >= ranges_->size()) return;
        range = (*ranges_)[next_range_++];
        // Snapshot the body pointer while the lock pins the published job:
        // the call below runs unlocked, and reading the guarded member
        // there would race run()'s clearing store (annotation-revealed;
        // benign only through pending_'s ordering, so make it explicit).
        body = body_;
      }
      try {
        (*body)(range.begin, range.end);
      } catch (...) {
        support::MutexLock lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      support::MutexLock lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }

  void worker_loop() SOMRM_EXCLUDES(mutex_) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        support::MutexLock lock(mutex_);
        while (!stop_ &&
               !(generation_ != seen_generation && ranges_ != nullptr &&
                 next_range_ < ranges_->size()))
          wake_cv_.wait(mutex_);
        if (stop_) return;
        seen_generation = generation_;
      }
      execute_ranges();
    }
  }

  std::vector<std::thread> threads_;
  support::Mutex submit_mutex_;  // serializes concurrent run() calls
  support::Mutex mutex_;
  support::CondVar wake_cv_;
  support::CondVar done_cv_;
  const std::vector<IndexRange>* ranges_ SOMRM_GUARDED_BY(mutex_) = nullptr;
  const std::function<void(std::size_t, std::size_t)>* body_
      SOMRM_GUARDED_BY(mutex_) = nullptr;
  std::size_t next_range_ SOMRM_GUARDED_BY(mutex_) = 0;
  std::size_t pending_ SOMRM_GUARDED_BY(mutex_) = 0;
  std::uint64_t generation_ SOMRM_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ SOMRM_GUARDED_BY(mutex_);
  bool stop_ SOMRM_GUARDED_BY(mutex_) = false;
};

/// Ceiling on any requested thread count. Thread counts come from the
/// environment or API callers; an absurd value (say 100000) must degrade to
/// "lots of threads", not crash the process inside std::thread with
/// EAGAIN. Far above any real core count, far below any rlimit.
constexpr std::size_t kMaxThreads = 1024;

std::size_t env_or_hardware_threads() {
  if (const char* env = std::getenv("SOMRM_NUM_THREADS")) {
    char* end = nullptr;
    const unsigned long parsed = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && parsed > 0)
      return std::min(static_cast<std::size_t>(parsed), kMaxThreads);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

/// The pool is published as a shared_ptr so retirement is safe against
/// concurrent use: set_num_threads swaps the global reference out under the
/// mutex, but any parallel_for already inside ThreadPool::run holds its own
/// reference, so the pool (and its worker threads) is destroyed — joining
/// the workers — only when the last in-flight job lets go. Resetting a
/// unique_ptr here instead would free the pool out from under a running
/// job (use-after-free; see ParallelForRaceTest).
support::Mutex g_pool_mutex;
std::shared_ptr<ThreadPool> g_pool SOMRM_GUARDED_BY(g_pool_mutex);
std::atomic<std::size_t> g_thread_override{0};  // 0 = use the default

thread_local bool t_inside_parallel_for = false;

}  // namespace

std::vector<IndexRange> partition_ranges(std::size_t total,
                                         std::size_t num_parts) {
  std::vector<IndexRange> ranges;
  if (total == 0) return ranges;
  if (num_parts == 0) num_parts = 1;
  const std::size_t parts = std::min(total, num_parts);
  const std::size_t base = total / parts;
  const std::size_t remainder = total % parts;
  ranges.reserve(parts);
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < remainder ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

std::size_t default_num_threads() {
  static const std::size_t resolved = env_or_hardware_threads();
  return resolved;
}

std::size_t num_threads() {
  const std::size_t override_count = g_thread_override.load();
  return override_count > 0 ? override_count : default_num_threads();
}

void set_num_threads(std::size_t count) {
  std::shared_ptr<ThreadPool> retired;
  {
    support::MutexLock lock(g_pool_mutex);
    g_thread_override.store(std::min(count, kMaxThreads));
    retired = std::move(g_pool);  // lazily rebuilt at the new size on next use
  }
  // `retired` drops its reference outside the mutex. Jobs already inside
  // ThreadPool::run hold their own reference, so worker shutdown (the join
  // in ~ThreadPool) happens only after the last in-flight job finishes —
  // never under a job's feet, and never while holding g_pool_mutex.
}

void parallel_for(std::size_t total,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain) {
  if (total == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t threads = num_threads();
  const std::size_t max_parts = (total + grain - 1) / grain;
  const std::size_t parts = std::min(threads, max_parts);
  if (parts <= 1 || t_inside_parallel_for) {
    if (t_inside_parallel_for) {
      // Nested call: the enclosing job already accounts this thread's time.
      body(0, total);
      return;
    }
    const std::int64_t t0 = obs::now_ns();
    body(0, total);
    const std::int64_t dt = obs::now_ns() - t0;
    busy_metric().add(1, dt);
    jobs_metric().add(1, dt);
    return;
  }

  const std::vector<IndexRange> ranges = partition_ranges(total, parts);
  std::shared_ptr<ThreadPool> pool;
  {
    // Size the pool by what this job can actually use (parts - 1 workers
    // plus the calling thread), not the raw thread count: a huge
    // SOMRM_NUM_THREADS must never translate into thousands of idle OS
    // threads. The pool only grows; jobs needing fewer ranges than there
    // are workers leave the surplus parked on the condition variable.
    // The local shared_ptr pins the pool for the duration of run(): a
    // concurrent set_num_threads (or a concurrent grow below) may swap the
    // global reference, but this job's pool stays alive until it returns.
    support::MutexLock lock(g_pool_mutex);
    if (!g_pool || g_pool->worker_count() + 1 < parts)
      g_pool = std::make_shared<ThreadPool>(parts - 1);
    pool = g_pool;
  }

  t_inside_parallel_for = true;
  const std::int64_t job_t0 = obs::now_ns();
  try {
    pool->run(ranges, [&body](std::size_t begin, std::size_t end) {
      t_inside_parallel_for = true;
      const std::int64_t t0 = obs::now_ns();
      body(begin, end);
      busy_metric().add(1, obs::now_ns() - t0);
    });
  } catch (...) {
    t_inside_parallel_for = false;
    throw;
  }
  t_inside_parallel_for = false;
  jobs_metric().add(1, obs::now_ns() - job_t0);
}

}  // namespace somrm::linalg
