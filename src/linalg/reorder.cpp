#include "linalg/reorder.hpp"

#include <algorithm>
#include <stdexcept>

namespace somrm::linalg {

namespace {

/// Sorted, duplicate-free, self-loop-free adjacency of the symmetrized
/// pattern A + A^T as flat CSR-style arrays (offsets + neighbors). Built
/// with counting passes, no hash containers, so the layout — and every
/// ordering derived from it — is deterministic.
struct Adjacency {
  std::vector<std::size_t> offsets;
  std::vector<std::size_t> neighbors;

  std::size_t degree(std::size_t v) const {
    return offsets[v + 1] - offsets[v];
  }
  std::span<const std::size_t> of(std::size_t v) const {
    return std::span<const std::size_t>(neighbors)
        .subspan(offsets[v], degree(v));
  }
};

Adjacency build_symmetric_adjacency(const CsrMatrix& a) {
  const std::size_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();

  // Count both directions of every off-diagonal entry, scatter into a raw
  // buffer, then sort + dedup each vertex's slice into the final arrays.
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c == r) continue;
      ++counts[r];
      ++counts[c];
    }
  std::vector<std::size_t> raw_off(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) raw_off[v + 1] = raw_off[v] + counts[v];
  std::vector<std::size_t> raw(raw_off[n]);
  std::vector<std::size_t> cursor(raw_off.begin(), raw_off.end() - 1);
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c == r) continue;
      raw[cursor[r]++] = c;
      raw[cursor[c]++] = r;
    }
  Adjacency adj;
  adj.offsets.assign(n + 1, 0);
  adj.neighbors.reserve(raw.size());
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(raw.begin() + static_cast<std::ptrdiff_t>(raw_off[v]),
              raw.begin() + static_cast<std::ptrdiff_t>(raw_off[v + 1]));
    const std::size_t begin = adj.neighbors.size();
    for (std::size_t k = raw_off[v]; k < raw_off[v + 1]; ++k)
      if (adj.neighbors.size() == begin || adj.neighbors.back() != raw[k])
        adj.neighbors.push_back(raw[k]);
    adj.offsets[v + 1] = adj.neighbors.size();
  }
  return adj;
}

void require_square(const CsrMatrix& a, const char* caller) {
  if (a.rows() != a.cols())
    throw std::invalid_argument(std::string(caller) +
                                ": matrix must be square");
}

}  // namespace

std::vector<std::size_t> rcm_permutation(const CsrMatrix& a) {
  require_square(a, "rcm_permutation");
  const std::size_t n = a.rows();
  const Adjacency adj = build_symmetric_adjacency(a);

  // Component seeds in ascending (degree, index) order.
  std::vector<std::size_t> seeds(n);
  for (std::size_t v = 0; v < n; ++v) seeds[v] = v;
  std::stable_sort(seeds.begin(), seeds.end(),
                   [&](std::size_t x, std::size_t y) {
                     return adj.degree(x) < adj.degree(y);
                   });

  std::vector<char> visited(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> frontier;
  for (std::size_t seed : seeds) {
    if (visited[seed]) continue;
    // Cuthill–McKee BFS from the seed; the queue is `order` itself.
    visited[seed] = 1;
    const std::size_t head0 = order.size();
    order.push_back(seed);
    for (std::size_t head = head0; head < order.size(); ++head) {
      const std::size_t v = order[head];
      frontier.clear();
      for (std::size_t w : adj.of(v)) {
        if (visited[w]) continue;
        visited[w] = 1;
        frontier.push_back(w);
      }
      // adj.of(v) is ascending by index, so a stable sort on degree gives
      // the deterministic (degree, index) visit order.
      std::stable_sort(frontier.begin(), frontier.end(),
                       [&](std::size_t x, std::size_t y) {
                         return adj.degree(x) < adj.degree(y);
                       });
      order.insert(order.end(), frontier.begin(), frontier.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

std::vector<std::size_t> degree_permutation(const CsrMatrix& a) {
  require_square(a, "degree_permutation");
  const std::size_t n = a.rows();
  const Adjacency adj = build_symmetric_adjacency(a);
  std::vector<std::size_t> perm(n);
  for (std::size_t v = 0; v < n; ++v) perm[v] = v;
  std::stable_sort(perm.begin(), perm.end(),
                   [&](std::size_t x, std::size_t y) {
                     return adj.degree(x) < adj.degree(y);
                   });
  return perm;
}

std::vector<std::size_t> invert_permutation(
    std::span<const std::size_t> perm) {
  const std::size_t n = perm.size();
  std::vector<std::size_t> inverse(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    if (perm[i] >= n || inverse[perm[i]] != n)
      throw std::invalid_argument(
          "invert_permutation: input is not a permutation");
    inverse[perm[i]] = i;
  }
  return inverse;
}

bool is_identity_permutation(std::span<const std::size_t> perm) {
  for (std::size_t i = 0; i < perm.size(); ++i)
    if (perm[i] != i) return false;
  return true;
}

CsrMatrix permute_symmetric(const CsrMatrix& a,
                            std::span<const std::size_t> perm) {
  require_square(a, "permute_symmetric");
  if (perm.size() != a.rows())
    throw std::invalid_argument("permute_symmetric: permutation size mismatch");
  const std::vector<std::size_t> inverse = invert_permutation(perm);
  const std::size_t n = a.rows();
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  const auto& values = a.values();

  std::vector<std::size_t> new_row_ptr(n + 1, 0);
  std::vector<std::size_t> new_col_idx(a.nnz());
  std::vector<double> new_values(a.nnz());
  std::size_t k_out = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t src = perm[r];
    for (std::size_t k = row_ptr[src]; k < row_ptr[src + 1]; ++k) {
      // Entries keep the source row's stored order; only the column labels
      // are remapped. This is what preserves the FP accumulation chain.
      new_col_idx[k_out] = inverse[col_idx[k]];
      new_values[k_out] = values[k];
      ++k_out;
    }
    new_row_ptr[r + 1] = k_out;
  }
  return CsrMatrix::from_unsorted_parts(n, n, std::move(new_row_ptr),
                                        std::move(new_col_idx),
                                        std::move(new_values));
}

Vec permute_vector(std::span<const double> x,
                   std::span<const std::size_t> perm) {
  if (x.size() != perm.size())
    throw std::invalid_argument("permute_vector: size mismatch");
  Vec out(x.size(), 0.0);
  for (std::size_t i = 0; i < perm.size(); ++i) out[i] = x[perm[i]];
  return out;
}

Panel unpermute_panel_rows(const Panel& p,
                           std::span<const std::size_t> perm) {
  if (p.rows() != perm.size())
    throw std::invalid_argument("unpermute_panel_rows: size mismatch");
  Panel out(p.rows(), p.width());
  const std::size_t w = p.width();
  for (std::size_t i = 0; i < p.rows(); ++i) {
    const double* src = p.row_data(i);
    double* dst = out.data() + perm[i] * w;
    for (std::size_t j = 0; j < w; ++j) dst[j] = src[j];
  }
  return out;
}

std::size_t bandwidth(const CsrMatrix& a) {
  std::size_t band = 0;
  const auto& row_ptr = a.row_ptr();
  const auto& col_idx = a.col_idx();
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      band = std::max(band, c > r ? c - r : r - c);
    }
  return band;
}

}  // namespace somrm::linalg
