// somrm/linalg/panel.hpp
//
// Contiguous multi-vector panel for the randomization sweeps.
//
// The Theorem-3 recursion carries n+1 moment iterates U^(0..n)(k) through
// every sweep step. Stored as separate vectors, each CSR pass touches one
// iterate and the matrix structure is re-streamed once per moment order.
// A Panel stores the iterates row-major as P[state][moment] — one
// width-(n+1) row per state — so a single CSR pass can load each matrix
// entry once and multiply it against n+1 contiguous doubles
// (CsrMatrix::multiply_panel). Rows are owned by exactly one state, which
// keeps the row-range parallelism of linalg::parallel_for writer-disjoint.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/invariants.hpp"
#include "linalg/vec.hpp"

namespace somrm::linalg {

/// Row-major dense panel: rows() x width() doubles, row i contiguous at
/// data() + i * width(). Width is fixed at construction.
class Panel {
 public:
  /// Empty 0x0 panel.
  Panel() = default;

  /// rows x width panel with every element set to @p value.
  Panel(std::size_t rows, std::size_t width, double value = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t width() const { return width_; }
  /// Total element count rows() * width().
  std::size_t size() const { return data_.size(); }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// The whole panel as one contiguous span (row-major).
  std::span<double> span() { return data_; }
  std::span<const double> span() const { return data_; }

  /// Pointer to the first element of row @p i (bounds-checked only under
  /// SOMRM_CHECKED).
  double* row_data(std::size_t i) {
    SOMRM_CHECK(i < rows_, "panel.bounds",
                check::fmt("row ", i, " out of range (rows = ", rows_, ")"));
    return data_.data() + i * width_;
  }
  const double* row_data(std::size_t i) const {
    SOMRM_CHECK(i < rows_, "panel.bounds",
                check::fmt("row ", i, " out of range (rows = ", rows_, ")"));
    return data_.data() + i * width_;
  }

  /// Row @p i as a span of width() doubles (bounds-checked only under
  /// SOMRM_CHECKED).
  std::span<double> row(std::size_t i) { return {row_data(i), width_}; }
  std::span<const double> row(std::size_t i) const {
    return {row_data(i), width_};
  }

  double& operator()(std::size_t i, std::size_t j) {
    SOMRM_CHECK(i < rows_ && j < width_, "panel.bounds",
                check::fmt("(", i, ", ", j, ") out of range (", rows_, " x ",
                           width_, ")"));
    return data_[i * width_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    SOMRM_CHECK(i < rows_ && j < width_, "panel.bounds",
                check::fmt("(", i, ", ", j, ") out of range (", rows_, " x ",
                           width_, ")"));
    return data_[i * width_ + j];
  }

  /// Sets every element to @p value.
  void fill(double value);

  /// Sets column @p j (one element per row) to @p value. Throws
  /// std::out_of_range on a bad column.
  void fill_col(std::size_t j, double value);

  /// Copies @p src (length rows()) into column @p j. Throws on size or
  /// column mismatch.
  void set_col(std::size_t j, std::span<const double> src);

  /// Returns column @p j as a dense vector of length rows(). Throws
  /// std::out_of_range on a bad column.
  Vec col(std::size_t j) const;

  /// O(1) storage swap (the sweep's double-buffer flip).
  void swap(Panel& other) noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t width_ = 0;
  std::vector<double> data_;
};

}  // namespace somrm::linalg
