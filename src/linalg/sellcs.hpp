// somrm/linalg/sellcs.hpp
//
// SELL-C-σ (sliced ELLPACK) storage for the randomization sweep's SpMM.
//
// Rows are grouped into chunks of a fixed height C; each chunk stores its
// rows' entries slice-major, zero-padded to the chunk's longest row: the
// j-th stored entry of row i lives at
//
//   chunk_ptr[i / C] + j * C + (i % C)
//
// so walking row i's entries is a stride-C scan of one contiguous chunk
// slab, and the C rows of a chunk interleave perfectly within it. Sorting
// rows by descending stored-entry count inside windows of σ consecutive
// rows (the "σ" of SELL-C-σ) packs similar-length rows into the same chunk,
// which is what keeps the padding small; the sort is exposed as an explicit
// permutation (sigma_sort_permutation) so it composes with the bandwidth
// reorders of linalg/reorder.hpp — the solver permutes Q'/R'/S' and the
// seed, sweeps, and un-permutes the accumulator panels, exactly the
// existing reorder round trip.
//
// Bit-exactness contract (the same one csr.hpp and simd.hpp document): the
// kernels walk each row's entries in ascending j, which is the row's CSR
// entry order, and lane the PANEL COLUMNS — never the chunk rows — so per
// element the multiply-then-add chain is exactly the CSR kernels'. Padding
// slots hold (column 0, value 0.0) but are provably inert: every kernel
// iterates j < row_len[i] only, so a padding slot is never loaded, let
// alone multiplied — the layout cannot perturb even the sign of a zero.
// Converting a matrix to SELL-C-σ therefore changes memory traffic, never
// a single output bit (asserted by test_sellcs.cpp across storage × SIMD
// level × thread count × sweep kernel).

#pragma once

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/panel.hpp"
#include "linalg/simd.hpp"

namespace somrm::linalg {

/// Immutable SELL-C-σ sparse matrix. Built from a CsrMatrix whose rows are
/// already in the desired order (apply permute_symmetric with
/// sigma_sort_permutation first); the conversion itself never reorders.
class SellCsMatrix {
 public:
  /// Chunk height the solver uses: 8 rows per chunk keeps the chunk slab
  /// (8 * max_row_len entries) L1-resident for generator matrices while
  /// amortizing the per-chunk base-pointer lookup.
  static constexpr std::size_t kDefaultChunk = 8;
  /// σ window the solver sorts within: 8 chunks' worth of rows. Wide enough
  /// to pack ragged generator rows tightly, narrow enough that the
  /// permutation stays close to the bandwidth-reduced order it composes
  /// with.
  static constexpr std::size_t kDefaultSigma = 64;

  /// Empty 0x0 matrix.
  SellCsMatrix() = default;

  /// Descending-row-length ordering within windows of @p sigma consecutive
  /// rows of @p a: returns perm with perm[new_index] = old_index (the
  /// convention of linalg/reorder.hpp, so the result feeds
  /// permute_symmetric / permute_vector / unpermute_panel_rows directly).
  /// The sort is stable with ties on ascending index — a pure function of
  /// the sparsity pattern. sigma <= 1 yields the identity.
  static std::vector<std::size_t> sigma_sort_permutation(const CsrMatrix& a,
                                                         std::size_t sigma);

  /// Converts @p a row-for-row (no reordering) with chunk height @p chunk,
  /// which must be 4 or 8 — the two heights the sweep kernels are tuned
  /// for. Throws std::invalid_argument otherwise. Preserves each row's
  /// stored-entry order exactly, including unsorted columns from
  /// permute_symmetric.
  static SellCsMatrix from_csr(const CsrMatrix& a,
                               std::size_t chunk = kDefaultChunk);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nnz() const { return nnz_; }
  /// Chunk height C.
  std::size_t chunk() const { return chunk_; }
  std::size_t num_chunks() const {
    return chunk_ptr_.empty() ? 0 : chunk_ptr_.size() - 1;
  }
  /// Allocated entry slots including padding (== col_idx().size()).
  std::size_t padded_entries() const { return values_.size(); }
  /// Fraction of allocated slots that are padding: 0 for a perfectly packed
  /// (or empty) matrix. Reported in SolverStats / BenchRecord JSON.
  double padding_ratio() const {
    return values_.empty()
               ? 0.0
               : 1.0 - static_cast<double>(nnz_) /
                           static_cast<double>(values_.size());
  }
  /// nnz / padded_entries — the complement of padding_ratio (1 when empty:
  /// nothing allocated, nothing wasted).
  double chunk_occupancy() const {
    return values_.empty() ? 1.0
                           : static_cast<double>(nnz_) /
                                 static_cast<double>(values_.size());
  }

  /// Entry offset of chunk c's slab, per chunk, plus one-past-the-end.
  const std::vector<std::size_t>& chunk_ptr() const { return chunk_ptr_; }
  /// Stored (non-padding) entries per row.
  const std::vector<std::size_t>& row_len() const { return row_len_; }
  /// Slice-major column indices; padding slots hold 0.
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  /// Slice-major values; padding slots hold 0.0.
  const std::vector<double>& values() const { return values_; }

  /// Raw view the SIMD kernels consume (see linalg/simd.hpp).
  simd::SellView view() const {
    return simd::SellView{chunk_ptr_.data(), row_len_.data(), col_idx_.data(),
                          values_.data(), chunk_};
  }

  /// Round trip back to CSR: same rows/cols/nnz, each row's entries in the
  /// same order (columns_sorted() reflects the actual order, as
  /// from_unsorted_parts computes it). Tests pin from_csr ∘ to_csr == id.
  CsrMatrix to_csr() const;

  /// Calls fn(col, value) for row i's stored entries in ascending j — the
  /// row's original CSR entry order. Padding is never visited. Inlines into
  /// the fused sweep kernels (core/randomization.cpp), which are templated
  /// over the storage format via exactly this hook.
  template <class Fn>
  void visit_row(std::size_t i, Fn&& fn) const {
    const std::size_t base = chunk_ptr_[i / chunk_] + (i % chunk_);
    const std::size_t len = row_len_[i];
    for (std::size_t j = 0; j < len; ++j) {
      const std::size_t e = base + j * chunk_;
      fn(col_idx_[e], values_[e]);
    }
  }

  /// Y = A * X for row-major panels; same contract as
  /// CsrMatrix::multiply_panel (sizes validated, no aliasing, row-parallel,
  /// bit-identical to the CSR product at every thread count).
  void multiply_panel(const Panel& x, Panel& y) const;

  /// Row-range SpMM worker; same contract as
  /// CsrMatrix::multiply_panel_rows (serial — the caller owns the
  /// parallelism; any row range, no chunk alignment required). Dispatches
  /// to simd::sell_panel_rows_kernel() when a vector level is active.
  void multiply_panel_rows(const Panel& x, Panel& y, std::size_t row_begin,
                           std::size_t row_end, std::size_t src_col,
                           std::size_t dst_col, std::size_t count,
                           bool accumulate) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t chunk_ = kDefaultChunk;
  std::size_t nnz_ = 0;
  std::vector<std::size_t> chunk_ptr_{0};
  std::vector<std::size_t> row_len_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace somrm::linalg
