// somrm/linalg/tridiag.hpp
//
// Tridiagonal kernels:
//  * Thomas algorithm for general tridiagonal systems (the implicit
//    advection-diffusion step of the PDE density solver), and
//  * a symmetric tridiagonal eigensolver (implicit-shift QL) used by the
//    Golub-Welsch quadrature inside the moment-bound module.
//
// The eigensolver is templated on the real type because the moment-bound
// pipeline runs in long double: Hankel matrices of 20+ raw moments are too
// ill-conditioned for double.

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace somrm::linalg {

/// Solves a general tridiagonal system A x = rhs with the Thomas algorithm.
///
/// @param lower  sub-diagonal, lower[i] multiplies x[i-1] in row i
///               (lower[0] is ignored); size n
/// @param diag   main diagonal; size n
/// @param upper  super-diagonal, upper[i] multiplies x[i+1] in row i
///               (upper[n-1] is ignored); size n
/// @param rhs    right-hand side; size n
/// @returns the solution vector x
///
/// Throws std::runtime_error if a pivot vanishes (no pivoting is performed;
/// callers use diagonally dominant systems where Thomas is stable).
std::vector<double> solve_tridiagonal(std::span<const double> lower,
                                      std::span<const double> diag,
                                      std::span<const double> upper,
                                      std::span<const double> rhs);

/// Eigen-decomposition of a symmetric tridiagonal matrix.
///
/// diag has size n, offdiag size n-1 (offdiag[i] couples i and i+1).
/// On return, eigenvalues are sorted ascending; first_components[k] is the
/// first element of the (normalized) eigenvector belonging to
/// eigenvalues[k] — exactly what Golub-Welsch quadrature needs.
template <typename Real>
struct TridiagEigen {
  std::vector<Real> eigenvalues;
  std::vector<Real> first_components;
};

/// Implicit-shift QL iteration (EISPACK imtql2-style) tracking only the first
/// row of the accumulated rotations. Throws std::runtime_error if an
/// eigenvalue fails to converge in 50 iterations.
template <typename Real>
TridiagEigen<Real> symmetric_tridiagonal_eigen(std::vector<Real> diag,
                                               std::vector<Real> offdiag);

extern template TridiagEigen<double> symmetric_tridiagonal_eigen<double>(
    std::vector<double>, std::vector<double>);
extern template TridiagEigen<long double>
symmetric_tridiagonal_eigen<long double>(std::vector<long double>,
                                         std::vector<long double>);

}  // namespace somrm::linalg
