// somrm/linalg/parallel.hpp
//
// Minimal row-range parallelism for the solver hot loops.
//
// The randomization sweep, the fused U-recursion kernel, and CsrMatrix's
// matvecs are all embarrassingly row-parallel: every output element is owned
// by exactly one row. parallel_for() partitions [0, total) into contiguous
// ranges — one per worker, deterministically — and runs the callback on each
// range. Because the partition depends only on (total, thread count) and the
// callbacks write disjoint index ranges, results are bit-identical for every
// thread count; with one thread the callback runs inline on the calling
// thread with zero synchronization, so single-threaded behaviour (and
// floating-point output) is exactly that of the plain serial loop.
//
// Thread count resolution, in priority order:
//   1. set_num_threads(k) with k > 0,
//   2. the SOMRM_NUM_THREADS environment variable (read once),
//   3. std::thread::hardware_concurrency().
// The worker pool is lazily created, persistent, and resized on demand;
// nested parallel_for calls (a callback invoking parallel_for, directly or
// through CsrMatrix::multiply) detect the nesting and run inline.

#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace somrm::linalg {

/// Half-open index range [begin, end).
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t size() const { return end - begin; }
};

/// Splits [0, total) into at most @p num_parts contiguous, non-empty,
/// ascending ranges whose sizes differ by at most one. Deterministic in
/// (total, num_parts); returns fewer than @p num_parts ranges only when
/// total < num_parts, and an empty vector only when total == 0.
std::vector<IndexRange> partition_ranges(std::size_t total,
                                         std::size_t num_parts);

/// The thread count parallel_for will use (>= 1). Resolves the override set
/// by set_num_threads, then SOMRM_NUM_THREADS, then hardware concurrency.
std::size_t num_threads();

/// Overrides the thread count. @p count == 0 resets to the environment /
/// hardware default; values above an internal ceiling (1024) are clamped —
/// like oversized SOMRM_NUM_THREADS values — so pathological requests
/// degrade instead of exhausting OS threads. Safe to call concurrently with
/// parallel_for: the worker pool is reference-counted, so in-flight jobs
/// finish on the pool they started on and retirement (joining the old
/// workers) waits for the last of them; only jobs SUBMITTED after the call
/// see the new count.
void set_num_threads(std::size_t count);

/// What the environment/hardware default resolves to (ignores overrides).
std::size_t default_num_threads();

/// Runs @p body over a deterministic partition of [0, total).
///
/// @p body receives the half-open range [begin, end) it owns and MUST write
/// only to indices in that range (reads are unrestricted). @p grain is the
/// minimum number of indices per range: the partition uses
/// min(num_threads(), total / grain rounded up) parts, so small problems run
/// inline with no thread traffic. Exceptions thrown by @p body are captured
/// and the first one is rethrown on the calling thread after all ranges
/// finish. Calls from inside a parallel_for callback run inline.
void parallel_for(std::size_t total,
                  const std::function<void(std::size_t, std::size_t)>& body,
                  std::size_t grain = 1024);

}  // namespace somrm::linalg
