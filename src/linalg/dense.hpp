// somrm/linalg/dense.hpp
//
// Small dense matrix type used by the transform-domain density solver and by
// the dense stationary solver (GTH). Templated on the scalar so the same code
// serves real generators and the complex matrices exp(t(Q - iwR - w^2/2 S))
// needed for characteristic functions.
//
// This is deliberately a simple row-major value type: the matrices involved
// are at most a few hundred rows (the paper notes transform/PDE methods stop
// being practical beyond ~100 states), so cache-blocking or expression
// templates would be over-engineering.

#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace somrm::linalg {

template <typename T>
class Dense {
 public:
  Dense() = default;

  /// rows x cols matrix, zero initialized.
  Dense(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, T{}) {}

  static Dense identity(std::size_t n) {
    Dense m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) { return {data_.data() + r * cols_, cols_}; }
  std::span<const T> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  Dense& operator+=(const Dense& o) {
    check_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
    return *this;
  }

  Dense& operator-=(const Dense& o) {
    check_same_shape(o);
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
    return *this;
  }

  Dense& operator*=(T alpha) {
    for (T& v : data_) v *= alpha;
    return *this;
  }

  friend Dense operator+(Dense a, const Dense& b) { return a += b; }
  friend Dense operator-(Dense a, const Dense& b) { return a -= b; }
  friend Dense operator*(Dense a, T alpha) { return a *= alpha; }
  friend Dense operator*(T alpha, Dense a) { return a *= alpha; }

  /// Matrix product this * other.
  Dense multiply(const Dense& other) const {
    if (cols_ != other.rows_)
      throw std::invalid_argument("Dense::multiply: shape mismatch");
    Dense out(rows_, other.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(i, k);
        if (a == T{}) continue;
        for (std::size_t j = 0; j < other.cols_; ++j)
          out(i, j) += a * other(k, j);
      }
    }
    return out;
  }

  /// y = this * x for a dense vector.
  std::vector<T> multiply(std::span<const T> x) const {
    if (x.size() != cols_)
      throw std::invalid_argument("Dense::multiply(vec): size mismatch");
    std::vector<T> y(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i) {
      T acc{};
      for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * x[j];
      y[i] = acc;
    }
    return y;
  }

  /// 1-norm (max column sum of absolute values); used by expm scaling.
  double norm1() const;

  /// max |a_ij|.
  double norm_max() const;

  /// Solves this * X = B in place of B via Gaussian elimination with partial
  /// pivoting (this is copied, B overwritten with X). Throws
  /// std::runtime_error on numerical singularity.
  void solve_in_place(Dense& b) const;

  /// Convenience: solves this * x = rhs.
  std::vector<T> solve(std::span<const T> rhs) const {
    if (rhs.size() != rows_)
      throw std::invalid_argument("Dense::solve: rhs size mismatch");
    Dense b(rows_, 1);
    for (std::size_t i = 0; i < rows_; ++i) b(i, 0) = rhs[i];
    solve_in_place(b);
    std::vector<T> x(rows_);
    for (std::size_t i = 0; i < rows_; ++i) x[i] = b(i, 0);
    return x;
  }

  Dense transposed() const {
    Dense out(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
    return out;
  }

 private:
  void check_same_shape(const Dense& o) const {
    if (rows_ != o.rows_ || cols_ != o.cols_)
      throw std::invalid_argument("Dense: shape mismatch");
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using DenseMatrix = Dense<double>;
using DenseCMatrix = Dense<std::complex<double>>;

extern template class Dense<double>;
extern template class Dense<std::complex<double>>;

}  // namespace somrm::linalg
