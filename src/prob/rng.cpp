#include "prob/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace somrm::prob {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& lane : state_) lane = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open_left() {
  return (static_cast<double>(next_u64() >> 11) + 1.0) * 0x1.0p-53;
}

std::uint64_t Rng::uniform_below(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("Rng::uniform_below: n must be > 0");
  const std::uint64_t limit = ~std::uint64_t{0} - (~std::uint64_t{0} % n);
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

double Rng::standard_normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  const double u1 = uniform01_open_left();
  const double u2 = uniform01();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double variance) {
  if (variance < 0.0)
    throw std::invalid_argument("Rng::normal: negative variance");
  if (variance == 0.0) return mean;
  return mean + std::sqrt(variance) * standard_normal();
}

double Rng::exponential(double rate) {
  if (!(rate > 0.0))
    throw std::invalid_argument("Rng::exponential: rate must be positive");
  return -std::log(uniform01_open_left()) / rate;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("Rng::discrete: negative weight");
    total += w;
  }
  if (!(total > 0.0))
    throw std::invalid_argument("Rng::discrete: zero total weight");
  double u = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // guard against rounding at the boundary
}

}  // namespace somrm::prob
