// somrm/prob/poisson.hpp
//
// Poisson weights for randomization (uniformization).
//
// Both the CTMC transient solver and the Theorem-3 moment solver expand the
// solution in Poisson probabilities Pois(k; qt). For the paper's large model
// qt = 40,000, where e^{-qt} underflows by ~17,000 decimal orders, so all
// weight and tail computations here run in log space (lgamma based). This is
// the same concern Fox & Glynn (1988) address; log-space evaluation is
// simpler and the weights themselves are well within double range near the
// mode (≈ 1/sqrt(2 pi qt)).

#pragma once

#include <cstddef>
#include <vector>

namespace somrm::prob {

/// log Pois(k; lambda) = -lambda + k log lambda - log k!. Exact for
/// lambda == 0 as well (0 for k == 0, -inf otherwise).
double log_poisson_pmf(std::size_t k, double lambda);

/// Pois(k; lambda), evaluated via the log form (no underflow cascades).
double poisson_pmf(std::size_t k, double lambda);

/// Weights Pois(k; lambda) for k = 0..k_max inclusive.
std::vector<double> poisson_weights(double lambda, std::size_t k_max);

/// log of the right tail sum  log( sum_{k >= k_min} Pois(k; lambda) ).
///
/// For k_min <= mode the tail is >= 1/2 and is returned as log of the
/// directly accumulated complement; deep right tails (the Theorem-4 regime)
/// are summed from k_min with the geometric-ratio recursion
/// term_{k+1} = term_k * lambda/(k+1), entirely in scaled space.
double log_poisson_tail(double lambda, std::size_t k_min);

/// Right tail sum Pr(Pois(lambda) >= k_min); may underflow to 0 for deep
/// tails — use log_poisson_tail when the magnitude matters.
double poisson_tail(double lambda, std::size_t k_min);

/// Smallest K such that Pr(Pois(lambda) >= K+1) < tail_bound, i.e. the
/// truncation point for sum_{k=0..K}. @p log_tail_bound is log(tail_bound),
/// accepted in log form because Theorem-4 tail targets can be far below
/// double range. Throws std::invalid_argument for lambda < 0.
std::size_t poisson_truncation_point(double lambda, double log_tail_bound);

}  // namespace somrm::prob
