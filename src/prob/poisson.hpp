// somrm/prob/poisson.hpp
//
// Poisson weights for randomization (uniformization).
//
// Both the CTMC transient solver and the Theorem-3 moment solver expand the
// solution in Poisson probabilities Pois(k; qt). For the paper's large model
// qt = 40,000, where e^{-qt} underflows by ~17,000 decimal orders, so all
// weight and tail computations here run in log space (lgamma based). This is
// the same concern Fox & Glynn (1988) address; log-space evaluation is
// simpler and the weights themselves are well within double range near the
// mode (≈ 1/sqrt(2 pi qt)).

#pragma once

#include <cstddef>
#include <vector>

namespace somrm::prob {

/// log(k!), evaluated thread-safely. std::lgamma is off-limits anywhere a
/// concurrent solve can reach (every pmf/tail path here, the Theorem-4
/// prefactor): glibc's lgamma writes the process-global `signgam`, a data
/// race once ServeEngine workers sweep in parallel. Uses lgamma_r where
/// available; the sign output is irrelevant (k! > 0).
double log_factorial(std::size_t k);

/// log Pois(k; lambda) = -lambda + k log lambda - log k!. Exact for
/// lambda == 0 as well (0 for k == 0, -inf otherwise).
double log_poisson_pmf(std::size_t k, double lambda);

/// Pois(k; lambda), evaluated via the log form (no underflow cascades).
double poisson_pmf(std::size_t k, double lambda);

/// Weights Pois(k; lambda) for k = 0..k_max inclusive.
std::vector<double> poisson_weights(double lambda, std::size_t k_max);

/// Left-truncated window of Poisson weights, Fox–Glynn style.
///
/// weights[i] = Pois(left + i; lambda) for left..right(), where the window
/// covers every k in [0, k_max] whose weight is a NORMAL positive double
/// (>= DBL_MIN); sub-normal weights are truncated away — they carry total
/// mass < (k_max+1) * DBL_MIN and would stall the accumulation hot loops
/// with denormal-arithmetic microcode assists (for lambda = 40,000 the left
/// truncation drops the first ~32,000 indices). Built from ONE
/// lgamma evaluation at the mode and the multiplicative recurrences
///   Pois(k+1) = Pois(k) * lambda / (k+1),  Pois(k-1) = Pois(k) * k / lambda,
/// which are stable in both directions because the anchor is the mode (the
/// maximal weight) and every step moves downhill.
struct PoissonWindow {
  std::size_t left = 0;          ///< first k inside the window
  std::vector<double> weights;   ///< weights[i] = Pois(left + i; lambda)

  /// Last k inside the window (== left when the window has one entry).
  std::size_t right() const {
    return left + (weights.empty() ? 0 : weights.size() - 1);
  }
  /// Pois(k; lambda), 0 outside the window (and everywhere when empty).
  double weight(std::size_t k) const {
    if (weights.empty() || k < left || k - left >= weights.size()) return 0.0;
    return weights[k - left];
  }
};

/// Builds the weight window for k = 0..k_max (right truncation at the
/// caller's Theorem-4 / uniformization truncation point). O(window width)
/// multiplications and a single lgamma; replaces k_max per-k lgamma-based
/// poisson_pmf calls in the randomization sweeps.
PoissonWindow poisson_weight_window(double lambda, std::size_t k_max);

/// log of the right tail sum  log( sum_{k >= k_min} Pois(k; lambda) ).
///
/// For k_min <= mode the tail is >= 1/2 and is returned as log of the
/// directly accumulated complement; deep right tails (the Theorem-4 regime)
/// are summed from k_min with the geometric-ratio recursion
/// term_{k+1} = term_k * lambda/(k+1), entirely in scaled space.
double log_poisson_tail(double lambda, std::size_t k_min);

/// Right tail sum Pr(Pois(lambda) >= k_min); may underflow to 0 for deep
/// tails — use log_poisson_tail when the magnitude matters.
double poisson_tail(double lambda, std::size_t k_min);

/// Smallest K such that Pr(Pois(lambda) >= K+1) < tail_bound, i.e. the
/// truncation point for sum_{k=0..K}. @p log_tail_bound is log(tail_bound),
/// accepted in log form because Theorem-4 tail targets can be far below
/// double range. Throws std::invalid_argument for lambda < 0.
std::size_t poisson_truncation_point(double lambda, double log_tail_bound);

}  // namespace somrm::prob
