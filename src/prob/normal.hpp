// somrm/prob/normal.hpp
//
// Normal-distribution utilities. Second-order MRMs accumulate reward as a
// Brownian motion, so normal densities/CDFs and the raw moments of
// N(mu, sigma^2) appear throughout: in the simulator (sojourn increments),
// in closed-form test anchors (1-state models), and in the q = 0 degenerate
// path of the randomization solver.

#pragma once

#include <cstddef>
#include <vector>

namespace somrm::prob {

/// Density of N(mean, variance) at x. variance == 0 is rejected
/// (callers handle the deterministic case explicitly).
double normal_pdf(double x, double mean, double variance);

/// CDF of N(mean, variance) at x; variance == 0 yields the step function.
double normal_cdf(double x, double mean, double variance);

/// Inverse CDF (quantile) of the standard normal. p in (0,1); implemented
/// with the Acklam rational approximation plus one Halley refinement step
/// (|error| < 1e-15 across the domain).
double standard_normal_quantile(double p);

/// Raw moments E[X^k], k = 0..order, of X ~ N(mean, variance), via the
/// recurrence M_k = mean * M_{k-1} + (k-1) * variance * M_{k-2}.
std::vector<double> normal_raw_moments(double mean, double variance,
                                       std::size_t order);

/// Raw moments E[B(t)^k] of a single Brownian motion with drift r and
/// variance parameter sigma2 at time t, i.e. of N(r t, sigma2 t).
std::vector<double> brownian_raw_moments(double r, double sigma2, double t,
                                         std::size_t order);

}  // namespace somrm::prob
