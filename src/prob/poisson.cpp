#include "prob/poisson.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#if defined(__GLIBC__)
// Re-entrant lgamma: identical value, sign returned through the out param
// instead of the process-global `signgam` that plain lgamma races on.
// Declared by math.h only under misc/XOPEN feature macros, which strict
// -std=c++20 turns off — the symbol itself is unconditionally in libm.
extern "C" double lgamma_r(double, int*) noexcept;
#endif

namespace somrm::prob {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_factorial(std::size_t k) {
  const double x = static_cast<double>(k) + 1.0;
#if defined(__GLIBC__)
  int sign = 0;
  return ::lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double log_poisson_pmf(std::size_t k, double lambda) {
  if (lambda < 0.0)
    throw std::invalid_argument("log_poisson_pmf: negative lambda");
  if (lambda == 0.0) return k == 0 ? 0.0 : kNegInf;
  return -lambda + static_cast<double>(k) * std::log(lambda) -
         log_factorial(k);
}

double poisson_pmf(std::size_t k, double lambda) {
  const double lp = log_poisson_pmf(k, lambda);
  return lp == kNegInf ? 0.0 : std::exp(lp);
}

std::vector<double> poisson_weights(double lambda, std::size_t k_max) {
  std::vector<double> w(k_max + 1);
  for (std::size_t k = 0; k <= k_max; ++k) w[k] = poisson_pmf(k, lambda);
  return w;
}

PoissonWindow poisson_weight_window(double lambda, std::size_t k_max) {
  if (lambda < 0.0)
    throw std::invalid_argument("poisson_weight_window: negative lambda");
  PoissonWindow window;
  if (lambda == 0.0) {
    window.left = 0;
    window.weights = {1.0};
    return window;
  }

  // Anchor at the in-range index closest to the mode — the maximal weight —
  // so both recurrence directions only ever shrink the value (no overflow,
  // and underflow marks exactly the indices whose pmf is sub-denormal).
  const std::size_t mode =
      std::min(k_max, static_cast<std::size_t>(std::floor(lambda)));
  const double w_mode = poisson_pmf(mode, lambda);
  if (w_mode == 0.0) {
    // qt so extreme even the mode underflows double range; degenerate empty
    // window (every weight is 0). left > k_max signals "nothing to add".
    window.left = k_max + 1;
    return window;
  }

  // Downward from the mode until the weights leave normal double range
  // (left truncation). The cut must be at DBL_MIN, not 0: in the denormal
  // range the recurrence w *= k/lambda with k/lambda >= 1/2 rounds the
  // smallest denormal back onto itself and never reaches zero, which would
  // both extend the window down to k = lambda/2 with thousands of junk
  // 5e-324 entries and poison the accumulation loops with denormal
  // multiplies (~100-cycle microcode assists each). The truncated mass is
  // < (k_max + 1) * DBL_MIN ~ 1e-300 — far below any Theorem-4 epsilon.
  const double w_min = std::numeric_limits<double>::min();
  std::vector<double> below;  // weights at mode-1, mode-2, ... (descending k)
  double w = w_mode;
  for (std::size_t k = mode; k > 0; --k) {
    w *= static_cast<double>(k) / lambda;
    if (w < w_min) break;
    below.push_back(w);
  }
  window.left = mode - below.size();
  window.weights.reserve(below.size() + 1 + (k_max - mode));
  window.weights.assign(below.rbegin(), below.rend());
  window.weights.push_back(w_mode);

  // Upward from the mode to k_max; stop early once the weights leave
  // normal range (same denormal-stall hazard as above).
  w = w_mode;
  for (std::size_t k = mode; k < k_max; ++k) {
    w *= lambda / static_cast<double>(k + 1);
    if (w < w_min) break;
    window.weights.push_back(w);
  }
  return window;
}

double log_poisson_tail(double lambda, std::size_t k_min) {
  if (lambda < 0.0)
    throw std::invalid_argument("log_poisson_tail: negative lambda");
  if (k_min == 0) return 0.0;  // the whole distribution
  if (lambda == 0.0) return kNegInf;

  if (static_cast<double>(k_min) <= lambda + 1.0) {
    // Tail is a macroscopic probability: compute 1 - left sum directly. The
    // left sum descends from its largest term pmf(k_min - 1) — one lgamma —
    // via pmf(k-1) = pmf(k) * k / lambda; once terms underflow to zero every
    // earlier term is zero too (k < k_min <= lambda + 1 keeps the ratio
    // k / lambda <= 1, so terms are non-increasing going down). The old
    // per-k poisson_pmf loop cost O(k_min) lgamma calls, which
    // poisson_truncation_point's bisection then paid ~log2(G) times.
    double left = 0.0;
    double term = poisson_pmf(k_min - 1, lambda);
    for (std::size_t k = k_min - 1; k > 0 && term != 0.0; --k) {
      left += term;
      term *= static_cast<double>(k) / lambda;
    }
    left += term;  // the k = 0 term (or 0 if the recurrence underflowed)
    const double tail = 1.0 - left;
    if (tail <= 0.0) {
      // Rounding pushed the complement to zero; fall through to the series.
    } else {
      return std::log(tail);
    }
  }

  // Deep right tail: sum_{k >= k_min} pmf(k) = pmf(k_min) * S with
  // S = 1 + l/(k+1) + l^2/((k+1)(k+2)) + ...; the ratios are < 1 here so the
  // series converges geometrically.
  double acc = 1.0;
  double term = 1.0;
  std::size_t k = k_min;
  for (std::size_t iter = 0; iter < 1000000; ++iter) {
    term *= lambda / static_cast<double>(k + 1);
    acc += term;
    ++k;
    if (term < acc * 1e-18) break;
  }
  return log_poisson_pmf(k_min, lambda) + std::log(acc);
}

double poisson_tail(double lambda, std::size_t k_min) {
  const double lt = log_poisson_tail(lambda, k_min);
  return lt == kNegInf ? 0.0 : std::exp(lt);
}

std::size_t poisson_truncation_point(double lambda, double log_tail_bound) {
  if (lambda < 0.0)
    throw std::invalid_argument("poisson_truncation_point: negative lambda");
  if (log_tail_bound >= 0.0) return 0;  // any truncation satisfies tail < 1
  if (lambda == 0.0) return 0;

  const auto tail_ok = [&](std::size_t k) {
    return log_poisson_tail(lambda, k + 1) < log_tail_bound;
  };

  // Exponential search for an upper bracket.
  std::size_t hi = static_cast<std::size_t>(
      std::ceil(lambda + 10.0 * std::sqrt(lambda + 10.0) + 50.0));
  while (!tail_ok(hi)) {
    if (hi > (std::size_t{1} << 40))
      throw std::runtime_error(
          "poisson_truncation_point: bracket search failed");
    hi *= 2;
  }
  std::size_t lo = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (tail_ok(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace somrm::prob
