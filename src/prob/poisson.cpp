#include "prob/poisson.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace somrm::prob {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}

double log_poisson_pmf(std::size_t k, double lambda) {
  if (lambda < 0.0)
    throw std::invalid_argument("log_poisson_pmf: negative lambda");
  if (lambda == 0.0) return k == 0 ? 0.0 : kNegInf;
  return -lambda + static_cast<double>(k) * std::log(lambda) -
         std::lgamma(static_cast<double>(k) + 1.0);
}

double poisson_pmf(std::size_t k, double lambda) {
  const double lp = log_poisson_pmf(k, lambda);
  return lp == kNegInf ? 0.0 : std::exp(lp);
}

std::vector<double> poisson_weights(double lambda, std::size_t k_max) {
  std::vector<double> w(k_max + 1);
  for (std::size_t k = 0; k <= k_max; ++k) w[k] = poisson_pmf(k, lambda);
  return w;
}

double log_poisson_tail(double lambda, std::size_t k_min) {
  if (lambda < 0.0)
    throw std::invalid_argument("log_poisson_tail: negative lambda");
  if (k_min == 0) return 0.0;  // the whole distribution
  if (lambda == 0.0) return kNegInf;

  if (static_cast<double>(k_min) <= lambda + 1.0) {
    // Tail is a macroscopic probability: compute 1 - left sum directly.
    double left = 0.0;
    for (std::size_t k = 0; k < k_min; ++k) left += poisson_pmf(k, lambda);
    const double tail = 1.0 - left;
    if (tail <= 0.0) {
      // Rounding pushed the complement to zero; fall through to the series.
    } else {
      return std::log(tail);
    }
  }

  // Deep right tail: sum_{k >= k_min} pmf(k) = pmf(k_min) * S with
  // S = 1 + l/(k+1) + l^2/((k+1)(k+2)) + ...; the ratios are < 1 here so the
  // series converges geometrically.
  double acc = 1.0;
  double term = 1.0;
  std::size_t k = k_min;
  for (std::size_t iter = 0; iter < 1000000; ++iter) {
    term *= lambda / static_cast<double>(k + 1);
    acc += term;
    ++k;
    if (term < acc * 1e-18) break;
  }
  return log_poisson_pmf(k_min, lambda) + std::log(acc);
}

double poisson_tail(double lambda, std::size_t k_min) {
  const double lt = log_poisson_tail(lambda, k_min);
  return lt == kNegInf ? 0.0 : std::exp(lt);
}

std::size_t poisson_truncation_point(double lambda, double log_tail_bound) {
  if (lambda < 0.0)
    throw std::invalid_argument("poisson_truncation_point: negative lambda");
  if (log_tail_bound >= 0.0) return 0;  // any truncation satisfies tail < 1
  if (lambda == 0.0) return 0;

  const auto tail_ok = [&](std::size_t k) {
    return log_poisson_tail(lambda, k + 1) < log_tail_bound;
  };

  // Exponential search for an upper bracket.
  std::size_t hi = static_cast<std::size_t>(
      std::ceil(lambda + 10.0 * std::sqrt(lambda + 10.0) + 50.0));
  while (!tail_ok(hi)) {
    if (hi > (std::size_t{1} << 40))
      throw std::runtime_error(
          "poisson_truncation_point: bracket search failed");
    hi *= 2;
  }
  std::size_t lo = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (tail_ok(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace somrm::prob
