// somrm/prob/rng.hpp
//
// Deterministic, platform-independent random number generator for the Monte
// Carlo simulator and the property tests: xoshiro256** seeded through
// splitmix64. std::mt19937 would work, but the distributions in <random> are
// not required to produce identical streams across standard library
// implementations; the simulator's regression tests rely on exact
// reproducibility, so both the engine and the variate transforms live here.

#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace somrm::prob {

class Rng {
 public:
  /// Seeds the four 64-bit lanes from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// Uniform double in (0, 1] — safe as a log() argument.
  double uniform01_open_left();

  /// Uniform integer in [0, n). Requires n > 0; uses rejection to stay
  /// unbiased.
  std::uint64_t uniform_below(std::uint64_t n);

  /// Standard normal variate (Box-Muller pair, one value cached).
  double standard_normal();

  /// N(mean, variance) variate; variance >= 0 (0 returns mean).
  double normal(double mean, double variance);

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Samples an index distributed according to the (unnormalized,
  /// non-negative) weights; linear scan. Throws if total weight is 0.
  std::size_t discrete(std::span<const double> weights);

 private:
  std::array<std::uint64_t, 4> state_;
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace somrm::prob
