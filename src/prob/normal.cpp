#include "prob/normal.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace somrm::prob {

double normal_pdf(double x, double mean, double variance) {
  if (!(variance > 0.0))
    throw std::invalid_argument("normal_pdf: variance must be positive");
  const double z = (x - mean);
  return std::exp(-z * z / (2.0 * variance)) /
         std::sqrt(2.0 * std::numbers::pi * variance);
}

double normal_cdf(double x, double mean, double variance) {
  if (variance < 0.0)
    throw std::invalid_argument("normal_cdf: negative variance");
  if (variance == 0.0) return x < mean ? 0.0 : 1.0;
  const double z = (x - mean) / std::sqrt(variance);
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

double standard_normal_quantile(double p) {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument("standard_normal_quantile: p must be in (0,1)");

  // Acklam's rational approximation.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log1p(-p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }

  // One Halley refinement step against the exact CDF.
  const double e = 0.5 * std::erfc(-x / std::numbers::sqrt2) - p;
  const double u =
      e * std::sqrt(2.0 * std::numbers::pi) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

std::vector<double> normal_raw_moments(double mean, double variance,
                                       std::size_t order) {
  if (variance < 0.0)
    throw std::invalid_argument("normal_raw_moments: negative variance");
  std::vector<double> m(order + 1);
  m[0] = 1.0;
  if (order >= 1) m[1] = mean;
  for (std::size_t k = 2; k <= order; ++k)
    m[k] = mean * m[k - 1] + static_cast<double>(k - 1) * variance * m[k - 2];
  return m;
}

std::vector<double> brownian_raw_moments(double r, double sigma2, double t,
                                         std::size_t order) {
  if (t < 0.0)
    throw std::invalid_argument("brownian_raw_moments: negative time");
  return normal_raw_moments(r * t, sigma2 * t, order);
}

}  // namespace somrm::prob
