#include "io/query_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <sstream>
#include <utility>

namespace somrm::io {

namespace {

bool all_digits(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

/// Strict full-token double: the whole token must parse and be finite, so
/// "0.5x", "", "nan", and "1e999" all reject with the offending token in
/// the message.
double parse_double_token(const std::string& token, std::size_t lineno,
                          const std::string& what) {
  if (token.empty())
    throw ParseError(lineno, what + ": empty value");
  char* end = nullptr;
  const double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size())
    throw ParseError(lineno, what + ": bad number '" + token +
                                 "' (trailing garbage after the value)");
  if (!std::isfinite(v))
    throw ParseError(lineno, what + ": non-finite value '" + token + "'");
  return v;
}

/// Strict digits-only unsigned: rejects sign characters, whitespace, and
/// any trailing garbage ("2x") that strtoull with a null end pointer used
/// to swallow.
std::size_t parse_unsigned_token(const std::string& token, std::size_t lineno,
                                 const std::string& what) {
  if (token.empty())
    throw ParseError(lineno, what + ": empty value");
  if (!all_digits(token))
    throw ParseError(lineno, what + ": bad non-negative integer '" + token +
                                 "'");
  char* end = nullptr;
  return static_cast<std::size_t>(std::strtoull(token.c_str(), &end, 10));
}

/// Parses "state:value,state:value,..." into a dense size-num_states
/// vector. Each state may appear once; every entry is exactly
/// <digits>:<double> with both parts strict.
linalg::Vec parse_sparse_vector(const std::string& spec,
                                std::size_t num_states, std::size_t lineno,
                                const std::string& what) {
  linalg::Vec out(num_states, 0.0);
  std::vector<bool> seen(num_states, false);
  std::stringstream entries(spec);
  std::string entry;
  bool any = false;
  // getline drops a trailing empty segment ("0:1," parses as one entry);
  // catch that explicitly so a stray comma is named, not ignored.
  if (!spec.empty() && spec.back() == ',')
    throw ParseError(lineno, what + ": trailing ',' after the last entry");
  while (std::getline(entries, entry, ',')) {
    if (entry.empty())
      throw ParseError(lineno, what + ": empty entry (want <state>:<value>)");
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos || entry.find(':', colon + 1) !=
                                          std::string::npos)
      throw ParseError(lineno, what + ": bad entry '" + entry +
                                   "' (want <state>:<value>)");
    const std::size_t state = parse_unsigned_token(
        entry.substr(0, colon), lineno, what + " state");
    if (state >= num_states)
      throw ParseError(lineno, what + ": state " + std::to_string(state) +
                                   " out of range (" +
                                   std::to_string(num_states) + " states)");
    if (seen[state])
      throw ParseError(lineno, what + ": duplicate state " +
                                   std::to_string(state) + " in one list");
    seen[state] = true;
    out[state] =
        parse_double_token(entry.substr(colon + 1), lineno, what + " value");
    any = true;
  }
  if (!any) throw ParseError(lineno, what + ": empty list");
  return out;
}

}  // namespace

std::vector<BatchQuery> parse_query_file(std::istream& in,
                                         std::size_t num_states) {
  std::vector<BatchQuery> out;
  std::string text;
  for (std::size_t lineno = 1; std::getline(in, text); ++lineno) {
    // CRLF input: strip the '\r' the line terminator left behind. (An
    // embedded '\r' is stream whitespace, so it separates tokens like a
    // tab would — it can never stick to a token and corrupt it.)
    if (!text.empty() && text.back() == '\r') text.pop_back();
    const std::size_t hash = text.find('#');
    if (hash != std::string::npos) text.erase(hash);

    std::stringstream line(text);
    std::string token;
    if (!(line >> token)) continue;  // blank / comment-only line

    BatchQuery q;
    q.time = parse_double_token(token, lineno, "time");
    bool have_order = false, have_pi = false, have_w = false;
    while (line >> token) {
      if (token.rfind("n=", 0) == 0) {
        if (have_order)
          throw ParseError(lineno, "duplicate key 'n=' on one line");
        have_order = true;
        q.order = parse_unsigned_token(token.substr(2), lineno, "order n=");
      } else if (token.rfind("pi=", 0) == 0) {
        if (have_pi)
          throw ParseError(lineno, "duplicate key 'pi=' on one line");
        have_pi = true;
        q.initial =
            parse_sparse_vector(token.substr(3), num_states, lineno, "pi=");
      } else if (token.rfind("w=", 0) == 0) {
        if (have_w)
          throw ParseError(lineno, "duplicate key 'w=' on one line");
        have_w = true;
        q.terminal_weights =
            parse_sparse_vector(token.substr(2), num_states, lineno, "w=");
      } else {
        throw ParseError(lineno, "unknown token '" + token +
                                     "' (want n=, pi=, or w=)");
      }
    }
    out.push_back(std::move(q));
  }
  return out;
}

std::vector<BatchQuery> load_query_file(const std::string& path,
                                        std::size_t num_states) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open batch query file: " + path);
  return parse_query_file(in, num_states);
}

}  // namespace somrm::io
