// somrm/io/query_io.hpp
//
// Batch query-file parser: the `--batch` input format of somrm_cli, one
// query per line —
//
//   <time> [n=<order>] [pi=<state>:<p>,...] [w=<state>:<v>,...]
//
// with '#' comments and blank lines skipped. This replaces the CLI's
// original ad-hoc stringstream parser, which silently accepted three
// classes of malformed input: CRLF line endings (the '\r' rode into the
// last token), duplicate keys on one line (`n=2 n=4` last-wins), and
// trailing garbage after a field (`n=2x` parsed as 2, `0:0.5x` as 0.5).
// Like the model parser (io/model_io.hpp), every defect is rejected with
// a line-naming io::ParseError:
//
//  * numbers must consume their whole token (strict strtod/strtoull with
//    end-pointer checks; orders and states are digits-only, so `-1` and
//    `+2` are rejected too) and be finite;
//  * each key (n=, pi=, w=) may appear at most once per line;
//  * each state may appear at most once per sparse list (the old parser
//    let `pi=0:0.3,0:0.7` silently keep the last value);
//  * '\r' is stripped only as a CRLF terminator, never mid-line.
//
// The parser validates shape, ranges that the format itself fixes (state
// indices vs num_states), and nothing more: distribution/weight semantics
// (sums, signs) stay with SolveSession::validate_query, so the two layers
// reject with their own vocabulary.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/solve_session.hpp"
#include "io/model_io.hpp"
#include "linalg/vec.hpp"

namespace somrm::io {

/// One parsed query line: a time point plus the optional order / initial
/// distribution / terminal-weight overrides.
struct BatchQuery {
  double time = 0.0;
  std::size_t order = core::SessionQuery::kSessionMax;
  linalg::Vec initial;           ///< empty = the model's own initial
  linalg::Vec terminal_weights;  ///< empty = plain (unweighted) moments
};

/// Parses the query-file format from @p in. Sparse pi=/w= lists are
/// densified to size @p num_states (unlisted states zero). Throws
/// io::ParseError naming the 1-based line on any malformed input; an
/// input with no query lines returns an empty vector (callers decide
/// whether that is an error).
std::vector<BatchQuery> parse_query_file(std::istream& in,
                                         std::size_t num_states);

/// File flavour: throws std::runtime_error when @p path cannot be opened,
/// io::ParseError on malformed content (same convention as
/// load_model_file).
std::vector<BatchQuery> load_query_file(const std::string& path,
                                        std::size_t num_states);

}  // namespace somrm::io
