// somrm/io/model_io.hpp
//
// Plain-text model files, so models can be built by external tooling and
// shipped to the CLI without recompiling. Format (order-insensitive after
// the header; '#' starts a comment):
//
//   somrm-model v1
//   states <N>                         # required, first directive
//   transition <i> <j> <rate>          # i != j, rate > 0
//   drift <i> <r>                      # default 0
//   variance <i> <sigma2>              # sigma2 >= 0, default 0
//   initial <i> <p>                    # must sum to 1
//   impulse <i> <j> <mean> [variance]  # needs a matching transition
//
// load_model validates everything the in-memory constructors validate and
// reports the offending line number on failure.

#pragma once

#include <iosfwd>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/impulse_model.hpp"
#include "core/model.hpp"

namespace somrm::io {

/// Parse failure with 1-based line number.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::size_t line, const std::string& message)
      : std::runtime_error("line " + std::to_string(line) + ": " + message),
        line_(line) {}
  std::size_t line() const { return line_; }

 private:
  std::size_t line_;
};

/// A parsed model file: the rate-reward model, plus the impulse extension
/// when the file contained impulse directives.
struct ModelFile {
  core::SecondOrderMrm model;
  std::optional<core::SecondOrderImpulseMrm> with_impulses;
};

/// Parses a model from a stream. Throws ParseError on malformed input and
/// std::invalid_argument when the assembled model violates a model
/// invariant.
ModelFile load_model(std::istream& in);

/// Parses a model from a file path. Throws std::runtime_error if the file
/// cannot be opened.
ModelFile load_model_file(const std::string& path);

/// Writes a model in the v1 format (loadable round trip).
void save_model(std::ostream& out, const core::SecondOrderMrm& model);
void save_model(std::ostream& out, const core::SecondOrderImpulseMrm& model);

/// Writes to a file path; throws std::runtime_error on I/O failure.
void save_model_file(const std::string& path,
                     const core::SecondOrderMrm& model);
void save_model_file(const std::string& path,
                     const core::SecondOrderImpulseMrm& model);

}  // namespace somrm::io
