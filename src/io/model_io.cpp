#include "io/model_io.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <vector>

namespace somrm::io {

namespace {

struct PendingModel {
  std::size_t states = 0;
  bool states_seen = false;
  std::vector<linalg::Triplet> transitions;
  linalg::Vec drifts;
  linalg::Vec variances;
  linalg::Vec initial;
  std::vector<linalg::Triplet> impulse_means;
  std::vector<linalg::Triplet> impulse_vars;
  bool has_impulses = false;
};

std::size_t parse_state_index(const PendingModel& m, std::istringstream& is,
                              std::size_t line, const char* what) {
  long long idx = -1;
  if (!(is >> idx) || idx < 0)
    throw ParseError(line, std::string("expected a state index after '") +
                               what + "'");
  if (static_cast<std::size_t>(idx) >= m.states)
    throw ParseError(line, "state index " + std::to_string(idx) +
                               " out of range (states = " +
                               std::to_string(m.states) + ")");
  return static_cast<std::size_t>(idx);
}

// Parses one whole token as a double via strtod. istream extraction would
// reject "nan"/"inf" as malformed; strtod recognizes them, which lets the
// finiteness check name the real problem. Every quantity in the format
// (rates, drifts, variances, probabilities, impulse moments) must be
// finite — a non-finite value passing the parser detonates deep in the
// solver.
double parse_token_number(const std::string& token, std::size_t line,
                          const char* what) {
  const char* begin = token.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin || *end != '\0')
    throw ParseError(line, std::string("expected a number for ") + what +
                               ", got '" + token + "'");
  if (!std::isfinite(v))
    throw ParseError(line, std::string(what) + " must be finite (got '" +
                               token + "')");
  return v;
}

double parse_number(std::istringstream& is, std::size_t line,
                    const char* what) {
  std::string token;
  if (!(is >> token))
    throw ParseError(line, std::string("expected a number for ") + what);
  return parse_token_number(token, line, what);
}

void expect_end(std::istringstream& is, std::size_t line) {
  std::string rest;
  if (is >> rest)
    throw ParseError(line, "unexpected trailing token '" + rest + "'");
}

}  // namespace

ModelFile load_model(std::istream& in) {
  PendingModel m;
  std::string raw_line;
  std::size_t line = 0;
  bool header_seen = false;

  while (std::getline(in, raw_line)) {
    ++line;
    const auto hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.erase(hash);
    std::istringstream is(raw_line);
    std::string keyword;
    if (!(is >> keyword)) continue;  // blank / comment-only line

    if (!header_seen) {
      if (keyword != "somrm-model")
        throw ParseError(line, "file must start with 'somrm-model v1'");
      std::string version;
      if (!(is >> version) || version != "v1")
        throw ParseError(line, "unsupported model-file version");
      expect_end(is, line);
      header_seen = true;
      continue;
    }

    if (keyword == "states") {
      if (m.states_seen) throw ParseError(line, "duplicate 'states'");
      long long n = 0;
      if (!(is >> n) || n <= 0)
        throw ParseError(line, "'states' needs a positive count");
      expect_end(is, line);
      m.states = static_cast<std::size_t>(n);
      m.states_seen = true;
      m.drifts.assign(m.states, 0.0);
      m.variances.assign(m.states, 0.0);
      m.initial.assign(m.states, 0.0);
      continue;
    }

    if (!m.states_seen)
      throw ParseError(line, "'states' must precede '" + keyword + "'");

    if (keyword == "transition") {
      const std::size_t i = parse_state_index(m, is, line, "transition");
      const std::size_t j = parse_state_index(m, is, line, "transition");
      const double rate = parse_number(is, line, "transition rate");
      expect_end(is, line);
      if (i == j) throw ParseError(line, "self-transitions are not allowed");
      if (!(rate > 0.0))
        throw ParseError(line, "transition rate must be positive");
      m.transitions.push_back({i, j, rate});
    } else if (keyword == "drift") {
      const std::size_t i = parse_state_index(m, is, line, "drift");
      m.drifts[i] = parse_number(is, line, "drift");
      expect_end(is, line);
    } else if (keyword == "variance") {
      const std::size_t i = parse_state_index(m, is, line, "variance");
      const double v = parse_number(is, line, "variance");
      expect_end(is, line);
      if (v < 0.0) throw ParseError(line, "variance must be >= 0");
      m.variances[i] = v;
    } else if (keyword == "initial") {
      const std::size_t i = parse_state_index(m, is, line, "initial");
      const double p = parse_number(is, line, "initial probability");
      expect_end(is, line);
      if (p < 0.0) throw ParseError(line, "initial probability must be >= 0");
      m.initial[i] = p;
    } else if (keyword == "impulse") {
      const std::size_t i = parse_state_index(m, is, line, "impulse");
      const std::size_t j = parse_state_index(m, is, line, "impulse");
      const double mean = parse_number(is, line, "impulse mean");
      // The variance is optional, but a present-yet-malformed token (e.g.
      // "nan") must be an error, not silently treated as absent.
      double var = 0.0;
      std::string var_token;
      if (is >> var_token) {
        var = parse_token_number(var_token, line, "impulse variance");
        if (var < 0.0) throw ParseError(line, "impulse variance must be >= 0");
      }
      if (i == j) throw ParseError(line, "impulses attach to transitions");
      if (mean != 0.0) m.impulse_means.push_back({i, j, mean});
      if (var != 0.0) m.impulse_vars.push_back({i, j, var});
      m.has_impulses = true;
    } else {
      throw ParseError(line, "unknown directive '" + keyword + "'");
    }
  }

  if (!header_seen) throw ParseError(1, "empty model file");
  if (!m.states_seen) throw ParseError(line, "missing 'states' directive");

  auto generator = ctmc::Generator::from_rates(m.states, m.transitions);
  core::SecondOrderMrm model(std::move(generator), m.drifts, m.variances,
                             m.initial);

  ModelFile out{model, std::nullopt};
  if (m.has_impulses) {
    out.with_impulses.emplace(
        std::move(model),
        linalg::CsrMatrix::from_triplets(m.states, m.states, m.impulse_means),
        linalg::CsrMatrix::from_triplets(m.states, m.states, m.impulse_vars));
  }
  return out;
}

ModelFile load_model_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open model file: " + path);
  return load_model(in);
}

namespace {

void save_base(std::ostream& out, const core::SecondOrderMrm& model) {
  const std::size_t n = model.num_states();
  out << "somrm-model v1\n";
  out << "states " << n << "\n";
  out.precision(17);
  const auto& q = model.generator().matrix();
  const auto& row_ptr = q.row_ptr();
  const auto& col_idx = q.col_idx();
  const auto& values = q.values();
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k)
      if (col_idx[k] != r && values[k] > 0.0)
        out << "transition " << r << " " << col_idx[k] << " " << values[k]
            << "\n";
  for (std::size_t i = 0; i < n; ++i)
    if (model.drifts()[i] != 0.0)
      out << "drift " << i << " " << model.drifts()[i] << "\n";
  for (std::size_t i = 0; i < n; ++i)
    if (model.variances()[i] != 0.0)
      out << "variance " << i << " " << model.variances()[i] << "\n";
  for (std::size_t i = 0; i < n; ++i)
    if (model.initial()[i] != 0.0)
      out << "initial " << i << " " << model.initial()[i] << "\n";
}

}  // namespace

void save_model(std::ostream& out, const core::SecondOrderMrm& model) {
  save_base(out, model);
}

void save_model(std::ostream& out, const core::SecondOrderImpulseMrm& model) {
  save_base(out, model.base());
  const std::size_t n = model.num_states();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (r == c) continue;
      const double m = model.impulse_mean().at(r, c);
      const double w = model.impulse_var().at(r, c);
      if (m != 0.0 || w != 0.0)
        out << "impulse " << r << " " << c << " " << m << " " << w << "\n";
    }
  }
}

namespace {
template <typename Model>
void save_file_impl(const std::string& path, const Model& model) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write model file: " + path);
  save_model(out, model);
  if (!out) throw std::runtime_error("write failed: " + path);
}
}  // namespace

void save_model_file(const std::string& path,
                     const core::SecondOrderMrm& model) {
  save_file_impl(path, model);
}

void save_model_file(const std::string& path,
                     const core::SecondOrderImpulseMrm& model) {
  save_file_impl(path, model);
}

}  // namespace somrm::io
