// somrm/bounds/density_estimate.hpp
//
// Point estimates of the reward distribution from moments — the companion
// to the guaranteed bounds of moment_bounds.hpp. Section 7 of the paper
// notes one "can approximate the distribution based on its moments"; the
// classical tool is the Gram-Charlier A series: a standard-normal base
// density corrected by Hermite-polynomial terms whose coefficients come
// from the standardized moments,
//
//   f(z) ~ phi(z) [ 1 + sum_{k>=3} c_k He_k(z) ],
//   c_k = (1/k!) E[He_k(Z)],
//
// evaluated here from raw moments of the target variable. The series is
// asymptotic, not convergent — accurate near-Gaussian (accumulated rewards
// at moderate t are close to Gaussian by the CLT of additive functionals),
// possibly negative in the tails. Callers needing guarantees should use
// MomentBounder; callers wanting a plottable density use this.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace somrm::bounds {

class GramCharlierDensity {
 public:
  /// @param raw_moments mu_0..mu_K of the target distribution (K >= 2);
  /// @param order highest Hermite correction used (clamped to K).
  /// Order 0..2 gives the plain moment-matched normal.
  explicit GramCharlierDensity(std::span<const double> raw_moments,
                               std::size_t order = 6);

  /// Density estimate at x (may be slightly negative in the far tails).
  double pdf(double x) const;

  /// CDF estimate at x (integrated series; clamped to [0, 1]).
  double cdf(double x) const;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  std::size_t order() const { return coefficients_.size(); }

 private:
  double mean_ = 0.0;
  double stddev_ = 1.0;
  /// c_k for k = 0..order (c_0 = 1, c_1 = c_2 = 0 by standardization).
  std::vector<double> coefficients_;
};

/// Probabilists' Hermite polynomial He_k(x) (He_0 = 1, He_1 = x,
/// He_{k+1} = x He_k - k He_{k-1}). Exposed for tests.
double hermite_polynomial(std::size_t k, double x);

}  // namespace somrm::bounds
