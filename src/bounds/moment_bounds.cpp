#include "bounds/moment_bounds.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/moment_utils.hpp"

namespace somrm::bounds {

MomentBounder::MomentBounder(std::span<const double> raw_moments) {
  if (raw_moments.size() < 3)
    throw std::invalid_argument("MomentBounder: need moments up to order 2");

  // Normalize mu_0 to 1 (per-state V^(0) from the solver is 1 only up to
  // the truncation budget) and standardize.
  std::vector<double> raw(raw_moments.begin(), raw_moments.end());
  const double mu0 = raw[0];
  if (!(mu0 > 0.0))
    throw std::invalid_argument("MomentBounder: mu_0 must be positive");
  for (double& v : raw) v /= mu0;

  const auto std_moments = core::standardize_raw_moments(raw);
  mean_ = std_moments.mean;
  stddev_ = std_moments.stddev;
  jacobi_ = jacobi_from_moments(std_moments.moments);
}

CdfBounds MomentBounder::bounds_at(double x) const {
  const double z = (x - mean_) / stddev_;
  // Full-rank moment sequences get the sharp Radau rule anchored at z; a
  // rank-deficient sequence determines the measure uniquely, so its Gauss
  // rule (the measure itself) is used directly.
  const bool has_radau = jacobi_.beta.size() >= jacobi_.alpha.size();
  const QuadratureRule rule = has_radau
                                  ? gauss_radau_rule(jacobi_, z, /*mu0=*/1.0)
                                  : gauss_rule(jacobi_, /*mu0=*/1.0);

  // The rule is guaranteed to carry a node at (numerically) z; weights of
  // nodes strictly below z sum to the sharp lower bound, adding the mass at
  // z gives the sharp upper bound.
  const double tol = 1e-9 * (1.0 + std::abs(z));
  CdfBounds out;
  double below = 0.0, at = 0.0;
  for (std::size_t k = 0; k < rule.nodes.size(); ++k) {
    if (rule.nodes[k] < z - tol) {
      below += rule.weights[k];
    } else if (rule.nodes[k] <= z + tol) {
      at += rule.weights[k];
    }
  }
  out.lower = std::clamp(below, 0.0, 1.0);
  out.upper = std::clamp(below + at, 0.0, 1.0);
  return out;
}

MomentBounder::QuantileBounds MomentBounder::quantile_bounds(
    double p, double x_tolerance) const {
  if (!(p > 0.0 && p < 1.0))
    throw std::invalid_argument(
        "MomentBounder::quantile_bounds: p must be in (0,1)");
  if (!(x_tolerance > 0.0))
    throw std::invalid_argument(
        "MomentBounder::quantile_bounds: tolerance must be positive");

  // Bracket: Chebyshev guarantees the quantile within a few stddevs once p
  // is away from {0,1}; widen until the bound curves straddle p.
  double lo = mean_ - 4.0 * stddev_;
  double hi = mean_ + 4.0 * stddev_;
  for (int i = 0; i < 64 && bounds_at(lo).upper >= p; ++i)
    lo -= 4.0 * stddev_;
  for (int i = 0; i < 64 && bounds_at(hi).lower < p; ++i)
    hi += 4.0 * stddev_;

  const double tol = x_tolerance * stddev_;
  // Lower bound on q(p): largest x with U(x) < p (any valid F has
  // F(x) <= U(x) < p there, so its quantile lies right of x).
  double a = lo, b = hi;
  while (b - a > tol) {
    const double mid = 0.5 * (a + b);
    if (bounds_at(mid).upper < p) {
      a = mid;
    } else {
      b = mid;
    }
  }
  QuantileBounds out;
  out.lower = a;

  // Upper bound on q(p): smallest x with L(x) >= p.
  a = out.lower;
  b = hi;
  while (b - a > tol) {
    const double mid = 0.5 * (a + b);
    if (bounds_at(mid).lower >= p) {
      b = mid;
    } else {
      a = mid;
    }
  }
  out.upper = b;
  return out;
}

}  // namespace somrm::bounds
