// somrm/bounds/moment_bounds.hpp
//
// Sharp distribution bounds from a finite moment sequence (Figures 5-7 of
// the paper): given raw moments mu_0..mu_K of an unknown distribution F,
// the principal representations anchored at a point x give the best
// possible bounds
//
//   sum_{x_i < x} w_i  <=  F(x^-)  <=  F(x)  <=  sum_{x_i <= x} w_i,
//
// where {x_i, w_i} is the Gauss-Radau-type rule with a preassigned node at
// x built from the moment sequence (Markov-Krein theory). The bound gap at
// x is exactly the weight the rule puts on x — more usable moments, smaller
// gap.
//
// The moments are standardized (zero mean, unit variance) before the
// Hankel/Jacobi computation; the usable order adapts to the numerical rank
// of the Hankel matrix (see bounds/quadrature.hpp).

#pragma once

#include <cstddef>
#include <span>

#include "bounds/quadrature.hpp"

namespace somrm::bounds {

struct CdfBounds {
  double lower = 0.0;  ///< sharp lower bound on F(x^-)
  double upper = 1.0;  ///< sharp upper bound on F(x)
};

class MomentBounder {
 public:
  /// @param raw_moments mu_0..mu_K of the target distribution (K >= 2,
  /// mu_0 = 1 expected; it is normalized away if not). The variance must be
  /// strictly positive. Throws std::invalid_argument / std::runtime_error
  /// on degenerate input.
  explicit MomentBounder(std::span<const double> raw_moments);

  /// Bounds on the CDF at x.
  CdfBounds bounds_at(double x) const;

  /// Bounds on the p-quantile q(p) = inf{ x : F(x) >= p }: any F matching
  /// the moments has its quantile inside [lower, upper]. Computed by
  /// bisection on the monotone bound curves; @p x_tolerance is the
  /// bracketing width at which bisection stops, in units of the
  /// distribution's stddev.
  struct QuantileBounds {
    double lower = 0.0;
    double upper = 0.0;
  };
  QuantileBounds quantile_bounds(double p, double x_tolerance = 1e-6) const;

  /// Number of quadrature points the bound rules use (m + 1 where m is the
  /// numerically usable Jacobi order). The paper's figures used 23 moments,
  /// i.e. up to 12 points.
  std::size_t rule_size() const { return jacobi_.alpha.size() + 1; }

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }

 private:
  JacobiCoefficients jacobi_;
  double mean_ = 0.0;
  double stddev_ = 1.0;
};

}  // namespace somrm::bounds
