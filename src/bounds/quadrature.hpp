// somrm/bounds/quadrature.hpp
//
// Moment-space quadrature machinery for the distribution-bound method of
// Figures 5-7 (the paper delegates to Racz-Tari-Telek, NSMC'03; this is the
// underlying classical Markov-Krein / principal-representation theory):
//
//  1. raw moments -> three-term recurrence (Jacobi) coefficients of the
//     orthogonal polynomials of the unknown measure, via Cholesky of the
//     Hankel moment matrix,
//  2. Jacobi matrix -> Gauss rule (Golub-Welsch: eigenvalues are nodes,
//     mu_0 * first-eigenvector-components^2 are weights),
//  3. Gauss-Radau-type rule with one preassigned node c (Golub 1973): the
//     last diagonal entry of the Jacobi matrix is modified so c becomes an
//     eigenvalue.
//
// Everything runs in long double: Hankel matrices of 20+ moments are
// numerically brutal, and the achievable order is detected adaptively by
// the first non-positive Cholesky pivot.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace somrm::bounds {

/// Three-term recurrence coefficients: p_{k+1}(x) = (x - alpha_k) p_k(x) -
/// beta_k^2 p_{k-1}(x). beta[k] couples rows k and k+1 of the Jacobi
/// matrix; with m = alpha.size(), beta[0..m-2] enter the m x m Jacobi
/// matrix and beta[m-1] — present only when the Hankel matrix had full
/// numerical rank — is the coupling used to append a Gauss-Radau row. A
/// rank-deficient moment sequence (measure with exactly m atoms) yields
/// beta of size m-1: the m-point Gauss rule then IS the measure.
struct JacobiCoefficients {
  std::vector<long double> alpha;
  std::vector<long double> beta;
};

/// Computes Jacobi coefficients from raw moments mu_0..mu_K. The returned
/// order m = alpha.size() is the largest for which the Hankel matrix stays
/// numerically positive definite AND 2m <= K; m can be as low as 1.
/// Throws std::invalid_argument if fewer than 3 moments are given or
/// mu_0 <= 0.
JacobiCoefficients jacobi_from_moments(std::span<const double> raw_moments);

/// A discrete quadrature rule: nodes with positive weights summing to mu_0.
struct QuadratureRule {
  std::vector<double> nodes;
  std::vector<double> weights;
};

/// m-point Gauss rule from the first m alpha / m-1 beta coefficients.
QuadratureRule gauss_rule(const JacobiCoefficients& jc, double mu0 = 1.0);

/// (m+1)-point rule with a preassigned node at c (lower principal
/// representation anchored at c). Uses all m alphas and m betas. If c
/// collides with a Gauss node the preassignment is still exact — the solve
/// is perturbed infinitesimally and the returned rule keeps a node within
/// ~1e-12 of c.
QuadratureRule gauss_radau_rule(const JacobiCoefficients& jc, double c,
                                double mu0 = 1.0);

}  // namespace somrm::bounds
