#include "bounds/density_estimate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/moment_utils.hpp"
#include "prob/normal.hpp"

namespace somrm::bounds {

double hermite_polynomial(std::size_t k, double x) {
  double prev = 1.0;  // He_0
  if (k == 0) return prev;
  double cur = x;  // He_1
  for (std::size_t j = 1; j < k; ++j) {
    const double next = x * cur - static_cast<double>(j) * prev;
    prev = cur;
    cur = next;
  }
  return cur;
}

GramCharlierDensity::GramCharlierDensity(std::span<const double> raw_moments,
                                         std::size_t order) {
  if (raw_moments.size() < 3)
    throw std::invalid_argument(
        "GramCharlierDensity: need moments up to order 2");

  std::vector<double> raw(raw_moments.begin(), raw_moments.end());
  const double mu0 = raw[0];
  if (!(mu0 > 0.0))
    throw std::invalid_argument("GramCharlierDensity: mu_0 must be positive");
  for (double& v : raw) v /= mu0;

  const auto std_m = core::standardize_raw_moments(raw);
  mean_ = std_m.mean;
  stddev_ = std_m.stddev;

  const std::size_t max_order =
      std::min(order, std_m.moments.size() - 1);
  coefficients_.assign(max_order + 1, 0.0);
  coefficients_[0] = 1.0;
  // c_k = (1/k!) E[He_k(Z)]; He_k(x) = sum_m (-1)^m k!/(m! 2^m (k-2m)!)
  // x^{k-2m}, so E[He_k(Z)] plugs in standardized moments.
  double k_factorial = 1.0;
  for (std::size_t k = 1; k <= max_order; ++k) {
    k_factorial *= static_cast<double>(k);
    double expectation = 0.0;
    double term_coeff = 1.0;  // k! / (m! 2^m (k-2m)!) built per m below
    for (std::size_t m = 0; 2 * m <= k; ++m) {
      if (m > 0) {
        // multiply by (k-2m+2)(k-2m+1) / (2m)
        term_coeff *= static_cast<double>((k - 2 * m + 2) *
                                          (k - 2 * m + 1)) /
                      (2.0 * static_cast<double>(m));
      }
      const double sign = (m % 2 == 0) ? 1.0 : -1.0;
      expectation += sign * term_coeff * std_m.moments[k - 2 * m];
    }
    coefficients_[k] = expectation / k_factorial;
  }
  // Standardization forces the first two corrections to vanish; pin them to
  // avoid rounding residue.
  if (max_order >= 1) coefficients_[1] = 0.0;
  if (max_order >= 2) coefficients_[2] = 0.0;
}

double GramCharlierDensity::pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  double series = 0.0;
  for (std::size_t k = 0; k < coefficients_.size(); ++k) {
    if (coefficients_[k] == 0.0) continue;
    series += coefficients_[k] * hermite_polynomial(k, z);
  }
  return prob::normal_pdf(z, 0.0, 1.0) * series / stddev_;
}

double GramCharlierDensity::cdf(double x) const {
  const double z = (x - mean_) / stddev_;
  // int_{-inf}^z phi(u) He_k(u) du = -phi(z) He_{k-1}(z) for k >= 1.
  double correction = 0.0;
  for (std::size_t k = 1; k < coefficients_.size(); ++k) {
    if (coefficients_[k] == 0.0) continue;
    correction -= coefficients_[k] * hermite_polynomial(k - 1, z);
  }
  const double value =
      prob::normal_cdf(z, 0.0, 1.0) + prob::normal_pdf(z, 0.0, 1.0) *
                                          correction;
  return std::clamp(value, 0.0, 1.0);
}

}  // namespace somrm::bounds
