#include "bounds/quadrature.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/tridiag.hpp"

namespace somrm::bounds {

namespace {

/// Long-double Thomas solve of a symmetric tridiagonal shifted system
/// (J - c I) x = e_last. Returns false on a vanishing pivot.
bool solve_shifted_tridiag(std::span<const long double> diag,
                           std::span<const long double> offdiag,
                           long double c, std::vector<long double>& x) {
  const std::size_t n = diag.size();
  std::vector<long double> cp(n, 0.0L), dp(n, 0.0L);
  const long double d0 = diag[0] - c;
  if (d0 == 0.0L) return false;
  cp[0] = (n > 1 ? offdiag[0] : 0.0L) / d0;
  dp[0] = 0.0L;  // rhs e_last has zero here (unless n == 1)
  if (n == 1) {
    x.assign(1, 1.0L / d0);
    return true;
  }
  for (std::size_t i = 1; i < n; ++i) {
    const long double denom = (diag[i] - c) - offdiag[i - 1] * cp[i - 1];
    if (denom == 0.0L) return false;
    if (i + 1 < n) cp[i] = offdiag[i] / denom;
    const long double rhs = (i + 1 == n ? 1.0L : 0.0L);
    dp[i] = (rhs - offdiag[i - 1] * dp[i - 1]) / denom;
  }
  x.assign(n, 0.0L);
  x[n - 1] = dp[n - 1];
  for (std::size_t i = n - 1; i-- > 0;) x[i] = dp[i] - cp[i] * x[i + 1];
  return true;
}

QuadratureRule rule_from_tridiag(std::vector<long double> diag,
                                 std::vector<long double> offdiag,
                                 double mu0) {
  const auto eig = linalg::symmetric_tridiagonal_eigen<long double>(
      std::move(diag), std::move(offdiag));
  QuadratureRule rule;
  rule.nodes.reserve(eig.eigenvalues.size());
  rule.weights.reserve(eig.eigenvalues.size());
  for (std::size_t k = 0; k < eig.eigenvalues.size(); ++k) {
    rule.nodes.push_back(static_cast<double>(eig.eigenvalues[k]));
    const long double fc = eig.first_components[k];
    rule.weights.push_back(static_cast<double>(mu0 * fc * fc));
  }
  return rule;
}

}  // namespace

JacobiCoefficients jacobi_from_moments(std::span<const double> raw_moments) {
  if (raw_moments.size() < 3)
    throw std::invalid_argument(
        "jacobi_from_moments: need at least mu_0..mu_2");
  if (!(raw_moments[0] > 0.0))
    throw std::invalid_argument("jacobi_from_moments: mu_0 must be positive");

  const std::size_t k_max = raw_moments.size() - 1;
  const std::size_t size = k_max / 2 + 1;  // Hankel dimension (m_try + 1)

  // Hankel matrix H_ij = mu_{i+j} in long double.
  std::vector<std::vector<long double>> h(size,
                                          std::vector<long double>(size));
  for (std::size_t i = 0; i < size; ++i)
    for (std::size_t j = 0; j < size; ++j)
      h[i][j] = static_cast<long double>(raw_moments[i + j]);

  // Partial Cholesky H = R^T R (R upper triangular); stop at the first
  // numerically non-positive pivot. p = number of valid rows.
  std::vector<std::vector<long double>> r(size,
                                          std::vector<long double>(size, 0.0L));
  std::size_t p = 0;
  for (std::size_t j = 0; j < size; ++j) {
    long double pivot = h[j][j];
    for (std::size_t k = 0; k < j; ++k) pivot -= r[k][j] * r[k][j];
    const long double scale =
        std::abs(h[j][j]) > 1.0L ? std::abs(h[j][j]) : 1.0L;
    if (!(pivot > scale * 1e-26L) || !std::isfinite(static_cast<double>(pivot)))
      break;
    r[j][j] = std::sqrt(pivot);
    for (std::size_t l = j + 1; l < size; ++l) {
      long double acc = h[j][l];
      for (std::size_t k = 0; k < j; ++k) acc -= r[k][j] * r[k][l];
      r[j][l] = acc / r[j][j];
    }
    p = j + 1;
  }
  if (p < 2)
    throw std::runtime_error(
        "jacobi_from_moments: moment sequence is numerically degenerate "
        "(Hankel matrix not positive definite beyond order 1)");

  // Recurrence coefficients from the Cholesky factor (Golub & Meurant):
  //   beta_k  = r_{k+1,k+1} / r_{k,k},
  //   alpha_k = r_{k,k+1}/r_{k,k} - r_{k-1,k}/r_{k-1,k-1}.
  //
  // With p valid Cholesky rows, alpha_k is available for k <= p-1 as long
  // as column k+1 exists (k+1 < size), and beta_k for k <= p-2. Full rank
  // (p == size) therefore yields m = p-1 alphas and m betas (enough for a
  // Gauss-Radau extension); a rank-deficient Hankel (the measure has
  // exactly p atoms) yields m = p alphas and m-1 betas — the m-point Gauss
  // rule then reproduces the measure itself and no Radau row exists.
  const std::size_t m = p < size ? p : p - 1;
  JacobiCoefficients jc;
  jc.alpha.resize(m);
  jc.beta.resize(p - 1);
  for (std::size_t k = 0; k < m; ++k) {
    long double a = r[k][k + 1] / r[k][k];
    if (k > 0) a -= r[k - 1][k] / r[k - 1][k - 1];
    jc.alpha[k] = a;
  }
  for (std::size_t k = 0; k + 1 < p; ++k)
    jc.beta[k] = r[k + 1][k + 1] / r[k][k];
  return jc;
}

QuadratureRule gauss_rule(const JacobiCoefficients& jc, double mu0) {
  const std::size_t m = jc.alpha.size();
  if (m == 0) throw std::invalid_argument("gauss_rule: empty coefficients");
  std::vector<long double> diag(jc.alpha.begin(), jc.alpha.end());
  std::vector<long double> off(jc.beta.begin(),
                               jc.beta.begin() + static_cast<long>(m - 1));
  return rule_from_tridiag(std::move(diag), std::move(off), mu0);
}

QuadratureRule gauss_radau_rule(const JacobiCoefficients& jc, double c,
                                double mu0) {
  const std::size_t m = jc.alpha.size();
  if (m == 0)
    throw std::invalid_argument("gauss_radau_rule: empty coefficients");
  if (jc.beta.size() < m)
    throw std::invalid_argument("gauss_radau_rule: need beta up to order m");

  std::vector<long double> diag(jc.alpha.begin(), jc.alpha.end());
  std::vector<long double> off(jc.beta.begin(),
                               jc.beta.begin() + static_cast<long>(m - 1));

  // Golub's modification: solve (J_m - c I) delta = e_m, then the appended
  // diagonal entry is alpha_hat = c + beta_m^2 delta_m.
  long double cc = static_cast<long double>(c);
  std::vector<long double> delta;
  for (int attempt = 0; attempt < 8; ++attempt) {
    if (solve_shifted_tridiag(diag, off, cc, delta)) break;
    // c collided with a pivot (e.g. a Gauss node): nudge it.
    cc += (std::abs(cc) + 1.0L) * 1e-15L * static_cast<long double>(attempt + 1);
    delta.clear();
  }
  if (delta.empty())
    throw std::runtime_error(
        "gauss_radau_rule: shifted tridiagonal solve failed");

  const long double beta_m = jc.beta[m - 1];
  const long double alpha_hat = cc + beta_m * beta_m * delta[m - 1];

  std::vector<long double> diag_ext = diag;
  diag_ext.push_back(alpha_hat);
  std::vector<long double> off_ext = off;
  off_ext.push_back(beta_m);
  return rule_from_tridiag(std::move(diag_ext), std::move(off_ext), mu0);
}

}  // namespace somrm::bounds
