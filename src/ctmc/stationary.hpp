// somrm/ctmc/stationary.hpp
//
// Stationary distribution solvers:
//  * GTH elimination — dense, subtraction-free, the gold standard for
//    irreducible chains up to a few thousand states (used for the paper's
//    33-state example and the Figure-3 steady-state reference line),
//  * power iteration on the uniformized DTMC — sparse, for large
//    birth-death style chains where O(n^3) is unaffordable.

#pragma once

#include "ctmc/generator.hpp"
#include "linalg/vec.hpp"

namespace somrm::ctmc {

/// Stationary distribution by Grassmann-Taksar-Heyman elimination.
/// Requires an irreducible generator (throws std::runtime_error otherwise)
/// and densifies the matrix: intended for num_states() <= ~2000.
linalg::Vec stationary_distribution_gth(const Generator& gen);

struct PowerIterationOptions {
  double tolerance = 1e-13;        ///< stop when ||pi_{k+1} - pi_k||_inf small
  std::size_t max_iterations = 2000000;
};

/// Stationary distribution by power iteration on P = I + Q/(1.05 q); the
/// deflated uniformization rate guarantees aperiodicity. Throws
/// std::runtime_error if the iteration fails to converge.
linalg::Vec stationary_distribution_power(
    const Generator& gen, const PowerIterationOptions& options = {});

}  // namespace somrm::ctmc
