#include "ctmc/generator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace somrm::ctmc {

Generator::Generator(linalg::CsrMatrix q, double tol) : q_(std::move(q)) {
  if (q_.rows() != q_.cols())
    throw std::invalid_argument("Generator: matrix must be square");
  if (q_.rows() == 0)
    throw std::invalid_argument("Generator: empty state space");

  const std::size_t n = q_.rows();
  exit_rates_.assign(n, 0.0);

  const auto& row_ptr = q_.row_ptr();
  const auto& col_idx = q_.col_idx();
  const auto& values = q_.values();

  for (std::size_t r = 0; r < n; ++r) {
    double offdiag_sum = 0.0;
    double diag = 0.0;
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      if (col_idx[k] == r) {
        diag += v;
      } else {
        if (v < -tol)
          throw std::invalid_argument(
              "Generator: negative off-diagonal rate at row " +
              std::to_string(r));
        offdiag_sum += v;
      }
    }
    const double scale = std::max(1.0, std::abs(diag));
    if (std::abs(diag + offdiag_sum) > tol * scale)
      throw std::invalid_argument("Generator: row " + std::to_string(r) +
                                  " does not sum to zero");
    exit_rates_[r] = offdiag_sum;
    unif_rate_ = std::max(unif_rate_, offdiag_sum);
  }
}

Generator Generator::from_rates(std::size_t num_states,
                                std::span<const linalg::Triplet> rates) {
  linalg::CsrBuilder b(num_states, num_states);
  linalg::Vec exit(num_states, 0.0);
  for (const auto& t : rates) {
    if (t.row == t.col)
      throw std::invalid_argument(
          "Generator::from_rates: diagonal entries are derived, not given");
    if (t.value < 0.0)
      throw std::invalid_argument("Generator::from_rates: negative rate");
    b.add(t.row, t.col, t.value);
    exit[t.row] += t.value;
  }
  for (std::size_t i = 0; i < num_states; ++i)
    if (exit[i] != 0.0) b.add(i, i, -exit[i]);
  return Generator(std::move(b).build(/*keep_explicit_zeros=*/true));
}

linalg::CsrMatrix Generator::uniformized_dtmc(double rate) const {
  if (rate == 0.0) rate = unif_rate_;
  if (rate < unif_rate_)
    throw std::invalid_argument(
        "Generator::uniformized_dtmc: rate below uniformization rate");
  if (rate == 0.0) return linalg::CsrMatrix::identity(num_states());
  return q_.scaled_plus_identity(1.0 / rate, 1.0);
}

Generator::JumpRow Generator::jump_distribution(std::size_t state) const {
  if (state >= num_states())
    throw std::out_of_range("Generator::jump_distribution: bad state");
  JumpRow row;
  const double exit = exit_rates_[state];
  if (exit <= 0.0) return row;  // absorbing
  const auto& row_ptr = q_.row_ptr();
  const auto& col_idx = q_.col_idx();
  const auto& values = q_.values();
  for (std::size_t k = row_ptr[state]; k < row_ptr[state + 1]; ++k) {
    if (col_idx[k] == state || values[k] <= 0.0) continue;
    row.targets.push_back(col_idx[k]);
    row.probabilities.push_back(values[k] / exit);
  }
  return row;
}

}  // namespace somrm::ctmc
