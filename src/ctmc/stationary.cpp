#include "ctmc/stationary.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::ctmc {

linalg::Vec stationary_distribution_gth(const Generator& gen) {
  const std::size_t n = gen.num_states();
  if (n == 1) return linalg::Vec{1.0};

  // Dense working copy of the off-diagonal rates; the diagonal is never
  // used by GTH, which is what makes it subtraction-free.
  std::vector<linalg::Vec> a = gen.matrix().to_dense(/*max_dim=*/4096);
  for (std::size_t i = 0; i < n; ++i) a[i][i] = 0.0;

  for (std::size_t k = n - 1; k >= 1; --k) {
    double s = 0.0;
    for (std::size_t j = 0; j < k; ++j) s += a[k][j];
    if (!(s > 0.0))
      throw std::runtime_error(
          "stationary_distribution_gth: chain is not irreducible (state " +
          std::to_string(k) + " cannot reach lower states)");
    for (std::size_t i = 0; i < k; ++i) a[i][k] /= s;
    for (std::size_t i = 0; i < k; ++i) {
      const double aik = a[i][k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < k; ++j) {
        if (j == i) continue;
        a[i][j] += aik * a[k][j];
      }
    }
  }

  linalg::Vec pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double acc = 0.0;
    for (std::size_t i = 0; i < k; ++i) acc += pi[i] * a[i][k];
    pi[k] = acc;
  }
  linalg::normalize_probability(pi);
  return pi;
}

linalg::Vec stationary_distribution_power(const Generator& gen,
                                          const PowerIterationOptions& options) {
  const std::size_t n = gen.num_states();
  if (n == 1) return linalg::Vec{1.0};
  const double q = gen.uniformization_rate();
  if (q == 0.0) {
    // All states absorbing: any distribution is stationary; return uniform.
    return linalg::Vec(n, 1.0 / static_cast<double>(n));
  }

  // Inflate the rate so every state keeps a self-loop => aperiodic chain.
  const linalg::CsrMatrix p = gen.uniformized_dtmc(1.05 * q);

  linalg::Vec pi(n, 1.0 / static_cast<double>(n));
  linalg::Vec next(n, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    p.multiply_transposed(pi, next);
    linalg::normalize_probability(next);
    const double diff = linalg::max_abs_diff(pi, next);
    std::swap(pi, next);
    if (diff <= options.tolerance) return pi;
  }
  throw std::runtime_error(
      "stationary_distribution_power: did not converge; chain may be "
      "reducible or badly conditioned");
}

}  // namespace somrm::ctmc
