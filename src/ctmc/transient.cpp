#include "ctmc/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/poisson.hpp"

namespace somrm::ctmc {

namespace {

void check_initial(const Generator& gen, std::span<const double> initial) {
  if (initial.size() != gen.num_states())
    throw std::invalid_argument("transient: initial vector size mismatch");
  double total = 0.0;
  for (double p : initial) {
    if (p < -1e-12)
      throw std::invalid_argument("transient: negative initial probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument("transient: initial vector must sum to 1");
}

}  // namespace

linalg::Vec transient_distribution(const Generator& gen,
                                   std::span<const double> initial, double t,
                                   const TransientOptions& options) {
  const double times[] = {t};
  return transient_distribution_multi(gen, initial, times, options).front();
}

std::vector<linalg::Vec> transient_distribution_multi(
    const Generator& gen, std::span<const double> initial,
    std::span<const double> times, const TransientOptions& options) {
  check_initial(gen, initial);
  for (double t : times)
    if (t < 0.0) throw std::invalid_argument("transient: negative time");
  if (!(options.epsilon > 0.0))
    throw std::invalid_argument("transient: epsilon must be positive");

  const std::size_t n = gen.num_states();
  std::vector<linalg::Vec> results(times.size());

  const double q = gen.uniformization_rate();
  const double t_max = times.empty()
                           ? 0.0
                           : *std::max_element(times.begin(), times.end());
  if (q == 0.0 || t_max == 0.0) {
    // No transitions possible (or all t == 0 handled per-time below).
  }

  const linalg::CsrMatrix p_matrix =
      q > 0.0 ? gen.uniformized_dtmc() : linalg::CsrMatrix::identity(n);

  // Per-time truncation points; K_max drives the shared power iteration.
  std::vector<std::size_t> trunc(times.size(), 0);
  std::size_t k_max = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const double lambda = q * times[i];
    trunc[i] = lambda > 0.0 ? somrm::prob::poisson_truncation_point(
                                  lambda, std::log(options.epsilon))
                            : 0;
    k_max = std::max(k_max, trunc[i]);
  }

  // Shared iterates: v_k = pi P^k (row vector, carried as a column of P^T).
  linalg::Vec v(initial.begin(), initial.end());
  linalg::Vec v_next(n, 0.0);
  std::vector<linalg::Vec> acc(times.size(), linalg::Vec(n, 0.0));

  for (std::size_t k = 0; k <= k_max; ++k) {
    for (std::size_t i = 0; i < times.size(); ++i) {
      if (k > trunc[i]) continue;
      const double lambda = q * times[i];
      const double w = lambda > 0.0 ? somrm::prob::poisson_pmf(k, lambda)
                                    : (k == 0 ? 1.0 : 0.0);
      if (w != 0.0) linalg::axpy(w, v, acc[i]);
    }
    if (k < k_max) {
      p_matrix.multiply_transposed(v, v_next);
      std::swap(v, v_next);
    }
  }

  for (std::size_t i = 0; i < times.size(); ++i) results[i] = std::move(acc[i]);
  return results;
}

}  // namespace somrm::ctmc
