#include "ctmc/occupancy.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "prob/poisson.hpp"

namespace somrm::ctmc {

linalg::Vec expected_occupancy(const Generator& gen,
                               std::span<const double> initial, double t,
                               const OccupancyOptions& options) {
  const double times[] = {t};
  return expected_occupancy_multi(gen, initial, times, options).front();
}

std::vector<linalg::Vec> expected_occupancy_multi(
    const Generator& gen, std::span<const double> initial,
    std::span<const double> times, const OccupancyOptions& options) {
  if (initial.size() != gen.num_states())
    throw std::invalid_argument("expected_occupancy: initial size mismatch");
  if (!(options.epsilon > 0.0))
    throw std::invalid_argument("expected_occupancy: epsilon must be > 0");
  for (double t : times)
    if (!(t >= 0.0))
      throw std::invalid_argument("expected_occupancy: negative time");

  const std::size_t n = gen.num_states();
  const double q = gen.uniformization_rate();
  std::vector<linalg::Vec> results(times.size());

  if (q == 0.0) {
    // No transitions: the chain sits in its initial state mix for all of t.
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      results[ti].assign(initial.begin(), initial.end());
      linalg::scale(times[ti], results[ti]);
    }
    return results;
  }

  const linalg::CsrMatrix p_matrix = gen.uniformized_dtmc();

  // Weight of pi P^k is (1/q) Pr(Pois(qt) > k); truncate when the summed
  // neglected weight is below epsilon * t, i.e. when the CDF complement
  // integrated tail is small. Using Pr(Pois > k) <= tail(k+1), stop at the
  // transient solver's truncation point for epsilon (same order).
  std::vector<std::size_t> trunc(times.size(), 0);
  std::size_t k_max = 0;
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double lambda = q * times[ti];
    trunc[ti] = lambda > 0.0
                    ? somrm::prob::poisson_truncation_point(
                          lambda, std::log(options.epsilon))
                    : 0;
    k_max = std::max(k_max, trunc[ti]);
    results[ti] = linalg::zeros(n);
  }

  linalg::Vec v(initial.begin(), initial.end());
  linalg::Vec v_next(n, 0.0);
  // Running tail probabilities Pr(Pois(qt_i) > k), updated incrementally.
  std::vector<double> tail(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double lambda = q * times[ti];
    tail[ti] = lambda > 0.0
                   ? 1.0 - somrm::prob::poisson_pmf(0, lambda)
                   : 0.0;
  }

  for (std::size_t k = 0; k <= k_max; ++k) {
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      if (k > trunc[ti]) continue;
      if (tail[ti] > 0.0) linalg::axpy(tail[ti] / q, v, results[ti]);
      const double lambda = q * times[ti];
      if (lambda > 0.0)
        tail[ti] = std::max(0.0, tail[ti] -
                                     somrm::prob::poisson_pmf(k + 1, lambda));
    }
    if (k < k_max) {
      p_matrix.multiply_transposed(v, v_next);
      std::swap(v, v_next);
    }
  }
  return results;
}

}  // namespace somrm::ctmc
