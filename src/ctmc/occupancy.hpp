// somrm/ctmc/occupancy.hpp
//
// Expected accumulated state occupancy L(t) = int_0^t p(u) du by
// uniformization:
//
//   L(t) = (1/q) sum_{k=0}^inf  Pr(Pois(qt) > k)  pi P^k,
//
// which follows from integrating the Poisson weights (int_0^t
// Pois(k; qu) q du = Pr(Pois(qt) > k)). Subtraction-free like the
// transient solver.
//
// Occupancy integrals are the first-order link between the CTMC substrate
// and reward analysis: E[B(t)] = sum_i L_i(t) r_i, which the test suite
// uses to cross-check the randomization solver through an independent
// numerical route.

#pragma once

#include <span>
#include <vector>

#include "ctmc/generator.hpp"
#include "linalg/vec.hpp"

namespace somrm::ctmc {

struct OccupancyOptions {
  /// Truncation budget: the neglected tail contributes at most epsilon * t
  /// to the total (the weights sum to t, not 1).
  double epsilon = 1e-12;
};

/// Expected time spent in each state during (0, t) starting from
/// @p initial. The result sums to t.
linalg::Vec expected_occupancy(const Generator& gen,
                               std::span<const double> initial, double t,
                               const OccupancyOptions& options = {});

/// Multi-time variant sharing one power sweep (times must be >= 0).
std::vector<linalg::Vec> expected_occupancy_multi(
    const Generator& gen, std::span<const double> initial,
    std::span<const double> times, const OccupancyOptions& options = {});

}  // namespace somrm::ctmc
