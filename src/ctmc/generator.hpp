// somrm/ctmc/generator.hpp
//
// Validated continuous-time Markov chain generator. The structure-state
// process Z(t) of a (second-order) Markov reward model is a finite CTMC with
// generator Q: non-negative off-diagonals and zero row sums. This wrapper
// enforces those invariants at construction so every downstream solver can
// assume a well-formed generator.

#pragma once

#include <cstddef>
#include <span>

#include "linalg/csr.hpp"
#include "linalg/vec.hpp"

namespace somrm::ctmc {

class Generator {
 public:
  /// Validates and wraps a square CSR matrix as a CTMC generator.
  ///
  /// Requirements (checked, std::invalid_argument on violation):
  ///  * square matrix with at least one state,
  ///  * off-diagonal entries >= -tol,
  ///  * each row sums to 0 within tol * max(1, |q_ii|).
  ///
  /// Small negative off-diagonals / row-sum residue within tol are
  /// tolerated but NOT rewritten; the stored matrix is exactly the input.
  explicit Generator(linalg::CsrMatrix q, double tol = 1e-9);

  /// Builds a generator from the off-diagonal transition rates only; the
  /// diagonal is filled in as the negated row sum. Triplets on the diagonal
  /// are rejected.
  static Generator from_rates(std::size_t num_states,
                              std::span<const linalg::Triplet> rates);

  std::size_t num_states() const { return q_.rows(); }
  const linalg::CsrMatrix& matrix() const { return q_; }

  /// max_i |q_ii| — the uniformization rate used by randomization.
  double uniformization_rate() const { return unif_rate_; }

  /// Total exit rate per state (|q_ii| reconstructed as the off-diagonal
  /// row sum, which is exact even when the stored diagonal carries rounding).
  const linalg::Vec& exit_rates() const { return exit_rates_; }

  /// The uniformized DTMC matrix P = I + Q/rate. @p rate must be
  /// >= uniformization_rate() (otherwise P would have negative diagonal
  /// entries); pass 0 to use uniformization_rate() itself.
  linalg::CsrMatrix uniformized_dtmc(double rate = 0.0) const;

  /// Jump-chain transition probabilities out of @p state: parallel arrays of
  /// target states and probabilities. Empty for absorbing states.
  struct JumpRow {
    std::vector<std::size_t> targets;
    linalg::Vec probabilities;
  };
  JumpRow jump_distribution(std::size_t state) const;

 private:
  linalg::CsrMatrix q_;
  linalg::Vec exit_rates_;
  double unif_rate_ = 0.0;
};

}  // namespace somrm::ctmc
