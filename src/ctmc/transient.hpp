// somrm/ctmc/transient.hpp
//
// Transient state probabilities p(t) = pi exp(Qt) by uniformization
// (Jensen's randomization): p(t) = sum_k Pois(k; qt) pi P^k with
// P = I + Q/q. Subtraction-free and numerically stable — the same machinery
// Theorem 3 of the paper builds on for reward moments.

#pragma once

#include <span>
#include <vector>

#include "ctmc/generator.hpp"
#include "linalg/vec.hpp"

namespace somrm::ctmc {

struct TransientOptions {
  /// Truncation error budget for the Poisson sum (1-norm of the neglected
  /// probability mass).
  double epsilon = 1e-12;
};

/// Computes p(t) for a single time point. @p initial must be a probability
/// vector over the generator's states.
linalg::Vec transient_distribution(const Generator& gen,
                                   std::span<const double> initial, double t,
                                   const TransientOptions& options = {});

/// Computes p(t) for several time points with a single pass over the
/// Poisson-weighted power sequence (the vector iterates pi P^k are shared;
/// only the weights differ per time point). Times must be non-negative.
std::vector<linalg::Vec> transient_distribution_multi(
    const Generator& gen, std::span<const double> initial,
    std::span<const double> times, const TransientOptions& options = {});

}  // namespace somrm::ctmc
