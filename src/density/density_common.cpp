#include "density/density_common.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace somrm::density {

double integrate_trapezoid(std::span<const double> x,
                           std::span<const double> f) {
  if (x.size() != f.size() || x.size() < 2)
    throw std::invalid_argument("integrate_trapezoid: bad input sizes");
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < x.size(); ++j)
    acc += 0.5 * (f[j] + f[j + 1]) * (x[j + 1] - x[j]);
  return acc;
}

double raw_moment_from_density(std::span<const double> x,
                               std::span<const double> f, std::size_t order) {
  if (x.size() != f.size() || x.size() < 2)
    throw std::invalid_argument("raw_moment_from_density: bad input sizes");
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < x.size(); ++j) {
    const double g0 = std::pow(x[j], static_cast<double>(order)) * f[j];
    const double g1 =
        std::pow(x[j + 1], static_cast<double>(order)) * f[j + 1];
    acc += 0.5 * (g0 + g1) * (x[j + 1] - x[j]);
  }
  return acc;
}

double cdf_from_density(std::span<const double> x, std::span<const double> f,
                        double c) {
  if (x.size() != f.size() || x.size() < 2)
    throw std::invalid_argument("cdf_from_density: bad input sizes");
  if (c <= x.front()) return 0.0;
  double acc = 0.0;
  for (std::size_t j = 0; j + 1 < x.size(); ++j) {
    if (c >= x[j + 1]) {
      acc += 0.5 * (f[j] + f[j + 1]) * (x[j + 1] - x[j]);
      continue;
    }
    // c falls inside (x_j, x_{j+1}): integrate the linear interpolant.
    const double h = x[j + 1] - x[j];
    const double frac = (c - x[j]) / h;
    const double fc = f[j] + (f[j + 1] - f[j]) * frac;
    acc += 0.5 * (f[j] + fc) * (c - x[j]);
    break;
  }
  return acc;
}

}  // namespace somrm::density
