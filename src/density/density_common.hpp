// somrm/density/density_common.hpp
//
// Shared grid/density types for the two distribution solvers (Corollary-1
// PDE scheme and Corollary-2 transform inversion), plus quadrature helpers
// to turn a gridded density into probabilities and moments for
// cross-validation against the randomization moment solver.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vec.hpp"

namespace somrm::density {

/// Uniform reward grid x_j = x_min + j * dx, j = 0..num_points-1.
struct RewardGrid {
  double x_min = -10.0;
  double x_max = 10.0;
  std::size_t num_points = 1024;

  double dx() const {
    return (x_max - x_min) / static_cast<double>(num_points - 1);
  }
  double point(std::size_t j) const {
    return x_min + static_cast<double>(j) * dx();
  }
};

/// Gridded density of the accumulated reward at one time point.
struct DensityResult {
  linalg::Vec x;  ///< grid points
  /// per_state[i][j] = b_i(t, x_j): density of B(t) conditional on
  /// Z(0) = i, evaluated at x_j.
  std::vector<linalg::Vec> per_state;
  /// pi-weighted mixture density: the unconditional density of B(t).
  linalg::Vec weighted;
};

/// Trapezoid integral of f over the grid x (sizes must match, >= 2 points).
double integrate_trapezoid(std::span<const double> x,
                           std::span<const double> f);

/// Trapezoid integral of x^order * f(x): raw moment of a gridded density.
double raw_moment_from_density(std::span<const double> x,
                               std::span<const double> f, std::size_t order);

/// CDF at c: integral of f from the left grid edge to c (linear
/// interpolation inside the straddling cell; clamps outside the grid).
double cdf_from_density(std::span<const double> x, std::span<const double> f,
                        double c);

}  // namespace somrm::density
