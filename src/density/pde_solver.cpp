#include "density/pde_solver.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "linalg/dense.hpp"
#include "linalg/expm.hpp"
#include "linalg/tridiag.hpp"
#include "prob/normal.hpp"

namespace somrm::density {

namespace {

/// Tridiagonal theta-scheme system (I - theta h L_i) for one state's
/// advection-diffusion operator, plus the explicit part (I + (1-theta) h L).
struct AdSystem {
  linalg::Vec sys_lower, sys_diag, sys_upper;  // implicit LHS
  linalg::Vec exp_lower, exp_diag, exp_upper;  // explicit RHS stencil
};

AdSystem build_ad_system(double r, double diffusion, double dx, double h,
                         double theta, std::size_t m) {
  // Upwind advection + central diffusion stencil L:
  //   L u_j = cl * u_{j-1} + cd * u_j + cu * u_{j+1}.
  double cl = diffusion / (dx * dx);
  double cu = diffusion / (dx * dx);
  double cd = -2.0 * diffusion / (dx * dx);
  if (r > 0.0) {
    cl += r / dx;
    cd -= r / dx;
  } else if (r < 0.0) {
    cu += -r / dx;
    cd -= -r / dx;
  }

  AdSystem s;
  s.sys_lower.assign(m, -theta * h * cl);
  s.sys_diag.assign(m, 1.0 - theta * h * cd);
  s.sys_upper.assign(m, -theta * h * cu);
  const double e = (1.0 - theta) * h;
  s.exp_lower.assign(m, e * cl);
  s.exp_diag.assign(m, 1.0 + e * cd);
  s.exp_upper.assign(m, e * cu);
  return s;
}

}  // namespace

DensityResult density_via_pde(const core::SecondOrderMrm& model, double t,
                              const PdeSolverOptions& options) {
  if (!(t > 0.0))
    throw std::invalid_argument("density_via_pde: t must be > 0");
  if (options.num_time_steps == 0)
    throw std::invalid_argument("density_via_pde: need >= 1 time step");
  if (options.grid.num_points < 8)
    throw std::invalid_argument("density_via_pde: grid too small");
  if (!(options.grid.x_max > options.grid.x_min))
    throw std::invalid_argument("density_via_pde: empty grid");
  if (!(options.theta >= 0.5 && options.theta <= 1.0))
    throw std::invalid_argument("density_via_pde: theta must be in [0.5, 1]");

  const std::size_t n = model.num_states();
  const std::size_t m = options.grid.num_points;
  const double dx = options.grid.dx();
  const double h = t / static_cast<double>(options.num_time_steps);

  // Mollified delta initial condition, identical in every component.
  const double s0 = options.init_smoothing_cells * dx;
  DensityResult state;
  state.x.resize(m);
  for (std::size_t j = 0; j < m; ++j) state.x[j] = options.grid.point(j);
  state.per_state.assign(n, linalg::Vec(m, 0.0));
  for (std::size_t j = 0; j < m; ++j) {
    const double v = prob::normal_pdf(state.x[j], 0.0, s0 * s0);
    for (std::size_t i = 0; i < n; ++i) state.per_state[i][j] = v;
  }

  // Half-step reaction propagator exp(Q h/2), dense.
  const auto dense_q = model.generator().matrix().to_dense(/*max_dim=*/512);
  linalg::DenseMatrix qh(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < n; ++k) qh(i, k) = dense_q[i][k] * 0.5 * h;
  const linalg::DenseMatrix e_half = linalg::expm(qh);

  // Per-state tridiagonal systems (time-invariant).
  std::vector<AdSystem> systems;
  systems.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    systems.push_back(build_ad_system(model.drifts()[i],
                                      0.5 * model.variances()[i], dx, h,
                                      options.theta, m));

  // Checked-build invariants. Non-negativity is only a theorem when the
  // explicit half of the theta scheme is itself non-negative
  // (1 + (1-theta) h cd >= 0 per state; the implicit half is always an
  // M-matrix) — Crank-Nicolson with coarse steps may legitimately
  // undershoot, so the sign check is gated on that condition. The mass
  // probe uses max_i of the per-component mass: the reaction step replaces
  // each component mass with a convex combination (e^{Qh/2} is
  // row-stochastic) and absorbing boundaries only remove mass, so the max
  // must never grow.
  [[maybe_unused]] bool positivity_preserving = true;
  [[maybe_unused]] double prev_max_mass = 0.0;
  [[maybe_unused]] double density_scale = 0.0;
  if constexpr (check::kChecked) {
    for (const AdSystem& s : systems)
      positivity_preserving = positivity_preserving && s.exp_diag[0] >= 0.0;
    for (std::size_t i = 0; i < n; ++i)
      prev_max_mass =
          std::max(prev_max_mass, linalg::sum(state.per_state[i]) * dx);
    density_scale = prob::normal_pdf(0.0, 0.0, s0 * s0);
  }

  std::vector<double> col(n), col_out(n), rhs(m);
  for (std::size_t step = 0; step < options.num_time_steps; ++step) {
    // Half reaction: per grid point, mix components with exp(Q h/2).
    const auto apply_reaction = [&]() {
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t i = 0; i < n; ++i) col[i] = state.per_state[i][j];
        for (std::size_t i = 0; i < n; ++i) {
          double acc = 0.0;
          for (std::size_t k = 0; k < n; ++k) acc += e_half(i, k) * col[k];
          col_out[i] = acc;
        }
        for (std::size_t i = 0; i < n; ++i) state.per_state[i][j] = col_out[i];
      }
    };

    apply_reaction();

    // Advection-diffusion per state (theta scheme, Dirichlet-0 edges via
    // truncated stencil — outflow mass is absorbed).
    for (std::size_t i = 0; i < n; ++i) {
      const AdSystem& s = systems[i];
      linalg::Vec& u = state.per_state[i];
      for (std::size_t j = 0; j < m; ++j) {
        double v = s.exp_diag[j] * u[j];
        if (j > 0) v += s.exp_lower[j] * u[j - 1];
        if (j + 1 < m) v += s.exp_upper[j] * u[j + 1];
        rhs[j] = v;
      }
      u = linalg::solve_tridiagonal(s.sys_lower, s.sys_diag, s.sys_upper,
                                    rhs);
    }

    apply_reaction();

    if constexpr (check::kChecked) {
      double step_max_mass = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        const std::span<const double> ui(state.per_state[i]);
        SOMRM_CHECK_FINITE(ui, "pde density");
        if (positivity_preserving)
          SOMRM_CHECK_NONNEGATIVE(ui, 1e-12 * density_scale, "pde density");
        step_max_mass =
            std::max(step_max_mass, linalg::sum(state.per_state[i]) * dx);
      }
      SOMRM_CHECK(
          step_max_mass <= prev_max_mass * (1.0 + 1e-9) + 1e-12,
          "pde.mass_monotone",
          check::fmt("component mass grew at step ", step, ": ",
                     step_max_mass, " > ", prev_max_mass,
                     " (absorbing boundaries must not create mass)"));
      prev_max_mass = step_max_mass;
    }
  }

  state.weighted.assign(m, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    linalg::axpy(model.initial()[i], state.per_state[i], state.weighted);
  return state;
}

}  // namespace somrm::density
