// somrm/density/transform_solver.hpp
//
// Corollary-2 route to the distribution of the accumulated reward: the
// double-transform b**(s,v) = [sI - Q + vR - v^2/2 S]^{-1} h means that in
// the time domain the Laplace/characteristic vector satisfies
//
//   b*(t, v) = exp( t (Q - v R + v^2/2 S) ) h.
//
// Substituting v = -i w gives the characteristic-function vector
// phi_i(w) = E[e^{i w B(t)} | Z(0) = i] = [exp(t (Q + i w R - w^2/2 S)) h]_i,
// evaluated here with a dense complex matrix exponential per frequency and
// inverted to a density on a uniform grid with one FFT. Exact up to
// frequency truncation/aliasing — the reference solution the PDE scheme is
// validated against.
//
// As the paper notes, transform-based distribution methods are only viable
// for small chains (N up to ~100); the solver enforces nothing but will
// simply be slow beyond that.

#pragma once

#include "core/impulse_model.hpp"
#include "core/model.hpp"
#include "density/density_common.hpp"
#include "linalg/fft.hpp"  // linalg::Cvec

namespace somrm::density {

struct TransformSolverOptions {
  RewardGrid grid;  ///< num_points must be a power of two
};

/// Density of B(t) on the grid via characteristic-function inversion.
/// Requirements: t > 0 and a strictly positive total variance along every
/// path reaching the horizon is NOT needed — atoms simply alias into narrow
/// spikes; choose the grid wide enough that the density has decayed at both
/// edges (aliasing wraps around otherwise).
DensityResult density_via_transform(const core::SecondOrderMrm& model,
                                    double t,
                                    const TransformSolverOptions& options);

/// The characteristic-function vector phi(w) itself (per initial state) —
/// exposed for tests that compare against closed forms.
linalg::Cvec characteristic_function(const core::SecondOrderMrm& model,
                                     double t, double omega);

/// Impulse-model variants: each transition factor q_ik is multiplied by the
/// impulse characteristic function e^{i w m_ik - w^2 w_ik / 2}, so the same
/// expm + FFT machinery yields the exact distribution of an impulse-reward
/// model (small N). Deterministic impulses produce genuine atoms in the
/// law; on the grid they appear as narrow spikes of width ~dx.
linalg::Cvec characteristic_function(const core::SecondOrderImpulseMrm& model,
                                     double t, double omega);

DensityResult density_via_transform(const core::SecondOrderImpulseMrm& model,
                                    double t,
                                    const TransformSolverOptions& options);

}  // namespace somrm::density
