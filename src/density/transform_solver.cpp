#include "density/transform_solver.hpp"

#include <cmath>
#include <functional>
#include <numbers>
#include <stdexcept>

#include "linalg/expm.hpp"
#include "linalg/fft.hpp"

namespace somrm::density {

namespace {

using Cplx = std::complex<double>;
using PhiFn = std::function<linalg::Cvec(double omega)>;

/// Dense complex t (Q + i w R - w^2/2 S), with the off-diagonal entries
/// optionally modulated by per-transition impulse characteristic functions.
linalg::DenseCMatrix build_argument(const core::SecondOrderMrm& model,
                                    const core::SecondOrderImpulseMrm* impulses,
                                    double t, double omega) {
  const std::size_t n = model.num_states();
  linalg::DenseCMatrix m(n, n);
  const auto dense_q = model.generator().matrix().to_dense(/*max_dim=*/4096);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Cplx v(dense_q[i][j], 0.0);
      if (impulses != nullptr && i != j && dense_q[i][j] != 0.0) {
        const double im = impulses->impulse_mean().at(i, j);
        const double iw = impulses->impulse_var().at(i, j);
        if (im != 0.0 || iw != 0.0)
          v *= std::exp(Cplx(-0.5 * omega * omega * iw, omega * im));
      }
      m(i, j) = v;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    m(i, i) += Cplx(0.0, omega * model.drifts()[i]);
    m(i, i) -= Cplx(0.5 * omega * omega * model.variances()[i], 0.0);
  }
  m *= Cplx(t, 0.0);
  return m;
}

linalg::Cvec phi_from_argument(const linalg::DenseCMatrix& arg) {
  const auto e = linalg::expm(arg);
  linalg::Cvec h(arg.rows(), Cplx(1.0, 0.0));
  return e.multiply(h);
}

DensityResult invert_characteristic_function(
    const core::SecondOrderMrm& model, const PhiFn& phi_fn,
    const TransformSolverOptions& options) {
  const std::size_t m = options.grid.num_points;
  if (!linalg::is_power_of_two(m) || m < 4)
    throw std::invalid_argument(
        "density_via_transform: num_points must be a power of two >= 4");
  if (!(options.grid.x_max > options.grid.x_min))
    throw std::invalid_argument("density_via_transform: empty grid");

  const std::size_t n = model.num_states();
  const double dx =
      (options.grid.x_max - options.grid.x_min) / static_cast<double>(m);
  const double domega = 2.0 * std::numbers::pi / (static_cast<double>(m) * dx);

  // phi_i(w_k) for k = 0..m/2; negative frequencies by conjugate symmetry
  // (B(t) is real). w index k maps to signed frequency k <= m/2 ? k : k - m.
  std::vector<linalg::Cvec> spectrum(n, linalg::Cvec(m));
  for (std::size_t k = 0; k <= m / 2; ++k) {
    const double omega = domega * static_cast<double>(k);
    const auto phi = phi_fn(omega);
    // Shift reference point to x_min: g_k = phi(w_k) e^{-i w_k x_min}.
    const Cplx shift = std::exp(Cplx(0.0, -omega * options.grid.x_min));
    for (std::size_t i = 0; i < n; ++i) {
      spectrum[i][k] = phi[i] * shift;
      if (k > 0 && k < m / 2) spectrum[i][m - k] = std::conj(phi[i] * shift);
    }
  }

  DensityResult out;
  out.x.resize(m);
  for (std::size_t j = 0; j < m; ++j)
    out.x[j] = options.grid.x_min + static_cast<double>(j) * dx;

  out.per_state.assign(n, linalg::Vec(m, 0.0));
  const double scale = domega / (2.0 * std::numbers::pi);
  for (std::size_t i = 0; i < n; ++i) {
    linalg::Cvec g = spectrum[i];
    linalg::fft(g);  // forward FFT realizes sum_k g_k e^{-2 pi i jk/m}
    for (std::size_t j = 0; j < m; ++j)
      out.per_state[i][j] = g[j].real() * scale;
  }

  out.weighted.assign(m, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    linalg::axpy(model.initial()[i], out.per_state[i], out.weighted);
  return out;
}

}  // namespace

linalg::Cvec characteristic_function(const core::SecondOrderMrm& model,
                                     double t, double omega) {
  if (!(t >= 0.0))
    throw std::invalid_argument("characteristic_function: t must be >= 0");
  return phi_from_argument(build_argument(model, nullptr, t, omega));
}

linalg::Cvec characteristic_function(const core::SecondOrderImpulseMrm& model,
                                     double t, double omega) {
  if (!(t >= 0.0))
    throw std::invalid_argument("characteristic_function: t must be >= 0");
  return phi_from_argument(build_argument(model.base(), &model, t, omega));
}

DensityResult density_via_transform(const core::SecondOrderMrm& model,
                                    double t,
                                    const TransformSolverOptions& options) {
  if (!(t > 0.0))
    throw std::invalid_argument("density_via_transform: t must be > 0");
  return invert_characteristic_function(
      model,
      [&model, t](double omega) {
        return characteristic_function(model, t, omega);
      },
      options);
}

DensityResult density_via_transform(const core::SecondOrderImpulseMrm& model,
                                    double t,
                                    const TransformSolverOptions& options) {
  if (!(t > 0.0))
    throw std::invalid_argument("density_via_transform: t must be > 0");
  return invert_characteristic_function(
      model.base(),
      [&model, t](double omega) {
        return characteristic_function(model, t, omega);
      },
      options);
}

}  // namespace somrm::density
