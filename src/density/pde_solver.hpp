// somrm/density/pde_solver.hpp
//
// Corollary-1 route to the distribution of the accumulated reward: a finite
// difference scheme for the hyperbolic-parabolic system
//
//   d/dt b(t,x) + R d/dx b(t,x) - 1/2 S d^2/dx^2 b(t,x) = Q b(t,x),
//   b(0,x) = delta(x) (componentwise),
//
// on a truncated reward grid. Strang splitting per time step:
//   half reaction  b <- exp(Q h/2) b   (exact, dense expm precomputed),
//   advection-diffusion per state      (theta-scheme, upwind advection +
//                                       central diffusion, Thomas solves),
//   half reaction again.
//
// The Dirac initial condition is mollified into a narrow Gaussian (width a
// few cells); choose the grid to contain essentially all probability mass —
// mass crossing the boundary is absorbed (lost), and the tests use the
// integral of the result as a conservation check.
//
// The paper positions exactly this kind of solver as the slow/inaccurate
// fallback for distributions ("might be slow and inaccurate", section 7);
// reproducing it makes the comparison with the moment-based route honest.

#pragma once

#include "core/model.hpp"
#include "density/density_common.hpp"

namespace somrm::density {

struct PdeSolverOptions {
  RewardGrid grid{-10.0, 10.0, 1024};
  std::size_t num_time_steps = 500;
  /// Time discretization of the advection-diffusion substep:
  /// 1.0 = implicit Euler (robust, default), 0.5 = Crank-Nicolson.
  double theta = 1.0;
  /// Standard deviation of the mollified initial delta, in grid cells.
  double init_smoothing_cells = 3.0;
};

/// Solves the Corollary-1 PDE to time t and returns the gridded density.
/// Intended for small chains (the reaction step densifies Q).
DensityResult density_via_pde(const core::SecondOrderMrm& model, double t,
                              const PdeSolverOptions& options);

}  // namespace somrm::density
