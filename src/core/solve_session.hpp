// somrm/core/solve_session.hpp
//
// Batched multi-query serving on top of the randomization solver.
//
// Theorem 3's iterates U^(n)(k) depend only on the scaled model
// (Q', R', S') — not on the time point, the initial vector pi, or the
// moment order requested. randomization.hpp already shares one sweep across
// a time grid; this layer shares it across QUERIES: a SolveSession runs the
// fused panel sweep once per (model, time grid, epsilon, max moment,
// terminal-weight vector) key, retains the Poisson-weighted accumulator
// panels (core::RetainedSweep), and answers each query by the cheap
// finalize_from_sweep contraction — O(N * (n+1)) per query instead of a
// full O(G * nnz * n) sweep.
//
// What shares a sweep, and what does not:
//  * Different initial vectors pi — ALWAYS share. The retained panels are
//    pi-independent; pi enters only through the final dot products.
//  * Different moment orders <= the session max — share. The recursion and
//    the binomial shift transform are lower-triangular in the order, so the
//    low-order slice of the max-order sweep is bit-identical to it.
//  * Different terminal-weight vectors w — one sweep PER DISTINCT w. The
//    weighted recursion seeds U^(0)(0) = w/w_max, so the iterates
//    themselves depend on w; answering arbitrary w from one retained sweep
//    would require retaining the full N x N iterate history. Distinct w
//    sweeps are cached by content hash, and every pi / order query against
//    the same w shares that sweep.
//
// The SweepCache is thread-safe and keyed by a content hash of the model
// (generator CSR + drifts + variances; NOT the initial vector, so models
// differing only in pi share entries) plus the serialized solve key. It
// holds an LRU list under a byte budget and coalesces concurrent misses on
// the same key: the first caller computes, everyone else blocks on a
// shared future and receives the same retained sweep. Telemetry:
// session.cache.{hit,miss,evict,coalesced} counters and a
// session.query.finalize timer (obs::metric), plus cumulative cache totals
// in every returned MomentResult's SolverStats.

#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/randomization.hpp"
#include "support/thread_annotations.hpp"

namespace somrm::core {

/// Monotonic counters and occupancy of one SweepCache. Counters are
/// cumulative over the cache's lifetime; entries/bytes are current.
struct SweepCacheStats {
  std::size_t hits = 0;        ///< lookups served from a retained sweep
  std::size_t misses = 0;      ///< lookups that computed a fresh sweep
  std::size_t evictions = 0;   ///< entries dropped by the LRU byte budget
  std::size_t coalesced = 0;   ///< misses that joined an in-flight compute
  std::size_t entries = 0;     ///< retained sweeps currently held
  std::size_t bytes = 0;       ///< current footprint (RetainedSweep::byte_size)
  std::size_t byte_budget = 0; ///< eviction threshold
  /// True while bytes > byte_budget. Eviction never drops the most
  /// recently used entry, so one sweep larger than the whole budget is
  /// retained with the cache permanently over budget — this flag is how
  /// that state is surfaced (obs::report appends "over budget" to the
  /// session-cache line) instead of bytes silently exceeding byte_budget.
  bool over_budget = false;
};

/// Thread-safe keyed store of retained sweeps with LRU eviction under a
/// byte budget and request coalescing. Keys are opaque strings (SolveSession
/// derives them from content hashes); values are immutable shared sweeps,
/// so an entry evicted while a query still holds it stays valid for that
/// query. The newest entry is never evicted, so a single sweep larger than
/// the budget still caches (and evicts everything else).
class SweepCache {
 public:
  /// Default byte budget: 256 MiB of retained panels.
  static constexpr std::size_t kDefaultByteBudget =
      std::size_t{256} * 1024 * 1024;

  explicit SweepCache(std::size_t byte_budget = kDefaultByteBudget);

  using EntryPtr = std::shared_ptr<const RetainedSweep>;

  /// How one get_or_compute lookup was served — the per-query attribution
  /// SolveSession records into its SessionReport.
  enum class Outcome : std::uint8_t {
    kHit = 0,        ///< served from a retained sweep
    kMiss = 1,       ///< this caller computed a fresh sweep
    kCoalesced = 2,  ///< joined another caller's in-flight compute
  };

  /// Returns the cached sweep for @p key, computing it via @p compute on a
  /// miss. Concurrent misses on the same key are coalesced: exactly one
  /// caller runs @p compute, the rest block on its result. If compute
  /// throws, every coalesced caller sees the exception and the key is left
  /// uncached (a later call retries). When @p outcome is non-null it
  /// receives how THIS lookup was served.
  EntryPtr get_or_compute(const std::string& key,
                          const std::function<RetainedSweep()>& compute,
                          Outcome* outcome = nullptr) SOMRM_EXCLUDES(mutex_);

  SweepCacheStats stats() const SOMRM_EXCLUDES(mutex_);
  std::size_t byte_budget() const SOMRM_EXCLUDES(mutex_);
  /// Adjusts the budget, evicting LRU entries if the cache now overflows.
  void set_byte_budget(std::size_t bytes) SOMRM_EXCLUDES(mutex_);
  /// Drops every cached entry (does not reset the cumulative counters).
  void clear() SOMRM_EXCLUDES(mutex_);

  /// Seeds @p key with an already-computed sweep (snapshot restore). Counts
  /// as neither hit nor miss; an existing entry for @p key wins (the
  /// restore never clobbers fresher state) and the LRU budget applies as
  /// usual, so inserting in reverse-LRU order reproduces the saved
  /// recency. Returns false when the key was already present (or @p value
  /// is null) and nothing was inserted.
  bool insert(const std::string& key, EntryPtr value) SOMRM_EXCLUDES(mutex_);

  /// Current entries, most recently used first (snapshot save). The
  /// EntryPtrs share ownership, so the caller may serialize them after the
  /// cache has moved on.
  std::vector<std::pair<std::string, EntryPtr>> entries_snapshot() const
      SOMRM_EXCLUDES(mutex_);

  /// Process-wide default cache, shared by sessions that are not given one.
  static const std::shared_ptr<SweepCache>& global();

 private:
  struct Slot {
    EntryPtr value;
    std::size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Evicts LRU entries until the footprint fits the budget, keeping at
  /// least the most recently used entry. Caller holds mutex_.
  void evict_locked() SOMRM_REQUIRES(mutex_);

  mutable support::Mutex mutex_;
  std::size_t byte_budget_ SOMRM_GUARDED_BY(mutex_);
  std::size_t bytes_ SOMRM_GUARDED_BY(mutex_) = 0;
  // front = most recently used
  std::list<std::string> lru_ SOMRM_GUARDED_BY(mutex_);
  std::map<std::string, Slot> entries_ SOMRM_GUARDED_BY(mutex_);
  std::map<std::string, std::shared_future<EntryPtr>> inflight_
      SOMRM_GUARDED_BY(mutex_);
  // hits/misses/evictions/coalesced only
  SweepCacheStats counters_ SOMRM_GUARDED_BY(mutex_);
};

/// Per-query span recorded by SolveSession::query/query_batch — the "which
/// query was slow, why, and what did it cost" attribution unit. Query IDs
/// are PROCESS-WIDE monotonically increasing (a single atomic counter), so
/// IDs from concurrent sessions interleave but never collide, and the same
/// IDs appear as "query_id" args on the session.query trace events.
struct QueryRecord {
  std::uint64_t query_id = 0;   ///< process-wide monotonic, starts at 1
  std::size_t time_index = 0;   ///< the query's time-grid index
  std::size_t max_moment = 0;   ///< resolved moment order (session max
                                ///< substituted for kSessionMax)
  std::int64_t latency_ns = 0;  ///< whole query() wall time (0 in OFF builds)
  std::int64_t finalize_ns = 0; ///< finalize_from_sweep portion
  SweepCache::Outcome cache_outcome = SweepCache::Outcome::kHit;
  std::string sweep_key;        ///< full cache key of the sweep that served it
};

/// Point-in-time report of one session's query history: the retained
/// per-query records (most recent kMaxQueryRecords; older ones counted in
/// dropped_records), EXACT latency quantiles over those records (sorted
/// order statistics of latency_ns, not histogram-bucket approximations),
/// and the cache's cumulative stats at report time. Works in
/// SOMRM_OBSERVABILITY=OFF builds too — records and attribution are real
/// session state, only the ns timings collapse to zero there.
struct SessionReport {
  std::uint64_t queries = 0;          ///< total answered by this session
  std::size_t dropped_records = 0;    ///< records evicted by the ring cap
  std::vector<QueryRecord> records;   ///< ascending query order
  SweepCacheStats cache;              ///< cache stats at report time
  // Exact order-statistic quantiles of records' latency_ns (rank
  // ceil(q*n), 1-based). Zero when no records are retained.
  std::int64_t latency_p50_ns = 0;
  std::int64_t latency_p90_ns = 0;
  std::int64_t latency_p99_ns = 0;
  std::int64_t latency_p999_ns = 0;
};

/// One query against a SolveSession: a time point of the session grid, a
/// moment order up to the session max, and optionally a custom initial
/// vector and/or a terminal-weight vector.
struct SessionQuery {
  /// Sentinel for max_moment: use the session's max.
  static constexpr std::size_t kSessionMax = static_cast<std::size_t>(-1);

  /// Index into the session's time grid.
  std::size_t time_index = 0;
  /// Highest moment order to return (<= the session's max_moment).
  std::size_t max_moment = kSessionMax;
  /// Initial distribution pi; empty = the model's own. Validated like
  /// SecondOrderMrm's (non-negative up to -1e-12, sums to 1 within 1e-9).
  linalg::Vec initial;
  /// Terminal weights w for the solve_terminal_weighted path; empty = the
  /// plain solve. Must be non-negative with max > 0.
  linalg::Vec terminal_weights;
};

/// A batched query engine over one model and one time grid: the sweep runs
/// (at most) once per distinct terminal-weight vector and is shared by
/// every query. Results are bit-identical to the corresponding independent
/// RandomizationMomentSolver::solve / solve_multi / solve_terminal_weighted
/// call at the session's max_moment — a query with a lower order returns
/// exactly the first order+1 entries of that call's output (see
/// finalize_from_sweep). Sessions are cheap; the expensive state lives in
/// the (shareable) SweepCache. const and thread-safe: concurrent query()
/// calls coalesce on the cache.
class SolveSession {
 public:
  /// @p times must be strictly increasing (validate_solver_inputs);
  /// @p cache nullptr selects SweepCache::global().
  SolveSession(SecondOrderMrm model, std::vector<double> times,
               MomentSolverOptions options = {},
               std::shared_ptr<SweepCache> cache = nullptr);

  /// Answers one query. Throws std::invalid_argument on a bad time index,
  /// order > max_moment, or an invalid initial / weight vector. The
  /// returned stats carry the sweep-phase timings of the retained sweep,
  /// THIS query's finalize/total timings, and the cache's cumulative
  /// counters at query time.
  MomentResult query(const SessionQuery& q) const;

  /// query() that also hands back this query's QueryRecord (the same one
  /// pushed into the session ring) — the serving engine attaches it to the
  /// streamed result so clients get attribution without racing report().
  MomentResult query(const SessionQuery& q, QueryRecord* record) const;

  /// Answers a batch in input order. Beyond the shared sweeps, queries in
  /// the same batch that differ only in pi also share the unscale/shift
  /// finalize work: per (weights, time, order) the per-state moments are
  /// materialized once and each query pays only its pi contraction.
  std::vector<MomentResult> query_batch(
      std::span<const SessionQuery> queries) const;

  /// query_batch() that appends each query's QueryRecord to @p records
  /// (same order as the results) when non-null.
  std::vector<MomentResult> query_batch(std::span<const SessionQuery> queries,
                                        std::vector<QueryRecord>* records) const;

  /// Validates @p q exactly as query() would — time index, moment order,
  /// initial vector, terminal weights — throwing std::invalid_argument on
  /// the first violation. Lets a serving frontier reject bad queries at
  /// admission instead of on a worker thread.
  void validate_query(const SessionQuery& q) const;

  /// The full sweep-cache key the query's terminal-weight vector maps to:
  /// base_key() + "|plain" (empty weights) or + "|w=<content hash>". Two
  /// queries with equal sweep_key() are served by the same retained sweep,
  /// which is the grouping invariant the serving engine batches on.
  std::string sweep_key(std::span<const double> terminal_weights) const;

  const std::vector<double>& times() const { return times_; }
  const MomentSolverOptions& options() const { return options_; }
  const SecondOrderMrm& model() const { return solver_.model(); }
  const std::shared_ptr<SweepCache>& cache() const { return cache_; }
  SweepCacheStats cache_stats() const { return cache_->stats(); }

  /// Most recent per-query records retained per session; older records are
  /// dropped (and counted) so a long-lived serving session's footprint
  /// stays bounded.
  static constexpr std::size_t kMaxQueryRecords = 4096;

  /// Snapshot of this session's query history with exact latency
  /// quantiles (see SessionReport). Thread-safe against concurrent
  /// query() calls; also refreshes the mem.peak_rss_bytes gauge.
  SessionReport report() const;

  /// The session's cache key prefix: model content hash + solve key. Two
  /// sessions with bitwise-equal model content (initial vector excluded)
  /// and equal solve options share cache entries even across distinct
  /// model/session objects.
  const std::string& base_key() const { return base_key_; }

 private:
  MomentResult query_impl(
      const SessionQuery& q,
      std::map<std::string, std::shared_ptr<const MomentResult>>* reuse,
      QueryRecord* record_out) const;
  SweepCache::EntryPtr retained(std::span<const double> weights,
                                std::string* weights_key,
                                SweepCache::Outcome* outcome) const;

  RandomizationMomentSolver solver_;
  std::vector<double> times_;
  MomentSolverOptions options_;
  std::shared_ptr<SweepCache> cache_;
  std::string base_key_;

  // Per-query span ring (query() is const; the history is observability
  // state, not solver state).
  mutable support::Mutex records_mutex_;
  mutable std::deque<QueryRecord> records_ SOMRM_GUARDED_BY(records_mutex_);
  mutable std::uint64_t queries_ SOMRM_GUARDED_BY(records_mutex_) = 0;
  mutable std::size_t dropped_records_ SOMRM_GUARDED_BY(records_mutex_) = 0;
};

}  // namespace somrm::core
