#include "core/impulse_model.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::core {

namespace {

void check_sparsity(const SecondOrderMrm& base, const linalg::CsrMatrix& m,
                    const char* what, bool require_nonnegative) {
  const std::size_t n = base.num_states();
  if (m.rows() != n || m.cols() != n)
    throw std::invalid_argument(std::string("SecondOrderImpulseMrm: ") +
                                what + " must be " + std::to_string(n) +
                                " x " + std::to_string(n));
  const auto& q = base.generator().matrix();
  const auto& row_ptr = m.row_ptr();
  const auto& col_idx = m.col_idx();
  const auto& values = m.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const double v = values[k];
      if (v == 0.0) continue;
      if (!std::isfinite(v))
        throw std::invalid_argument(std::string("SecondOrderImpulseMrm: ") +
                                    what + " has a non-finite entry");
      if (require_nonnegative && v < 0.0)
        throw std::invalid_argument(std::string("SecondOrderImpulseMrm: ") +
                                    what + " must be non-negative");
      const std::size_t c = col_idx[k];
      if (c == r)
        throw std::invalid_argument(
            std::string("SecondOrderImpulseMrm: ") + what +
            " has a diagonal entry (impulses attach to transitions)");
      if (q.at(r, c) <= 0.0)
        throw std::invalid_argument(
            std::string("SecondOrderImpulseMrm: ") + what + " entry (" +
            std::to_string(r) + "," + std::to_string(c) +
            ") has no matching transition rate");
    }
  }
}

}  // namespace

SecondOrderImpulseMrm::SecondOrderImpulseMrm(SecondOrderMrm base,
                                             linalg::CsrMatrix impulse_mean,
                                             linalg::CsrMatrix impulse_var)
    : base_(std::move(base)),
      impulse_mean_(std::move(impulse_mean)),
      impulse_var_(std::move(impulse_var)) {
  check_sparsity(base_, impulse_mean_, "impulse_mean",
                 /*require_nonnegative=*/false);
  check_sparsity(base_, impulse_var_, "impulse_var",
                 /*require_nonnegative=*/true);
}

SecondOrderImpulseMrm SecondOrderImpulseMrm::uniform_impulse(
    SecondOrderMrm base, double mean, double variance) {
  const std::size_t n = base.num_states();
  const auto& q = base.generator().matrix();
  linalg::CsrBuilder mb(n, n), wb(n, n);
  const auto& row_ptr = q.row_ptr();
  const auto& col_idx = q.col_idx();
  const auto& values = q.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      if (col_idx[k] == r || values[k] <= 0.0) continue;
      if (mean != 0.0) mb.add(r, col_idx[k], mean);
      if (variance != 0.0) wb.add(r, col_idx[k], variance);
    }
  }
  return SecondOrderImpulseMrm(std::move(base), std::move(mb).build(),
                               std::move(wb).build());
}

bool SecondOrderImpulseMrm::has_no_impulses() const {
  const auto zero = [](const linalg::CsrMatrix& m) {
    for (double v : m.values())
      if (v != 0.0) return false;
    return true;
  };
  return zero(impulse_mean_) && zero(impulse_var_);
}

double SecondOrderImpulseMrm::max_abs_impulse_mean() const {
  double best = 0.0;
  for (double v : impulse_mean_.values()) best = std::max(best, std::abs(v));
  return best;
}

double SecondOrderImpulseMrm::max_impulse_variance() const {
  double best = 0.0;
  for (double v : impulse_var_.values()) best = std::max(best, v);
  return best;
}

}  // namespace somrm::core
