#include "core/randomization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/moment_utils.hpp"
#include "linalg/parallel.hpp"
#include "prob/normal.hpp"
#include "prob/poisson.hpp"

namespace somrm::core {

namespace {

/// log(2 d^n n! (qt)^n) — the Theorem-4 prefactor in log space.
double log_theorem4_prefactor(double qt, std::size_t n, double d) {
  const double nn = static_cast<double>(n);
  return std::log(2.0) + nn * std::log(d) + std::lgamma(nn + 1.0) +
         nn * std::log(qt);
}

/// A time point whose Poisson weight at the current step k is non-zero.
struct ActiveWeight {
  std::size_t ti;
  double w;
};

/// Minimum rows per parallel range for the fused kernel. Each row costs
/// (nnz_row + 4) * n_moments flops, so ranges of ~1k rows amortize the pool
/// hand-off while still splitting four ways at 10k states.
constexpr std::size_t kFusedGrain = 1024;

/// One fused, row-parallel step of the Theorem-3 recursion: computes
///   u_next[j] = Q' u[j] + R' u[j-1] + 1/2 S' u[j-2]   for j = j_lo..n
/// in a single pass over the CSR structure (instead of an SpMV followed by
/// two element-wise loops per moment order), and folds the Poisson-weighted
/// accumulation acc[ti][j] += w * u_next[j] for every active time point into
/// the same pass. All writes are row-owned, so results are bit-identical for
/// every thread count; with one thread the arithmetic per element happens in
/// exactly the order of the original scalar loops.
///
/// j_lo == 1 (solve_multi): u[0] is the invariant all-ones vector h, the
/// j = 0 row is skipped and its accumulation reads u[0] directly.
/// j_lo == 0 (solve_terminal_weighted): the seed vector is not invariant and
/// the j = 0 row is iterated like the rest.
void fused_recursion_step(const ScaledModel& scaled, std::size_t n,
                          std::size_t j_lo, std::vector<linalg::Vec>& u,
                          std::vector<linalg::Vec>& u_next,
                          std::span<const ActiveWeight> active,
                          std::vector<std::vector<linalg::Vec>>& acc) {
  const std::size_t num_states = scaled.q_prime.rows();
  const auto& row_ptr = scaled.q_prime.row_ptr();
  const auto& col_idx = scaled.q_prime.col_idx();
  const auto& values = scaled.q_prime.values();

  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        // Stage-wise within the range: each stage is a contiguous streaming
        // loop the compiler can vectorize (interleaving everything per row
        // costs ~2x single-thread throughput). Per element the arithmetic
        // order is exactly the scalar original's, so 1-thread results are
        // bit-identical to the pre-fusion solver.
        for (std::size_t j = n + 1; j-- > j_lo;) {
          const linalg::Vec& uj = u[j];
          linalg::Vec& out = u_next[j];
          for (std::size_t i = row_begin; i < row_end; ++i) {
            double s = 0.0;
            for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk)
              s += values[kk] * uj[col_idx[kk]];
            out[i] = s;
          }
          if (j >= 1) {
            const linalg::Vec& lower1 = u[j - 1];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += scaled.r_prime[i] * lower1[i];
          }
          if (j >= 2) {
            const linalg::Vec& lower2 = u[j - 2];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += 0.5 * scaled.s_prime[i] * lower2[i];
          }
        }
        // Accumulation goes through linalg::axpy on the owned sub-range: the
        // weight travels by value, so the compiler keeps it in a register and
        // vectorizes (reading aw.w through the struct reference inside the
        // loop defeats that — the stores to acc could alias it).
        const std::size_t len = row_end - row_begin;
        for (const ActiveWeight& aw : active) {
          if (j_lo > 0) {
            linalg::axpy(
                aw.w, std::span<const double>(u[0]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][0]).subspan(row_begin, len));
          }
          for (std::size_t j = j_lo > 0 ? 1 : 0; j <= n; ++j) {
            linalg::axpy(
                aw.w,
                std::span<const double>(u_next[j]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][j]).subspan(row_begin, len));
          }
        }
      },
      kFusedGrain);

  for (std::size_t j = j_lo; j <= n; ++j) std::swap(u[j], u_next[j]);
}

/// Finishes a MomentResult from the accumulated scaled sums: applies the
/// n! d^n factor, undoes the drift shift, and weights by pi.
void finalize_result(const SecondOrderMrm& model, const ScaledModel& scaled,
                     double t, std::vector<linalg::Vec> scaled_sums,
                     MomentResult& out) {
  const std::size_t n = scaled_sums.size() - 1;
  const std::size_t num_states = model.num_states();

  // V_check^(j) = j! d^j * scaled_sums[j]  (moments of the shifted model).
  double factor = 1.0;  // j! d^j
  for (std::size_t j = 0; j <= n; ++j) {
    if (j > 0) factor *= static_cast<double>(j) * scaled.d;
    linalg::scale(factor, scaled_sums[j]);
  }

  // Undo the drift shift per initial state: B(t) = B_check(t) + shift * t.
  if (scaled.shift == 0.0) {
    out.per_state = std::move(scaled_sums);
  } else {
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    const double delta = scaled.shift * t;
    std::vector<double> raw(n + 1);
    for (std::size_t i = 0; i < num_states; ++i) {
      for (std::size_t j = 0; j <= n; ++j) raw[j] = scaled_sums[j][i];
      const auto shifted = shift_raw_moments(raw, delta);
      for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = shifted[j];
    }
  }

  out.weighted.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j)
    out.weighted[j] = linalg::dot(model.initial(), out.per_state[j]);
}

}  // namespace

RandomizationMomentSolver::RandomizationMomentSolver(SecondOrderMrm model)
    : model_(std::move(model)) {}

std::size_t RandomizationMomentSolver::truncation_point(double qt,
                                                        std::size_t n,
                                                        double d,
                                                        double epsilon) {
  if (!(epsilon > 0.0))
    throw std::invalid_argument("truncation_point: epsilon must be positive");
  if (qt < 0.0) throw std::invalid_argument("truncation_point: negative qt");
  if (qt == 0.0) return 0;
  if (d == 0.0 && n > 0) return 0;  // all higher moments are exactly zero

  // Lemma 2 gives U^(n)(k) <= 2 k!/(k-n)!, so the truncation error is
  //   n! d^n sum_{k>G} Pois(k;qt) U^(n)(k)
  //     <= 2 n! d^n (qt)^n sum_{m >= G+1-n} Pois(m; qt)
  // (substituting m = k - n; the paper prints the tail from G+n+1, which is
  // an index-shift slip in the appendix — see DESIGN.md). Condition:
  // log_tail(G + 1 - n) < log(eps) - log_prefactor; for n == 0 the
  // prefactor is just log 2.
  const double log_prefactor =
      n == 0 ? std::log(2.0) : log_theorem4_prefactor(qt, n, d);
  const double log_target = std::log(epsilon) - log_prefactor;

  // poisson_truncation_point returns the smallest K with tail(K+1) < bound;
  // we need the smallest G with tail(G + 1 - n) < bound, i.e. G = K + n.
  const std::size_t k = prob::poisson_truncation_point(qt, log_target);
  return k + n;
}

MomentResult RandomizationMomentSolver::solve(
    double t, const MomentSolverOptions& options) const {
  const double times[] = {t};
  return solve_multi(times, options).front();
}

MomentResult RandomizationMomentSolver::solve_terminal_weighted(
    double t, std::span<const double> terminal_weights,
    const MomentSolverOptions& options) const {
  const std::size_t num_states = model_.num_states();
  if (terminal_weights.size() != num_states)
    throw std::invalid_argument(
        "solve_terminal_weighted: weight vector size mismatch");
  if (!linalg::is_nonnegative(terminal_weights))
    throw std::invalid_argument(
        "solve_terminal_weighted: weights must be non-negative");
  const double w_max = linalg::max_elem(terminal_weights);
  if (!(w_max > 0.0))
    throw std::invalid_argument(
        "solve_terminal_weighted: weights must not be all zero");
  if (!(t >= 0.0))
    throw std::invalid_argument("solve_terminal_weighted: t must be >= 0");
  if (!(options.epsilon > 0.0))
    throw std::invalid_argument(
        "solve_terminal_weighted: epsilon must be positive");

  const std::size_t n = options.max_moment;
  const ScaledModel scaled =
      scale_model(model_, options.scale_policy, options.center);

  MomentResult out;
  out.time = t;
  out.q = scaled.q;
  out.d = scaled.d;
  out.shift = scaled.shift;
  out.center = options.center;

  // Degenerate chain: Z(t) = Z(0), so the weight just multiplies the
  // closed-form Brownian moments.
  if (scaled.q == 0.0) {
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    for (std::size_t i = 0; i < num_states; ++i) {
      const auto m = prob::brownian_raw_moments(
          model_.drifts()[i] - options.center, model_.variances()[i], t, n);
      for (std::size_t j = 0; j <= n; ++j)
        out.per_state[j][i] = m[j] * terminal_weights[i];
    }
    out.weighted.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
      out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
    return out;
  }

  const double qt = scaled.q * t;
  std::size_t g = 0;
  for (std::size_t j = 0; j <= n; ++j)
    g = std::max(g, truncation_point(qt, j, scaled.d, options.epsilon));
  out.truncation_point = g;

  // Per-time-point Poisson weight table (single time point here): one
  // lgamma instead of one per sweep step.
  const prob::PoissonWindow window =
      qt > 0.0 ? prob::poisson_weight_window(qt, g) : prob::PoissonWindow{};

  // Seed U^(0)(0) with the scaled weights; unlike solve(), U^(0) is not
  // invariant (Q' w != w in general) so the j = 0 row is iterated too.
  std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
  for (std::size_t i = 0; i < num_states; ++i)
    u[0][i] = terminal_weights[i] / w_max;
  std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));

  std::vector<std::vector<linalg::Vec>> acc(
      1, std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));
  {
    const double w0 = qt > 0.0 ? window.weight(0) : 1.0;
    if (w0 != 0.0) linalg::axpy(w0, u[0], acc[0][0]);
  }

  std::vector<ActiveWeight> active;
  for (std::size_t k = 1; k <= g; ++k) {
    active.clear();
    if (qt > 0.0) {
      const double w = window.weight(k);
      if (w != 0.0) active.push_back(ActiveWeight{0, w});
    }
    fused_recursion_step(scaled, n, /*j_lo=*/0, u, u_next, active, acc);
  }

  // Undo the weight normalization along with the usual j! d^j factor.
  double factor = w_max;
  for (std::size_t j = 0; j <= n; ++j) {
    if (j > 0) factor *= static_cast<double>(j) * scaled.d;
    linalg::scale(factor, acc[0][j]);
  }

  if (scaled.shift == 0.0) {
    out.per_state = std::move(acc[0]);
  } else {
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    const double delta = scaled.shift * t;
    std::vector<double> raw(n + 1);
    for (std::size_t i = 0; i < num_states; ++i) {
      for (std::size_t j = 0; j <= n; ++j) raw[j] = acc[0][j][i];
      const auto back = shift_raw_moments(raw, delta);
      for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = back[j];
    }
  }
  out.weighted.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j)
    out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
  return out;
}

std::vector<MomentResult> RandomizationMomentSolver::solve_multi(
    std::span<const double> times, const MomentSolverOptions& options) const {
  for (double t : times)
    if (!(t >= 0.0))
      throw std::invalid_argument("solve_multi: times must be >= 0");
  if (!(options.epsilon > 0.0))
    throw std::invalid_argument("solve_multi: epsilon must be positive");

  const std::size_t n = options.max_moment;
  const std::size_t num_states = model_.num_states();
  const ScaledModel scaled =
      scale_model(model_, options.scale_policy, options.center);

  std::vector<MomentResult> results(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    results[i].time = times[i];
    results[i].q = scaled.q;
    results[i].d = scaled.d;
    results[i].shift = scaled.shift;
    results[i].center = options.center;
  }

  // Degenerate chain: no transitions ever happen, so conditioned on
  // Z(0) = i the reward is exactly a Brownian motion with (r_i, sigma_i^2)
  // and the moments are the closed-form normal moments.
  if (scaled.q == 0.0) {
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      MomentResult& out = results[ti];
      out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
      for (std::size_t i = 0; i < num_states; ++i) {
        const auto m = prob::brownian_raw_moments(
            model_.drifts()[i] - options.center, model_.variances()[i],
            times[ti], n);
        for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = m[j];
      }
      out.weighted.resize(n + 1);
      for (std::size_t j = 0; j <= n; ++j)
        out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
    }
    return results;
  }

  // Theorem-4 truncation per time point: honour epsilon for every moment
  // order 0..n, so take the max of the per-order G values.
  std::vector<std::size_t> trunc(times.size(), 0);
  std::size_t g_max = 0;
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    std::size_t g = 0;
    for (std::size_t j = 0; j <= n; ++j)
      g = std::max(g, truncation_point(qt, j, scaled.d, options.epsilon));
    trunc[ti] = g;
    results[ti].truncation_point = g;
    const double log_bound =
        (n == 0 ? std::log(2.0)
                : log_theorem4_prefactor(qt, n, scaled.d)) +
        prob::log_poisson_tail(qt, g + 1 >= n ? g + 1 - n : 0);
    results[ti].error_bound = std::exp(log_bound);
    g_max = std::max(g_max, g);
  }

  // Per-time-point Poisson weight tables, one lgamma each (mode-centered
  // multiplicative recurrence with left truncation) — the old code paid one
  // lgamma per (k, time point) pair inside the sweep.
  std::vector<prob::PoissonWindow> windows(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    if (qt > 0.0) windows[ti] = prob::poisson_weight_window(qt, trunc[ti]);
  }

  // U^(j)(0): U^(0) = h, higher orders zero. U^(0)(k) stays h for all k
  // because Q' is stochastic, so the j = 0 row of the recursion is skipped.
  std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
  u[0] = linalg::ones(num_states);
  std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));
  std::vector<std::vector<linalg::Vec>> acc(
      times.size(), std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));

  // k = 0 contribution.
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
    if (w0 != 0.0) linalg::axpy(w0, u[0], acc[ti][0]);
  }

  std::vector<ActiveWeight> active;
  active.reserve(times.size());
  for (std::size_t k = 1; k <= g_max; ++k) {
    active.clear();
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      if (k > trunc[ti]) continue;
      const double w = windows[ti].weight(k);
      if (w != 0.0) active.push_back(ActiveWeight{ti, w});
    }
    fused_recursion_step(scaled, n, /*j_lo=*/1, u, u_next, active, acc);
  }

  for (std::size_t ti = 0; ti < times.size(); ++ti)
    finalize_result(model_, scaled, times[ti], std::move(acc[ti]), results[ti]);
  return results;
}

}  // namespace somrm::core
