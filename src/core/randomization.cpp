#include "core/randomization.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/moment_utils.hpp"
#include "core/solver_telemetry.hpp"
#include "linalg/panel.hpp"
#include "linalg/parallel.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sellcs.hpp"
#include "linalg/simd.hpp"
#include "obs/trace.hpp"
#include "prob/normal.hpp"
#include "prob/poisson.hpp"

namespace somrm::core {

namespace {

/// log(2 d^n n! (qt)^n) — the Theorem-4 prefactor in log space.
double log_theorem4_prefactor(double qt, std::size_t n, double d) {
  const double nn = static_cast<double>(n);
  return std::log(2.0) + nn * std::log(d) + prob::log_factorial(n) +
         nn * std::log(qt);
}

/// Theorem-4 tail bound achieved at truncation point @p g for moment order
/// @p n (0 when the tail underflows double range).
double theorem4_error_bound(double qt, std::size_t n, double d,
                            std::size_t g) {
  const double log_bound =
      (n == 0 ? std::log(2.0) : log_theorem4_prefactor(qt, n, d)) +
      prob::log_poisson_tail(qt, g + 1 >= n ? g + 1 - n : 0);
  return std::exp(log_bound);
}

/// A time point whose Poisson weight at the current step k is non-zero.
struct ActiveWeight {
  std::size_t ti;
  double w;
};

/// Composes two row-permutation stages applied in sequence. @p first maps
/// first-stage rows to model rows (first[new] = old, the linalg/reorder
/// convention) and @p second maps second-stage rows to first-stage rows;
/// the result maps second-stage rows straight to model rows, so ONE
/// unpermute_panel_rows at sweep end undoes both stages.
std::vector<std::size_t> compose_permutations(
    std::span<const std::size_t> first, std::span<const std::size_t> second) {
  std::vector<std::size_t> out(second.size());
  for (std::size_t i = 0; i < second.size(); ++i) out[i] = first[second[i]];
  return out;
}

/// Minimum rows per parallel range for the fused kernels. Each row costs
/// (nnz_row + 4) * n_moments flops, so ranges of ~1k rows amortize the pool
/// hand-off while still splitting four ways at 10k states.
constexpr std::size_t kFusedGrain = 1024;

/// Rows per cache block inside a panel-step row range. The SpMM write, the
/// R'/½S' diagonal update, and the Poisson-weighted accumulation all touch
/// the same u_next slab; running them block-by-block keeps that slab
/// (kPanelBlockRows * width doubles — 64 KiB at width 8) resident in L1/L2
/// across all three stages instead of streaming the full panel from DRAM
/// three times per step. Pure traffic optimization: per element the
/// arithmetic chain is unchanged, so results stay bit-identical.
constexpr std::size_t kPanelBlockRows = 1024;

/// Fully fused row kernel for one panel recursion step with a compile-time
/// panel width W = n+1 and recursion floor JLO (0 or 1): per row the
/// entry-order dot products, the R'/½S' diagonal terms, the store to
/// u_next, and the Poisson-weighted accumulation into every active acc
/// panel all happen while the row's W accumulators sit in registers — one
/// pass over the sparse structure AND one pass over the panels per step.
/// Templated over the storage format via Matrix::visit_row (CsrMatrix or
/// linalg::SellCsMatrix), which yields each row's entries in its CSR order.
/// Per element the arithmetic chain (dot product in entry order, then
/// + R' u^(j-1), then + ½S' u^(j-2), then acc += w * value) is exactly the
/// kFusedVectors kernel's, so results are bit-identical to it — for either
/// storage format.
template <std::size_t W, std::size_t JLO, class Matrix>
void panel_step_rows(const Matrix& mat, const ScaledModel& scaled,
                     const double* ubase, double* obase,
                     std::span<const ActiveWeight> active,
                     std::span<double* const> acc_base, std::size_t row_begin,
                     std::size_t row_end) {
  constexpr std::size_t n = W - 1;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* ui = ubase + i * W;
    double* oi = obase + i * W;
    double s[W > JLO ? W - JLO : 1];  // W == JLO only for the n = 0 sweep
    for (std::size_t c = 0; c < W - JLO; ++c) s[c] = 0.0;
    mat.visit_row(i, [&](std::size_t col, double v) {
      const double* xr = ubase + col * W + JLO;
      for (std::size_t c = 0; c < W - JLO; ++c) s[c] += v * xr[c];
    });
    const double r = scaled.r_prime[i];
    for (std::size_t j = std::max<std::size_t>(JLO, 1); j <= n; ++j)
      s[j - JLO] += r * ui[j - 1];
    const double half_s = 0.5 * scaled.s_prime[i];
    for (std::size_t j = std::max<std::size_t>(JLO, 2); j <= n; ++j)
      s[j - JLO] += half_s * ui[j - 2];
    for (std::size_t c = 0; c < W - JLO; ++c) oi[JLO + c] = s[c];
    // Weighted accumulation over the FULL width: for JLO == 1 the j = 0
    // lane reads the invariant ones column stored in u_next, the same
    // value the vector kernel takes from u[0].
    for (std::size_t a = 0; a < active.size(); ++a) {
      const double w = active[a].w;
      double* ar = acc_base[a] + i * W;
      for (std::size_t j = 0; j < W; ++j) ar[j] += w * oi[j];
    }
  }
}

template <std::size_t W, class Matrix>
void panel_step_rows_dispatch_jlo(const Matrix& mat, const ScaledModel& scaled,
                                  std::size_t j_lo, const double* ubase,
                                  double* obase,
                                  std::span<const ActiveWeight> active,
                                  std::span<double* const> acc_base,
                                  std::size_t row_begin, std::size_t row_end) {
  if (j_lo == 0)
    panel_step_rows<W, 0>(mat, scaled, ubase, obase, active, acc_base,
                          row_begin, row_end);
  else
    panel_step_rows<W, 1>(mat, scaled, ubase, obase, active, acc_base,
                          row_begin, row_end);
}

/// One fused, row-parallel step of the Theorem-3 recursion over the panel
/// layout: the iterates U^(j_lo..n)(k) live in the contiguous row-major
/// panel u (u(i, j) = U^(j)(k)_i) and the step computes
///   u_next(i, j) = (Q' u)(i, j) + R'_i u(i, j-1) + 1/2 S'_i u(i, j-2)
/// with ONE pass over the CSR structure — each matrix entry is loaded once
/// and multiplied against the n+1-j_lo contiguous doubles of the source row
/// — folding the R'/½S' diagonal terms and the Poisson-weighted
/// accumulation acc[ti] += w * u_next into the same per-row pass
/// (panel_step_rows, dispatched on a compile-time width for n <= 7; wider
/// panels take a cache-blocked three-stage path over the same arithmetic).
/// Per element the arithmetic order (kk-ascending dot product, then R',
/// then ½S', then the weighted accumulation) is exactly the kFusedVectors
/// kernel's, so results are bit-identical to it at every thread count.
///
/// j_lo == 1 (solve_multi): column 0 of both panels holds the invariant
/// all-ones vector h and is never recomputed; the accumulation reads it in
/// place. j_lo == 0 (solve_terminal_weighted): the seed vector is not
/// invariant and column 0 is iterated like the rest.
///
/// @p mat is the storage the sweep streams Q' from — scaled.q_prime itself
/// for kCsr, or the SellCsMatrix built from it for kSellCs. Both provide
/// visit_row and multiply_panel_rows with the same per-row entry order, so
/// the instantiations are bit-identical.
template <class Matrix>
void fused_panel_step(const Matrix& mat, const ScaledModel& scaled,
                      std::size_t n, std::size_t j_lo, linalg::Panel& u,
                      linalg::Panel& u_next,
                      std::span<const ActiveWeight> active,
                      std::vector<linalg::Panel>& acc) {
  const std::size_t num_states = mat.rows();
  const std::size_t width = n + 1;
  // Per-weight destination base pointers, resolved once per step.
  std::vector<double*> acc_base(active.size());
  for (std::size_t a = 0; a < active.size(); ++a)
    acc_base[a] = acc[active[a].ti].data();
  const double* ubase = u.data();
  double* obase = u_next.data();
  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        switch (width) {
          case 1:
            panel_step_rows_dispatch_jlo<1>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 2:
            panel_step_rows_dispatch_jlo<2>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 3:
            panel_step_rows_dispatch_jlo<3>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 4:
            panel_step_rows_dispatch_jlo<4>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 5:
            panel_step_rows_dispatch_jlo<5>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 6:
            panel_step_rows_dispatch_jlo<6>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 7:
            panel_step_rows_dispatch_jlo<7>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 8:
            panel_step_rows_dispatch_jlo<8>(mat, scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          default: {
            // Wide-panel fallback: cache-block the range so the u_next slab
            // written by the SpMM is still hot when the diagonal update and
            // the weighted accumulation re-read it (see kPanelBlockRows).
            for (std::size_t b0 = row_begin; b0 < row_end;
                 b0 += kPanelBlockRows) {
              const std::size_t b1 = std::min(row_end, b0 + kPanelBlockRows);
              mat.multiply_panel_rows(u, u_next, b0, b1,
                                      /*src_col=*/j_lo,
                                      /*dst_col=*/j_lo, width - j_lo,
                                      /*accumulate=*/false);
              for (std::size_t i = b0; i < b1; ++i) {
                const double* ui = u.row_data(i);
                double* oi = u_next.row_data(i);
                const double r = scaled.r_prime[i];
                for (std::size_t j = std::max<std::size_t>(j_lo, 1); j <= n;
                     ++j)
                  oi[j] += r * ui[j - 1];
                const double half_s = 0.5 * scaled.s_prime[i];
                for (std::size_t j = std::max<std::size_t>(j_lo, 2); j <= n;
                     ++j)
                  oi[j] += half_s * ui[j - 2];
              }
              const std::size_t lo = b0 * width;
              const std::size_t len = (b1 - b0) * width;
              for (const ActiveWeight& aw : active)
                linalg::axpy(aw.w, u_next.span().subspan(lo, len),
                             acc[aw.ti].span().subspan(lo, len));
            }
            break;
          }
        }
      },
      kFusedGrain);
  u.swap(u_next);
}

/// One fused step over the pre-panel layout (one vector per moment order):
/// re-streams the sparse structure once per order. Kept as the
/// kFusedVectors reference kernel; see fused_panel_step for the production
/// path. Templated over the storage format exactly like fused_panel_step.
template <class Matrix>
void fused_recursion_step(const Matrix& mat, const ScaledModel& scaled,
                          std::size_t n, std::size_t j_lo,
                          std::vector<linalg::Vec>& u,
                          std::vector<linalg::Vec>& u_next,
                          std::span<const ActiveWeight> active,
                          std::vector<std::vector<linalg::Vec>>& acc) {
  const std::size_t num_states = mat.rows();

  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        // Stage-wise within the range: each stage is a contiguous streaming
        // loop the compiler can vectorize. Per element the arithmetic
        // order is exactly the scalar original's, so 1-thread results are
        // bit-identical to the pre-fusion solver.
        for (std::size_t j = n + 1; j-- > j_lo;) {
          const linalg::Vec& uj = u[j];
          linalg::Vec& out = u_next[j];
          for (std::size_t i = row_begin; i < row_end; ++i) {
            double s = 0.0;
            mat.visit_row(i, [&](std::size_t col, double v) {
              s += v * uj[col];
            });
            out[i] = s;
          }
          if (j >= 1) {
            const linalg::Vec& lower1 = u[j - 1];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += scaled.r_prime[i] * lower1[i];
          }
          if (j >= 2) {
            const linalg::Vec& lower2 = u[j - 2];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += 0.5 * scaled.s_prime[i] * lower2[i];
          }
        }
        // Accumulation goes through linalg::axpy on the owned sub-range: the
        // weight travels by value, so the compiler keeps it in a register and
        // vectorizes (reading aw.w through the struct reference inside the
        // loop defeats that — the stores to acc could alias it).
        const std::size_t len = row_end - row_begin;
        for (const ActiveWeight& aw : active) {
          if (j_lo > 0) {
            linalg::axpy(
                aw.w, std::span<const double>(u[0]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][0]).subspan(row_begin, len));
          }
          for (std::size_t j = j_lo > 0 ? 1 : 0; j <= n; ++j) {
            linalg::axpy(
                aw.w,
                std::span<const double>(u_next[j]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][j]).subspan(row_begin, len));
          }
        }
      },
      kFusedGrain);

  for (std::size_t j = j_lo; j <= n; ++j) std::swap(u[j], u_next[j]);
}

/// True when the scaled recursion is numerically subtraction-free (all
/// R' >= 0, i.e. shift-mode scaling; S' is non-negative by construction),
/// which is when the checked build may assert iterate non-negativity.
/// Only evaluated in checked builds.
bool is_subtraction_free(const ScaledModel& scaled) {
  return check::kChecked &&
         std::all_of(scaled.r_prime.begin(), scaled.r_prime.end(),
                     [](double r) { return r >= 0.0; });
}

/// Finishes a MomentResult from the accumulated scaled sums: applies
/// @p prefactor times the n! d^n factor, undoes the drift shift, and
/// weights by @p initial. The prefactor is 1 for the plain solve and w_max
/// for the terminal-weighted solve (undoing the seed normalization).
/// @p epsilon is the Theorem-4 budget of the solve, used to scale the
/// checked-build moment-consistency tolerance; @p jensen_applies must be
/// false for terminal-weighted output, where V^(j) = E[B^j w(Z(t))] and
/// Cauchy-Schwarz only yields V2 >= V1^2 for weights bounded by 1. Takes
/// the scaling scalars rather than the model/ScaledModel pair so the
/// retained-sweep finalize (which has no ScaledModel) runs the exact same
/// code — per element the arithmetic chain is shared, which is what makes
/// the session path bit-identical to the direct solvers.
void finalize_result(std::span<const double> initial, double d, double shift,
                     double t, double prefactor, double epsilon,
                     bool jensen_applies, std::vector<linalg::Vec> scaled_sums,
                     MomentResult& out) {
  const std::size_t n = scaled_sums.size() - 1;
  const std::size_t num_states = scaled_sums[0].size();

  // V_check^(j) = prefactor * j! d^j * scaled_sums[j]  (moments of the
  // shifted model).
  double factor = prefactor;  // prefactor * j! d^j
  for (std::size_t j = 0; j <= n; ++j) {
    if (j > 0) factor *= static_cast<double>(j) * d;
    linalg::scale(factor, scaled_sums[j]);
  }

  // Undo the drift shift per initial state: B(t) = B_check(t) + shift * t.
  if (shift == 0.0) {
    out.per_state = std::move(scaled_sums);
  } else {
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    const double delta = shift * t;
    std::vector<double> raw(n + 1);
    for (std::size_t i = 0; i < num_states; ++i) {
      for (std::size_t j = 0; j <= n; ++j) raw[j] = scaled_sums[j][i];
      const auto shifted = shift_raw_moments(raw, delta);
      for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = shifted[j];
    }
  }

  out.weighted.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j)
    out.weighted[j] = linalg::dot(initial, out.per_state[j]);

  if constexpr (check::kChecked) {
    if (jensen_applies && out.per_state.size() >= 3) {
      // The truncation error is epsilon per moment in scaled units; the
      // prefactor and the shift transform amplify it.
      const double delta = std::abs(shift) * t;
      const double eff_eps =
          epsilon * std::max(prefactor, 1.0) * (1.0 + delta) * (1.0 + delta);
      check::check_moment_consistency(out.per_state[1], out.per_state[2],
                                      eff_eps, "finalize_result");
    }
  }
}

/// The shared sweep body behind solve_multi, solve_terminal_weighted and
/// sweep_retained: scales the model, computes per-time truncation points
/// and Poisson windows, runs the fused recursion with the per-time weighted
/// accumulation, and returns the retained panels. @p terminal_weights empty
/// selects the plain sweep (invariant ones seed, j_lo = 1); non-empty
/// selects the terminal-weighted sweep (normalized w seed, j_lo = 0).
/// @p caller names the solve in checked-build probe messages.
RetainedSweep run_sweep(const SecondOrderMrm& model,
                        std::span<const double> times,
                        const MomentSolverOptions& options,
                        std::span<const double> terminal_weights,
                        const char* caller) {
  const std::int64_t total_t0 = obs::now_ns();
  const std::size_t n = options.max_moment;
  const std::size_t num_states = model.num_states();
  const bool weighted = !terminal_weights.empty();
  const double w_max = weighted ? linalg::max_elem(terminal_weights) : 1.0;
  ScaledModel scaled = scale_model(model, options.scale_policy, options.center);

  RetainedSweep sweep;
  sweep.times.assign(times.begin(), times.end());
  sweep.max_moment = n;
  sweep.epsilon = options.epsilon;
  sweep.center = options.center;
  sweep.q = scaled.q;
  sweep.d = scaled.d;
  sweep.shift = scaled.shift;
  sweep.terminal_weighted = weighted;
  sweep.prefactor = weighted ? w_max : 1.0;

  obs::SolverStats& stats = sweep.stats;
  stats.threads = linalg::num_threads();
  stats.simd = linalg::simd::level_name(linalg::simd::active_level());
  stats.reorder = "none";
  stats.storage = options.storage == StorageFormat::kSellCs ? "sellcs" : "csr";
  stats.panel_width = n + 1;
  stats.scale_seconds = obs::seconds_between(total_t0, obs::now_ns());

  // Degenerate chain: no transitions ever happen, so conditioned on
  // Z(0) = i the reward is exactly a Brownian motion with (r_i, sigma_i^2)
  // and the moments are the closed-form normal moments (times the terminal
  // weight, which only sees the frozen state Z(t) = Z(0) = i). The panels
  // hold FINAL per-state values; finalize only contracts with pi.
  if (scaled.q == 0.0) {
    sweep.degenerate = true;
    sweep.prefactor = 1.0;
    stats.kernel = "degenerate";
    stats.storage = "none";  // the closed form builds no sparse matrix
    stats.panel_width = 0;
    sweep.acc.assign(times.size(), linalg::Panel(num_states, n + 1, 0.0));
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      for (std::size_t i = 0; i < num_states; ++i) {
        const auto m = prob::brownian_raw_moments(
            model.drifts()[i] - options.center, model.variances()[i],
            times[ti], n);
        const double wi = weighted ? terminal_weights[i] : 1.0;
        for (std::size_t j = 0; j <= n; ++j) sweep.acc[ti](i, j) = m[j] * wi;
      }
    }
    stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    return sweep;
  }

  // Optional bandwidth-reduction reorder (linalg/reorder.hpp): the sweep
  // runs on the permuted state space and the retained panels are permuted
  // back just before return. permute_symmetric preserves every row's
  // stored-entry order, so the arithmetic chain — and hence every output
  // bit — is identical under any policy; only memory locality changes.
  std::vector<std::size_t> perm;  // perm[new] = old; empty = no reorder
  stats.bandwidth_before = linalg::bandwidth(scaled.q_prime);
  stats.bandwidth_after = stats.bandwidth_before;
  if (options.reorder != ReorderPolicy::kNone) {
    const std::int64_t reorder_t0 = obs::now_ns();
    perm = options.reorder == ReorderPolicy::kRcm
               ? linalg::rcm_permutation(scaled.q_prime)
               : linalg::degree_permutation(scaled.q_prime);
    if (linalg::is_identity_permutation(perm)) {
      perm.clear();  // already optimal; skip the permuted copies
    } else {
      scaled.q_prime = linalg::permute_symmetric(scaled.q_prime, perm);
      scaled.r_prime = linalg::permute_vector(scaled.r_prime, perm);
      scaled.s_prime = linalg::permute_vector(scaled.s_prime, perm);
      stats.bandwidth_after = linalg::bandwidth(scaled.q_prime);
    }
    stats.reorder = options.reorder == ReorderPolicy::kRcm ? "rcm" : "degree";
    stats.scale_seconds += obs::seconds_between(reorder_t0, obs::now_ns());
  }

  // Optional SELL-C-σ storage (linalg/sellcs.hpp): σ-sort the (possibly
  // reorder-permuted) rows by descending length — expressed as a second
  // permutation stage composed onto perm, so the existing unpermute at
  // sweep end undoes both stages at once — then convert. The SELL kernels
  // keep each row's entries in CSR order, so like the reorder this changes
  // memory traffic, never a single output bit.
  linalg::SellCsMatrix sell;
  const bool use_sell = options.storage == StorageFormat::kSellCs;
  if (use_sell) {
    const std::int64_t sell_t0 = obs::now_ns();
    std::vector<std::size_t> sigma_perm =
        linalg::SellCsMatrix::sigma_sort_permutation(
            scaled.q_prime, linalg::SellCsMatrix::kDefaultSigma);
    if (!linalg::is_identity_permutation(sigma_perm)) {
      scaled.q_prime = linalg::permute_symmetric(scaled.q_prime, sigma_perm);
      scaled.r_prime = linalg::permute_vector(scaled.r_prime, sigma_perm);
      scaled.s_prime = linalg::permute_vector(scaled.s_prime, sigma_perm);
      perm = perm.empty() ? std::move(sigma_perm)
                          : compose_permutations(perm, sigma_perm);
    }
    sell = linalg::SellCsMatrix::from_csr(scaled.q_prime,
                                          linalg::SellCsMatrix::kDefaultChunk);
    stats.padding_ratio = sell.padding_ratio();
    stats.chunk_occupancy = sell.chunk_occupancy();
    stats.scale_seconds += obs::seconds_between(sell_t0, obs::now_ns());
  }

  // Theorem-4 truncation per time point: honour epsilon for every moment
  // order 0..n, so take the max of the per-order G values. The per-order
  // maxima over the time points land in stats.truncation_points.
  const std::int64_t trunc_t0 = obs::now_ns();
  std::vector<std::size_t>& trunc = sweep.truncation_points;
  trunc.assign(times.size(), 0);
  sweep.error_bounds.assign(times.size(), 0.0);
  stats.truncation_points.assign(n + 1, 0);
  std::size_t g_max = 0;
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    std::size_t g = 0;
    for (std::size_t j = 0; j <= n; ++j) {
      const std::size_t gj = RandomizationMomentSolver::truncation_point(
          qt, j, scaled.d, options.epsilon);
      stats.truncation_points[j] = std::max(stats.truncation_points[j], gj);
      g = std::max(g, gj);
    }
    trunc[ti] = g;
    // Theorem 4 applies to the weighted sweep unchanged: the normalized
    // seed w/w_max is <= h, so Lemma 2's majorant still dominates.
    sweep.error_bounds[ti] = theorem4_error_bound(qt, n, scaled.d, g);
    if constexpr (check::kChecked) {
      check::check_truncation_bound(
          sweep.error_bounds[ti],
          g > 0 ? theorem4_error_bound(qt, n, scaled.d, g - 1)
                : sweep.error_bounds[ti],
          options.epsilon, g, caller);
    }
    g_max = std::max(g_max, g);
  }
  stats.truncation_seconds = obs::seconds_between(trunc_t0, obs::now_ns());
  const bool subtraction_free = is_subtraction_free(scaled);

  // Per-time-point Poisson weight tables, one lgamma each (mode-centered
  // multiplicative recurrence with left truncation) — the old code paid one
  // lgamma per (k, time point) pair inside the sweep.
  const std::int64_t window_t0 = obs::now_ns();
  std::vector<prob::PoissonWindow> windows(times.size());
  stats.window_widths.assign(times.size(), 0);
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    if (qt > 0.0) windows[ti] = prob::poisson_weight_window(qt, trunc[ti]);
    stats.window_widths[ti] = windows[ti].weights.size();
    obs::trace_counter("poisson.window_width",
                       static_cast<double>(windows[ti].weights.size()));
  }
  stats.window_seconds = obs::seconds_between(window_t0, obs::now_ns());
  stats.sweep_steps = g_max;
  // Lanes actually iterated per CSR pass: the plain sweep's j = 0 column is
  // invariant (j_lo = 1), so n lanes; the weighted seed is not invariant,
  // so all n+1 lanes iterate (j_lo = 0).
  const std::size_t j_lo = weighted ? 0 : 1;
  stats.sweep_flops =
      2 * g_max * scaled.q_prime.nnz() * (weighted ? n + 1 : n);

  const auto seed_value = [&](std::size_t i) {
    if (!weighted) return 1.0;
    // Row i of the (possibly permuted) sweep is model state perm[i].
    return terminal_weights[perm.empty() ? i : perm[i]] / w_max;
  };

  if (options.kernel == SweepKernel::kPanel) {
    stats.kernel = "panel";
    linalg::Panel u(num_states, n + 1, 0.0);
    linalg::Panel u_next(num_states, n + 1, 0.0);
    for (std::size_t i = 0; i < num_states; ++i) u(i, 0) = seed_value(i);
    if (!weighted) u_next.fill_col(0, 1.0);  // invariant column survives swaps
    sweep.acc.assign(times.size(), linalg::Panel(num_states, n + 1, 0.0));
    std::vector<linalg::Panel>& acc = sweep.acc;

    // k = 0 contribution.
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      const double qt = scaled.q * times[ti];
      const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
      if (w0 != 0.0)
        for (std::size_t i = 0; i < num_states; ++i)
          acc[ti](i, 0) += w0 * u(i, 0);
    }

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    std::vector<ActiveWeight> active;
    active.reserve(times.size());
    for (std::size_t k = 1; k <= g_max; ++k) {
      active.clear();
      for (std::size_t ti = 0; ti < times.size(); ++ti) {
        if (k > trunc[ti]) continue;
        const double w = windows[ti].weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{ti, w});
      }
      stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      if (use_sell)
        fused_panel_step(sell, scaled, n, j_lo, u, u_next, active, acc);
      else
        fused_panel_step(scaled.q_prime, scaled, n, j_lo, u, u_next, active,
                         acc);
      if constexpr (check::kChecked)
        check::check_sweep_panel(u, k, j_lo, subtraction_free,
                                 /*apply_majorant=*/true, caller);
      detail::record_sweep_step(k_t0, k, active.size());
    }
    detail::finish_sweep_stats(stats, sweep_t0, busy0);
  } else {
    stats.kernel = "fused_vectors";
    std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
    for (std::size_t i = 0; i < num_states; ++i) u[0][i] = seed_value(i);
    std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));
    std::vector<std::vector<linalg::Vec>> acc(
        times.size(),
        std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));

    // k = 0 contribution.
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      const double qt = scaled.q * times[ti];
      const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
      if (w0 != 0.0) linalg::axpy(w0, u[0], acc[ti][0]);
    }

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    std::vector<ActiveWeight> active;
    active.reserve(times.size());
    for (std::size_t k = 1; k <= g_max; ++k) {
      active.clear();
      for (std::size_t ti = 0; ti < times.size(); ++ti) {
        if (k > trunc[ti]) continue;
        const double w = windows[ti].weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{ti, w});
      }
      stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      if (use_sell)
        fused_recursion_step(sell, scaled, n, j_lo, u, u_next, active, acc);
      else
        fused_recursion_step(scaled.q_prime, scaled, n, j_lo, u, u_next,
                             active, acc);
      if constexpr (check::kChecked) {
        for (std::size_t j = 0; j <= n; ++j)
          check::check_sweep_column(u[j], k, j, subtraction_free,
                                    /*apply_majorant=*/true, caller);
      }
      detail::record_sweep_step(k_t0, k, active.size());
    }
    detail::finish_sweep_stats(stats, sweep_t0, busy0);

    // Retain panels regardless of kernel: the vector->panel copy preserves
    // every bit, so the finalize path is kernel-agnostic.
    sweep.acc.assign(times.size(), linalg::Panel(num_states, n + 1, 0.0));
    for (std::size_t ti = 0; ti < times.size(); ++ti)
      for (std::size_t j = 0; j <= n; ++j)
        sweep.acc[ti].set_col(j, acc[ti][j]);
  }

  if (!perm.empty()) {
    // Back to the model's state order: pure row moves, no arithmetic, so
    // nothing downstream can tell a reordered sweep ran.
    for (linalg::Panel& p : sweep.acc)
      p = linalg::unpermute_panel_rows(p, perm);
  }

  stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  return sweep;
}

/// Validates a terminal-weight vector against the model, throwing with the
/// caller's name (shared by solve_terminal_weighted and sweep_retained).
void validate_terminal_weights(std::span<const double> weights,
                               std::size_t num_states, const char* caller) {
  const auto fail = [caller](const char* what) {
    throw std::invalid_argument(std::string(caller) + ": " + what);
  };
  if (weights.size() != num_states) fail("weight vector size mismatch");
  if (!linalg::is_nonnegative(weights)) fail("weights must be non-negative");
  if (!(linalg::max_elem(weights) > 0.0)) fail("weights must not be all zero");
}

}  // namespace

void validate_solver_inputs(std::span<const double> times,
                            const MomentSolverOptions& options,
                            const char* caller) {
  const auto fail = [caller](const std::string& what) {
    throw std::invalid_argument(std::string(caller) + ": " + what);
  };
  if (times.empty()) fail("time list must not be empty");
  for (double t : times) {
    if (!(t >= 0.0) || !std::isfinite(t))
      fail("t must be finite and >= 0 (got " + std::to_string(t) + ")");
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] == times[i - 1])
      fail("duplicate time point (got " + std::to_string(times[i]) +
           " twice); time points must be strictly increasing");
    if (times[i] < times[i - 1])
      fail("time points must be sorted ascending (got " +
           std::to_string(times[i]) + " after " +
           std::to_string(times[i - 1]) + ")");
  }
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon))
    fail("epsilon must be finite and positive (got " +
         std::to_string(options.epsilon) + ")");
  if (!std::isfinite(options.center))
    fail("center must be finite (got " + std::to_string(options.center) +
         ")");
}

RandomizationMomentSolver::RandomizationMomentSolver(SecondOrderMrm model)
    : model_(std::move(model)) {}

std::size_t RandomizationMomentSolver::truncation_point(double qt,
                                                        std::size_t n,
                                                        double d,
                                                        double epsilon) {
  if (!(epsilon > 0.0))
    throw std::invalid_argument("truncation_point: epsilon must be positive");
  if (qt < 0.0) throw std::invalid_argument("truncation_point: negative qt");
  if (qt == 0.0) return 0;
  if (d == 0.0 && n > 0) return 0;  // all higher moments are exactly zero

  // Lemma 2 gives U^(n)(k) <= 2 k!/(k-n)!, so the truncation error is
  //   n! d^n sum_{k>G} Pois(k;qt) U^(n)(k)
  //     <= 2 n! d^n (qt)^n sum_{m >= G+1-n} Pois(m; qt)
  // (substituting m = k - n; the paper prints the tail from G+n+1, which is
  // an index-shift slip in the appendix — see DESIGN.md). Condition:
  // log_tail(G + 1 - n) < log(eps) - log_prefactor; for n == 0 the
  // prefactor is just log 2.
  const double log_prefactor =
      n == 0 ? std::log(2.0) : log_theorem4_prefactor(qt, n, d);
  const double log_target = std::log(epsilon) - log_prefactor;

  // poisson_truncation_point returns the smallest K with tail(K+1) < bound;
  // we need the smallest G with tail(G + 1 - n) < bound, i.e. G = K + n.
  const std::size_t k = prob::poisson_truncation_point(qt, log_target);
  return k + n;
}

MomentResult RandomizationMomentSolver::solve(
    double t, const MomentSolverOptions& options) const {
  const double times[] = {t};
  return solve_multi(times, options).front();
}

MomentResult RandomizationMomentSolver::solve_terminal_weighted(
    double t, std::span<const double> terminal_weights,
    const MomentSolverOptions& options) const {
  validate_terminal_weights(terminal_weights, model_.num_states(),
                            "solve_terminal_weighted");
  const double time_list[] = {t};
  validate_solver_inputs(time_list, options, "solve_terminal_weighted");

  const std::int64_t total_t0 = obs::now_ns();
  obs::TraceScope solve_scope("solve_terminal_weighted", "solver");

  RetainedSweep sweep = run_sweep(model_, time_list, options, terminal_weights,
                                  "solve_terminal_weighted");

  const std::int64_t finalize_t0 = obs::now_ns();
  MomentResult out = finalize_from_sweep(sweep, 0, model_.initial(),
                                         options.max_moment);
  out.stats.finalize_seconds =
      obs::seconds_between(finalize_t0, obs::now_ns());
  out.stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  return out;
}

RetainedSweep RandomizationMomentSolver::sweep_retained(
    std::span<const double> times, const MomentSolverOptions& options,
    std::span<const double> terminal_weights) const {
  if (!terminal_weights.empty())
    validate_terminal_weights(terminal_weights, model_.num_states(),
                              "sweep_retained");
  validate_solver_inputs(times, options, "sweep_retained");
  return run_sweep(model_, times, options, terminal_weights, "sweep_retained");
}

bool bit_identical(const RetainedSweep& a, const RetainedSweep& b) {
  const auto doubles_equal = [](std::span<const double> x,
                                std::span<const double> y) {
    return x.size() == y.size() &&
           (x.empty() ||
            std::memcmp(x.data(), y.data(), x.size() * sizeof(double)) == 0);
  };
  const auto scalar_equal = [](double x, double y) {
    return std::memcmp(&x, &y, sizeof(double)) == 0;
  };
  if (!doubles_equal(a.times, b.times)) return false;
  if (a.max_moment != b.max_moment) return false;
  if (!scalar_equal(a.epsilon, b.epsilon) || !scalar_equal(a.center, b.center))
    return false;
  if (!scalar_equal(a.q, b.q) || !scalar_equal(a.d, b.d) ||
      !scalar_equal(a.shift, b.shift) ||
      !scalar_equal(a.prefactor, b.prefactor))
    return false;
  if (a.terminal_weighted != b.terminal_weighted ||
      a.degenerate != b.degenerate)
    return false;
  if (a.truncation_points != b.truncation_points) return false;
  if (!doubles_equal(a.error_bounds, b.error_bounds)) return false;
  if (a.acc.size() != b.acc.size()) return false;
  for (std::size_t t = 0; t < a.acc.size(); ++t) {
    const linalg::Panel& pa = a.acc[t];
    const linalg::Panel& pb = b.acc[t];
    if (pa.rows() != pb.rows() || pa.width() != pb.width()) return false;
    if (!doubles_equal(pa.span(), pb.span())) return false;
  }
  return true;
}

std::size_t RetainedSweep::byte_size() const {
  std::size_t bytes = sizeof(RetainedSweep);
  bytes += times.capacity() * sizeof(double);
  bytes += truncation_points.capacity() * sizeof(std::size_t);
  bytes += error_bounds.capacity() * sizeof(double);
  bytes += stats.truncation_points.capacity() * sizeof(std::size_t);
  bytes += stats.window_widths.capacity() * sizeof(std::size_t);
  for (const linalg::Panel& p : acc)
    bytes += p.rows() * p.width() * sizeof(double) + sizeof(linalg::Panel);
  return bytes;
}

MomentResult finalize_from_sweep(const RetainedSweep& sweep,
                                 std::size_t time_index,
                                 std::span<const double> initial,
                                 std::size_t max_moment) {
  if (time_index >= sweep.times.size())
    throw std::invalid_argument(
        "finalize_from_sweep: time index " + std::to_string(time_index) +
        " out of range (sweep holds " + std::to_string(sweep.times.size()) +
        " time points)");
  if (max_moment > sweep.max_moment)
    throw std::invalid_argument(
        "finalize_from_sweep: moment order " + std::to_string(max_moment) +
        " exceeds the sweep's max_moment " +
        std::to_string(sweep.max_moment));
  if (initial.size() != sweep.num_states())
    throw std::invalid_argument(
        "finalize_from_sweep: initial vector size mismatch (got " +
        std::to_string(initial.size()) + ", sweep has " +
        std::to_string(sweep.num_states()) + " states)");

  const std::size_t n = max_moment;
  const linalg::Panel& acc = sweep.acc[time_index];
  MomentResult out;
  out.time = sweep.times[time_index];
  out.q = sweep.q;
  out.d = sweep.d;
  out.shift = sweep.shift;
  out.center = sweep.center;
  out.stats = sweep.stats;

  if (sweep.degenerate) {
    // Closed-form panels already hold final per-state values.
    out.per_state.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j) out.per_state[j] = acc.col(j);
    out.weighted.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
      out.weighted[j] = linalg::dot(initial, out.per_state[j]);
    return out;
  }

  out.truncation_point = sweep.truncation_points[time_index];
  out.error_bound = sweep.error_bounds[time_index];
  std::vector<linalg::Vec> sums(n + 1);
  for (std::size_t j = 0; j <= n; ++j) sums[j] = acc.col(j);
  finalize_result(initial, sweep.d, sweep.shift, out.time, sweep.prefactor,
                  sweep.epsilon, /*jensen_applies=*/!sweep.terminal_weighted,
                  std::move(sums), out);
  return out;
}

std::vector<MomentResult> RandomizationMomentSolver::solve_multi(
    std::span<const double> times, const MomentSolverOptions& options) const {
  validate_solver_inputs(times, options, "solve_multi");

  const std::int64_t total_t0 = obs::now_ns();
  obs::TraceScope solve_scope("solve_multi", "solver", "times",
                              static_cast<double>(times.size()));

  RetainedSweep sweep = run_sweep(model_, times, options, {}, "solve_multi");

  const std::int64_t finalize_t0 = obs::now_ns();
  std::vector<MomentResult> results;
  results.reserve(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti)
    results.push_back(finalize_from_sweep(sweep, ti, model_.initial(),
                                          options.max_moment));
  sweep.stats.finalize_seconds =
      obs::seconds_between(finalize_t0, obs::now_ns());
  sweep.stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  for (MomentResult& r : results) r.stats = sweep.stats;
  return results;
}

}  // namespace somrm::core
