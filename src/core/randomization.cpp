#include "core/randomization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/moment_utils.hpp"
#include "core/solver_telemetry.hpp"
#include "linalg/panel.hpp"
#include "linalg/parallel.hpp"
#include "obs/trace.hpp"
#include "prob/normal.hpp"
#include "prob/poisson.hpp"

namespace somrm::core {

namespace {

/// log(2 d^n n! (qt)^n) — the Theorem-4 prefactor in log space.
double log_theorem4_prefactor(double qt, std::size_t n, double d) {
  const double nn = static_cast<double>(n);
  return std::log(2.0) + nn * std::log(d) + std::lgamma(nn + 1.0) +
         nn * std::log(qt);
}

/// Theorem-4 tail bound achieved at truncation point @p g for moment order
/// @p n (0 when the tail underflows double range).
double theorem4_error_bound(double qt, std::size_t n, double d,
                            std::size_t g) {
  const double log_bound =
      (n == 0 ? std::log(2.0) : log_theorem4_prefactor(qt, n, d)) +
      prob::log_poisson_tail(qt, g + 1 >= n ? g + 1 - n : 0);
  return std::exp(log_bound);
}

/// A time point whose Poisson weight at the current step k is non-zero.
struct ActiveWeight {
  std::size_t ti;
  double w;
};

/// Minimum rows per parallel range for the fused kernels. Each row costs
/// (nnz_row + 4) * n_moments flops, so ranges of ~1k rows amortize the pool
/// hand-off while still splitting four ways at 10k states.
constexpr std::size_t kFusedGrain = 1024;

/// Rows per cache block inside a panel-step row range. The SpMM write, the
/// R'/½S' diagonal update, and the Poisson-weighted accumulation all touch
/// the same u_next slab; running them block-by-block keeps that slab
/// (kPanelBlockRows * width doubles — 64 KiB at width 8) resident in L1/L2
/// across all three stages instead of streaming the full panel from DRAM
/// three times per step. Pure traffic optimization: per element the
/// arithmetic chain is unchanged, so results stay bit-identical.
constexpr std::size_t kPanelBlockRows = 1024;

/// Fully fused row kernel for one panel recursion step with a compile-time
/// panel width W = n+1 and recursion floor JLO (0 or 1): per row the
/// kk-ascending CSR dot products, the R'/½S' diagonal terms, the store to
/// u_next, and the Poisson-weighted accumulation into every active acc
/// panel all happen while the row's W accumulators sit in registers — one
/// pass over the CSR structure AND one pass over the panels per step.
/// Per element the arithmetic chain (dot product in ascending-k order, then
/// + R' u^(j-1), then + ½S' u^(j-2), then acc += w * value) is exactly the
/// kFusedVectors kernel's, so results are bit-identical to it.
template <std::size_t W, std::size_t JLO>
void panel_step_rows(const ScaledModel& scaled, const double* ubase,
                     double* obase, std::span<const ActiveWeight> active,
                     std::span<double* const> acc_base, std::size_t row_begin,
                     std::size_t row_end) {
  constexpr std::size_t n = W - 1;
  const auto& row_ptr = scaled.q_prime.row_ptr();
  const auto& col_idx = scaled.q_prime.col_idx();
  const auto& values = scaled.q_prime.values();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* ui = ubase + i * W;
    double* oi = obase + i * W;
    double s[W > JLO ? W - JLO : 1];  // W == JLO only for the n = 0 sweep
    for (std::size_t c = 0; c < W - JLO; ++c) s[c] = 0.0;
    for (std::size_t k = row_ptr[i]; k < row_ptr[i + 1]; ++k) {
      const double v = values[k];
      const double* xr = ubase + col_idx[k] * W + JLO;
      for (std::size_t c = 0; c < W - JLO; ++c) s[c] += v * xr[c];
    }
    const double r = scaled.r_prime[i];
    for (std::size_t j = std::max<std::size_t>(JLO, 1); j <= n; ++j)
      s[j - JLO] += r * ui[j - 1];
    const double half_s = 0.5 * scaled.s_prime[i];
    for (std::size_t j = std::max<std::size_t>(JLO, 2); j <= n; ++j)
      s[j - JLO] += half_s * ui[j - 2];
    for (std::size_t c = 0; c < W - JLO; ++c) oi[JLO + c] = s[c];
    // Weighted accumulation over the FULL width: for JLO == 1 the j = 0
    // lane reads the invariant ones column stored in u_next, the same
    // value the vector kernel takes from u[0].
    for (std::size_t a = 0; a < active.size(); ++a) {
      const double w = active[a].w;
      double* ar = acc_base[a] + i * W;
      for (std::size_t j = 0; j < W; ++j) ar[j] += w * oi[j];
    }
  }
}

template <std::size_t W>
void panel_step_rows_dispatch_jlo(const ScaledModel& scaled, std::size_t j_lo,
                                  const double* ubase, double* obase,
                                  std::span<const ActiveWeight> active,
                                  std::span<double* const> acc_base,
                                  std::size_t row_begin, std::size_t row_end) {
  if (j_lo == 0)
    panel_step_rows<W, 0>(scaled, ubase, obase, active, acc_base, row_begin,
                          row_end);
  else
    panel_step_rows<W, 1>(scaled, ubase, obase, active, acc_base, row_begin,
                          row_end);
}

/// One fused, row-parallel step of the Theorem-3 recursion over the panel
/// layout: the iterates U^(j_lo..n)(k) live in the contiguous row-major
/// panel u (u(i, j) = U^(j)(k)_i) and the step computes
///   u_next(i, j) = (Q' u)(i, j) + R'_i u(i, j-1) + 1/2 S'_i u(i, j-2)
/// with ONE pass over the CSR structure — each matrix entry is loaded once
/// and multiplied against the n+1-j_lo contiguous doubles of the source row
/// — folding the R'/½S' diagonal terms and the Poisson-weighted
/// accumulation acc[ti] += w * u_next into the same per-row pass
/// (panel_step_rows, dispatched on a compile-time width for n <= 7; wider
/// panels take a cache-blocked three-stage path over the same arithmetic).
/// Per element the arithmetic order (kk-ascending dot product, then R',
/// then ½S', then the weighted accumulation) is exactly the kFusedVectors
/// kernel's, so results are bit-identical to it at every thread count.
///
/// j_lo == 1 (solve_multi): column 0 of both panels holds the invariant
/// all-ones vector h and is never recomputed; the accumulation reads it in
/// place. j_lo == 0 (solve_terminal_weighted): the seed vector is not
/// invariant and column 0 is iterated like the rest.
void fused_panel_step(const ScaledModel& scaled, std::size_t n,
                      std::size_t j_lo, linalg::Panel& u,
                      linalg::Panel& u_next,
                      std::span<const ActiveWeight> active,
                      std::vector<linalg::Panel>& acc) {
  const std::size_t num_states = scaled.q_prime.rows();
  const std::size_t width = n + 1;
  // Per-weight destination base pointers, resolved once per step.
  std::vector<double*> acc_base(active.size());
  for (std::size_t a = 0; a < active.size(); ++a)
    acc_base[a] = acc[active[a].ti].data();
  const double* ubase = u.data();
  double* obase = u_next.data();
  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        switch (width) {
          case 1:
            panel_step_rows_dispatch_jlo<1>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 2:
            panel_step_rows_dispatch_jlo<2>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 3:
            panel_step_rows_dispatch_jlo<3>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 4:
            panel_step_rows_dispatch_jlo<4>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 5:
            panel_step_rows_dispatch_jlo<5>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 6:
            panel_step_rows_dispatch_jlo<6>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 7:
            panel_step_rows_dispatch_jlo<7>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          case 8:
            panel_step_rows_dispatch_jlo<8>(scaled, j_lo, ubase, obase,
                                            active, acc_base, row_begin,
                                            row_end);
            break;
          default: {
            // Wide-panel fallback: cache-block the range so the u_next slab
            // written by the SpMM is still hot when the diagonal update and
            // the weighted accumulation re-read it (see kPanelBlockRows).
            for (std::size_t b0 = row_begin; b0 < row_end;
                 b0 += kPanelBlockRows) {
              const std::size_t b1 = std::min(row_end, b0 + kPanelBlockRows);
              scaled.q_prime.multiply_panel_rows(u, u_next, b0, b1,
                                                 /*src_col=*/j_lo,
                                                 /*dst_col=*/j_lo,
                                                 width - j_lo,
                                                 /*accumulate=*/false);
              for (std::size_t i = b0; i < b1; ++i) {
                const double* ui = u.row_data(i);
                double* oi = u_next.row_data(i);
                const double r = scaled.r_prime[i];
                for (std::size_t j = std::max<std::size_t>(j_lo, 1); j <= n;
                     ++j)
                  oi[j] += r * ui[j - 1];
                const double half_s = 0.5 * scaled.s_prime[i];
                for (std::size_t j = std::max<std::size_t>(j_lo, 2); j <= n;
                     ++j)
                  oi[j] += half_s * ui[j - 2];
              }
              const std::size_t lo = b0 * width;
              const std::size_t len = (b1 - b0) * width;
              for (const ActiveWeight& aw : active)
                linalg::axpy(aw.w, u_next.span().subspan(lo, len),
                             acc[aw.ti].span().subspan(lo, len));
            }
            break;
          }
        }
      },
      kFusedGrain);
  u.swap(u_next);
}

/// One fused step over the pre-panel layout (one vector per moment order):
/// re-streams the CSR structure once per order. Kept as the kFusedVectors
/// reference kernel; see fused_panel_step for the production path.
void fused_recursion_step(const ScaledModel& scaled, std::size_t n,
                          std::size_t j_lo, std::vector<linalg::Vec>& u,
                          std::vector<linalg::Vec>& u_next,
                          std::span<const ActiveWeight> active,
                          std::vector<std::vector<linalg::Vec>>& acc) {
  const std::size_t num_states = scaled.q_prime.rows();
  const auto& row_ptr = scaled.q_prime.row_ptr();
  const auto& col_idx = scaled.q_prime.col_idx();
  const auto& values = scaled.q_prime.values();

  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        // Stage-wise within the range: each stage is a contiguous streaming
        // loop the compiler can vectorize. Per element the arithmetic
        // order is exactly the scalar original's, so 1-thread results are
        // bit-identical to the pre-fusion solver.
        for (std::size_t j = n + 1; j-- > j_lo;) {
          const linalg::Vec& uj = u[j];
          linalg::Vec& out = u_next[j];
          for (std::size_t i = row_begin; i < row_end; ++i) {
            double s = 0.0;
            for (std::size_t kk = row_ptr[i]; kk < row_ptr[i + 1]; ++kk)
              s += values[kk] * uj[col_idx[kk]];
            out[i] = s;
          }
          if (j >= 1) {
            const linalg::Vec& lower1 = u[j - 1];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += scaled.r_prime[i] * lower1[i];
          }
          if (j >= 2) {
            const linalg::Vec& lower2 = u[j - 2];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += 0.5 * scaled.s_prime[i] * lower2[i];
          }
        }
        // Accumulation goes through linalg::axpy on the owned sub-range: the
        // weight travels by value, so the compiler keeps it in a register and
        // vectorizes (reading aw.w through the struct reference inside the
        // loop defeats that — the stores to acc could alias it).
        const std::size_t len = row_end - row_begin;
        for (const ActiveWeight& aw : active) {
          if (j_lo > 0) {
            linalg::axpy(
                aw.w, std::span<const double>(u[0]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][0]).subspan(row_begin, len));
          }
          for (std::size_t j = j_lo > 0 ? 1 : 0; j <= n; ++j) {
            linalg::axpy(
                aw.w,
                std::span<const double>(u_next[j]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][j]).subspan(row_begin, len));
          }
        }
      },
      kFusedGrain);

  for (std::size_t j = j_lo; j <= n; ++j) std::swap(u[j], u_next[j]);
}

/// Extracts the accumulated panel back into one vector per moment order
/// (the layout finalize_result and MomentResult use).
std::vector<linalg::Vec> panel_to_vectors(const linalg::Panel& p) {
  std::vector<linalg::Vec> out(p.width());
  for (std::size_t j = 0; j < p.width(); ++j) out[j] = p.col(j);
  return out;
}

/// True when the scaled recursion is numerically subtraction-free (all
/// R' >= 0, i.e. shift-mode scaling; S' is non-negative by construction),
/// which is when the checked build may assert iterate non-negativity.
/// Only evaluated in checked builds.
bool is_subtraction_free(const ScaledModel& scaled) {
  return check::kChecked &&
         std::all_of(scaled.r_prime.begin(), scaled.r_prime.end(),
                     [](double r) { return r >= 0.0; });
}

/// Finishes a MomentResult from the accumulated scaled sums: applies
/// @p prefactor times the n! d^n factor, undoes the drift shift, and
/// weights by pi. The prefactor is 1 for the plain solve and w_max for the
/// terminal-weighted solve (undoing the seed normalization). @p epsilon is
/// the Theorem-4 budget of the solve, used to scale the checked-build
/// moment-consistency tolerance; @p jensen_applies must be false for
/// terminal-weighted output, where V^(j) = E[B^j w(Z(t))] and Cauchy-
/// Schwarz only yields V2 >= V1^2 for weights bounded by 1.
void finalize_result(const SecondOrderMrm& model, const ScaledModel& scaled,
                     double t, double prefactor, double epsilon,
                     bool jensen_applies, std::vector<linalg::Vec> scaled_sums,
                     MomentResult& out) {
  const std::size_t n = scaled_sums.size() - 1;
  const std::size_t num_states = model.num_states();

  // V_check^(j) = prefactor * j! d^j * scaled_sums[j]  (moments of the
  // shifted model).
  double factor = prefactor;  // prefactor * j! d^j
  for (std::size_t j = 0; j <= n; ++j) {
    if (j > 0) factor *= static_cast<double>(j) * scaled.d;
    linalg::scale(factor, scaled_sums[j]);
  }

  // Undo the drift shift per initial state: B(t) = B_check(t) + shift * t.
  if (scaled.shift == 0.0) {
    out.per_state = std::move(scaled_sums);
  } else {
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    const double delta = scaled.shift * t;
    std::vector<double> raw(n + 1);
    for (std::size_t i = 0; i < num_states; ++i) {
      for (std::size_t j = 0; j <= n; ++j) raw[j] = scaled_sums[j][i];
      const auto shifted = shift_raw_moments(raw, delta);
      for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = shifted[j];
    }
  }

  out.weighted.resize(n + 1);
  for (std::size_t j = 0; j <= n; ++j)
    out.weighted[j] = linalg::dot(model.initial(), out.per_state[j]);

  if constexpr (check::kChecked) {
    if (jensen_applies && out.per_state.size() >= 3) {
      // The truncation error is epsilon per moment in scaled units; the
      // prefactor and the shift transform amplify it.
      const double delta = std::abs(scaled.shift) * t;
      const double eff_eps =
          epsilon * std::max(prefactor, 1.0) * (1.0 + delta) * (1.0 + delta);
      check::check_moment_consistency(out.per_state[1], out.per_state[2],
                                      eff_eps, "finalize_result");
    }
  }
}

}  // namespace

void validate_solver_inputs(std::span<const double> times,
                            const MomentSolverOptions& options,
                            const char* caller) {
  const auto fail = [caller](const std::string& what) {
    throw std::invalid_argument(std::string(caller) + ": " + what);
  };
  if (times.empty()) fail("time list must not be empty");
  for (double t : times) {
    if (!(t >= 0.0) || !std::isfinite(t))
      fail("t must be finite and >= 0 (got " + std::to_string(t) + ")");
  }
  if (!(options.epsilon > 0.0) || !std::isfinite(options.epsilon))
    fail("epsilon must be finite and positive (got " +
         std::to_string(options.epsilon) + ")");
  if (!std::isfinite(options.center))
    fail("center must be finite (got " + std::to_string(options.center) +
         ")");
}

RandomizationMomentSolver::RandomizationMomentSolver(SecondOrderMrm model)
    : model_(std::move(model)) {}

std::size_t RandomizationMomentSolver::truncation_point(double qt,
                                                        std::size_t n,
                                                        double d,
                                                        double epsilon) {
  if (!(epsilon > 0.0))
    throw std::invalid_argument("truncation_point: epsilon must be positive");
  if (qt < 0.0) throw std::invalid_argument("truncation_point: negative qt");
  if (qt == 0.0) return 0;
  if (d == 0.0 && n > 0) return 0;  // all higher moments are exactly zero

  // Lemma 2 gives U^(n)(k) <= 2 k!/(k-n)!, so the truncation error is
  //   n! d^n sum_{k>G} Pois(k;qt) U^(n)(k)
  //     <= 2 n! d^n (qt)^n sum_{m >= G+1-n} Pois(m; qt)
  // (substituting m = k - n; the paper prints the tail from G+n+1, which is
  // an index-shift slip in the appendix — see DESIGN.md). Condition:
  // log_tail(G + 1 - n) < log(eps) - log_prefactor; for n == 0 the
  // prefactor is just log 2.
  const double log_prefactor =
      n == 0 ? std::log(2.0) : log_theorem4_prefactor(qt, n, d);
  const double log_target = std::log(epsilon) - log_prefactor;

  // poisson_truncation_point returns the smallest K with tail(K+1) < bound;
  // we need the smallest G with tail(G + 1 - n) < bound, i.e. G = K + n.
  const std::size_t k = prob::poisson_truncation_point(qt, log_target);
  return k + n;
}

MomentResult RandomizationMomentSolver::solve(
    double t, const MomentSolverOptions& options) const {
  const double times[] = {t};
  return solve_multi(times, options).front();
}

MomentResult RandomizationMomentSolver::solve_terminal_weighted(
    double t, std::span<const double> terminal_weights,
    const MomentSolverOptions& options) const {
  const std::size_t num_states = model_.num_states();
  if (terminal_weights.size() != num_states)
    throw std::invalid_argument(
        "solve_terminal_weighted: weight vector size mismatch");
  if (!linalg::is_nonnegative(terminal_weights))
    throw std::invalid_argument(
        "solve_terminal_weighted: weights must be non-negative");
  const double w_max = linalg::max_elem(terminal_weights);
  if (!(w_max > 0.0))
    throw std::invalid_argument(
        "solve_terminal_weighted: weights must not be all zero");
  const double time_list[] = {t};
  validate_solver_inputs(time_list, options, "solve_terminal_weighted");

  const std::int64_t total_t0 = obs::now_ns();
  obs::TraceScope solve_scope("solve_terminal_weighted", "solver");

  const std::size_t n = options.max_moment;
  const ScaledModel scaled =
      scale_model(model_, options.scale_policy, options.center);

  MomentResult out;
  out.time = t;
  out.q = scaled.q;
  out.d = scaled.d;
  out.shift = scaled.shift;
  out.center = options.center;
  out.stats.threads = linalg::num_threads();
  out.stats.panel_width = n + 1;
  out.stats.scale_seconds = obs::seconds_between(total_t0, obs::now_ns());

  // Degenerate chain: Z(t) = Z(0), so the weight just multiplies the
  // closed-form Brownian moments.
  if (scaled.q == 0.0) {
    out.stats.kernel = "degenerate";
    out.stats.panel_width = 0;
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    for (std::size_t i = 0; i < num_states; ++i) {
      const auto m = prob::brownian_raw_moments(
          model_.drifts()[i] - options.center, model_.variances()[i], t, n);
      for (std::size_t j = 0; j <= n; ++j)
        out.per_state[j][i] = m[j] * terminal_weights[i];
    }
    out.weighted.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
      out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
    out.stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    return out;
  }

  const std::int64_t trunc_t0 = obs::now_ns();
  const double qt = scaled.q * t;
  std::size_t g = 0;
  out.stats.truncation_points.assign(n + 1, 0);
  for (std::size_t j = 0; j <= n; ++j) {
    out.stats.truncation_points[j] =
        truncation_point(qt, j, scaled.d, options.epsilon);
    g = std::max(g, out.stats.truncation_points[j]);
  }
  out.truncation_point = g;
  out.stats.truncation_seconds = obs::seconds_between(trunc_t0, obs::now_ns());
  // Theorem 4 applies unchanged: the normalized seed w/w_max is <= h, so
  // Lemma 2's majorant still dominates the iterates.
  out.error_bound = theorem4_error_bound(qt, n, scaled.d, g);
  if constexpr (check::kChecked) {
    check::check_truncation_bound(
        out.error_bound,
        g > 0 ? theorem4_error_bound(qt, n, scaled.d, g - 1) : out.error_bound,
        options.epsilon, g, "solve_terminal_weighted");
  }
  const bool subtraction_free = is_subtraction_free(scaled);

  // Per-time-point Poisson weight table (single time point here): one
  // lgamma instead of one per sweep step.
  const std::int64_t window_t0 = obs::now_ns();
  const prob::PoissonWindow window =
      qt > 0.0 ? prob::poisson_weight_window(qt, g) : prob::PoissonWindow{};
  const double w0 = qt > 0.0 ? window.weight(0) : 1.0;
  out.stats.window_widths.assign(1, window.weights.size());
  out.stats.window_seconds = obs::seconds_between(window_t0, obs::now_ns());
  out.stats.sweep_steps = g;
  // The terminal-weighted seed is not invariant, so all n+1 lanes iterate
  // (j_lo = 0).
  out.stats.sweep_flops = 2 * g * scaled.q_prime.nnz() * (n + 1);

  // Seed U^(0)(0) with the scaled weights; unlike solve(), U^(0) is not
  // invariant (Q' w != w in general) so the j = 0 row is iterated too
  // (j_lo = 0).
  std::vector<linalg::Vec> sums;
  if (options.kernel == SweepKernel::kPanel) {
    out.stats.kernel = "panel";
    linalg::Panel u(num_states, n + 1, 0.0);
    for (std::size_t i = 0; i < num_states; ++i)
      u(i, 0) = terminal_weights[i] / w_max;
    linalg::Panel u_next(num_states, n + 1, 0.0);
    std::vector<linalg::Panel> acc(1, linalg::Panel(num_states, n + 1, 0.0));
    if (w0 != 0.0)
      for (std::size_t i = 0; i < num_states; ++i)
        acc[0](i, 0) += w0 * u(i, 0);

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    std::vector<ActiveWeight> active;
    for (std::size_t k = 1; k <= g; ++k) {
      active.clear();
      if (qt > 0.0) {
        const double w = window.weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{0, w});
      }
      out.stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      fused_panel_step(scaled, n, /*j_lo=*/0, u, u_next, active, acc);
      if constexpr (check::kChecked)
        check::check_sweep_panel(u, k, /*j_lo=*/0, subtraction_free,
                                 /*apply_majorant=*/true,
                                 "solve_terminal_weighted");
      detail::record_sweep_step(k_t0, k, active.size());
    }
    detail::finish_sweep_stats(out.stats, sweep_t0, busy0);
    sums = panel_to_vectors(acc[0]);
  } else {
    out.stats.kernel = "fused_vectors";
    std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
    for (std::size_t i = 0; i < num_states; ++i)
      u[0][i] = terminal_weights[i] / w_max;
    std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));
    std::vector<std::vector<linalg::Vec>> acc(
        1, std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));
    if (w0 != 0.0) linalg::axpy(w0, u[0], acc[0][0]);

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    std::vector<ActiveWeight> active;
    for (std::size_t k = 1; k <= g; ++k) {
      active.clear();
      if (qt > 0.0) {
        const double w = window.weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{0, w});
      }
      out.stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      fused_recursion_step(scaled, n, /*j_lo=*/0, u, u_next, active, acc);
      if constexpr (check::kChecked) {
        for (std::size_t j = 0; j <= n; ++j)
          check::check_sweep_column(u[j], k, j, subtraction_free,
                                    /*apply_majorant=*/true,
                                    "solve_terminal_weighted");
      }
      detail::record_sweep_step(k_t0, k, active.size());
    }
    detail::finish_sweep_stats(out.stats, sweep_t0, busy0);
    sums = std::move(acc[0]);
  }

  // Undo the weight normalization along with the usual j! d^j factor.
  const std::int64_t finalize_t0 = obs::now_ns();
  finalize_result(model_, scaled, t, /*prefactor=*/w_max, options.epsilon,
                  /*jensen_applies=*/false, std::move(sums), out);
  out.stats.finalize_seconds =
      obs::seconds_between(finalize_t0, obs::now_ns());
  out.stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  return out;
}

std::vector<MomentResult> RandomizationMomentSolver::solve_multi(
    std::span<const double> times, const MomentSolverOptions& options) const {
  validate_solver_inputs(times, options, "solve_multi");

  const std::int64_t total_t0 = obs::now_ns();
  obs::TraceScope solve_scope("solve_multi", "solver", "times",
                              static_cast<double>(times.size()));

  const std::size_t n = options.max_moment;
  const std::size_t num_states = model_.num_states();
  const ScaledModel scaled =
      scale_model(model_, options.scale_policy, options.center);

  obs::SolverStats stats;
  stats.threads = linalg::num_threads();
  stats.panel_width = n + 1;
  stats.scale_seconds = obs::seconds_between(total_t0, obs::now_ns());

  std::vector<MomentResult> results(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    results[i].time = times[i];
    results[i].q = scaled.q;
    results[i].d = scaled.d;
    results[i].shift = scaled.shift;
    results[i].center = options.center;
  }

  // Degenerate chain: no transitions ever happen, so conditioned on
  // Z(0) = i the reward is exactly a Brownian motion with (r_i, sigma_i^2)
  // and the moments are the closed-form normal moments.
  if (scaled.q == 0.0) {
    stats.kernel = "degenerate";
    stats.panel_width = 0;
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      MomentResult& out = results[ti];
      out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
      for (std::size_t i = 0; i < num_states; ++i) {
        const auto m = prob::brownian_raw_moments(
            model_.drifts()[i] - options.center, model_.variances()[i],
            times[ti], n);
        for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = m[j];
      }
      out.weighted.resize(n + 1);
      for (std::size_t j = 0; j <= n; ++j)
        out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
    }
    stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    for (MomentResult& r : results) r.stats = stats;
    return results;
  }

  // Theorem-4 truncation per time point: honour epsilon for every moment
  // order 0..n, so take the max of the per-order G values. The per-order
  // maxima over the time points land in stats.truncation_points.
  const std::int64_t trunc_t0 = obs::now_ns();
  std::vector<std::size_t> trunc(times.size(), 0);
  stats.truncation_points.assign(n + 1, 0);
  std::size_t g_max = 0;
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    std::size_t g = 0;
    for (std::size_t j = 0; j <= n; ++j) {
      const std::size_t gj = truncation_point(qt, j, scaled.d, options.epsilon);
      stats.truncation_points[j] = std::max(stats.truncation_points[j], gj);
      g = std::max(g, gj);
    }
    trunc[ti] = g;
    results[ti].truncation_point = g;
    results[ti].error_bound = theorem4_error_bound(qt, n, scaled.d, g);
    if constexpr (check::kChecked) {
      check::check_truncation_bound(
          results[ti].error_bound,
          g > 0 ? theorem4_error_bound(qt, n, scaled.d, g - 1)
                : results[ti].error_bound,
          options.epsilon, g, "solve_multi");
    }
    g_max = std::max(g_max, g);
  }
  stats.truncation_seconds = obs::seconds_between(trunc_t0, obs::now_ns());
  const bool subtraction_free = is_subtraction_free(scaled);

  // Per-time-point Poisson weight tables, one lgamma each (mode-centered
  // multiplicative recurrence with left truncation) — the old code paid one
  // lgamma per (k, time point) pair inside the sweep.
  const std::int64_t window_t0 = obs::now_ns();
  std::vector<prob::PoissonWindow> windows(times.size());
  stats.window_widths.assign(times.size(), 0);
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    if (qt > 0.0) windows[ti] = prob::poisson_weight_window(qt, trunc[ti]);
    stats.window_widths[ti] = windows[ti].weights.size();
    obs::trace_counter("poisson.window_width",
                       static_cast<double>(windows[ti].weights.size()));
  }
  stats.window_seconds = obs::seconds_between(window_t0, obs::now_ns());
  stats.sweep_steps = g_max;
  // Lanes actually iterated per CSR pass: the j = 0 column is invariant
  // (j_lo = 1), so n lanes of dot products per stored entry per step.
  stats.sweep_flops = 2 * g_max * scaled.q_prime.nnz() * n;

  // U^(j)(0): U^(0) = h, higher orders zero. U^(0)(k) stays h for all k
  // because Q' is stochastic, so the j = 0 lane of the recursion is skipped
  // (j_lo = 1).
  if (options.kernel == SweepKernel::kPanel) {
    stats.kernel = "panel";
    linalg::Panel u(num_states, n + 1, 0.0);
    linalg::Panel u_next(num_states, n + 1, 0.0);
    u.fill_col(0, 1.0);
    u_next.fill_col(0, 1.0);  // invariant ones column survives the swaps
    std::vector<linalg::Panel> acc(times.size(),
                                   linalg::Panel(num_states, n + 1, 0.0));

    // k = 0 contribution.
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      const double qt = scaled.q * times[ti];
      const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
      if (w0 != 0.0)
        for (std::size_t i = 0; i < num_states; ++i)
          acc[ti](i, 0) += w0 * u(i, 0);
    }

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    std::vector<ActiveWeight> active;
    active.reserve(times.size());
    for (std::size_t k = 1; k <= g_max; ++k) {
      active.clear();
      for (std::size_t ti = 0; ti < times.size(); ++ti) {
        if (k > trunc[ti]) continue;
        const double w = windows[ti].weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{ti, w});
      }
      stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      fused_panel_step(scaled, n, /*j_lo=*/1, u, u_next, active, acc);
      if constexpr (check::kChecked)
        check::check_sweep_panel(u, k, /*j_lo=*/1, subtraction_free,
                                 /*apply_majorant=*/true, "solve_multi");
      detail::record_sweep_step(k_t0, k, active.size());
    }
    detail::finish_sweep_stats(stats, sweep_t0, busy0);

    const std::int64_t finalize_t0 = obs::now_ns();
    for (std::size_t ti = 0; ti < times.size(); ++ti)
      finalize_result(model_, scaled, times[ti], /*prefactor=*/1.0,
                      options.epsilon, /*jensen_applies=*/true,
                      panel_to_vectors(acc[ti]), results[ti]);
    stats.finalize_seconds =
        obs::seconds_between(finalize_t0, obs::now_ns());
    stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    for (MomentResult& r : results) r.stats = stats;
    return results;
  }
  stats.kernel = "fused_vectors";

  std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
  u[0] = linalg::ones(num_states);
  std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));
  std::vector<std::vector<linalg::Vec>> acc(
      times.size(), std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));

  // k = 0 contribution.
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
    if (w0 != 0.0) linalg::axpy(w0, u[0], acc[ti][0]);
  }

  const std::int64_t sweep_t0 = obs::now_ns();
  const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
  std::vector<ActiveWeight> active;
  active.reserve(times.size());
  for (std::size_t k = 1; k <= g_max; ++k) {
    active.clear();
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      if (k > trunc[ti]) continue;
      const double w = windows[ti].weight(k);
      if (w != 0.0) active.push_back(ActiveWeight{ti, w});
    }
    stats.active_weight_sum += active.size();
    const std::int64_t k_t0 = obs::now_ns();
    fused_recursion_step(scaled, n, /*j_lo=*/1, u, u_next, active, acc);
    if constexpr (check::kChecked) {
      for (std::size_t j = 0; j <= n; ++j)
        check::check_sweep_column(u[j], k, j, subtraction_free,
                                  /*apply_majorant=*/true, "solve_multi");
    }
    detail::record_sweep_step(k_t0, k, active.size());
  }
  detail::finish_sweep_stats(stats, sweep_t0, busy0);

  const std::int64_t finalize_t0 = obs::now_ns();
  for (std::size_t ti = 0; ti < times.size(); ++ti)
    finalize_result(model_, scaled, times[ti], /*prefactor=*/1.0,
                    options.epsilon, /*jensen_applies=*/true,
                    std::move(acc[ti]), results[ti]);
  stats.finalize_seconds = obs::seconds_between(finalize_t0, obs::now_ns());
  stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  for (MomentResult& r : results) r.stats = stats;
  return results;
}

}  // namespace somrm::core
