// somrm/core/impulse_randomization.hpp
//
// Randomization moment solver for second-order MRMs with normal impulse
// rewards — the extension sketched (but not developed) in the paper's
// introduction. Derivation, following the paper's own route:
//
// The transform equation gains a per-transition factor
// phi_ik(v) = e^{-v m_ik + v^2 w_ik / 2}:
//
//   d/dt b*(t,v) = ( -vR + v^2/2 S ) b*(t,v) + Q_phi(v) b*(t,v),
//   (Q_phi)_ik = q_ik phi_ik(v)  (i != k),   (Q_phi)_ii = q_ii.
//
// Differentiating n times at v = 0 (phi^(j)(0) = (-1)^j mu_j where mu_j is
// the j-th raw moment of N(m_ik, w_ik)) extends Theorem 2 with impulse
// convolution terms:
//
//   d/dt V^(n) = Q V^(n) + n R V^(n-1) + 1/2 n(n-1) S V^(n-2)
//                + sum_{j=1..n} C(n,j) A_j V^(n-j),
//   (A_j)_ik = q_ik mu_j(m_ik, w_ik)  (i != k, zero diagonal),
//
// and Theorem 3 becomes, with A~_j = A_j / (q d^j j!),
//
//   U^(n)(k+1) = Q' U^(n)(k) + R' U^(n-1)(k) + 1/2 S' U^(n-2)(k)
//                + sum_{j=1..n} A~_j U^(n-j)(k).
//
// Error bound (generalizing Theorem 4): choose d so that additionally
// d >= max_ik ( |m_ik| + sqrt(w_ik * n) ); then by Minkowski
// E|N(m,w)|^j <= d^j for j <= n, every |A~_j| has row sums <= 1/j!, and the
// scalar majorant recursion has generating function (x + x^2/2 + e^x)^k,
// coefficientwise dominated by e^{2kx}. Hence |U^(n)(k)| <= (2k)^n / n! and
//
//   |error| <= (4 d qt)^n * sum_{k >= G+1-n} Pois(k; qt)   (for G >= 2n),
//
// the same Poisson-tail shape as Theorem 4 with prefactor (4 d qt)^n.

#pragma once

#include <span>
#include <vector>

#include "core/impulse_model.hpp"
#include "core/randomization.hpp"  // MomentSolverOptions, MomentResult

namespace somrm::core {

class ImpulseMomentSolver {
 public:
  explicit ImpulseMomentSolver(SecondOrderImpulseMrm model);

  /// Same contract as RandomizationMomentSolver::solve; the `center` option
  /// offsets the rate reward only (impulses are time-instantaneous and are
  /// never shifted). Negative impulse means are handled directly — the
  /// recursion then contains signed terms, but the majorant error bound
  /// above stays valid.
  MomentResult solve(double t, const MomentSolverOptions& options = {}) const;

  std::vector<MomentResult> solve_multi(
      std::span<const double> times,
      const MomentSolverOptions& options = {}) const;

  /// Generalized Theorem-4 truncation point with the (4 d qt)^n prefactor.
  static std::size_t truncation_point(double qt, std::size_t n, double d,
                                      double epsilon);

  const SecondOrderImpulseMrm& model() const { return model_; }

 private:
  SecondOrderImpulseMrm model_;
};

}  // namespace somrm::core
