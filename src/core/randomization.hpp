// somrm/core/randomization.hpp
//
// The paper's headline algorithm (Theorems 3 and 4): randomization-based
// computation of the raw moments of the accumulated reward B(t) of a
// second-order Markov reward model.
//
//   V^(n)(t) = n! d^n sum_{k=0..inf} Pois(k; qt) U^(n)(k)
//   U^(n)(k+1) = R' U^(n-1)(k) + 1/2 S' U^(n-2)(k) + Q' U^(n)(k)
//
// with the sub-stochastic matrices of core/scaling.hpp and the truncation
// point G(epsilon) of Theorem 4. The recursion multiplies only non-negative
// matrices and vectors — no subtractions, hence no cancellation — and each
// iteration costs (m+2) vector-vector products per moment (m = mean
// non-zeros per row of Q'), exactly the complexity the paper reports.
//
// Implementation notes beyond the paper:
//  * The sweep is a fused, row-parallel panel kernel: the iterates
//    U^(0..n)(k) are stored as one contiguous row-major linalg::Panel
//    (P[state][moment]) and each step computes Q'U + R'U¯¹ + ½S'U¯² for all
//    moment orders AND the Poisson-weighted accumulation for all time
//    points in ONE pass over the CSR structure — every matrix entry is
//    loaded once and multiplied against n+1 contiguous doubles
//    (CsrMatrix::multiply_panel_rows), instead of re-streaming the
//    row_ptr/col_idx/values arrays once per moment order
//    (linalg::parallel_for; thread count via SOMRM_NUM_THREADS or
//    linalg::set_num_threads). Outputs are row-owned and the per-element
//    accumulation order matches the scalar original, so results are
//    bit-identical for every thread count AND to the pre-panel kernel
//    (selectable via MomentSolverOptions::kernel for regression checks).
//  * Poisson weights come from per-time-point mode-centered weight tables
//    (prob::poisson_weight_window, one lgamma per time point) and the
//    Theorem-4 tail test is evaluated in log space, so qt ~ 40,000 (the
//    paper's large example) cannot underflow.
//  * Negative drifts are shifted out and the returned moments are mapped
//    back through the binomial expansion (the shift is pathwise exact).
//  * Several accumulation times can share one sweep of the U-recursion: the
//    iterates U^(n)(k) do not depend on t, only the Poisson weights do. This
//    makes the Figure-8 five-point evaluation one pass instead of five.
//  * U^(0)(k) = h for all k because Q' is stochastic; the j = 0 matvec is
//    skipped and V^(0) is exact by construction.
//  * The truncation point is the max of the Theorem-4 G over all requested
//    moment orders 0..n, so every returned moment honours epsilon.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/scaling.hpp"
#include "linalg/panel.hpp"
#include "linalg/vec.hpp"
#include "obs/telemetry.hpp"

namespace somrm::core {

/// Which sweep kernel carries the U-recursion.
enum class SweepKernel {
  /// Panel (multi-vector SpMM) kernel: the iterates U^(0..n)(k) live in one
  /// contiguous row-major linalg::Panel and each sweep step streams the CSR
  /// structure ONCE, multiplying every matrix entry against n+1 contiguous
  /// doubles. Default — fastest, bit-identical to kFusedVectors.
  kPanel,
  /// The pre-panel fused kernel: one vector per moment order, the CSR
  /// structure re-streamed once per order per step. Kept for regression
  /// benchmarking and for the bit-identity tests that pin the panel kernel
  /// to the historical solver output.
  kFusedVectors,
};

/// CSR bandwidth-reduction reordering applied at sweep setup (see
/// linalg/reorder.hpp). The sweep runs on the permuted state space and the
/// retained accumulator panels are permuted back before anything escapes,
/// so every solver output — order AND bits — is identical under every
/// policy (asserted by ReorderSolveTest); only memory locality changes.
enum class ReorderPolicy {
  kNone,    ///< solve in the model's own state order (default)
  kRcm,     ///< reverse Cuthill–McKee on the symmetrized Q' pattern
  kDegree,  ///< ascending-degree ordering (cheaper, weaker)
};

/// Sparse storage format Q' is streamed from during the sweep (see
/// linalg/sellcs.hpp). SELL-C-σ runs on a σ-sorted row order expressed as
/// an explicit permutation that composes with the reorder permutation, and
/// every kernel walks each row's entries in its CSR order, so — like
/// ReorderPolicy — the choice changes memory traffic, never a single
/// output bit (asserted by test_sellcs.cpp).
enum class StorageFormat {
  kCsr,     ///< plain three-array CSR (default)
  kSellCs,  ///< SELL-C-σ sliced ELLPACK, C = 8, σ = 64
};

struct MomentSolverOptions {
  /// Highest moment order n to compute (all orders 0..n are returned).
  std::size_t max_moment = 3;
  /// Theorem-4 absolute error budget epsilon per state and moment.
  double epsilon = 1e-9;
  /// Scaling of R'/S' — see core/scaling.hpp. kSafe keeps the error bound
  /// valid; kPaper reproduces the constants printed in the paper.
  DriftScalePolicy scale_policy = DriftScalePolicy::kSafe;
  /// Reward offset per unit time: the solver returns moments of
  /// B(t) - center * t (pathwise exact). Centering near E[B(t)]/t yields
  /// near-central high-order moments directly from the subtraction-free
  /// recursion, avoiding the catastrophic cancellation of binomially
  /// converting raw moments — essential when feeding 20+ moments into the
  /// distribution-bound module (Figures 5-7). 0 = plain raw moments.
  double center = 0.0;
  /// Sweep kernel. Both kernels produce bit-identical results at every
  /// thread count (asserted by RandomizationThreadTest); kFusedVectors
  /// exists to measure and pin that equivalence.
  SweepKernel kernel = SweepKernel::kPanel;
  /// Bandwidth-reduction reorder for the sweep (bit-exact no matter what —
  /// see ReorderPolicy). kNone by default: the bundled model builders
  /// already emit near-banded orderings, so the pass pays off mainly for
  /// externally loaded models with scattered state numbering.
  ReorderPolicy reorder = ReorderPolicy::kNone;
  /// Sparse storage the sweep streams Q' from (bit-exact no matter what —
  /// see StorageFormat). kCsr by default; kSellCs trades a one-time
  /// conversion (reported in SolverStats::padding_ratio) for the blocked
  /// layout.
  StorageFormat storage = StorageFormat::kCsr;
};

/// Result of a moment computation at one time point.
struct MomentResult {
  double time = 0.0;
  /// per_state[j][i] = V_i^(j)(t) = E[B(t)^j | Z(0) = i], j = 0..max_moment.
  std::vector<linalg::Vec> per_state;
  /// weighted[j] = pi . V^(j)(t) = E[B(t)^j] under the model's initial
  /// distribution.
  linalg::Vec weighted;
  /// Theorem-4 truncation point actually used.
  std::size_t truncation_point = 0;
  /// Theorem-4 error bound achieved at the truncation point for the highest
  /// moment (0 when it underflows double range).
  double error_bound = 0.0;
  /// Scaling constants for diagnostics (match section 6 / Table 2 notes).
  double q = 0.0;
  double d = 0.0;
  double shift = 0.0;
  /// The centering used: moments are of B(t) - center * time.
  double center = 0.0;
  /// Per-solve telemetry: kernel, Theorem-4 G per moment order, Poisson
  /// window widths, sweep phase timings and throughput. The structural
  /// fields are always filled; timings are zero when the library was built
  /// with -DSOMRM_OBSERVABILITY=OFF. For a multi-time solve every result
  /// carries the shared sweep's stats.
  obs::SolverStats stats;
};

/// Validates solver inputs shared by the randomization solvers, throwing
/// std::invalid_argument with a message naming @p caller and the offending
/// value: the time list must be non-empty, strictly increasing (duplicate
/// or unsorted time points would silently build redundant Poisson weight
/// windows and break the per-time truncation bookkeeping) with every t
/// finite and >= 0, epsilon finite and positive, and center finite. Called
/// up front by solve_multi / solve / solve_terminal_weighted / SolveSession
/// (and the impulse solver) so bad options fail fast instead of surfacing
/// as downstream NaNs.
void validate_solver_inputs(std::span<const double> times,
                            const MomentSolverOptions& options,
                            const char* caller);

/// The retained product of one U-recursion sweep: the Poisson-weighted
/// accumulator panels acc[ti](i, j) = sum_k Pois(k; q t_ti) U^(j)(k)_i in
/// SCALED units (the j! d^j factor, the seed normalization and the drift
/// shift are NOT yet applied), plus every scalar finalize_from_sweep needs
/// to turn them into a MomentResult. The panels are independent of the
/// initial vector pi — pi only enters through the final contraction — so a
/// single retained sweep answers every (pi, moment order <= max_moment)
/// query on its time grid. This is what SolveSession caches.
struct RetainedSweep {
  /// The solve key: time grid and options the sweep was run with.
  std::vector<double> times;
  std::size_t max_moment = 0;
  double epsilon = 0.0;
  double center = 0.0;
  /// Scaling constants of the sweep (see core/scaling.hpp).
  double q = 0.0;
  double d = 0.0;
  double shift = 0.0;
  /// Seed normalization to undo at finalize: w_max for a terminal-weighted
  /// sweep, 1 for the plain sweep (and for the degenerate closed form,
  /// whose panels already hold final values).
  double prefactor = 1.0;
  /// True when the sweep was seeded with terminal weights w (the Jensen
  /// consistency probe of checked builds does not apply then).
  bool terminal_weighted = false;
  /// True for the q == 0 closed form: acc holds the FINAL per-state moments
  /// (Brownian closed form, weights already applied) and finalize only
  /// contracts with pi.
  bool degenerate = false;
  /// Theorem-4 truncation point and achieved error bound per time point
  /// (computed at max_moment; empty for the degenerate closed form).
  std::vector<std::size_t> truncation_points;
  std::vector<double> error_bounds;
  /// One num_states x (max_moment + 1) panel per time point.
  std::vector<linalg::Panel> acc;
  /// Sweep-phase telemetry (scale/truncation/window/sweep timings); finalize
  /// and total timings are filled per query by the callers.
  obs::SolverStats stats;

  std::size_t num_states() const { return acc.empty() ? 0 : acc[0].rows(); }
  /// Approximate heap footprint, used for the SweepCache byte budget.
  std::size_t byte_size() const;
};

/// True when two retained sweeps carry bit-identical solver payloads: time
/// grid, scalars, flags, truncation points, error bounds, and every
/// accumulator panel compare equal BY BIT PATTERN (doubles via memcmp, so
/// NaN payloads compare too) — the snapshot round-trip contract. The
/// sweep-phase SolverStats are excluded: wall-clock telemetry, not solver
/// state, and never consulted by finalize_from_sweep's arithmetic.
bool bit_identical(const RetainedSweep& a, const RetainedSweep& b);

/// Finalizes one (time point, initial vector, moment order) query from a
/// retained sweep: extracts the first @p max_moment + 1 accumulator
/// columns, applies the prefactor * j! d^j factor, undoes the drift shift,
/// and contracts with @p initial. The arithmetic chain is exactly the one
/// solve_multi / solve_terminal_weighted run, so for max_moment ==
/// sweep.max_moment the result is bit-identical to an independent solve;
/// for a lower order it is bit-identical to the independent solve at the
/// SWEEP's max_moment truncated to the first max_moment + 1 entries (the
/// binomial shift transform is lower-triangular, so lower orders do not
/// depend on higher ones). truncation_point / error_bound always report the
/// sweep's max-order values. Throws std::invalid_argument on an
/// out-of-range time index, order > sweep.max_moment, or an initial vector
/// of the wrong size.
MomentResult finalize_from_sweep(const RetainedSweep& sweep,
                                 std::size_t time_index,
                                 std::span<const double> initial,
                                 std::size_t max_moment);

class RandomizationMomentSolver {
 public:
  explicit RandomizationMomentSolver(SecondOrderMrm model);

  /// Moments at a single time point t >= 0.
  MomentResult solve(double t, const MomentSolverOptions& options = {}) const;

  /// Moments at several time points with one shared U-recursion sweep.
  /// Times must be non-negative; results are returned in input order.
  std::vector<MomentResult> solve_multi(
      std::span<const double> times,
      const MomentSolverOptions& options = {}) const;

  /// Terminal-weighted moments: per_state[j][i] = E[ B(t)^j w(Z(t)) |
  /// Z(0)=i ] for an arbitrary non-negative weight vector w over the final
  /// state. Special cases: w = 1 recovers solve(); w = e_k yields the
  /// joint quantity E[B^j ; Z(t)=k], from which conditional moments given
  /// the final state follow by division. Implemented by seeding the
  /// Theorem-3 recursion with U^(0)(0) = w' (w scaled by its max so the
  /// sub-stochastic error bound still applies; the scale is undone on
  /// output). Requires w >= 0 and max w > 0.
  ///
  /// Only centering via options.center is supported here; negative drifts
  /// are handled by the same shift transform as solve().
  MomentResult solve_terminal_weighted(
      double t, std::span<const double> terminal_weights,
      const MomentSolverOptions& options = {}) const;

  /// Runs the U-recursion sweep once over @p times and returns the retained
  /// accumulator panels instead of finalized results — the shareable,
  /// pi-independent part of solve_multi (empty @p terminal_weights) or of
  /// solve_terminal_weighted (non-empty weights, validated like
  /// solve_terminal_weighted). Both solve paths are implemented on top of
  /// this, so finalize_from_sweep(sweep_retained(...)) is bit-identical to
  /// them at every thread count. SolveSession caches the returned value.
  RetainedSweep sweep_retained(
      std::span<const double> times, const MomentSolverOptions& options = {},
      std::span<const double> terminal_weights = {}) const;

  /// Theorem 4: smallest G with
  ///   2 d^n n! (qt)^n sum_{k=G+n+1..inf} Pois(k; qt) < epsilon.
  /// Computed fully in log space. Returns 0 when qt == 0 or d == 0.
  static std::size_t truncation_point(double qt, std::size_t n, double d,
                                      double epsilon);

  const SecondOrderMrm& model() const { return model_; }

 private:
  SecondOrderMrm model_;
};

}  // namespace somrm::core
