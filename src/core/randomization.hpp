// somrm/core/randomization.hpp
//
// The paper's headline algorithm (Theorems 3 and 4): randomization-based
// computation of the raw moments of the accumulated reward B(t) of a
// second-order Markov reward model.
//
//   V^(n)(t) = n! d^n sum_{k=0..inf} Pois(k; qt) U^(n)(k)
//   U^(n)(k+1) = R' U^(n-1)(k) + 1/2 S' U^(n-2)(k) + Q' U^(n)(k)
//
// with the sub-stochastic matrices of core/scaling.hpp and the truncation
// point G(epsilon) of Theorem 4. The recursion multiplies only non-negative
// matrices and vectors — no subtractions, hence no cancellation — and each
// iteration costs (m+2) vector-vector products per moment (m = mean
// non-zeros per row of Q'), exactly the complexity the paper reports.
//
// Implementation notes beyond the paper:
//  * The sweep is a fused, row-parallel panel kernel: the iterates
//    U^(0..n)(k) are stored as one contiguous row-major linalg::Panel
//    (P[state][moment]) and each step computes Q'U + R'U¯¹ + ½S'U¯² for all
//    moment orders AND the Poisson-weighted accumulation for all time
//    points in ONE pass over the CSR structure — every matrix entry is
//    loaded once and multiplied against n+1 contiguous doubles
//    (CsrMatrix::multiply_panel_rows), instead of re-streaming the
//    row_ptr/col_idx/values arrays once per moment order
//    (linalg::parallel_for; thread count via SOMRM_NUM_THREADS or
//    linalg::set_num_threads). Outputs are row-owned and the per-element
//    accumulation order matches the scalar original, so results are
//    bit-identical for every thread count AND to the pre-panel kernel
//    (selectable via MomentSolverOptions::kernel for regression checks).
//  * Poisson weights come from per-time-point mode-centered weight tables
//    (prob::poisson_weight_window, one lgamma per time point) and the
//    Theorem-4 tail test is evaluated in log space, so qt ~ 40,000 (the
//    paper's large example) cannot underflow.
//  * Negative drifts are shifted out and the returned moments are mapped
//    back through the binomial expansion (the shift is pathwise exact).
//  * Several accumulation times can share one sweep of the U-recursion: the
//    iterates U^(n)(k) do not depend on t, only the Poisson weights do. This
//    makes the Figure-8 five-point evaluation one pass instead of five.
//  * U^(0)(k) = h for all k because Q' is stochastic; the j = 0 matvec is
//    skipped and V^(0) is exact by construction.
//  * The truncation point is the max of the Theorem-4 G over all requested
//    moment orders 0..n, so every returned moment honours epsilon.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/model.hpp"
#include "core/scaling.hpp"
#include "linalg/vec.hpp"
#include "obs/telemetry.hpp"

namespace somrm::core {

/// Which sweep kernel carries the U-recursion.
enum class SweepKernel {
  /// Panel (multi-vector SpMM) kernel: the iterates U^(0..n)(k) live in one
  /// contiguous row-major linalg::Panel and each sweep step streams the CSR
  /// structure ONCE, multiplying every matrix entry against n+1 contiguous
  /// doubles. Default — fastest, bit-identical to kFusedVectors.
  kPanel,
  /// The pre-panel fused kernel: one vector per moment order, the CSR
  /// structure re-streamed once per order per step. Kept for regression
  /// benchmarking and for the bit-identity tests that pin the panel kernel
  /// to the historical solver output.
  kFusedVectors,
};

struct MomentSolverOptions {
  /// Highest moment order n to compute (all orders 0..n are returned).
  std::size_t max_moment = 3;
  /// Theorem-4 absolute error budget epsilon per state and moment.
  double epsilon = 1e-9;
  /// Scaling of R'/S' — see core/scaling.hpp. kSafe keeps the error bound
  /// valid; kPaper reproduces the constants printed in the paper.
  DriftScalePolicy scale_policy = DriftScalePolicy::kSafe;
  /// Reward offset per unit time: the solver returns moments of
  /// B(t) - center * t (pathwise exact). Centering near E[B(t)]/t yields
  /// near-central high-order moments directly from the subtraction-free
  /// recursion, avoiding the catastrophic cancellation of binomially
  /// converting raw moments — essential when feeding 20+ moments into the
  /// distribution-bound module (Figures 5-7). 0 = plain raw moments.
  double center = 0.0;
  /// Sweep kernel. Both kernels produce bit-identical results at every
  /// thread count (asserted by RandomizationThreadTest); kFusedVectors
  /// exists to measure and pin that equivalence.
  SweepKernel kernel = SweepKernel::kPanel;
};

/// Result of a moment computation at one time point.
struct MomentResult {
  double time = 0.0;
  /// per_state[j][i] = V_i^(j)(t) = E[B(t)^j | Z(0) = i], j = 0..max_moment.
  std::vector<linalg::Vec> per_state;
  /// weighted[j] = pi . V^(j)(t) = E[B(t)^j] under the model's initial
  /// distribution.
  linalg::Vec weighted;
  /// Theorem-4 truncation point actually used.
  std::size_t truncation_point = 0;
  /// Theorem-4 error bound achieved at the truncation point for the highest
  /// moment (0 when it underflows double range).
  double error_bound = 0.0;
  /// Scaling constants for diagnostics (match section 6 / Table 2 notes).
  double q = 0.0;
  double d = 0.0;
  double shift = 0.0;
  /// The centering used: moments are of B(t) - center * time.
  double center = 0.0;
  /// Per-solve telemetry: kernel, Theorem-4 G per moment order, Poisson
  /// window widths, sweep phase timings and throughput. The structural
  /// fields are always filled; timings are zero when the library was built
  /// with -DSOMRM_OBSERVABILITY=OFF. For a multi-time solve every result
  /// carries the shared sweep's stats.
  obs::SolverStats stats;
};

/// Validates solver inputs shared by the randomization solvers, throwing
/// std::invalid_argument with a message naming @p caller and the offending
/// value: the time list must be non-empty with every t finite and >= 0,
/// epsilon finite and positive, and center finite. Called up front by
/// solve_multi / solve / solve_terminal_weighted (and the impulse solver)
/// so bad options fail fast instead of surfacing as downstream NaNs.
void validate_solver_inputs(std::span<const double> times,
                            const MomentSolverOptions& options,
                            const char* caller);

class RandomizationMomentSolver {
 public:
  explicit RandomizationMomentSolver(SecondOrderMrm model);

  /// Moments at a single time point t >= 0.
  MomentResult solve(double t, const MomentSolverOptions& options = {}) const;

  /// Moments at several time points with one shared U-recursion sweep.
  /// Times must be non-negative; results are returned in input order.
  std::vector<MomentResult> solve_multi(
      std::span<const double> times,
      const MomentSolverOptions& options = {}) const;

  /// Terminal-weighted moments: per_state[j][i] = E[ B(t)^j w(Z(t)) |
  /// Z(0)=i ] for an arbitrary non-negative weight vector w over the final
  /// state. Special cases: w = 1 recovers solve(); w = e_k yields the
  /// joint quantity E[B^j ; Z(t)=k], from which conditional moments given
  /// the final state follow by division. Implemented by seeding the
  /// Theorem-3 recursion with U^(0)(0) = w' (w scaled by its max so the
  /// sub-stochastic error bound still applies; the scale is undone on
  /// output). Requires w >= 0 and max w > 0.
  ///
  /// Only centering via options.center is supported here; negative drifts
  /// are handled by the same shift transform as solve().
  MomentResult solve_terminal_weighted(
      double t, std::span<const double> terminal_weights,
      const MomentSolverOptions& options = {}) const;

  /// Theorem 4: smallest G with
  ///   2 d^n n! (qt)^n sum_{k=G+n+1..inf} Pois(k; qt) < epsilon.
  /// Computed fully in log space. Returns 0 when qt == 0 or d == 0.
  static std::size_t truncation_point(double qt, std::size_t n, double d,
                                      double epsilon);

  const SecondOrderMrm& model() const { return model_; }

 private:
  SecondOrderMrm model_;
};

}  // namespace somrm::core
