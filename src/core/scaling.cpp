#include "core/scaling.hpp"

#include <algorithm>
#include <cmath>

#include "core/invariants.hpp"

namespace somrm::core {

ScaledModel scale_model(const SecondOrderMrm& model, DriftScalePolicy policy,
                        double center) {
  ScaledModel out;
  const std::size_t n = model.num_states();

  out.q = model.generator().uniformization_rate();

  linalg::Vec shifted_drifts = model.drifts();
  for (double& r : shifted_drifts) r -= center;
  if (center == 0.0) {
    // Paper setup: make drifts non-negative, caller maps moments back.
    out.shift = std::min(0.0, linalg::min_elem(shifted_drifts));
    for (double& r : shifted_drifts) r -= out.shift;
  } else {
    out.shift = 0.0;  // centered mode keeps mixed signs
  }
  double r_max = 0.0;
  for (double r : shifted_drifts) r_max = std::max(r_max, std::abs(r));
  double sigma_max = 0.0;
  for (double s2 : model.variances())
    sigma_max = std::max(sigma_max, std::sqrt(s2));

  if (out.q == 0.0) {
    // Single-state-behaviour chain: no uniformization possible (and none
    // needed — the solver computes Brownian moments in closed form).
    out.d = 0.0;
    out.q_prime = linalg::CsrMatrix::identity(n);
    out.r_prime = linalg::zeros(n);
    out.s_prime = linalg::zeros(n);
    check::check_scaled_model(out, /*enforce_reward_bounds=*/true,
                              "scale_model");
    return out;
  }

  switch (policy) {
    case DriftScalePolicy::kSafe:
      out.d = std::max(r_max / out.q, sigma_max / std::sqrt(out.q));
      break;
    case DriftScalePolicy::kPaper:
      out.d = std::max(r_max, sigma_max) / out.q;
      break;
  }

  out.q_prime = model.generator().uniformized_dtmc();

  out.r_prime = linalg::zeros(n);
  out.s_prime = linalg::zeros(n);
  if (out.d > 0.0) {
    const double qd = out.q * out.d;
    const double qd2 = out.q * out.d * out.d;
    for (std::size_t i = 0; i < n; ++i) {
      out.r_prime[i] = shifted_drifts[i] / qd;
      out.s_prime[i] = model.variances()[i] / qd2;
    }
  }
  // Lemma-2 sub-stochasticity holds by construction only for kSafe; kPaper
  // is allowed to break the reward bounds (see DESIGN.md), so only the
  // structural parts (Q' stochastic, finite diagonals) are enforced there.
  check::check_scaled_model(
      out, /*enforce_reward_bounds=*/policy == DriftScalePolicy::kSafe,
      "scale_model");
  return out;
}

bool is_reward_scaling_substochastic(const ScaledModel& scaled, double tol) {
  const auto within_abs = [tol](double v) { return std::abs(v) <= 1.0 + tol; };
  const auto within = [tol](double v) { return v >= -tol && v <= 1.0 + tol; };
  return std::all_of(scaled.r_prime.begin(), scaled.r_prime.end(),
                     within_abs) &&
         std::all_of(scaled.s_prime.begin(), scaled.s_prime.end(), within);
}

}  // namespace somrm::core
