#include "core/moment_utils.hpp"

#include <cmath>
#include <stdexcept>

namespace somrm::core {

double binomial_coefficient(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double acc = 1.0;
  for (std::size_t i = 1; i <= k; ++i)
    acc = acc * static_cast<double>(n - k + i) / static_cast<double>(i);
  return acc;
}

std::vector<double> shift_raw_moments(std::span<const double> raw,
                                      double delta) {
  if (raw.empty())
    throw std::invalid_argument("shift_raw_moments: need at least E[X^0]");
  const std::size_t n = raw.size() - 1;
  std::vector<double> out(n + 1, 0.0);
  for (std::size_t j = 0; j <= n; ++j) {
    double acc = 0.0;
    double delta_pow = 1.0;  // delta^{j-k}, built from k = j downwards
    for (std::size_t k = j + 1; k-- > 0;) {
      acc += binomial_coefficient(j, k) * delta_pow * raw[k];
      delta_pow *= delta;
    }
    out[j] = acc;
  }
  return out;
}

std::vector<double> central_moments_from_raw(std::span<const double> raw) {
  if (raw.size() < 2)
    throw std::invalid_argument(
        "central_moments_from_raw: need at least order 1");
  return shift_raw_moments(raw, -raw[1] / raw[0]);
}

StandardizedMoments standardize_raw_moments(std::span<const double> raw) {
  if (raw.size() < 3)
    throw std::invalid_argument(
        "standardize_raw_moments: need at least order 2");
  StandardizedMoments out;
  out.mean = raw[1] / raw[0];
  const auto central = central_moments_from_raw(raw);
  const double var = central[2];
  if (!(var > 0.0))
    throw std::invalid_argument(
        "standardize_raw_moments: variance must be positive");
  out.stddev = std::sqrt(var);
  out.moments.resize(raw.size());
  double scale = 1.0;
  for (std::size_t k = 0; k < central.size(); ++k) {
    out.moments[k] = central[k] * scale;
    scale /= out.stddev;
  }
  // Fix rounding: by construction E[Z] = 0, E[Z^2] = 1.
  out.moments[1] = 0.0;
  out.moments[2] = 1.0;
  return out;
}

std::vector<double> moments_from_cumulants(std::span<const double> cumulants) {
  const std::size_t n = cumulants.size();
  std::vector<double> m(n + 1, 0.0);
  m[0] = 1.0;
  for (std::size_t k = 1; k <= n; ++k) {
    double acc = 0.0;
    for (std::size_t j = 1; j <= k; ++j)
      acc += binomial_coefficient(k - 1, j - 1) * cumulants[j - 1] *
             m[k - j];
    m[k] = acc;
  }
  return m;
}

std::vector<double> cumulants_from_moments(std::span<const double> raw) {
  if (raw.empty() || std::abs(raw[0] - 1.0) > 1e-9)
    throw std::invalid_argument("cumulants_from_moments: m_0 must be 1");
  const std::size_t n = raw.size() - 1;
  std::vector<double> kappa(n, 0.0);
  for (std::size_t k = 1; k <= n; ++k) {
    double acc = raw[k];
    for (std::size_t j = 1; j < k; ++j)
      acc -= binomial_coefficient(k - 1, j - 1) * kappa[j - 1] * raw[k - j];
    kappa[k - 1] = acc;
  }
  return kappa;
}

double variance_from_raw(std::span<const double> raw) {
  if (raw.size() < 3)
    throw std::invalid_argument("variance_from_raw: need order >= 2");
  const double mean = raw[1] / raw[0];
  return raw[2] / raw[0] - mean * mean;
}

double skewness_from_raw(std::span<const double> raw) {
  if (raw.size() < 4)
    throw std::invalid_argument("skewness_from_raw: need order >= 3");
  const auto central = central_moments_from_raw(raw);
  const double var = central[2];
  if (!(var > 0.0))
    throw std::invalid_argument("skewness_from_raw: zero variance");
  return central[3] / std::pow(var, 1.5);
}

double excess_kurtosis_from_raw(std::span<const double> raw) {
  if (raw.size() < 5)
    throw std::invalid_argument("excess_kurtosis_from_raw: need order >= 4");
  const auto central = central_moments_from_raw(raw);
  const double var = central[2];
  if (!(var > 0.0))
    throw std::invalid_argument("excess_kurtosis_from_raw: zero variance");
  return central[4] / (var * var) - 3.0;
}

}  // namespace somrm::core
