// somrm/core/scaling.hpp
//
// Section-6 model transformation: from (Q, R, S) to the non-negative,
// sub-stochastic triple
//   Q' = Q/q + I,   R' = R/(q d),   S' = S/(q d^2)
// after shifting negative drifts out (R := R - min_i r_i * I). Multiplying
// only sub-stochastic matrices and non-negative vectors keeps the
// randomization recursion subtraction-free and bounded, which is what makes
// Theorem 4's error bound work.
//
// The scale parameter d: the paper prints d = max_i{r_i, sigma_i}/q, but
// that choice does NOT make S' sub-stochastic in general (it fails on both
// of the paper's own examples; see DESIGN.md). The default here is the
// smallest safe value
//   d = max( max_i r_i / q,  max_i sigma_i / sqrt(q) ),
// which guarantees R' h <= h and S' h <= h. The paper's formula is kept
// available behind DriftScalePolicy::kPaper for reproducing the printed
// iteration counts; the expansion itself is exact for any d > 0, only the
// validity of the error bound differs.

#pragma once

#include "core/model.hpp"
#include "linalg/csr.hpp"
#include "linalg/vec.hpp"

namespace somrm::core {

enum class DriftScalePolicy {
  kSafe,   ///< d = max(max r_i / q, max sigma_i / sqrt(q)); bound valid
  kPaper,  ///< d = max_i {r_i, sigma_i} / q as printed in the paper
};

/// The uniformized, shifted, rescaled model used by the randomization
/// solver. All members are immutable after construction.
struct ScaledModel {
  double q = 0.0;      ///< uniformization rate max_i |q_ii|
  double d = 0.0;      ///< reward scale (0 iff all shifted drifts/vars are 0)
  double shift = 0.0;  ///< drift shift applied: r'_i = r_i - shift
  linalg::CsrMatrix q_prime;  ///< Q' = Q/q + I (stochastic)
  linalg::Vec r_prime;        ///< diagonal of R' (non-negative)
  linalg::Vec s_prime;        ///< diagonal of S' (non-negative)
};

/// Builds the scaled model.
///
/// @param center reward offset per unit time: the scaled model describes
///   B(t) - center * t (exact pathwise, since drifts enter additively).
///   center == 0 reproduces the paper's setup: negative drifts are shifted
///   to zero (shift = min(0, min r_i)) and mapped back by the caller.
///   center != 0 disables the shift: r_prime keeps mixed signs and the
///   Lemma-2 bound uses |r_i - center| (valid because the recursion's
///   non-negative majorant dominates elementwise absolute values). Centering
///   near E[B(t)]/t lets callers obtain high-order near-central moments
///   without catastrophic binomial cancellation.
///
/// Degenerate cases:
///  * q == 0 (no transitions): q_prime is the identity; q stays 0 and the
///    moment solver short-circuits to closed-form Brownian moments.
///  * all shifted drifts and variances zero: d == 0, r_prime/s_prime zero.
ScaledModel scale_model(const SecondOrderMrm& model,
                        DriftScalePolicy policy = DriftScalePolicy::kSafe,
                        double center = 0.0);

/// True when |r_prime| and s_prime entries are all <= 1 + tol (the
/// property Lemma 2's majorant argument needs). Always true for kSafe
/// scaling; may be false for kPaper.
bool is_reward_scaling_substochastic(const ScaledModel& scaled,
                                     double tol = 1e-12);

}  // namespace somrm::core
