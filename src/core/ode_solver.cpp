#include "core/ode_solver.hpp"

#include <cmath>
#include <stdexcept>

#include "core/moment_utils.hpp"
#include "linalg/bicgstab.hpp"
#include "prob/normal.hpp"

namespace somrm::core {

namespace {

using linalg::Vec;

/// Moment-vector stack V^(0..n) with the Theorem-2 derivative.
class MomentOde {
 public:
  MomentOde(const SecondOrderMrm& model, std::size_t max_moment,
            const SecondOrderImpulseMrm* impulses = nullptr)
      : model_(model),
        n_(max_moment),
        num_states_(model.num_states()),
        scratch_(model.num_states(), 0.0) {
    if (impulses == nullptr) return;
    // Unscaled impulse-moment matrices (A_j)_ik = q_ik * mu_j(m_ik, w_ik).
    const auto& qm = model.generator().matrix();
    const auto& row_ptr = qm.row_ptr();
    const auto& col_idx = qm.col_idx();
    const auto& values = qm.values();
    std::vector<linalg::CsrBuilder> builders;
    for (std::size_t j = 0; j < n_; ++j)
      builders.emplace_back(num_states_, num_states_);
    for (std::size_t r = 0; r < num_states_; ++r) {
      for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
        const std::size_t c = col_idx[k];
        if (c == r || values[k] <= 0.0) continue;
        const double m = impulses->impulse_mean().at(r, c);
        const double w = impulses->impulse_var().at(r, c);
        if (m == 0.0 && w == 0.0) continue;
        const auto mu = somrm::prob::normal_raw_moments(m, w, n_);
        for (std::size_t j = 1; j <= n_; ++j)
          if (mu[j] != 0.0) builders[j - 1].add(r, c, values[k] * mu[j]);
      }
    }
    impulse_mats_.reserve(n_);
    for (auto& b : builders) impulse_mats_.push_back(std::move(b).build());
  }

  std::vector<Vec> initial_state() const {
    std::vector<Vec> v(n_ + 1, linalg::zeros(num_states_));
    v[0] = linalg::ones(num_states_);
    return v;
  }

  /// out[j] = Q v[j] + j R v[j-1] + 1/2 j (j-1) S v[j-2].
  void derivative(const std::vector<Vec>& v, std::vector<Vec>& out) {
    const auto& q = model_.generator().matrix();
    const auto& r = model_.drifts();
    const auto& s = model_.variances();
    for (std::size_t j = 0; j <= n_; ++j) {
      q.multiply(v[j], out[j]);
      if (j >= 1) {
        const double jj = static_cast<double>(j);
        for (std::size_t i = 0; i < num_states_; ++i)
          out[j][i] += jj * r[i] * v[j - 1][i];
      }
      if (j >= 2) {
        const double c = 0.5 * static_cast<double>(j) *
                         static_cast<double>(j - 1);
        for (std::size_t i = 0; i < num_states_; ++i)
          out[j][i] += c * s[i] * v[j - 2][i];
      }
      // Impulse convolution terms sum_{l=1..j} C(j,l) A_l v[j-l].
      for (std::size_t l = 1; l <= j && l <= impulse_mats_.size(); ++l) {
        if (impulse_mats_[l - 1].nnz() == 0) continue;
        impulse_mats_[l - 1].multiply_add(binomial_coefficient(j, l),
                                          v[j - l], out[j]);
      }
    }
  }

  /// Forcing term only (without Q v[j]): j R v[j-1] + 1/2 j(j-1) S v[j-2].
  void forcing(const std::vector<Vec>& v, std::size_t j, Vec& out) const {
    std::fill(out.begin(), out.end(), 0.0);
    const auto& r = model_.drifts();
    const auto& s = model_.variances();
    if (j >= 1) {
      const double jj = static_cast<double>(j);
      for (std::size_t i = 0; i < num_states_; ++i)
        out[i] += jj * r[i] * v[j - 1][i];
    }
    if (j >= 2) {
      const double c = 0.5 * static_cast<double>(j) * static_cast<double>(j - 1);
      for (std::size_t i = 0; i < num_states_; ++i)
        out[i] += c * s[i] * v[j - 2][i];
    }
  }

  std::size_t order() const { return n_; }
  std::size_t num_states() const { return num_states_; }
  const SecondOrderMrm& model() const { return model_; }

 private:
  const SecondOrderMrm& model_;
  std::size_t n_;
  std::size_t num_states_;
  Vec scratch_;
  std::vector<linalg::CsrMatrix> impulse_mats_;
};

std::vector<Vec> integrate_rk4(MomentOde& ode, double t, std::size_t steps) {
  const double h = t / static_cast<double>(steps);
  const std::size_t n = ode.order();
  const std::size_t ns = ode.num_states();

  std::vector<Vec> v = ode.initial_state();
  std::vector<Vec> k1(n + 1, linalg::zeros(ns)), k2 = k1, k3 = k1, k4 = k1;
  std::vector<Vec> tmp = k1;

  for (std::size_t step = 0; step < steps; ++step) {
    ode.derivative(v, k1);
    for (std::size_t j = 0; j <= n; ++j)
      for (std::size_t i = 0; i < ns; ++i)
        tmp[j][i] = v[j][i] + 0.5 * h * k1[j][i];
    ode.derivative(tmp, k2);
    for (std::size_t j = 0; j <= n; ++j)
      for (std::size_t i = 0; i < ns; ++i)
        tmp[j][i] = v[j][i] + 0.5 * h * k2[j][i];
    ode.derivative(tmp, k3);
    for (std::size_t j = 0; j <= n; ++j)
      for (std::size_t i = 0; i < ns; ++i)
        tmp[j][i] = v[j][i] + h * k3[j][i];
    ode.derivative(tmp, k4);
    for (std::size_t j = 0; j <= n; ++j)
      for (std::size_t i = 0; i < ns; ++i)
        v[j][i] += h / 6.0 *
                   (k1[j][i] + 2.0 * k2[j][i] + 2.0 * k3[j][i] + k4[j][i]);
  }
  return v;
}

std::vector<Vec> integrate_trapezoid(MomentOde& ode, double t,
                                     std::size_t steps, double lin_tol) {
  const double h = t / static_cast<double>(steps);
  const std::size_t n = ode.order();
  const std::size_t ns = ode.num_states();
  const auto& q = ode.model().generator().matrix();

  // Apply (I - h/2 Q) and its diagonal for preconditioning.
  const linalg::LinearOperator lhs = [&q, h](std::span<const double> x,
                                             std::span<double> y) {
    q.multiply(x, y);
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] - 0.5 * h * y[i];
  };
  Vec lhs_diag = q.diagonal_vector();
  for (double& d : lhs_diag) d = 1.0 - 0.5 * h * d;

  linalg::BicgstabOptions bopts;
  bopts.rel_tolerance = lin_tol;
  bopts.max_iterations = 10000;

  std::vector<Vec> v = ode.initial_state();
  std::vector<Vec> v_new = v;
  Vec qv(ns, 0.0), f_old(ns, 0.0), f_new(ns, 0.0), rhs(ns, 0.0);

  for (std::size_t step = 0; step < steps; ++step) {
    // Ascending j: the implicit forcing uses already-updated lower moments.
    for (std::size_t j = 0; j <= n; ++j) {
      q.multiply(v[j], qv);
      ode.forcing(v, j, f_old);
      ode.forcing(v_new, j, f_new);
      for (std::size_t i = 0; i < ns; ++i)
        rhs[i] = v[j][i] + 0.5 * h * (qv[i] + f_old[i] + f_new[i]);
      auto res = linalg::bicgstab(lhs, rhs, v[j], lhs_diag, bopts);
      if (!res.converged)
        throw std::runtime_error(
            "solve_moments_ode: trapezoid linear solve did not converge");
      v_new[j] = std::move(res.x);
    }
    v = v_new;
  }
  return v;
}

}  // namespace

MomentResult solve_moments_ode(const SecondOrderMrm& model, double t,
                               OdeMethod method,
                               const OdeSolverOptions& options) {
  if (!(t >= 0.0))
    throw std::invalid_argument("solve_moments_ode: t must be >= 0");
  if (options.num_steps == 0)
    throw std::invalid_argument("solve_moments_ode: num_steps must be > 0");

  MomentOde ode(model, options.max_moment);

  std::size_t steps = options.num_steps;
  if (method == OdeMethod::kRk4 && options.enforce_stability && t > 0.0) {
    const double q = model.generator().uniformization_rate();
    const auto stable =
        static_cast<std::size_t>(std::ceil(3.0 * q * t)) + 1;
    steps = std::max(steps, stable);
  }

  MomentResult out;
  out.time = t;
  out.q = model.generator().uniformization_rate();
  out.truncation_point = steps;

  if (t == 0.0) {
    out.per_state = ode.initial_state();
  } else {
    switch (method) {
      case OdeMethod::kRk4:
        out.per_state = integrate_rk4(ode, t, steps);
        break;
      case OdeMethod::kTrapezoid:
        out.per_state = integrate_trapezoid(ode, t, steps,
                                            options.linear_tolerance);
        break;
    }
  }

  out.weighted.resize(options.max_moment + 1);
  for (std::size_t j = 0; j <= options.max_moment; ++j)
    out.weighted[j] = linalg::dot(model.initial(), out.per_state[j]);
  return out;
}

MomentResult solve_moments_ode(const SecondOrderImpulseMrm& model, double t,
                               const OdeSolverOptions& options) {
  if (!(t >= 0.0))
    throw std::invalid_argument("solve_moments_ode: t must be >= 0");
  if (options.num_steps == 0)
    throw std::invalid_argument("solve_moments_ode: num_steps must be > 0");

  MomentOde ode(model.base(), options.max_moment, &model);

  std::size_t steps = options.num_steps;
  if (options.enforce_stability && t > 0.0) {
    const double q = model.base().generator().uniformization_rate();
    steps = std::max(steps,
                     static_cast<std::size_t>(std::ceil(3.0 * q * t)) + 1);
  }

  MomentResult out;
  out.time = t;
  out.q = model.base().generator().uniformization_rate();
  out.truncation_point = steps;
  out.per_state =
      t == 0.0 ? ode.initial_state() : integrate_rk4(ode, t, steps);
  out.weighted.resize(options.max_moment + 1);
  for (std::size_t j = 0; j <= options.max_moment; ++j)
    out.weighted[j] = linalg::dot(model.base().initial(), out.per_state[j]);
  return out;
}

}  // namespace somrm::core
