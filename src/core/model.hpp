// somrm/core/model.hpp
//
// The second-order Markov reward model (Definition 2 of the paper): a finite
// CTMC Z(t) with generator Q and initial distribution pi, plus per-state
// Brownian reward parameters — drift r_i and variance sigma_i^2. While Z(t)
// stays in state i the accumulated reward B(t) evolves as a Brownian motion
// with drift r_i and variance sigma_i^2; transitions never reset the reward
// (preemptive resume), matching the paper's setting.
//
// Setting every sigma_i^2 = 0 recovers the classical first-order MRM.

#pragma once

#include <cstddef>
#include <optional>
#include <span>

#include "ctmc/generator.hpp"
#include "linalg/vec.hpp"

namespace somrm::core {

class SecondOrderMrm {
 public:
  /// Validates and assembles a model.
  ///
  /// @param generator  structure-state CTMC
  /// @param drifts     r_i, any real values (length = number of states)
  /// @param variances  sigma_i^2 >= 0 (length = number of states)
  /// @param initial    probability vector pi (length = number of states)
  ///
  /// Throws std::invalid_argument on any size/sign/normalization violation.
  SecondOrderMrm(ctmc::Generator generator, linalg::Vec drifts,
                 linalg::Vec variances, linalg::Vec initial);

  std::size_t num_states() const { return generator_.num_states(); }
  const ctmc::Generator& generator() const { return generator_; }
  const linalg::Vec& drifts() const { return drifts_; }
  const linalg::Vec& variances() const { return variances_; }
  const linalg::Vec& initial() const { return initial_; }

  /// True when every variance is zero, i.e. the model is an ordinary
  /// (first-order) Markov reward model.
  bool is_first_order() const;

  /// min_i r_i; negative drifts trigger the section-6 shift transform in
  /// the solvers.
  double min_drift() const;

  /// max_i r_i.
  double max_drift() const;

  /// max_i sigma_i^2.
  double max_variance() const;

  /// Steady-state reward rate sum_i pi_ss(i) r_i given a stationary vector
  /// (e.g. from ctmc::stationary_distribution_gth). The Figure-3 reference
  /// line is t * this value.
  double stationary_reward_rate(std::span<const double> stationary) const;

  /// Returns a copy of this model with every drift shifted by -delta
  /// (r_i := r_i - delta). Pathwise B(t) = B_shifted(t) + delta * t, which is
  /// how solvers handle negative drifts.
  SecondOrderMrm with_shifted_drifts(double delta) const;

  /// Returns a copy with a different initial distribution.
  SecondOrderMrm with_initial(linalg::Vec initial) const;

 private:
  ctmc::Generator generator_;
  linalg::Vec drifts_;
  linalg::Vec variances_;
  linalg::Vec initial_;
};

}  // namespace somrm::core
