#include "core/impulse_randomization.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/invariants.hpp"
#include "core/moment_utils.hpp"
#include "core/scaling.hpp"
#include "core/solver_telemetry.hpp"
#include "linalg/panel.hpp"
#include "linalg/parallel.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sellcs.hpp"
#include "linalg/simd.hpp"
#include "obs/trace.hpp"
#include "prob/normal.hpp"
#include "prob/poisson.hpp"

namespace somrm::core {

namespace {

/// Builds the scaled impulse-moment matrices A~_j = A_j / (q d^j j!) for
/// j = 1..n, where (A_j)_ik = q_ik * mu_j(m_ik, w_ik) on off-diagonal
/// transitions with a non-zero impulse.
std::vector<linalg::CsrMatrix> build_impulse_matrices(
    const SecondOrderImpulseMrm& model, std::size_t n, double q, double d) {
  const std::size_t ns = model.num_states();
  const auto& qm = model.base().generator().matrix();
  const auto& row_ptr = qm.row_ptr();
  const auto& col_idx = qm.col_idx();
  const auto& values = qm.values();

  std::vector<linalg::CsrBuilder> builders;
  builders.reserve(n);
  for (std::size_t j = 0; j < n; ++j) builders.emplace_back(ns, ns);

  double inv_dj_fact = 1.0;  // 1 / (d^j j!) built incrementally
  std::vector<double> scale(n + 1, 0.0);
  for (std::size_t j = 1; j <= n; ++j) {
    inv_dj_fact /= d * static_cast<double>(j);
    scale[j] = inv_dj_fact / q;
  }

  for (std::size_t r = 0; r < ns; ++r) {
    for (std::size_t k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      const std::size_t c = col_idx[k];
      if (c == r || values[k] <= 0.0) continue;
      const double m = model.impulse_mean().at(r, c);
      const double w = model.impulse_var().at(r, c);
      if (m == 0.0 && w == 0.0) continue;
      const auto mu = prob::normal_raw_moments(m, w, n);
      for (std::size_t j = 1; j <= n; ++j) {
        const double v = values[k] * mu[j] * scale[j];
        if (v != 0.0) builders[j - 1].add(r, c, v);
      }
    }
  }

  std::vector<linalg::CsrMatrix> out;
  out.reserve(n);
  for (auto& b : builders) out.push_back(std::move(b).build());
  return out;
}

/// A time point whose Poisson weight at the current step k is non-zero.
struct ActiveWeight {
  std::size_t ti;
  double w;
};

/// One impulse panel sweep step, templated over the storage Q' streams from
/// (CsrMatrix or SellCsMatrix — both expose the same multiply_panel_rows
/// row-range contract). The impulse matrices stay CSR: their convolution
/// bands shrink with l, so padding them buys no streaming regularity. Per
/// element the arithmetic order is independent of Matrix, so CSR and
/// SELL-C-σ runs are bit-identical at every thread count.
template <class Matrix>
void impulse_panel_step(const Matrix& qmat, const ScaledModel& scaled,
                        const std::vector<linalg::CsrMatrix>& impulse_mats,
                        std::size_t n, linalg::Panel& u, linalg::Panel& u_next,
                        std::span<const ActiveWeight> active,
                        std::vector<linalg::Panel>& acc) {
  const std::size_t num_states = qmat.rows();
  const std::size_t width = n + 1;
  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        if (n >= 1)
          qmat.multiply_panel_rows(u, u_next, row_begin, row_end,
                                   /*src_col=*/1,
                                   /*dst_col=*/1, n,
                                   /*accumulate=*/false);
        for (std::size_t i = row_begin; i < row_end; ++i) {
          const double* ui = u.row_data(i);
          double* oi = u_next.row_data(i);
          const double r = scaled.r_prime[i];
          for (std::size_t j = 1; j <= n; ++j) oi[j] += r * ui[j - 1];
          const double s = 0.5 * scaled.s_prime[i];
          for (std::size_t j = 2; j <= n; ++j) oi[j] += s * ui[j - 2];
        }
        // Impulse convolution in ascending l: element (i, j) receives
        // its A~_1 .. A~_j contributions in exactly the legacy order,
        // each computed in its own accumulator before the add.
        for (std::size_t l = 1; l <= n; ++l) {
          const linalg::CsrMatrix& a = impulse_mats[l - 1];
          if (a.nnz() == 0) continue;
          a.multiply_panel_rows(u, u_next, row_begin, row_end,
                                /*src_col=*/0, /*dst_col=*/l,
                                width - l, /*accumulate=*/true);
        }
        // Poisson-weighted accumulation: one contiguous slab axpy per
        // active time point (the j = 0 lane reads the invariant ones
        // column, the value the legacy kernel takes from u[0]).
        const std::size_t lo = row_begin * width;
        const std::size_t len = (row_end - row_begin) * width;
        for (const ActiveWeight& aw : active)
          linalg::axpy(aw.w, u_next.span().subspan(lo, len),
                       acc[aw.ti].span().subspan(lo, len));
      },
      /*grain=*/1024);
}

/// One impulse fused-vectors sweep step, templated over the Q' storage via
/// its visit_row hook (same seam as randomization.cpp's
/// fused_recursion_step). Arithmetic order per element is storage-invariant.
template <class Matrix>
void impulse_fused_step(const Matrix& qmat, const ScaledModel& scaled,
                        const std::vector<linalg::CsrMatrix>& impulse_mats,
                        std::size_t n, std::vector<linalg::Vec>& u,
                        std::vector<linalg::Vec>& u_next,
                        std::span<const ActiveWeight> active,
                        std::vector<std::vector<linalg::Vec>>& acc) {
  const std::size_t num_states = qmat.rows();
  linalg::parallel_for(
      num_states,
      [&](std::size_t row_begin, std::size_t row_end) {
        // Stage-wise streaming loops per range (see randomization.cpp's
        // fused_recursion_step): vectorizable, and per element the
        // arithmetic order matches the scalar original exactly.
        for (std::size_t j = n; j >= 1; --j) {
          const linalg::Vec& uj = u[j];
          linalg::Vec& out = u_next[j];
          for (std::size_t i = row_begin; i < row_end; ++i) {
            double s = 0.0;
            qmat.visit_row(
                i, [&](std::size_t col, double v) { s += v * uj[col]; });
            out[i] = s;
          }
          const linalg::Vec& lower1 = u[j - 1];
          for (std::size_t i = row_begin; i < row_end; ++i)
            out[i] += scaled.r_prime[i] * lower1[i];
          if (j >= 2) {
            const linalg::Vec& lower2 = u[j - 2];
            for (std::size_t i = row_begin; i < row_end; ++i)
              out[i] += 0.5 * scaled.s_prime[i] * lower2[i];
          }
          // Impulse convolution: + sum_{l=1..j} A~_l U^(j-l).
          for (std::size_t l = 1; l <= j; ++l) {
            const linalg::CsrMatrix& a = impulse_mats[l - 1];
            if (a.nnz() == 0) continue;
            const linalg::Vec& lower = u[j - l];
            for (std::size_t i = row_begin; i < row_end; ++i) {
              double imp = 0.0;
              a.visit_row(i, [&](std::size_t col, double v) {
                imp += v * lower[col];
              });
              out[i] += imp;
            }
          }
        }
        // axpy keeps the weight in a register (by-value parameter); an
        // in-loop aw.w read can alias the acc stores and kills
        // vectorization.
        const std::size_t len = row_end - row_begin;
        for (const ActiveWeight& aw : active) {
          linalg::axpy(
              aw.w, std::span<const double>(u[0]).subspan(row_begin, len),
              std::span<double>(acc[aw.ti][0]).subspan(row_begin, len));
          for (std::size_t j = 1; j <= n; ++j) {
            linalg::axpy(
                aw.w,
                std::span<const double>(u_next[j]).subspan(row_begin, len),
                std::span<double>(acc[aw.ti][j]).subspan(row_begin, len));
          }
        }
      },
      /*grain=*/1024);
}

}  // namespace

ImpulseMomentSolver::ImpulseMomentSolver(SecondOrderImpulseMrm model)
    : model_(std::move(model)) {}

std::size_t ImpulseMomentSolver::truncation_point(double qt, std::size_t n,
                                                  double d, double epsilon) {
  if (!(epsilon > 0.0))
    throw std::invalid_argument("truncation_point: epsilon must be positive");
  if (qt < 0.0) throw std::invalid_argument("truncation_point: negative qt");
  if (qt == 0.0) return 0;
  if (d == 0.0 && n > 0) return 0;

  const double nn = static_cast<double>(n);
  const double log_prefactor =
      n == 0 ? std::log(2.0)
             : nn * (std::log(4.0) + std::log(d) + std::log(qt));
  const double log_target = std::log(epsilon) - log_prefactor;
  const std::size_t k = prob::poisson_truncation_point(qt, log_target);
  // Bound needs G >= 2n (the k^n <= 2^n k!/(k-n)! step).
  return std::max(k + n, 2 * n);
}

MomentResult ImpulseMomentSolver::solve(
    double t, const MomentSolverOptions& options) const {
  const double times[] = {t};
  return solve_multi(times, options).front();
}

std::vector<MomentResult> ImpulseMomentSolver::solve_multi(
    std::span<const double> times, const MomentSolverOptions& options) const {
  validate_solver_inputs(times, options, "ImpulseMomentSolver::solve_multi");

  const std::int64_t total_t0 = obs::now_ns();
  obs::TraceScope solve_scope("impulse.solve_multi", "solver", "times",
                              static_cast<double>(times.size()));

  const std::size_t n = options.max_moment;
  const std::size_t num_states = model_.num_states();
  const SecondOrderMrm& base = model_.base();

  // Base scaling (drift shift / centering exactly as the plain solver),
  // then enlarge d for the impulse bound: d >= max |m| + sqrt(max w * n).
  ScaledModel scaled =
      scale_model(base, options.scale_policy, options.center);
  if (scaled.q > 0.0) {
    const double d_impulse =
        model_.max_abs_impulse_mean() +
        std::sqrt(model_.max_impulse_variance() * static_cast<double>(
                                                      std::max<std::size_t>(
                                                          n, 1)));
    if (d_impulse > scaled.d) {
      // Rebuild R'/S' with the larger d (scale_model exposes no d override;
      // rescale in place: R' ~ 1/d, S' ~ 1/d^2).
      const double ratio = scaled.d > 0.0 ? scaled.d / d_impulse : 0.0;
      if (scaled.d > 0.0) {
        for (double& v : scaled.r_prime) v *= ratio;
        for (double& v : scaled.s_prime) v *= ratio * ratio;
      } else {
        // Base rewards were all zero; populate R'/S' directly.
        const double qd = scaled.q * d_impulse;
        const double qd2 = qd * d_impulse;
        for (std::size_t i = 0; i < num_states; ++i) {
          scaled.r_prime[i] =
              (base.drifts()[i] - options.center - scaled.shift) / qd;
          scaled.s_prime[i] = base.variances()[i] / qd2;
        }
      }
      scaled.d = d_impulse;
    }
  }
  // Re-probe after the impulse d-enlargement: growing d only shrinks the
  // R'/S' diagonals, so the Lemma-2 bounds must still hold under kSafe.
  check::check_scaled_model(
      scaled,
      /*enforce_reward_bounds=*/options.scale_policy == DriftScalePolicy::kSafe,
      "ImpulseMomentSolver::solve_multi");

  obs::SolverStats stats;
  stats.threads = linalg::num_threads();
  stats.simd = linalg::simd::level_name(linalg::simd::active_level());
  stats.reorder = "none";  // the impulse solver has no reorder stage
  stats.storage =
      options.storage == StorageFormat::kSellCs ? "sellcs" : "csr";
  stats.panel_width = n + 1;
  stats.scale_seconds = obs::seconds_between(total_t0, obs::now_ns());

  std::vector<MomentResult> results(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    results[i].time = times[i];
    results[i].q = scaled.q;
    results[i].d = scaled.d;
    results[i].shift = scaled.shift;
    results[i].center = options.center;
  }

  // Degenerate chain: no transitions, hence no impulses either.
  if (scaled.q == 0.0) {
    stats.kernel = "degenerate";
    stats.storage = "none";  // the closed form builds no sparse matrix
    stats.panel_width = 0;
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      MomentResult& out = results[ti];
      out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
      for (std::size_t i = 0; i < num_states; ++i) {
        const auto m = prob::brownian_raw_moments(
            base.drifts()[i] - options.center, base.variances()[i],
            times[ti], n);
        for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = m[j];
      }
      out.weighted.resize(n + 1);
      for (std::size_t j = 0; j <= n; ++j)
        out.weighted[j] = linalg::dot(base.initial(), out.per_state[j]);
    }
    stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    for (MomentResult& r : results) r.stats = stats;
    return results;
  }

  // No reorder stage here, but the bandwidth fields must still reflect the
  // matrix that actually streamed — equal values, not stale zeros.
  stats.bandwidth_before = linalg::bandwidth(scaled.q_prime);
  stats.bandwidth_after = stats.bandwidth_before;

  std::vector<linalg::CsrMatrix> impulse_mats =
      n > 0 ? build_impulse_matrices(model_, n, scaled.q, scaled.d)
            : std::vector<linalg::CsrMatrix>{};

  // Optional SELL-C-σ storage for Q' (linalg/sellcs.hpp): σ-sort rows by
  // descending length and apply the SAME permutation to every sweep operand
  // — including each impulse matrix, whose row partition must match Q's —
  // then un-permute the accumulated panels before finalize. Entry order
  // within each row is preserved throughout (permute_symmetric remaps
  // without re-sorting), so outputs are bit-identical to CSR storage.
  std::vector<std::size_t> perm;  // perm[new] = old; empty = no permutation
  linalg::SellCsMatrix sell;
  const bool use_sell = options.storage == StorageFormat::kSellCs;
  if (use_sell) {
    const std::int64_t sell_t0 = obs::now_ns();
    std::vector<std::size_t> sigma_perm =
        linalg::SellCsMatrix::sigma_sort_permutation(
            scaled.q_prime, linalg::SellCsMatrix::kDefaultSigma);
    if (!linalg::is_identity_permutation(sigma_perm)) {
      scaled.q_prime = linalg::permute_symmetric(scaled.q_prime, sigma_perm);
      scaled.r_prime = linalg::permute_vector(scaled.r_prime, sigma_perm);
      scaled.s_prime = linalg::permute_vector(scaled.s_prime, sigma_perm);
      for (linalg::CsrMatrix& a : impulse_mats)
        a = linalg::permute_symmetric(a, sigma_perm);
      perm = std::move(sigma_perm);
    }
    sell = linalg::SellCsMatrix::from_csr(scaled.q_prime,
                                          linalg::SellCsMatrix::kDefaultChunk);
    stats.padding_ratio = sell.padding_ratio();
    stats.chunk_occupancy = sell.chunk_occupancy();
    stats.scale_seconds += obs::seconds_between(sell_t0, obs::now_ns());
  }
  // Iterate non-negativity only holds when every operand of the recursion
  // is non-negative: shift-mode R' plus non-negative impulse-moment
  // matrices (odd normal moments with negative mean break the latter).
  const bool subtraction_free =
      check::kChecked &&
      std::all_of(scaled.r_prime.begin(), scaled.r_prime.end(),
                  [](double r) { return r >= 0.0; }) &&
      std::all_of(impulse_mats.begin(), impulse_mats.end(),
                  [](const linalg::CsrMatrix& a) {
                    return a.is_nonnegative(0.0);
                  });

  const std::int64_t trunc_t0 = obs::now_ns();
  std::vector<std::size_t> trunc(times.size(), 0);
  std::size_t g_max = 0;
  stats.truncation_points.assign(n + 1, 0);
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    std::size_t g = 0;
    for (std::size_t j = 0; j <= n; ++j) {
      const std::size_t gj = truncation_point(qt, j, scaled.d, options.epsilon);
      stats.truncation_points[j] = std::max(stats.truncation_points[j], gj);
      g = std::max(g, gj);
    }
    trunc[ti] = g;
    results[ti].truncation_point = g;
    if constexpr (check::kChecked) {
      // Theorem-4 analogue with the impulse prefactor (4 d qt)^n: the
      // realized tail bound must be monotone in G and below epsilon at the
      // chosen G.
      const auto impulse_bound = [&](std::size_t gg) {
        const double nn = static_cast<double>(n);
        const double log_prefactor =
            n == 0 ? std::log(2.0)
                   : nn * (std::log(4.0) + std::log(scaled.d) + std::log(qt));
        return std::exp(log_prefactor +
                        prob::log_poisson_tail(
                            qt, gg + 1 >= n ? gg + 1 - n : 0));
      };
      if (qt > 0.0) {
        const double bound_g = impulse_bound(g);
        check::check_truncation_bound(
            bound_g, g > 0 ? impulse_bound(g - 1) : bound_g, options.epsilon,
            g, "ImpulseMomentSolver::solve_multi");
      }
    }
    g_max = std::max(g_max, g);
  }
  stats.truncation_seconds = obs::seconds_between(trunc_t0, obs::now_ns());

  // Per-time-point Poisson weight tables (one lgamma each) instead of one
  // lgamma-based pmf per (k, time point) pair in the sweep.
  const std::int64_t window_t0 = obs::now_ns();
  std::vector<prob::PoissonWindow> windows(times.size());
  stats.window_widths.assign(times.size(), 0);
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    if (qt > 0.0) windows[ti] = prob::poisson_weight_window(qt, trunc[ti]);
    stats.window_widths[ti] = windows[ti].weights.size();
    obs::trace_counter("poisson.window_width",
                       static_cast<double>(windows[ti].weights.size()));
  }
  stats.window_seconds = obs::seconds_between(window_t0, obs::now_ns());

  // Section-6-style sweep cost: per step Q' streams against the n iterated
  // lanes (j = 1..n; the j = 0 ones column is invariant) and each impulse
  // matrix A~_l against the n+1-l lanes of its convolution band.
  stats.sweep_steps = g_max;
  std::size_t flops_per_step = 2 * scaled.q_prime.nnz() * n;
  for (std::size_t l = 1; l <= n && !impulse_mats.empty(); ++l)
    flops_per_step += 2 * impulse_mats[l - 1].nnz() * (n + 1 - l);
  stats.sweep_flops = g_max * flops_per_step;

  std::vector<ActiveWeight> active;
  active.reserve(times.size());

  // Panel path (default): the iterates U^(0..n)(k) live in one contiguous
  // row-major panel and each sweep step streams Q' and every A~_l ONCE,
  // multiplying each matrix entry against contiguous panel doubles, instead
  // of once per moment order. Per element the arithmetic order (Q' dot
  // product, R', ½S', then the impulse convolution in ascending l, then the
  // weighted accumulation) matches the kFusedVectors kernel exactly, so
  // results are bit-identical to it at every thread count.
  if (options.kernel == SweepKernel::kPanel) {
    stats.kernel = "impulse_panel";
    linalg::Panel u(num_states, n + 1, 0.0);
    linalg::Panel u_next(num_states, n + 1, 0.0);
    u.fill_col(0, 1.0);
    u_next.fill_col(0, 1.0);  // invariant ones column survives the swaps
    std::vector<linalg::Panel> acc(times.size(),
                                   linalg::Panel(num_states, n + 1, 0.0));

    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      const double qt = scaled.q * times[ti];
      const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
      if (w0 != 0.0)
        for (std::size_t i = 0; i < num_states; ++i)
          acc[ti](i, 0) += w0 * u(i, 0);
    }

    const std::int64_t sweep_t0 = obs::now_ns();
    const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
    for (std::size_t k = 1; k <= g_max; ++k) {
      active.clear();
      for (std::size_t ti = 0; ti < times.size(); ++ti) {
        if (k > trunc[ti]) continue;
        const double w = windows[ti].weight(k);
        if (w != 0.0) active.push_back(ActiveWeight{ti, w});
      }
      stats.active_weight_sum += active.size();
      const std::int64_t k_t0 = obs::now_ns();
      if (use_sell)
        impulse_panel_step(sell, scaled, impulse_mats, n, u, u_next, active,
                           acc);
      else
        impulse_panel_step(scaled.q_prime, scaled, impulse_mats, n, u, u_next,
                           active, acc);
      detail::record_sweep_step(k_t0, k, active.size());
      u.swap(u_next);
      if constexpr (check::kChecked)
        check::check_sweep_panel(u, k, /*j_lo=*/1, subtraction_free,
                                 /*apply_majorant=*/false,
                                 "ImpulseMomentSolver::solve_multi");
    }
    detail::finish_sweep_stats(stats, sweep_t0, busy0);

    const std::int64_t finalize_t0 = obs::now_ns();
    if (!perm.empty()) {
      // Back to the model's state order before the pi contraction: pure row
      // moves, no arithmetic, so the σ-sort cannot change a single bit.
      for (linalg::Panel& p : acc) p = linalg::unpermute_panel_rows(p, perm);
    }
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      MomentResult& out = results[ti];
      std::vector<linalg::Vec> sums(n + 1);
      for (std::size_t j = 0; j <= n; ++j) sums[j] = acc[ti].col(j);
      double factor = 1.0;
      for (std::size_t j = 0; j <= n; ++j) {
        if (j > 0) factor *= static_cast<double>(j) * scaled.d;
        linalg::scale(factor, sums[j]);
      }
      if (scaled.shift == 0.0) {
        out.per_state = std::move(sums);
      } else {
        out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
        const double delta = scaled.shift * times[ti];
        std::vector<double> raw(n + 1);
        for (std::size_t i = 0; i < num_states; ++i) {
          for (std::size_t j = 0; j <= n; ++j) raw[j] = sums[j][i];
          const auto back = shift_raw_moments(raw, delta);
          for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = back[j];
        }
      }
      out.weighted.resize(n + 1);
      for (std::size_t j = 0; j <= n; ++j)
        out.weighted[j] = linalg::dot(base.initial(), out.per_state[j]);
      if constexpr (check::kChecked) {
        if (n >= 2) {
          const double delta = std::abs(scaled.shift) * times[ti];
          check::check_moment_consistency(
              out.per_state[1], out.per_state[2],
              options.epsilon * (1.0 + delta) * (1.0 + delta),
              "ImpulseMomentSolver::solve_multi");
        }
      }
    }
    stats.finalize_seconds = obs::seconds_between(finalize_t0, obs::now_ns());
    stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
    for (MomentResult& r : results) r.stats = stats;
    return results;
  }

  stats.kernel = "impulse_fused_vectors";
  std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
  u[0] = linalg::ones(num_states);
  std::vector<linalg::Vec> u_next(n + 1, linalg::zeros(num_states));
  std::vector<std::vector<linalg::Vec>> acc(
      times.size(), std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));

  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = scaled.q * times[ti];
    const double w0 = qt > 0.0 ? windows[ti].weight(0) : 1.0;
    if (w0 != 0.0) linalg::axpy(w0, u[0], acc[ti][0]);
  }

  const std::int64_t sweep_t0 = obs::now_ns();
  const std::int64_t busy0 = detail::parallel_busy_metric().total_ns();
  for (std::size_t k = 1; k <= g_max; ++k) {
    active.clear();
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      if (k > trunc[ti]) continue;
      const double w = windows[ti].weight(k);
      if (w != 0.0) active.push_back(ActiveWeight{ti, w});
    }
    stats.active_weight_sum += active.size();
    const std::int64_t k_t0 = obs::now_ns();

    // Fused, row-parallel generalized recursion step: the rate/variance
    // terms, the impulse convolution sum_{l=1..j} A~_l U^(j-l), and the
    // Poisson-weighted accumulation all happen in one pass per row. Every
    // write is row-owned, so results are bit-identical for any thread count.
    if (use_sell)
      impulse_fused_step(sell, scaled, impulse_mats, n, u, u_next, active,
                         acc);
    else
      impulse_fused_step(scaled.q_prime, scaled, impulse_mats, n, u, u_next,
                         active, acc);
    detail::record_sweep_step(k_t0, k, active.size());
    for (std::size_t j = 1; j <= n; ++j) std::swap(u[j], u_next[j]);
    if constexpr (check::kChecked) {
      for (std::size_t j = 1; j <= n; ++j)
        check::check_sweep_column(u[j], k, j, subtraction_free,
                                  /*apply_majorant=*/false,
                                  "ImpulseMomentSolver::solve_multi");
    }
  }
  detail::finish_sweep_stats(stats, sweep_t0, busy0);

  const std::int64_t finalize_t0 = obs::now_ns();
  if (!perm.empty()) {
    // Back to the model's state order before the pi contraction: a pure
    // gather through the inverse permutation, no arithmetic.
    const std::vector<std::size_t> inv = linalg::invert_permutation(perm);
    for (std::vector<linalg::Vec>& panel : acc)
      for (linalg::Vec& v : panel) v = linalg::permute_vector(v, inv);
  }
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    MomentResult& out = results[ti];
    double factor = 1.0;
    for (std::size_t j = 0; j <= n; ++j) {
      if (j > 0) factor *= static_cast<double>(j) * scaled.d;
      linalg::scale(factor, acc[ti][j]);
    }
    if (scaled.shift == 0.0) {
      out.per_state = std::move(acc[ti]);
    } else {
      out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
      const double delta = scaled.shift * times[ti];
      std::vector<double> raw(n + 1);
      for (std::size_t i = 0; i < num_states; ++i) {
        for (std::size_t j = 0; j <= n; ++j) raw[j] = acc[ti][j][i];
        const auto back = shift_raw_moments(raw, delta);
        for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = back[j];
      }
    }
    out.weighted.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
      out.weighted[j] = linalg::dot(base.initial(), out.per_state[j]);
    if constexpr (check::kChecked) {
      if (n >= 2) {
        const double delta = std::abs(scaled.shift) * times[ti];
        check::check_moment_consistency(
            out.per_state[1], out.per_state[2],
            options.epsilon * (1.0 + delta) * (1.0 + delta),
            "ImpulseMomentSolver::solve_multi");
      }
    }
  }
  stats.finalize_seconds = obs::seconds_between(finalize_t0, obs::now_ns());
  stats.total_seconds = obs::seconds_between(total_t0, obs::now_ns());
  for (MomentResult& r : results) r.stats = stats;
  return results;
}

}  // namespace somrm::core
