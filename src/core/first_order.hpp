// somrm/core/first_order.hpp
//
// Classical (first-order) Markov reward model moment solver — the baseline
// the paper compares modeling power and cost against. The accumulated
// reward is deterministic given the trajectory: while Z(t) = i, reward grows
// at exactly rate r_i. The randomization recursion is Theorem 3 with the
// S' term removed:
//
//   V^(n)(t) = n! d^n sum_k Pois(k; qt) U^(n)(k),
//   U^(n)(k+1) = R' U^(n-1)(k) + Q' U^(n)(k).
//
// This is an independent implementation (not a sigma = 0 call into the
// second-order solver); the test suite cross-checks the two, which guards
// both code paths, and the kernel benchmark uses it to substantiate the
// paper's claim that second-order analysis costs practically the same.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/randomization.hpp"  // MomentSolverOptions, MomentResult
#include "ctmc/generator.hpp"
#include "linalg/vec.hpp"

namespace somrm::core {

class FirstOrderMrm {
 public:
  /// First-order MRM: CTMC plus per-state reward rates (any sign) and an
  /// initial distribution. Validation mirrors SecondOrderMrm.
  FirstOrderMrm(ctmc::Generator generator, linalg::Vec rates,
                linalg::Vec initial);

  std::size_t num_states() const { return generator_.num_states(); }
  const ctmc::Generator& generator() const { return generator_; }
  const linalg::Vec& rates() const { return rates_; }
  const linalg::Vec& initial() const { return initial_; }

  /// The equivalent second-order model with all variances zero.
  SecondOrderMrm as_second_order() const;

 private:
  ctmc::Generator generator_;
  linalg::Vec rates_;
  linalg::Vec initial_;
};

class FirstOrderMomentSolver {
 public:
  explicit FirstOrderMomentSolver(FirstOrderMrm model);

  /// Moments of the accumulated reward at time t; same result contract as
  /// RandomizationMomentSolver (scale_policy is ignored — first-order
  /// scaling has a single natural d = max r_i / q).
  MomentResult solve(double t, const MomentSolverOptions& options = {}) const;

  std::vector<MomentResult> solve_multi(
      std::span<const double> times,
      const MomentSolverOptions& options = {}) const;

 private:
  FirstOrderMrm model_;
};

}  // namespace somrm::core
