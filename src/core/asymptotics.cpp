#include "core/asymptotics.hpp"

#include <stdexcept>

#include "ctmc/stationary.hpp"

namespace somrm::core {

linalg::DenseMatrix deviation_matrix(const ctmc::Generator& gen,
                                     std::span<const double> stationary) {
  const std::size_t n = gen.num_states();
  if (stationary.size() != n)
    throw std::invalid_argument("deviation_matrix: stationary size mismatch");

  // A = Pi - Q (nonsingular for irreducible chains); D = A^{-1} - Pi.
  const auto dense_q = gen.matrix().to_dense(/*max_dim=*/4096);
  linalg::DenseMatrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      a(i, j) = stationary[j] - dense_q[i][j];

  linalg::DenseMatrix z = linalg::DenseMatrix::identity(n);
  a.solve_in_place(z);  // z = (Pi - Q)^{-1}

  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) z(i, j) -= stationary[j];
  return z;
}

AsymptoticRewardStats asymptotic_reward_stats(const SecondOrderMrm& model) {
  AsymptoticRewardStats out;
  out.stationary = ctmc::stationary_distribution_gth(model.generator());

  const std::size_t n = model.num_states();
  const auto& r = model.drifts();
  const auto& s = model.variances();

  out.rate = linalg::dot(out.stationary, r);

  const linalg::DenseMatrix d = deviation_matrix(model.generator(),
                                                 out.stationary);
  const std::vector<double> dr = d.multiply(std::span<const double>(r));

  out.bias = linalg::dot(model.initial(), dr);

  double v = linalg::dot(out.stationary, s);  // within-state Brownian part
  for (std::size_t i = 0; i < n; ++i) v += 2.0 * out.stationary[i] * r[i] * dr[i];
  out.variance_rate = v;
  return out;
}

}  // namespace somrm::core
