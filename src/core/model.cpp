#include "core/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace somrm::core {

SecondOrderMrm::SecondOrderMrm(ctmc::Generator generator, linalg::Vec drifts,
                               linalg::Vec variances, linalg::Vec initial)
    : generator_(std::move(generator)),
      drifts_(std::move(drifts)),
      variances_(std::move(variances)),
      initial_(std::move(initial)) {
  const std::size_t n = generator_.num_states();
  if (drifts_.size() != n)
    throw std::invalid_argument("SecondOrderMrm: drift vector size mismatch");
  if (variances_.size() != n)
    throw std::invalid_argument(
        "SecondOrderMrm: variance vector size mismatch");
  if (initial_.size() != n)
    throw std::invalid_argument("SecondOrderMrm: initial vector size mismatch");

  for (double r : drifts_)
    if (!std::isfinite(r))
      throw std::invalid_argument("SecondOrderMrm: non-finite drift");
  for (double s : variances_) {
    if (!std::isfinite(s) || s < 0.0)
      throw std::invalid_argument(
          "SecondOrderMrm: variances must be finite and non-negative");
  }

  double total = 0.0;
  for (double p : initial_) {
    if (p < -1e-12)
      throw std::invalid_argument(
          "SecondOrderMrm: negative initial probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument("SecondOrderMrm: initial must sum to 1");
}

bool SecondOrderMrm::is_first_order() const {
  return std::all_of(variances_.begin(), variances_.end(),
                     [](double s) { return s == 0.0; });
}

double SecondOrderMrm::min_drift() const { return linalg::min_elem(drifts_); }

double SecondOrderMrm::max_drift() const { return linalg::max_elem(drifts_); }

double SecondOrderMrm::max_variance() const {
  return linalg::max_elem(variances_);
}

double SecondOrderMrm::stationary_reward_rate(
    std::span<const double> stationary) const {
  return linalg::dot(stationary, drifts_);
}

SecondOrderMrm SecondOrderMrm::with_shifted_drifts(double delta) const {
  linalg::Vec shifted = drifts_;
  for (double& r : shifted) r -= delta;
  return SecondOrderMrm(generator_, std::move(shifted), variances_, initial_);
}

SecondOrderMrm SecondOrderMrm::with_initial(linalg::Vec initial) const {
  return SecondOrderMrm(generator_, drifts_, variances_, std::move(initial));
}

}  // namespace somrm::core
