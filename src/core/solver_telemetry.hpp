// somrm/core/solver_telemetry.hpp
//
// Internal sweep-telemetry helpers shared by the randomization and impulse
// moment solvers: per-k step timing + trace events, and the derivation of
// the timing fields of obs::SolverStats from the sweep wall time and the
// parallel.busy counter delta. Every function collapses to an inline no-op
// when the library is built with -DSOMRM_OBSERVABILITY=OFF.
//
// Not part of the public API — include only from src/core/*.cpp.

#pragma once

#include <algorithm>
#include <cstdint>

#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace somrm::core::detail {

inline obs::Metric& sweep_step_metric() {
  static obs::Metric& m = obs::metric("sweep.step");
  return m;
}

inline obs::Histogram& sweep_step_histogram() {
  static obs::Histogram& h = obs::histogram("sweep.step_ns");
  return h;
}

inline obs::Metric& parallel_busy_metric() {
  static obs::Metric& m = obs::metric("parallel.busy");
  return m;
}

/// Times one sweep step and emits the per-k trace event. Call with the
/// now_ns() reading taken just before the step.
inline void record_sweep_step(std::int64_t k_t0, std::size_t k,
                              std::size_t active_count) {
  if constexpr (!obs::kEnabled) return;
  const std::int64_t dt = obs::now_ns() - k_t0;
  sweep_step_metric().add(1, dt);
  sweep_step_histogram().record(dt);
  obs::trace_complete("sweep.step", "sweep", k_t0, dt, "k",
                      static_cast<double>(k), "active",
                      static_cast<double>(active_count));
}

/// Fills the timing-derived sweep fields from the sweep wall time and the
/// parallel.busy delta captured around the sweep loop.
inline void finish_sweep_stats(obs::SolverStats& stats, std::int64_t sweep_t0,
                               std::int64_t busy0_ns) {
  if constexpr (!obs::kEnabled) return;
  const std::int64_t sweep_ns = obs::now_ns() - sweep_t0;
  stats.sweep_seconds = static_cast<double>(sweep_ns) * 1e-9;
  stats.busy_seconds =
      static_cast<double>(parallel_busy_metric().total_ns() - busy0_ns) * 1e-9;
  const double capacity =
      static_cast<double>(stats.threads) * stats.sweep_seconds;
  stats.load_imbalance =
      capacity > 0.0
          ? std::clamp(1.0 - stats.busy_seconds / capacity, 0.0, 1.0)
          : 0.0;
  stats.effective_gflops =
      sweep_ns > 0
          ? static_cast<double>(stats.sweep_flops) / static_cast<double>(sweep_ns)
          : 0.0;
}

}  // namespace somrm::core::detail
