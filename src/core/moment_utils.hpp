// somrm/core/moment_utils.hpp
//
// Raw-moment bookkeeping shared by the solvers, the simulator and the
// moment-bound module: binomial shifts (used to undo the negative-drift
// transformation of section 6), central/standardized moments, and the usual
// summary statistics.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace somrm::core {

/// Binomial coefficient C(n, k) as a double (exact for n <= 60).
double binomial_coefficient(std::size_t n, std::size_t k);

/// Given raw moments raw[k] = E[X^k] (k = 0..n), returns the raw moments of
/// X + delta: E[(X+delta)^j] = sum_k C(j,k) delta^{j-k} raw[k].
std::vector<double> shift_raw_moments(std::span<const double> raw,
                                      double delta);

/// Central moments mu_j = E[(X - E X)^j] from raw moments; mu_0 = 1,
/// mu_1 = 0 by construction.
std::vector<double> central_moments_from_raw(std::span<const double> raw);

/// Raw moments of the standardized variable (X - mean)/stddev. Requires a
/// strictly positive variance (throws otherwise). Also returns the mean and
/// stddev used, so callers can map bound locations back.
struct StandardizedMoments {
  double mean = 0.0;
  double stddev = 0.0;
  std::vector<double> moments;  ///< E[Z^k], k = 0..n
};
StandardizedMoments standardize_raw_moments(std::span<const double> raw);

/// Raw moments m_0..m_n from cumulants kappa_1..kappa_n via the recursion
/// m_n = sum_{j=1..n} C(n-1, j-1) kappa_j m_{n-j}. Used by the compound-
/// Poisson closed forms that anchor the impulse-reward solver tests.
std::vector<double> moments_from_cumulants(std::span<const double> cumulants);

/// Cumulants kappa_1..kappa_n from raw moments m_0..m_n (m_0 must be 1);
/// inverse of moments_from_cumulants.
std::vector<double> cumulants_from_moments(std::span<const double> raw);

/// Variance from raw moments (requires order >= 2).
double variance_from_raw(std::span<const double> raw);

/// Skewness mu_3 / mu_2^{3/2} (requires order >= 3 and positive variance).
double skewness_from_raw(std::span<const double> raw);

/// Excess kurtosis mu_4 / mu_2^2 - 3 (requires order >= 4, positive var).
double excess_kurtosis_from_raw(std::span<const double> raw);

}  // namespace somrm::core
