#include "core/invariants.hpp"

#if SOMRM_CHECKED

#include <algorithm>
#include <limits>

#include "core/scaling.hpp"
#include "linalg/panel.hpp"

namespace somrm::check {

namespace {


// Row-sum tolerance for Q' stochasticity: the uniformized DTMC rows are
// built as q_ij/q with the diagonal filled to 1, so the sum carries a few
// ulps per stored entry.
constexpr double kRowSumTol = 1e-9;
// Slack on the Lemma-2 reward bounds |R'| <= 1, S' <= 1 (exact algebra up
// to the division by q d / q d^2).
constexpr double kUnitBoundTol = 1e-12;
// Relative slack on the Lemma-2 iterate majorant.
constexpr double kMajorantTol = 1e-9;

/// 2 * k!/(k-j)! — the Lemma-2 majorant for U^(j)(k), valid for k >= j.
/// Saturates to +inf on overflow, which makes the check vacuous exactly
/// where the bound stops being representable.
double lemma2_majorant(std::size_t k, std::size_t j) {
  double ff = 2.0;
  for (std::size_t i = 0; i < j; ++i)
    ff *= static_cast<double>(k - i);
  return ff;
}

}  // namespace

void check_scaled_model(const core::ScaledModel& scaled,
                        bool enforce_reward_bounds, const char* context) {
  if (!enabled()) return;
  const auto& qp = scaled.q_prime;
  const auto& values = qp.values();
  for (std::size_t e = 0; e < values.size(); ++e) {
    if (!std::isfinite(values[e]) || values[e] < 0.0)
      fail("lemma2.q_prime", __FILE__, __LINE__,
           fmt(context, ": Q' entry ", e, " = ", values[e],
               " is negative or non-finite"));
  }
  const linalg::Vec sums = qp.row_sums();
  for (std::size_t i = 0; i < sums.size(); ++i) {
    if (!(std::abs(sums[i] - 1.0) <= kRowSumTol))
      fail("lemma2.q_prime", __FILE__, __LINE__,
           fmt(context, ": Q' row ", i, " sums to ", sums[i],
               ", not 1 (uniformized DTMC must be stochastic)"));
  }
  for (std::size_t i = 0; i < scaled.r_prime.size(); ++i) {
    const double r = scaled.r_prime[i];
    if (!std::isfinite(r))
      fail("lemma2.r_prime", __FILE__, __LINE__,
           fmt(context, ": R' state ", i, " is not finite (", r, ")"));
    if (enforce_reward_bounds && !(std::abs(r) <= 1.0 + kUnitBoundTol))
      fail("lemma2.r_prime", __FILE__, __LINE__,
           fmt(context, ": R' state ", i, " = ", r,
               " exceeds the Lemma-2 bound |r_i - shift| <= q d"));
  }
  for (std::size_t i = 0; i < scaled.s_prime.size(); ++i) {
    const double s = scaled.s_prime[i];
    if (!std::isfinite(s) || s < 0.0)
      fail("lemma2.s_prime", __FILE__, __LINE__,
           fmt(context, ": S' state ", i, " = ", s,
               " is negative or non-finite (sigma^2 must be >= 0)"));
    if (enforce_reward_bounds && !(s <= 1.0 + kUnitBoundTol))
      fail("lemma2.s_prime", __FILE__, __LINE__,
           fmt(context, ": S' state ", i, " = ", s,
               " exceeds the Lemma-2 bound sigma_i^2 <= q d^2"));
  }
}

void check_sweep_column(std::span<const double> u_j, std::size_t k,
                        std::size_t j, bool subtraction_free,
                        bool apply_majorant, const char* context) {
  if (!enabled()) return;
  const double bound =
      apply_majorant && k >= j
          ? lemma2_majorant(k, j) * (1.0 + kMajorantTol)
          : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < u_j.size(); ++i) {
    const double v = u_j[i];
    if (!std::isfinite(v))
      fail("sweep.finite", __FILE__, __LINE__,
           fmt(context, ": U^(", j, ")(", k, ") state ", i,
               " is not finite (", v, ")"));
    if (subtraction_free && v < 0.0)
      fail("sweep.nonnegative", __FILE__, __LINE__,
           fmt(context, ": U^(", j, ")(", k, ") state ", i, " = ", v,
               " is negative (recursion must be subtraction-free)"));
    if (std::abs(v) > bound)
      fail("sweep.lemma2_bound", __FILE__, __LINE__,
           fmt(context, ": U^(", j, ")(", k, ") state ", i, " = ", v,
               " exceeds the Lemma-2 majorant 2 k!/(k-j)! = ", bound));
  }
}

void check_sweep_panel(const linalg::Panel& u, std::size_t k,
                       std::size_t j_lo, bool subtraction_free,
                       bool apply_majorant, const char* context) {
  if (!enabled()) return;
  const std::size_t width = u.width();
  // Per-order majorants, hoisted out of the row loop.
  std::vector<double> bound(width);
  for (std::size_t j = 0; j < width; ++j)
    bound[j] = apply_majorant && k >= j
                   ? lemma2_majorant(k, j) * (1.0 + kMajorantTol)
                   : std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < u.rows(); ++i) {
    const double* row = u.row_data(i);
    if (j_lo == 1 && row[0] != 1.0)
      fail("sweep.ones_column", __FILE__, __LINE__,
           fmt(context, ": invariant ones column violated at state ", i,
               ", step ", k, " (got ", row[0], ")"));
    for (std::size_t j = j_lo; j < width; ++j) {
      const double v = row[j];
      if (!std::isfinite(v))
        fail("sweep.finite", __FILE__, __LINE__,
             fmt(context, ": U^(", j, ")(", k, ") state ", i,
                 " is not finite (", v, ")"));
      if (subtraction_free && v < 0.0)
        fail("sweep.nonnegative", __FILE__, __LINE__,
             fmt(context, ": U^(", j, ")(", k, ") state ", i, " = ", v,
                 " is negative (recursion must be subtraction-free)"));
      if (std::abs(v) > bound[j])
        fail("sweep.lemma2_bound", __FILE__, __LINE__,
             fmt(context, ": U^(", j, ")(", k, ") state ", i, " = ", v,
                 " exceeds the Lemma-2 majorant 2 k!/(k-j)! = ", bound[j]));
    }
  }
}

void check_truncation_bound(double bound_at_g, double bound_at_g_minus_1,
                            double epsilon, std::size_t g,
                            const char* context) {
  if (!enabled()) return;
  if (!std::isfinite(bound_at_g) || bound_at_g < 0.0)
    fail("theorem4.bound", __FILE__, __LINE__,
         fmt(context, ": error bound at G = ", g, " is ", bound_at_g,
             " (must be finite and non-negative)"));
  if (g > 0 && bound_at_g > bound_at_g_minus_1 * (1.0 + 1e-12))
    fail("theorem4.monotone", __FILE__, __LINE__,
         fmt(context, ": error bound increased with G: bound(", g, ") = ",
             bound_at_g, " > bound(", g - 1, ") = ", bound_at_g_minus_1));
  if (bound_at_g > epsilon * (1.0 + 1e-9))
    fail("theorem4.bound", __FILE__, __LINE__,
         fmt(context, ": error bound ", bound_at_g, " at the chosen G = ", g,
             " exceeds the requested epsilon = ", epsilon));
}

void check_moment_consistency(std::span<const double> v1,
                              std::span<const double> v2, double epsilon,
                              const char* context) {
  if (!enabled()) return;
  for (std::size_t i = 0; i < v1.size(); ++i) {
    const double mean = v1[i];
    const double second = v2[i];
    // Truncation contributes up to ~epsilon per moment; rounding scales
    // with the magnitudes involved.
    const double tol =
        2.0 * epsilon + 1e-9 * (1.0 + mean * mean + std::abs(second));
    if (second + tol < mean * mean)
      fail("moments.jensen", __FILE__, __LINE__,
           fmt(context, ": state ", i, " violates V^(2) >= (V^(1))^2: V1 = ",
               mean, ", V2 = ", second, " (deficit ",
               mean * mean - second, ")"));
  }
}

}  // namespace somrm::check

#endif  // SOMRM_CHECKED
