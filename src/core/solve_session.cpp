#include "core/solve_session.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "obs/export.hpp"
#include "obs/histogram.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace somrm::core {

namespace {

/// 128-bit content hash built from two decorrelated 64-bit FNV-1a lanes.
/// Deterministic across runs and platforms of equal endianness; used only
/// as a cache key, so collisions merely alias cache entries and the lanes'
/// independence makes that astronomically unlikely for real models.
class Fnv128 {
 public:
  void update(const void* data, std::size_t bytes) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
      a_ = (a_ ^ p[i]) * kPrime;
      b_ = (b_ ^ p[i]) * kPrime;
    }
  }

  void update_u64(std::uint64_t v) { update(&v, sizeof v); }

  void update_doubles(std::span<const double> xs) {
    update_u64(xs.size());
    if (!xs.empty()) update(xs.data(), xs.size() * sizeof(double));
  }

  void update_sizes(std::span<const std::size_t> xs) {
    update_u64(xs.size());
    for (std::size_t x : xs) update_u64(static_cast<std::uint64_t>(x));
  }

  std::string hex() const {
    char buf[2 * 16 + 1];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(a_),
                  static_cast<unsigned long long>(b_));
    return buf;
  }

 private:
  static constexpr std::uint64_t kPrime = 1099511628211ULL;
  std::uint64_t a_ = 14695981039346656037ULL;
  // Second lane: offset basis perturbed by a golden-ratio constant so the
  // lanes decorrelate despite sharing the multiplier.
  std::uint64_t b_ = 14695981039346656037ULL ^ 0x9e3779b97f4a7c15ULL;
};

/// Content hash of everything the sweep reads from the model: the generator
/// CSR structure and values, drifts, and variances. The initial vector is
/// deliberately EXCLUDED — the retained panels are pi-independent, so
/// models differing only in pi must share cache entries.
std::string model_fingerprint(const SecondOrderMrm& model) {
  const linalg::CsrMatrix& q = model.generator().matrix();
  Fnv128 h;
  h.update_u64(model.num_states());
  h.update_sizes(q.row_ptr());
  h.update_sizes(q.col_idx());
  h.update_doubles(q.values());
  h.update_doubles(model.drifts());
  h.update_doubles(model.variances());
  return h.hex();
}

std::string weights_hash(std::span<const double> weights) {
  Fnv128 h;
  h.update_doubles(weights);
  return h.hex();
}

/// Serializes the solve key (everything besides the model content and the
/// weights that selects a distinct sweep) into the cache-key string. Doubles
/// go in by bit pattern: 0.1 and 0.1000000000000001 are different sweeps.
std::string solve_key(std::span<const double> times,
                      const MomentSolverOptions& options) {
  Fnv128 h;
  h.update_doubles(times);
  h.update_u64(options.max_moment);
  h.update_doubles(std::span<const double>(&options.epsilon, 1));
  h.update_doubles(std::span<const double>(&options.center, 1));
  h.update_u64(static_cast<std::uint64_t>(options.scale_policy));
  h.update_u64(static_cast<std::uint64_t>(options.kernel));
  h.update_u64(static_cast<std::uint64_t>(options.storage));
  return h.hex();
}

/// Mirrors SecondOrderMrm's initial-vector validation so a session rejects
/// exactly what with_initial would, with a session-flavoured message.
void validate_query_initial(std::span<const double> initial,
                            std::size_t num_states) {
  if (initial.size() != num_states)
    throw std::invalid_argument(
        "SolveSession: query initial vector size mismatch (got " +
        std::to_string(initial.size()) + ", model has " +
        std::to_string(num_states) + " states)");
  double total = 0.0;
  for (double p : initial) {
    if (!std::isfinite(p) || p < -1e-12)
      throw std::invalid_argument(
          "SolveSession: query initial probabilities must be finite and "
          "non-negative");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument(
        "SolveSession: query initial distribution must sum to 1");
}

void validate_query_weights(std::span<const double> weights,
                            std::size_t num_states) {
  if (weights.size() != num_states)
    throw std::invalid_argument(
        "SolveSession: query terminal-weight vector size mismatch (got " +
        std::to_string(weights.size()) + ", model has " +
        std::to_string(num_states) + " states)");
  if (!linalg::is_nonnegative(weights))
    throw std::invalid_argument(
        "SolveSession: query terminal weights must be non-negative");
  if (!(linalg::max_elem(weights) > 0.0))
    throw std::invalid_argument(
        "SolveSession: query terminal weights must not be all zero");
}

obs::Metric& cache_hit_metric() {
  static obs::Metric& m = obs::metric("session.cache.hit");
  return m;
}
obs::Metric& cache_miss_metric() {
  static obs::Metric& m = obs::metric("session.cache.miss");
  return m;
}
obs::Metric& cache_evict_metric() {
  static obs::Metric& m = obs::metric("session.cache.evict");
  return m;
}
obs::Metric& cache_coalesced_metric() {
  static obs::Metric& m = obs::metric("session.cache.coalesced");
  return m;
}

/// Process-wide query-ID source: monotonically increasing across every
/// session so concurrent sessions' IDs interleave but never collide, and a
/// trace's "query_id" args are globally unique within a run.
std::atomic<std::uint64_t> g_next_query_id{0};

/// Exact 1-based rank-ceil(q*n) order statistic of an ASCENDING-sorted
/// latency list (0 for an empty list) — the same quantile convention the
/// bucket histograms use, but at full resolution.
std::int64_t exact_quantile(const std::vector<std::int64_t>& sorted,
                            double q) {
  if (sorted.empty()) return 0;
  const double clamped = std::min(std::max(q, 0.0), 1.0);
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(clamped * static_cast<double>(sorted.size())));
  rank = std::max<std::size_t>(rank, 1);
  rank = std::min(rank, sorted.size());
  return sorted[rank - 1];
}

}  // namespace

SweepCache::SweepCache(std::size_t byte_budget) : byte_budget_(byte_budget) {}

SweepCache::EntryPtr SweepCache::get_or_compute(
    const std::string& key, const std::function<RetainedSweep()>& compute,
    Outcome* outcome) {
  // Three separate lock scopes instead of one relockable guard: the
  // capability analysis (and a reader) can follow each scope branch by
  // branch, and the compute() call is visibly outside every one of them.
  std::promise<EntryPtr> promise;
  std::shared_future<EntryPtr> inflight_fut;
  bool join_inflight = false;
  {
    support::MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      ++counters_.hits;
      cache_hit_metric().add(1);
      if (outcome) *outcome = Outcome::kHit;
      return it->second.value;
    }
    auto in = inflight_.find(key);
    if (in != inflight_.end()) {
      // Coalesce: someone is already computing this key. Wait outside the
      // lock; the future's value is the shared sweep (or its exception).
      inflight_fut = in->second;
      join_inflight = true;
      ++counters_.coalesced;
      cache_coalesced_metric().add(1);
      if (outcome) *outcome = Outcome::kCoalesced;
    } else {
      ++counters_.misses;
      cache_miss_metric().add(1);
      if (outcome) *outcome = Outcome::kMiss;
      inflight_.emplace(key, promise.get_future().share());
    }
  }
  if (join_inflight) return inflight_fut.get();

  EntryPtr value;
  try {
    value = std::make_shared<const RetainedSweep>(compute());
  } catch (...) {
    promise.set_exception(std::current_exception());
    {
      support::MutexLock lock(mutex_);
      inflight_.erase(key);
    }
    throw;
  }
  promise.set_value(value);

  support::MutexLock lock(mutex_);
  inflight_.erase(key);
  const std::size_t bytes = value->byte_size();
  lru_.push_front(key);
  entries_[key] = Slot{value, bytes, lru_.begin()};
  bytes_ += bytes;
  evict_locked();
  return value;
}

void SweepCache::evict_locked() {
  bool evicted = false;
  while (bytes_ > byte_budget_ && entries_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++counters_.evictions;
    cache_evict_metric().add(1);
    evicted = true;
  }
  // Gauges move the moment memory is released, not at the next cache miss
  // or report() — a long hit-only serving run otherwise exports frozen
  // values that overstate the footprint by every sweep evicted since.
  if constexpr (obs::kEnabled) {
    if (evicted) {
      static obs::Gauge& cache_bytes_gauge = obs::gauge("session.cache.bytes");
      cache_bytes_gauge.set(static_cast<std::int64_t>(bytes_));
      static obs::Gauge& rss_gauge = obs::gauge("mem.peak_rss_bytes");
      rss_gauge.set(obs::peak_rss_bytes());
    }
  }
}

SweepCacheStats SweepCache::stats() const {
  support::MutexLock lock(mutex_);
  SweepCacheStats out = counters_;
  out.entries = entries_.size();
  out.bytes = bytes_;
  out.byte_budget = byte_budget_;
  out.over_budget = bytes_ > byte_budget_;
  return out;
}

std::size_t SweepCache::byte_budget() const {
  support::MutexLock lock(mutex_);
  return byte_budget_;
}

void SweepCache::set_byte_budget(std::size_t bytes) {
  support::MutexLock lock(mutex_);
  byte_budget_ = bytes;
  evict_locked();
}

void SweepCache::clear() {
  support::MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

bool SweepCache::insert(const std::string& key, EntryPtr value) {
  if (!value) return false;
  support::MutexLock lock(mutex_);
  if (entries_.find(key) != entries_.end()) return false;
  const std::size_t bytes = value->byte_size();
  lru_.push_front(key);
  entries_[key] = Slot{std::move(value), bytes, lru_.begin()};
  bytes_ += bytes;
  evict_locked();
  // A restore that immediately evicted its own insertion is possible (the
  // entry stays iff it is MRU and the budget allows); report whether the
  // key is actually resident now.
  return entries_.find(key) != entries_.end();
}

std::vector<std::pair<std::string, SweepCache::EntryPtr>>
SweepCache::entries_snapshot() const {
  support::MutexLock lock(mutex_);
  std::vector<std::pair<std::string, EntryPtr>> out;
  out.reserve(entries_.size());
  for (const std::string& key : lru_) {
    auto it = entries_.find(key);
    out.emplace_back(key, it->second.value);
  }
  return out;
}

const std::shared_ptr<SweepCache>& SweepCache::global() {
  static const std::shared_ptr<SweepCache>* cache =
      new std::shared_ptr<SweepCache>(std::make_shared<SweepCache>());
  return *cache;
}

SolveSession::SolveSession(SecondOrderMrm model, std::vector<double> times,
                           MomentSolverOptions options,
                           std::shared_ptr<SweepCache> cache)
    : solver_(std::move(model)),
      times_(std::move(times)),
      options_(options),
      cache_(cache ? std::move(cache) : SweepCache::global()) {
  validate_solver_inputs(times_, options_, "SolveSession");
  base_key_ = model_fingerprint(solver_.model()) + "|" +
              solve_key(times_, options_);
}

std::string SolveSession::sweep_key(
    std::span<const double> terminal_weights) const {
  if (terminal_weights.empty()) return base_key_ + "|plain";
  return base_key_ + "|w=" + weights_hash(terminal_weights);
}

void SolveSession::validate_query(const SessionQuery& q) const {
  const std::size_t num_states = solver_.model().num_states();
  const std::size_t order =
      q.max_moment == SessionQuery::kSessionMax ? options_.max_moment
                                                : q.max_moment;
  if (q.time_index >= times_.size())
    throw std::invalid_argument(
        "SolveSession: query time index " + std::to_string(q.time_index) +
        " out of range (session grid has " + std::to_string(times_.size()) +
        " time points)");
  if (order > options_.max_moment)
    throw std::invalid_argument(
        "SolveSession: query moment order " + std::to_string(order) +
        " exceeds the session max_moment " +
        std::to_string(options_.max_moment));
  if (!q.initial.empty()) validate_query_initial(q.initial, num_states);
  if (!q.terminal_weights.empty())
    validate_query_weights(q.terminal_weights, num_states);
}

SweepCache::EntryPtr SolveSession::retained(
    std::span<const double> weights, std::string* weights_key,
    SweepCache::Outcome* outcome) const {
  std::string key = sweep_key(weights);
  if (weights_key) *weights_key = key;
  return cache_->get_or_compute(
      key, [&] { return solver_.sweep_retained(times_, options_, weights); },
      outcome);
}

MomentResult SolveSession::query_impl(
    const SessionQuery& q,
    std::map<std::string, std::shared_ptr<const MomentResult>>* reuse,
    QueryRecord* record_out) const {
  const std::int64_t total_t0 = obs::now_ns();
  validate_query(q);
  const std::size_t order =
      q.max_moment == SessionQuery::kSessionMax ? options_.max_moment
                                                : q.max_moment;
  const std::span<const double> initial =
      q.initial.empty() ? std::span<const double>(solver_.model().initial())
                        : std::span<const double>(q.initial);

  const std::uint64_t query_id =
      g_next_query_id.fetch_add(1, std::memory_order_relaxed) + 1;

  std::string weights_key;
  SweepCache::Outcome outcome = SweepCache::Outcome::kHit;
  const SweepCache::EntryPtr sweep =
      retained(q.terminal_weights, &weights_key, &outcome);
  if (outcome == SweepCache::Outcome::kMiss) {
    // Peak RSS moves on sweep computation, not on finalize-only queries;
    // sampling /proc here (and in report()) keeps the hit path free of
    // filesystem reads at serving rates.
    static obs::Gauge& rss_gauge = obs::gauge("mem.peak_rss_bytes");
    rss_gauge.set(obs::peak_rss_bytes());
  }

  static obs::Metric& finalize_metric = obs::metric("session.query.finalize");
  const std::int64_t finalize_t0 = obs::now_ns();
  MomentResult out;
  if (reuse) {
    // Batch mode: per (weights, time, order) the unscale/shift finalize is
    // materialized once; queries differing only in pi pay one dot product
    // per moment order. Recomputing `weighted` from the shared per_state
    // runs the exact contraction finalize_from_sweep runs, so the reuse
    // path stays bit-identical to the direct one.
    const std::string finalize_key = weights_key + "#" +
                                     std::to_string(q.time_index) + "#" +
                                     std::to_string(order);
    auto it = reuse->find(finalize_key);
    if (it == reuse->end()) {
      auto base = std::make_shared<const MomentResult>(
          finalize_from_sweep(*sweep, q.time_index, initial, order));
      (*reuse)[finalize_key] = base;
      out = *base;
    } else {
      out = *it->second;
      for (std::size_t j = 0; j < out.per_state.size(); ++j)
        out.weighted[j] = linalg::dot(initial, out.per_state[j]);
    }
  } else {
    out = finalize_from_sweep(*sweep, q.time_index, initial, order);
  }
  const std::int64_t done = obs::now_ns();
  finalize_metric.add(1, done - finalize_t0);

  // Per-query timings on top of the sweep-phase stats, plus the cache's
  // cumulative counters at query time.
  out.stats.finalize_seconds = obs::seconds_between(finalize_t0, done);
  out.stats.total_seconds = obs::seconds_between(total_t0, done);
  const SweepCacheStats cs = cache_->stats();
  out.stats.cache_hits = cs.hits;
  out.stats.cache_misses = cs.misses;
  out.stats.cache_evictions = cs.evictions;
  out.stats.cache_coalesced = cs.coalesced;
  out.stats.cache_over_budget = cs.over_budget;

  // Per-query span: histogram cells, memory gauges + counter tracks, the
  // trace event carrying the query ID, and the SessionReport record. All
  // of it reads clocks and copies already-computed values — the numeric
  // result above is untouched (bit-identity pinned by tests).
  const std::int64_t latency_ns = done - total_t0;
  const std::int64_t finalize_ns = done - finalize_t0;
  if constexpr (obs::kEnabled) {
    static obs::Histogram& latency_hist =
        obs::histogram("session.query.latency_ns");
    static obs::Histogram& finalize_hist =
        obs::histogram("session.query.finalize_ns");
    latency_hist.record(latency_ns);
    finalize_hist.record(finalize_ns);
    static obs::Gauge& cache_bytes_gauge = obs::gauge("session.cache.bytes");
    static obs::Gauge& retained_gauge =
        obs::gauge("session.sweep.retained_bytes");
    cache_bytes_gauge.set(static_cast<std::int64_t>(cs.bytes));
    retained_gauge.set(static_cast<std::int64_t>(sweep->byte_size()));
    if (obs::trace_enabled()) {
      obs::trace_complete("session.query", "session", total_t0, latency_ns,
                          "query_id", static_cast<double>(query_id), "cache",
                          static_cast<double>(static_cast<int>(outcome)));
      obs::trace_counter("session.cache.bytes",
                         static_cast<double>(cs.bytes));
      obs::trace_counter("mem.peak_rss_bytes",
                         static_cast<double>(
                             obs::gauge("mem.peak_rss_bytes").value()));
    }
  }
  {
    QueryRecord rec;
    rec.query_id = query_id;
    rec.time_index = q.time_index;
    rec.max_moment = order;
    rec.latency_ns = latency_ns;
    rec.finalize_ns = finalize_ns;
    rec.cache_outcome = outcome;
    rec.sweep_key = weights_key;
    if (record_out) *record_out = rec;
    support::MutexLock lock(records_mutex_);
    ++queries_;
    records_.push_back(std::move(rec));
    while (records_.size() > kMaxQueryRecords) {
      records_.pop_front();
      ++dropped_records_;
    }
  }
  return out;
}

SessionReport SolveSession::report() const {
  SessionReport r;
  {
    support::MutexLock lock(records_mutex_);
    r.queries = queries_;
    r.dropped_records = dropped_records_;
    r.records.assign(records_.begin(), records_.end());
  }
  r.cache = cache_->stats();
  std::vector<std::int64_t> latencies;
  latencies.reserve(r.records.size());
  for (const QueryRecord& rec : r.records) latencies.push_back(rec.latency_ns);
  std::sort(latencies.begin(), latencies.end());
  r.latency_p50_ns = exact_quantile(latencies, 0.50);
  r.latency_p90_ns = exact_quantile(latencies, 0.90);
  r.latency_p99_ns = exact_quantile(latencies, 0.99);
  r.latency_p999_ns = exact_quantile(latencies, 0.999);
  if constexpr (obs::kEnabled) {
    static obs::Gauge& rss_gauge = obs::gauge("mem.peak_rss_bytes");
    rss_gauge.set(obs::peak_rss_bytes());
    static obs::Gauge& cache_bytes_gauge = obs::gauge("session.cache.bytes");
    cache_bytes_gauge.set(static_cast<std::int64_t>(r.cache.bytes));
  }
  return r;
}

MomentResult SolveSession::query(const SessionQuery& q) const {
  return query_impl(q, nullptr, nullptr);
}

MomentResult SolveSession::query(const SessionQuery& q,
                                 QueryRecord* record) const {
  return query_impl(q, nullptr, record);
}

std::vector<MomentResult> SolveSession::query_batch(
    std::span<const SessionQuery> queries) const {
  return query_batch(queries, nullptr);
}

std::vector<MomentResult> SolveSession::query_batch(
    std::span<const SessionQuery> queries,
    std::vector<QueryRecord>* records) const {
  std::vector<MomentResult> out;
  out.reserve(queries.size());
  if (records) records->reserve(records->size() + queries.size());
  std::map<std::string, std::shared_ptr<const MomentResult>> reuse;
  for (const SessionQuery& q : queries) {
    QueryRecord rec;
    out.push_back(query_impl(q, &reuse, records ? &rec : nullptr));
    if (records) records->push_back(std::move(rec));
  }
  return out;
}

}  // namespace somrm::core
