// somrm/core/piecewise.hpp
//
// Piecewise-constant (time-inhomogeneous) second-order MRMs: the model
// parameters (Q, R, S) switch at fixed epochs — day/night traffic profiles,
// staged missions, scheduled degradations. This is the simplest member of
// the inhomogeneous-MRM family the paper points to via its reference [6]
// (Telek, Horváth & Horváth, NSMC 2003), and it reduces exactly to
// machinery this library already has:
//
// Let G^(a)[i][j] = E[ B(t_k)^a ; Z(t_k) = j | Z(0) = i ] be the joint
// accumulated-reward/state moments at the k-th switching epoch. A phase of
// duration tau with per-phase joint moments
// W^(b)[m][j] = E[ B_phase^b ; Z(tau) = j | Z(0) = m ] (computed with
// RandomizationMomentSolver::solve_terminal_weighted seeded by each e_j)
// advances the chain by the binomial convolution
//
//   G'^(n)[i][j] = sum_{a<=n} C(n,a) sum_m G^(a)[i][m] W^(n-a)[m][j],
//
// which is exact: rewards of disjoint phases add, and conditional on the
// switching-state m the phase reward is independent of the past.
//
// Cost: one terminal-weighted solve per (final state, phase) — O(N) solves
// of the usual kind per phase. Intended for moderate state spaces
// (N up to a few hundred); the homogeneous solver remains the tool for the
// 10^5-state regime.

#pragma once

#include <cstddef>
#include <vector>

#include "core/model.hpp"
#include "core/randomization.hpp"

namespace somrm::core {

/// One homogeneous segment of the piecewise model.
struct Phase {
  SecondOrderMrm model;  ///< (Q, R, S) during the segment
  double duration;       ///< segment length (> 0)
};

class PiecewiseMomentSolver {
 public:
  /// @param phases at least one; all phases must share the state-space
  /// size (states keep their identity across switches). The initial
  /// distribution of the FIRST phase's model starts the process; initial
  /// vectors of later phases are ignored (the state carries over).
  explicit PiecewiseMomentSolver(std::vector<Phase> phases);

  /// Moments of the total accumulated reward at the end of every phase
  /// (cumulative times). Result k corresponds to time
  /// sum_{l<=k} duration_l; fields q/d/shift/center are not meaningful for
  /// the composite process and are left zero.
  std::vector<MomentResult> solve(const MomentSolverOptions& options = {}) const;

  /// Convenience: moments at the final epoch only.
  MomentResult solve_final(const MomentSolverOptions& options = {}) const;

  std::size_t num_states() const { return num_states_; }
  std::size_t num_phases() const { return phases_.size(); }

 private:
  std::vector<Phase> phases_;
  std::size_t num_states_ = 0;
};

}  // namespace somrm::core
