// somrm/core/invariants.hpp
//
// Checked-build invariant layer (-DSOMRM_CHECKED=ON).
//
// The paper's headline guarantees (Theorems 3-4) rest on structural
// invariants the solvers assume but — before this layer — never verified:
// the randomized matrices stay sub-stochastic (Lemma 2: Q' stochastic,
// R'h <= h, S'h <= h), the iterates U^(n)(k) stay non-negative and below
// the Lemma-2 majorant 2 k!/(k-n)!, the Theorem-4 truncation bound is
// monotone in G and below epsilon at the chosen G, and the finished
// moments are Jensen-consistent (V^(2) >= (V^(1))^2 per state). This
// header provides the probes plus the SOMRM_CHECK / SOMRM_CHECK_FINITE
// macros that gate them.
//
// Mirrors the SOMRM_OBSERVABILITY pattern (see obs/telemetry.hpp):
//  * -DSOMRM_CHECKED=ON compiles the probes in; a violation throws
//    check::InvariantViolation with the failing state index, moment order,
//    and sweep step k in the message. Probes only READ solver data — they
//    never touch the numeric data flow — so checked output is bit-identical
//    to unchecked output for any valid model.
//  * OFF (the default) collapses the whole surface to inline no-ops; call
//    sites need no #if and the optimizer deletes them.
//  * Within a checked build, check::set_enabled(false) is a runtime
//    kill-switch (used by the ON-vs-OFF bit-identity test); the flag is a
//    relaxed atomic so probes inside parallel_for bodies read it racelessly.
//
// Layering: this header depends only on the standard library so the macro
// tier is usable from linalg (csr.cpp, panel.hpp) without a link-time
// dependency on somrm_core. The model-level probes (ScaledModel / Panel
// arguments) are declared here and defined in invariants.cpp, which is
// compiled into somrm_core.

#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <sstream>
#include <stdexcept>
#include <string>

#ifndef SOMRM_CHECKED
#define SOMRM_CHECKED 0
#endif

#if SOMRM_CHECKED
#include <atomic>
#endif

namespace somrm::linalg {
class Panel;
}
namespace somrm::core {
struct ScaledModel;
}

namespace somrm::check {

/// True when the library was built with -DSOMRM_CHECKED=ON.
constexpr bool kChecked = SOMRM_CHECKED != 0;

/// Thrown by every probe on a violated invariant. Derives from
/// std::logic_error: a firing check means the *code or model data* broke a
/// theorem precondition, not that a request was malformed.
class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Streams all arguments into one string (full double precision). Used to
/// build diagnostics lazily — macro call sites only evaluate it on failure.
template <typename... Args>
std::string fmt(Args&&... args) {
  std::ostringstream os;
  os.precision(17);
  (os << ... << args);
  return os.str();
}

#if SOMRM_CHECKED

namespace detail {
inline std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{true};
  return flag;
}
}  // namespace detail

/// Runtime kill-switch within a checked build (defaults to on). The
/// ON-vs-OFF bit-identity test flips this to prove probes never perturb
/// solver output.
inline bool enabled() {
  return detail::enabled_flag().load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::enabled_flag().store(on, std::memory_order_relaxed);
}

/// Throws InvariantViolation with a uniform prefix naming the check and the
/// source location.
[[noreturn]] inline void fail(const char* check_name, const char* file,
                              int line, const std::string& detail_msg) {
  throw InvariantViolation(fmt("SOMRM_CHECKED violation [", check_name,
                               "] at ", file, ":", line, ": ", detail_msg));
}

/// Every element finite (the NaN/Inf poison sweep). @p what names the
/// array in the diagnostic; the first offending index is reported.
inline void check_finite_span(std::span<const double> v, const char* what,
                              const char* file, int line) {
  if (!enabled()) return;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i]))
      fail("finite", file, line,
           fmt(what, "[", i, "] is not finite (", v[i], ")"));
  }
}

/// Every element >= -tol.
inline void check_nonnegative_span(std::span<const double> v, double tol,
                                   const char* what, const char* file,
                                   int line) {
  if (!enabled()) return;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (!(v[i] >= -tol))
      fail("nonnegative", file, line,
           fmt(what, "[", i, "] = ", v[i], " < -", tol));
  }
}

// ---- Model-level probes (defined in invariants.cpp) -----------------------

/// Lemma-2 sub-stochasticity at model build: Q' non-negative with unit row
/// sums, R'/S' diagonals finite, S' non-negative; when
/// @p enforce_reward_bounds (kSafe scaling — the policy Theorem 4 needs)
/// additionally |R'_i| <= 1 and S'_i <= 1. Reports the failing state index.
void check_scaled_model(const core::ScaledModel& scaled,
                        bool enforce_reward_bounds, const char* context);

/// One iterate column U^(j)(k) after a sweep step: finite everywhere
/// (the per-step NaN/Inf poison sweep), non-negative when
/// @p subtraction_free (shift-mode scaling), and — when @p apply_majorant —
/// within the Lemma-2 majorant |U^(j)(k)_i| <= 2 k!/(k-j)! for k >= j
/// (valid for the plain solver; the impulse recursion obeys a different
/// bound, so it passes false). Reports state index i, moment order j, and
/// step k.
void check_sweep_column(std::span<const double> u_j, std::size_t k,
                        std::size_t j, bool subtraction_free,
                        bool apply_majorant, const char* context);

/// Whole-panel version of check_sweep_column for the row-major panel
/// kernels: checks columns j_lo..width-1 of @p u at step @p k, plus (when
/// j_lo == 1) that column 0 still holds the invariant all-ones vector h.
void check_sweep_panel(const linalg::Panel& u, std::size_t k,
                       std::size_t j_lo, bool subtraction_free,
                       bool apply_majorant, const char* context);

/// Theorem-4 truncation-bound sanity at the chosen G: the bound must be
/// monotone non-increasing in G (bound_at_g <= bound_at_g_minus_1) and at
/// most epsilon. Called with the realized bounds so the probe stays
/// independent of how the caller computes them.
void check_truncation_bound(double bound_at_g, double bound_at_g_minus_1,
                            double epsilon, std::size_t g,
                            const char* context);

/// Jensen / moment consistency at finalize: V^(2)_i >= (V^(1)_i)^2 - tol
/// per state, with tol derived from the Theorem-4 budget @p epsilon plus
/// relative rounding slack. Reports the failing state index and both
/// moments.
void check_moment_consistency(std::span<const double> v1,
                              std::span<const double> v2, double epsilon,
                              const char* context);

#else  // SOMRM_CHECKED == 0: the whole surface is an inline no-op.

inline bool enabled() { return false; }
inline void set_enabled(bool) {}

inline void check_finite_span(std::span<const double>, const char*,
                              const char*, int) {}
inline void check_nonnegative_span(std::span<const double>, double,
                                   const char*, const char*, int) {}
inline void check_scaled_model(const core::ScaledModel&, bool, const char*) {}
inline void check_sweep_column(std::span<const double>, std::size_t,
                               std::size_t, bool, bool, const char*) {}
inline void check_sweep_panel(const linalg::Panel&, std::size_t, std::size_t,
                              bool, bool, const char*) {}
inline void check_truncation_bound(double, double, double, std::size_t,
                                   const char*) {}
inline void check_moment_consistency(std::span<const double>,
                                     std::span<const double>, double,
                                     const char*) {}

#endif  // SOMRM_CHECKED

}  // namespace somrm::check

// Condition macro: evaluates @p cond only in checked builds with checks
// enabled; @p detail_expr (anything streamable via check::fmt at the call
// site) is only evaluated on failure.
#if SOMRM_CHECKED
#define SOMRM_CHECK(cond, name, detail_expr)                              \
  do {                                                                    \
    if (::somrm::check::enabled() && !(cond))                             \
      ::somrm::check::fail(name, __FILE__, __LINE__, detail_expr);        \
  } while (0)
#define SOMRM_CHECK_FINITE(values_span, what)                             \
  ::somrm::check::check_finite_span(values_span, what, __FILE__, __LINE__)
#define SOMRM_CHECK_NONNEGATIVE(values_span, tol, what)                   \
  ::somrm::check::check_nonnegative_span(values_span, tol, what, __FILE__, \
                                         __LINE__)
#else
#define SOMRM_CHECK(cond, name, detail_expr) ((void)0)
#define SOMRM_CHECK_FINITE(values_span, what) ((void)0)
#define SOMRM_CHECK_NONNEGATIVE(values_span, tol, what) ((void)0)
#endif
