#include "core/first_order.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/moment_utils.hpp"
#include "prob/poisson.hpp"

namespace somrm::core {

FirstOrderMrm::FirstOrderMrm(ctmc::Generator generator, linalg::Vec rates,
                             linalg::Vec initial)
    : generator_(std::move(generator)),
      rates_(std::move(rates)),
      initial_(std::move(initial)) {
  const std::size_t n = generator_.num_states();
  if (rates_.size() != n)
    throw std::invalid_argument("FirstOrderMrm: rate vector size mismatch");
  if (initial_.size() != n)
    throw std::invalid_argument("FirstOrderMrm: initial vector size mismatch");
  for (double r : rates_)
    if (!std::isfinite(r))
      throw std::invalid_argument("FirstOrderMrm: non-finite rate");
  double total = 0.0;
  for (double p : initial_) {
    if (p < -1e-12)
      throw std::invalid_argument("FirstOrderMrm: negative initial probability");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-9)
    throw std::invalid_argument("FirstOrderMrm: initial must sum to 1");
}

SecondOrderMrm FirstOrderMrm::as_second_order() const {
  return SecondOrderMrm(generator_, rates_, linalg::zeros(num_states()),
                        initial_);
}

FirstOrderMomentSolver::FirstOrderMomentSolver(FirstOrderMrm model)
    : model_(std::move(model)) {}

MomentResult FirstOrderMomentSolver::solve(
    double t, const MomentSolverOptions& options) const {
  const double times[] = {t};
  return solve_multi(times, options).front();
}

std::vector<MomentResult> FirstOrderMomentSolver::solve_multi(
    std::span<const double> times, const MomentSolverOptions& options) const {
  for (double t : times)
    if (!(t >= 0.0))
      throw std::invalid_argument("solve_multi: times must be >= 0");
  if (!(options.epsilon > 0.0))
    throw std::invalid_argument("solve_multi: epsilon must be positive");

  const std::size_t n = options.max_moment;
  const std::size_t num_states = model_.num_states();
  const double q = model_.generator().uniformization_rate();
  const double shift = std::min(0.0, linalg::min_elem(model_.rates()));

  std::vector<MomentResult> results(times.size());
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    results[ti].time = times[ti];
    results[ti].q = q;
    results[ti].shift = shift;
  }

  // No transitions: reward is exactly r_i t from state i.
  if (q == 0.0) {
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      MomentResult& out = results[ti];
      out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
      for (std::size_t i = 0; i < num_states; ++i) {
        double pow = 1.0;
        for (std::size_t j = 0; j <= n; ++j) {
          out.per_state[j][i] = pow;
          pow *= model_.rates()[i] * times[ti];
        }
      }
      out.weighted.resize(n + 1);
      for (std::size_t j = 0; j <= n; ++j)
        out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
    }
    return results;
  }

  linalg::Vec shifted = model_.rates();
  for (double& r : shifted) r -= shift;
  const double d = linalg::max_elem(shifted) / q;
  for (auto& r : results) r.d = d;

  const linalg::CsrMatrix q_prime = model_.generator().uniformized_dtmc();
  linalg::Vec r_prime = shifted;
  if (d > 0.0) linalg::scale(1.0 / (q * d), r_prime);

  std::vector<std::size_t> trunc(times.size(), 0);
  std::size_t g_max = 0;
  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = q * times[ti];
    std::size_t g = 0;
    for (std::size_t j = 0; j <= n; ++j)
      g = std::max(g, RandomizationMomentSolver::truncation_point(
                          qt, j, d, options.epsilon));
    trunc[ti] = g;
    results[ti].truncation_point = g;
    g_max = std::max(g_max, g);
  }

  std::vector<linalg::Vec> u(n + 1, linalg::zeros(num_states));
  u[0] = linalg::ones(num_states);
  std::vector<std::vector<linalg::Vec>> acc(
      times.size(), std::vector<linalg::Vec>(n + 1, linalg::zeros(num_states)));

  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    const double qt = q * times[ti];
    linalg::axpy(qt > 0.0 ? prob::poisson_pmf(0, qt) : 1.0, u[0], acc[ti][0]);
  }

  linalg::Vec scratch(num_states, 0.0);
  for (std::size_t k = 1; k <= g_max; ++k) {
    for (std::size_t j = n; j >= 1; --j) {
      q_prime.multiply(u[j], scratch);
      const linalg::Vec& lower = u[j - 1];
      for (std::size_t i = 0; i < num_states; ++i)
        scratch[i] += r_prime[i] * lower[i];
      std::swap(u[j], scratch);
    }
    for (std::size_t ti = 0; ti < times.size(); ++ti) {
      if (k > trunc[ti]) continue;
      const double qt = q * times[ti];
      if (qt == 0.0) continue;
      const double w = prob::poisson_pmf(k, qt);
      if (w == 0.0) continue;
      for (std::size_t j = 0; j <= n; ++j) linalg::axpy(w, u[j], acc[ti][j]);
    }
  }

  for (std::size_t ti = 0; ti < times.size(); ++ti) {
    MomentResult& out = results[ti];
    double factor = 1.0;
    for (std::size_t j = 0; j <= n; ++j) {
      if (j > 0) factor *= static_cast<double>(j) * d;
      linalg::scale(factor, acc[ti][j]);
    }
    out.per_state.assign(n + 1, linalg::Vec(num_states, 0.0));
    if (shift == 0.0) {
      out.per_state = std::move(acc[ti]);
    } else {
      const double delta = shift * times[ti];
      std::vector<double> raw(n + 1);
      for (std::size_t i = 0; i < num_states; ++i) {
        for (std::size_t j = 0; j <= n; ++j) raw[j] = acc[ti][j][i];
        const auto back = shift_raw_moments(raw, delta);
        for (std::size_t j = 0; j <= n; ++j) out.per_state[j][i] = back[j];
      }
    }
    out.weighted.resize(n + 1);
    for (std::size_t j = 0; j <= n; ++j)
      out.weighted[j] = linalg::dot(model_.initial(), out.per_state[j]);
  }
  return results;
}

}  // namespace somrm::core
