#include "core/piecewise.hpp"

#include <stdexcept>

#include "core/moment_utils.hpp"

namespace somrm::core {

PiecewiseMomentSolver::PiecewiseMomentSolver(std::vector<Phase> phases)
    : phases_(std::move(phases)) {
  if (phases_.empty())
    throw std::invalid_argument("PiecewiseMomentSolver: need >= 1 phase");
  num_states_ = phases_.front().model.num_states();
  for (const Phase& p : phases_) {
    if (p.model.num_states() != num_states_)
      throw std::invalid_argument(
          "PiecewiseMomentSolver: all phases must share the state space");
    if (!(p.duration > 0.0))
      throw std::invalid_argument(
          "PiecewiseMomentSolver: phase durations must be positive");
  }
}

std::vector<MomentResult> PiecewiseMomentSolver::solve(
    const MomentSolverOptions& options) const {
  if (options.center != 0.0)
    throw std::invalid_argument(
        "PiecewiseMomentSolver: centering is not supported for composite "
        "processes");
  const std::size_t n = options.max_moment;
  const std::size_t ns = num_states_;

  // G[a][i][j] = E[B^a ; Z = j | Z(0) = i]; starts as the identity in j
  // with zero accumulated reward.
  std::vector<std::vector<linalg::Vec>> g(
      n + 1, std::vector<linalg::Vec>(ns, linalg::zeros(ns)));
  for (std::size_t i = 0; i < ns; ++i) g[0][i][i] = 1.0;

  std::vector<MomentResult> results;
  results.reserve(phases_.size());
  double cumulative_time = 0.0;

  for (const Phase& phase : phases_) {
    cumulative_time += phase.duration;

    // Phase-local joint moments W[b][m][j], one terminal-weighted solve
    // per final state j.
    const RandomizationMomentSolver solver(phase.model);
    std::vector<std::vector<linalg::Vec>> w(
        n + 1, std::vector<linalg::Vec>(ns, linalg::zeros(ns)));
    for (std::size_t j = 0; j < ns; ++j) {
      const auto res = solver.solve_terminal_weighted(
          phase.duration, linalg::unit_vec(ns, j), options);
      for (std::size_t b = 0; b <= n; ++b)
        for (std::size_t m = 0; m < ns; ++m)
          w[b][m][j] = res.per_state[b][m];
    }

    // Binomial convolution across the switching epoch.
    std::vector<std::vector<linalg::Vec>> g_next(
        n + 1, std::vector<linalg::Vec>(ns, linalg::zeros(ns)));
    for (std::size_t total = 0; total <= n; ++total) {
      for (std::size_t a = 0; a <= total; ++a) {
        const double binom = binomial_coefficient(total, a);
        const std::size_t b = total - a;
        for (std::size_t i = 0; i < ns; ++i) {
          for (std::size_t m = 0; m < ns; ++m) {
            const double gim = g[a][i][m];
            if (gim == 0.0) continue;
            const double c = binom * gim;
            linalg::axpy(c, w[b][m], g_next[total][i]);
          }
        }
      }
    }
    g = std::move(g_next);

    // Marginalize the final state for the caller-facing result.
    MomentResult out;
    out.time = cumulative_time;
    out.per_state.assign(n + 1, linalg::zeros(ns));
    for (std::size_t a = 0; a <= n; ++a)
      for (std::size_t i = 0; i < ns; ++i)
        out.per_state[a][i] = linalg::sum(g[a][i]);
    out.weighted.resize(n + 1);
    const auto& initial = phases_.front().model.initial();
    for (std::size_t a = 0; a <= n; ++a)
      out.weighted[a] = linalg::dot(initial, out.per_state[a]);
    results.push_back(std::move(out));
  }
  return results;
}

MomentResult PiecewiseMomentSolver::solve_final(
    const MomentSolverOptions& options) const {
  return solve(options).back();
}

}  // namespace somrm::core
