// somrm/core/ode_solver.hpp
//
// Theorem-2 baseline: direct numerical integration of the coupled moment
// ODEs
//
//   d/dt V^(n)(t) = Q V^(n)(t) + n R V^(n-1)(t) + 1/2 n(n-1) S V^(n-2)(t),
//   V^(0)(0) = h,  V^(n)(0) = 0 (n >= 1).
//
// The paper validated its randomization method against "a numerical ODE
// solver (working based on eq. 6 using trapezoid rule)"; both that implicit
// trapezoid scheme (A-stable, linear solves via BiCGSTAB) and an explicit
// RK4 integrator (cheap for mildly stiff chains) are provided. The
// bench/solver_agreement harness reproduces the paper's three-way agreement
// claim with these.

#pragma once

#include "core/impulse_model.hpp"
#include "core/model.hpp"
#include "core/randomization.hpp"  // MomentResult

namespace somrm::core {

enum class OdeMethod {
  kRk4,        ///< classic explicit Runge-Kutta 4; needs h ≲ 1.4/q
  kTrapezoid,  ///< implicit trapezoid (Crank-Nicolson), A-stable
};

struct OdeSolverOptions {
  std::size_t max_moment = 3;
  /// Number of equal time steps. For RK4 with enforce_stability (default)
  /// the step count is raised to ceil(3 q t) when the request is below the
  /// explicit stability limit.
  std::size_t num_steps = 1000;
  bool enforce_stability = true;
  /// Linear-solver tolerance for the trapezoid method.
  double linear_tolerance = 1e-13;
};

/// Integrates the Theorem-2 system to time t and returns the same result
/// structure as the randomization solver (truncation_point reports the
/// number of time steps actually taken; error_bound is 0 — no a priori
/// bound exists for this baseline, which is part of the paper's point).
MomentResult solve_moments_ode(const SecondOrderMrm& model, double t,
                               OdeMethod method,
                               const OdeSolverOptions& options = {});

/// Impulse-model variant: the moment ODEs gain the convolution terms
/// sum_{j>=1} C(n,j) A_j V^(n-j) with (A_j)_ik = q_ik mu_j(m_ik, w_ik)
/// (see core/impulse_randomization.hpp). RK4 only — the implicit trapezoid
/// offers no benefit here and the impulse terms are lower-triangular in the
/// moment index anyway. Serves as an independent deterministic cross-check
/// of ImpulseMomentSolver.
MomentResult solve_moments_ode(const SecondOrderImpulseMrm& model, double t,
                               const OdeSolverOptions& options = {});

}  // namespace somrm::core
