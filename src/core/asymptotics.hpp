// somrm/core/asymptotics.hpp
//
// Long-run (t -> infinity) behaviour of the accumulated reward. For an
// irreducible structure chain with stationary vector pi and deviation
// matrix D = Z - Pi (Z = (Pi - Q)^{-1} the fundamental matrix):
//
//   E[B(t)]  =  rho t + bias + o(1),        rho  = pi . r,
//                                           bias = p(0) D r,
//   Var[B(t)] =  v t + O(1),                v    = pi . s  +  2 (pi o r) D r,
//
// where (pi o r) is the elementwise product. The pi.s term is the
// within-state Brownian variance (absent in first-order models); the D term
// is the classical Markov-modulation variance. The central limit theorem
// for additive functionals then gives B(t) ~ N(rho t + bias, v t) for large
// t — a cheap approximation the tests validate against the exact
// randomization solver.
//
// Dense computation (one LU solve of order N): intended for chains up to a
// few thousand states.

#pragma once

#include "core/model.hpp"
#include "linalg/dense.hpp"

namespace somrm::core {

struct AsymptoticRewardStats {
  double rate = 0.0;           ///< rho = pi . r
  double bias = 0.0;           ///< lim ( E[B(t)] - rho t ) for the model's p(0)
  double variance_rate = 0.0;  ///< v: Var[B(t)] / t -> v
  linalg::Vec stationary;      ///< pi
};

/// Computes long-run reward statistics. Requires an irreducible chain
/// (throws std::runtime_error otherwise, via the GTH solver).
AsymptoticRewardStats asymptotic_reward_stats(const SecondOrderMrm& model);

/// The deviation matrix D = (Pi - Q)^{-1} - Pi of an irreducible generator,
/// exposed for tests and for callers needing other additive-functional
/// statistics. Row i of Pi is pi for every i.
linalg::DenseMatrix deviation_matrix(const ctmc::Generator& gen,
                                     std::span<const double> stationary);

}  // namespace somrm::core
