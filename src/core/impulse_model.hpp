// somrm/core/impulse_model.hpp
//
// Second-order Markov reward model with impulse rewards — the extension the
// paper's introduction points at ("we ... do not consider impulse reward
// accumulation. However, the introduced solution method allows to relax
// these restrictions").
//
// On top of the Brownian rate reward, each transition i -> k instantly adds
// an impulse drawn from N(m_ik, w_ik), independent of everything else.
// w_ik = 0 gives the classical deterministic impulse of Qureshi & Sanders;
// m = w = 0 on every transition recovers the plain second-order MRM. Normal
// impulses compose seamlessly with the Brownian machinery: the transform
// factor of a transition becomes e^{-v m + v^2 w / 2}, the same shape as a
// sojourn's Brownian factor.

#pragma once

#include "core/model.hpp"
#include "linalg/csr.hpp"

namespace somrm::core {

class SecondOrderImpulseMrm {
 public:
  /// @param base          the rate-reward model (Q, R, S, pi)
  /// @param impulse_mean  m_ik per transition; entries allowed only where
  ///                      q_ik > 0, i != k
  /// @param impulse_var   w_ik >= 0, same sparsity restriction
  ///
  /// Both matrices are indexed like Q; missing entries mean zero impulse.
  /// Throws std::invalid_argument on shape/sparsity/sign violations.
  SecondOrderImpulseMrm(SecondOrderMrm base, linalg::CsrMatrix impulse_mean,
                        linalg::CsrMatrix impulse_var);

  /// Convenience: the same deterministic impulse on every transition.
  static SecondOrderImpulseMrm uniform_impulse(SecondOrderMrm base,
                                               double mean,
                                               double variance = 0.0);

  const SecondOrderMrm& base() const { return base_; }
  std::size_t num_states() const { return base_.num_states(); }
  const linalg::CsrMatrix& impulse_mean() const { return impulse_mean_; }
  const linalg::CsrMatrix& impulse_var() const { return impulse_var_; }

  /// True when every impulse mean and variance is zero.
  bool has_no_impulses() const;

  /// max over transitions of |m_ik|.
  double max_abs_impulse_mean() const;

  /// max over transitions of w_ik.
  double max_impulse_variance() const;

 private:
  SecondOrderMrm base_;
  linalg::CsrMatrix impulse_mean_;
  linalg::CsrMatrix impulse_var_;
};

}  // namespace somrm::core
