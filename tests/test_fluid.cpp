// Tests for the second-order fluid simulator (the section-4 contrast
// system), anchored by reflected-Brownian closed forms.

#include "sim/fluid_simulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/simulator.hpp"

namespace somrm::sim {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm uniform_model(double r, double s2) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{r, r}, Vec{s2, s2},
                              Vec{1.0, 0.0});
}

TEST(FluidSimulatorTest, DeterministicPositiveDriftNeverReflects) {
  // sigma = 0, r > 0, start at 0: level = r t exactly (no boundary contact
  // from above, no cap).
  const FluidSimulator sim(uniform_model(2.0, 0.0));
  somrm::prob::Rng rng(4);
  for (int i = 0; i < 10; ++i)
    EXPECT_NEAR(sim.sample_level(1.5, 0.0, 1e18, 1e-3, rng), 3.0, 1e-12);
}

TEST(FluidSimulatorTest, DeterministicNegativeDriftPinsAtZero) {
  const FluidSimulator sim(uniform_model(-3.0, 0.0));
  somrm::prob::Rng rng(4);
  EXPECT_DOUBLE_EQ(sim.sample_level(5.0, 1.0, 1e18, 1e-3, rng), 0.0);
}

TEST(FluidSimulatorTest, BufferCapRespected) {
  const FluidSimulator sim(uniform_model(4.0, 0.5));
  FluidSimulationOptions opts;
  opts.num_replications = 200;
  opts.buffer_size = 2.0;
  opts.seed = 6;
  const auto levels = sim.sample_levels(3.0, opts);
  for (double v : levels) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 2.0);
  }
}

TEST(FluidSimulatorTest, ReflectedBrownianStationaryIsExponential) {
  // Reflected BM with drift -mu < 0 and variance s2 has stationary density
  // Exp(2 mu / s2). Compare mean and a CDF point at a long horizon.
  const double mu = 1.0, s2 = 2.0;
  const FluidSimulator sim(uniform_model(-mu, s2));
  FluidSimulationOptions opts;
  opts.num_replications = 4000;
  opts.max_step = 5e-4;
  opts.seed = 33;
  auto levels = sim.sample_levels(8.0, opts);  // ~stationary by then

  const double rate = 2.0 * mu / s2;  // = 1
  double mean = 0.0;
  for (double v : levels) mean += v;
  mean /= static_cast<double>(levels.size());
  EXPECT_NEAR(mean, 1.0 / rate, 0.06);

  std::sort(levels.begin(), levels.end());
  const double cdf1 = empirical_cdf(levels, 1.0, /*sorted=*/true);
  EXPECT_NEAR(cdf1, 1.0 - std::exp(-rate * 1.0), 0.04);
}

TEST(FluidSimulatorTest, Section4FluidDiffersFromUnboundedReward) {
  // Same (Q, R, S): the reflected fluid level and the unbounded accumulated
  // reward have visibly different laws once the boundary is felt — the
  // paper's reason the reward solution does not transfer to fluid models.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 2.0}});
  const core::SecondOrderMrm model(std::move(gen), Vec{1.0, -2.0},
                                   Vec{0.5, 0.5}, Vec{1.0, 0.0});
  const double t = 2.0;

  const FluidSimulator fluid(model);
  FluidSimulationOptions fopts;
  fopts.num_replications = 5000;
  fopts.seed = 17;
  auto levels = fluid.sample_levels(t, fopts);

  const Simulator reward(model);
  auto rewards = reward.sample_rewards(t, 5000, 18);

  // The reward goes negative often (net drift is negative); the fluid
  // level cannot.
  double frac_negative = 0.0;
  for (double b : rewards)
    if (b < 0.0) frac_negative += 1.0;
  frac_negative /= static_cast<double>(rewards.size());
  EXPECT_GT(frac_negative, 0.3);
  for (double v : levels) EXPECT_GE(v, 0.0);

  // And the means differ materially (reflection adds mass above).
  double mean_fluid = 0.0, mean_reward = 0.0;
  for (double v : levels) mean_fluid += v;
  for (double b : rewards) mean_reward += b;
  mean_fluid /= static_cast<double>(levels.size());
  mean_reward /= static_cast<double>(rewards.size());
  EXPECT_GT(mean_fluid, mean_reward + 0.3);
}

TEST(FluidSimulatorTest, InputValidation) {
  const FluidSimulator sim(uniform_model(1.0, 1.0));
  somrm::prob::Rng rng(1);
  EXPECT_THROW(sim.sample_level(-1.0, 0.0, 1.0, 1e-3, rng),
               std::invalid_argument);
  EXPECT_THROW(sim.sample_level(1.0, 0.0, 1.0, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(sim.sample_level(1.0, 2.0, 1.0, 1e-3, rng),
               std::invalid_argument);
  FluidSimulationOptions bad;
  bad.num_replications = 0;
  EXPECT_THROW(sim.sample_levels(1.0, bad), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::sim
