// Tests for the Theorem-2 ODE baselines (RK4 and implicit trapezoid) and
// their agreement with the randomization solver.

#include "core/ode_solver.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/randomization.hpp"
#include "prob/normal.hpp"

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

SecondOrderMrm test_model() {
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 1.0}, {1, 2, 1.5},
                              {2, 1, 3.0}});
  return SecondOrderMrm(std::move(gen), Vec{4.0, 1.0, -0.5},
                        Vec{0.3, 1.0, 0.2}, Vec{1.0, 0.0, 0.0});
}

TEST(OdeSolverTest, Rk4MatchesRandomization) {
  const SecondOrderMrm m = test_model();
  const RandomizationMomentSolver rand_solver(m);
  MomentSolverOptions ropts;
  ropts.epsilon = 1e-12;
  const auto ref = rand_solver.solve(1.0, ropts);

  OdeSolverOptions oopts;
  oopts.num_steps = 200;
  const auto ode = solve_moments_ode(m, 1.0, OdeMethod::kRk4, oopts);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(ode.weighted[j], ref.weighted[j],
                1e-7 * (1.0 + std::abs(ref.weighted[j])))
        << "moment " << j;
}

TEST(OdeSolverTest, TrapezoidMatchesRandomization) {
  const SecondOrderMrm m = test_model();
  const RandomizationMomentSolver rand_solver(m);
  MomentSolverOptions ropts;
  ropts.epsilon = 1e-12;
  const auto ref = rand_solver.solve(0.8, ropts);

  OdeSolverOptions oopts;
  oopts.num_steps = 4000;  // trapezoid is O(h^2)
  const auto ode = solve_moments_ode(m, 0.8, OdeMethod::kTrapezoid, oopts);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(ode.weighted[j], ref.weighted[j],
                1e-5 * (1.0 + std::abs(ref.weighted[j])))
        << "moment " << j;
}

TEST(OdeSolverTest, BrownianClosedFormAnchor) {
  // Uniform rewards: exact N(rt, s2 t) moments.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 2.0}});
  const SecondOrderMrm m(std::move(gen), Vec{2.0, 2.0}, Vec{1.5, 1.5},
                         Vec{1.0, 0.0});
  OdeSolverOptions opts;
  opts.num_steps = 400;
  const auto res = solve_moments_ode(m, 0.5, OdeMethod::kRk4, opts);
  const auto exact = prob::brownian_raw_moments(2.0, 1.5, 0.5, 3);
  for (std::size_t j = 0; j <= 3; ++j)
    EXPECT_NEAR(res.weighted[j], exact[j], 1e-8 + 1e-8 * std::abs(exact[j]));
}

TEST(OdeSolverTest, TrapezoidConvergesSecondOrder) {
  // Halving h should cut the error by ~4x.
  const SecondOrderMrm m = test_model();
  const RandomizationMomentSolver rand_solver(m);
  MomentSolverOptions ropts;
  ropts.epsilon = 1e-13;
  const double ref = rand_solver.solve(0.5, ropts).weighted[2];

  OdeSolverOptions coarse, fine;
  coarse.num_steps = 100;
  fine.num_steps = 200;
  const double e_coarse = std::abs(
      solve_moments_ode(m, 0.5, OdeMethod::kTrapezoid, coarse).weighted[2] -
      ref);
  const double e_fine = std::abs(
      solve_moments_ode(m, 0.5, OdeMethod::kTrapezoid, fine).weighted[2] -
      ref);
  EXPECT_LT(e_fine, e_coarse / 2.5);
}

TEST(OdeSolverTest, StabilityEnforcementRaisesStepCount) {
  const SecondOrderMrm m = test_model();  // q = 4.5ish
  OdeSolverOptions opts;
  opts.num_steps = 2;  // far below the explicit stability limit
  const auto res = solve_moments_ode(m, 2.0, OdeMethod::kRk4, opts);
  EXPECT_GE(res.truncation_point, 18u);  // raised internally to ~3qt
  EXPECT_TRUE(std::isfinite(res.weighted[3]));
}

TEST(OdeSolverTest, TimeZeroReturnsInitialMoments) {
  const auto res =
      solve_moments_ode(test_model(), 0.0, OdeMethod::kTrapezoid);
  EXPECT_DOUBLE_EQ(res.weighted[0], 1.0);
  EXPECT_DOUBLE_EQ(res.weighted[1], 0.0);
}

TEST(OdeSolverTest, InputValidation) {
  EXPECT_THROW(solve_moments_ode(test_model(), -1.0, OdeMethod::kRk4),
               std::invalid_argument);
  OdeSolverOptions bad;
  bad.num_steps = 0;
  EXPECT_THROW(solve_moments_ode(test_model(), 1.0, OdeMethod::kRk4, bad),
               std::invalid_argument);
}

}  // namespace
}  // namespace somrm::core
