// Tests for the SecondOrderMrm model type.

#include "core/model.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace somrm::core {
namespace {

using linalg::Triplet;
using linalg::Vec;

ctmc::Generator two_state_gen() {
  return ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 2.0}});
}

TEST(ModelTest, ConstructionStoresComponents) {
  const SecondOrderMrm m(two_state_gen(), Vec{1.0, -2.0}, Vec{0.5, 0.0},
                         Vec{0.25, 0.75});
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_EQ(m.drifts(), (Vec{1.0, -2.0}));
  EXPECT_EQ(m.variances(), (Vec{0.5, 0.0}));
  EXPECT_EQ(m.initial(), (Vec{0.25, 0.75}));
}

TEST(ModelTest, SizeMismatchesRejected) {
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0}, Vec{0.0, 0.0},
                              Vec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{0.0},
                              Vec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{0.0, 0.0},
                              Vec{1.0}),
               std::invalid_argument);
}

TEST(ModelTest, NegativeVarianceRejected) {
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{-0.1, 0.0},
                              Vec{1.0, 0.0}),
               std::invalid_argument);
}

TEST(ModelTest, NonFiniteParametersRejected) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{inf, 1.0}, Vec{0.0, 0.0},
                              Vec{1.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{inf, 0.0},
                              Vec{1.0, 0.0}),
               std::invalid_argument);
}

TEST(ModelTest, InitialMustBeProbabilityVector) {
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{0.0, 0.0},
                              Vec{0.5, 0.4}),
               std::invalid_argument);
  EXPECT_THROW(SecondOrderMrm(two_state_gen(), Vec{1.0, 1.0}, Vec{0.0, 0.0},
                              Vec{-0.5, 1.5}),
               std::invalid_argument);
}

TEST(ModelTest, FirstOrderDetection) {
  const SecondOrderMrm first(two_state_gen(), Vec{1.0, 2.0}, Vec{0.0, 0.0},
                             Vec{1.0, 0.0});
  EXPECT_TRUE(first.is_first_order());
  const SecondOrderMrm second(two_state_gen(), Vec{1.0, 2.0}, Vec{0.0, 0.1},
                              Vec{1.0, 0.0});
  EXPECT_FALSE(second.is_first_order());
}

TEST(ModelTest, DriftAndVarianceExtremes) {
  const SecondOrderMrm m(two_state_gen(), Vec{-3.0, 5.0}, Vec{0.5, 7.0},
                         Vec{1.0, 0.0});
  EXPECT_DOUBLE_EQ(m.min_drift(), -3.0);
  EXPECT_DOUBLE_EQ(m.max_drift(), 5.0);
  EXPECT_DOUBLE_EQ(m.max_variance(), 7.0);
}

TEST(ModelTest, StationaryRewardRate) {
  const SecondOrderMrm m(two_state_gen(), Vec{10.0, 2.0}, Vec{0.0, 0.0},
                         Vec{1.0, 0.0});
  EXPECT_DOUBLE_EQ(m.stationary_reward_rate(Vec{0.5, 0.5}), 6.0);
}

TEST(ModelTest, ShiftedDriftsArePathwiseConsistent) {
  const SecondOrderMrm m(two_state_gen(), Vec{-1.0, 4.0}, Vec{0.3, 0.2},
                         Vec{1.0, 0.0});
  const SecondOrderMrm shifted = m.with_shifted_drifts(-1.0);
  EXPECT_EQ(shifted.drifts(), (Vec{0.0, 5.0}));
  EXPECT_EQ(shifted.variances(), m.variances());
}

TEST(ModelTest, WithInitialReplacesDistribution) {
  const SecondOrderMrm m(two_state_gen(), Vec{1.0, 2.0}, Vec{0.0, 0.0},
                         Vec{1.0, 0.0});
  const SecondOrderMrm m2 = m.with_initial(Vec{0.0, 1.0});
  EXPECT_EQ(m2.initial(), (Vec{0.0, 1.0}));
  EXPECT_THROW(m.with_initial(Vec{0.7, 0.7}), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::core
