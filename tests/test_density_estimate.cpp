// Tests for the Gram-Charlier moment-based density estimate and the
// quantile bounds added to MomentBounder.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "bounds/density_estimate.hpp"
#include "bounds/moment_bounds.hpp"
#include "core/randomization.hpp"
#include "density/transform_solver.hpp"
#include "prob/normal.hpp"

namespace somrm::bounds {
namespace {

TEST(HermiteTest, LowOrderClosedForms) {
  for (double x : {-2.0, -0.5, 0.0, 1.0, 3.0}) {
    EXPECT_DOUBLE_EQ(hermite_polynomial(0, x), 1.0);
    EXPECT_DOUBLE_EQ(hermite_polynomial(1, x), x);
    EXPECT_DOUBLE_EQ(hermite_polynomial(2, x), x * x - 1.0);
    EXPECT_DOUBLE_EQ(hermite_polynomial(3, x), x * x * x - 3.0 * x);
    EXPECT_NEAR(hermite_polynomial(4, x),
                x * x * x * x - 6.0 * x * x + 3.0, 1e-12);
  }
}

TEST(HermiteTest, RecurrenceConsistency) {
  for (std::size_t k = 2; k <= 10; ++k) {
    for (double x : {-1.3, 0.4, 2.2}) {
      EXPECT_NEAR(hermite_polynomial(k, x),
                  x * hermite_polynomial(k - 1, x) -
                      static_cast<double>(k - 1) *
                          hermite_polynomial(k - 2, x),
                  1e-9 * std::abs(hermite_polynomial(k, x)) + 1e-12);
    }
  }
}

TEST(GramCharlierTest, ExactForNormalInput) {
  // All corrections vanish for normal moments: recover N(mu, s2) exactly.
  const auto raw = prob::normal_raw_moments(2.0, 4.0, 8);
  const GramCharlierDensity gc(raw, 8);
  EXPECT_DOUBLE_EQ(gc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(gc.stddev(), 2.0);
  for (double x : {-2.0, 0.0, 2.0, 4.0, 6.0}) {
    EXPECT_NEAR(gc.pdf(x), prob::normal_pdf(x, 2.0, 4.0), 1e-10);
    EXPECT_NEAR(gc.cdf(x), prob::normal_cdf(x, 2.0, 4.0), 1e-10);
  }
}

TEST(GramCharlierTest, CapturesSkewOfRewardDistribution) {
  // Accumulated reward of a 2-state model: mildly skewed; the order-6
  // Gram-Charlier density must beat the plain normal fit against the exact
  // transform-domain density.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<linalg::Triplet>{{0, 1, 3.0}, {1, 0, 2.0}});
  const core::SecondOrderMrm model(std::move(gen), linalg::Vec{2.0, -1.0},
                                   linalg::Vec{0.5, 1.5},
                                   linalg::Vec{1.0, 0.0});
  const double t = 0.6;

  core::MomentSolverOptions opts;
  opts.max_moment = 6;
  opts.epsilon = 1e-12;
  const auto res = core::RandomizationMomentSolver(model).solve(t, opts);
  const GramCharlierDensity gc(res.weighted, 6);
  const GramCharlierDensity normal_fit(res.weighted, 2);

  density::TransformSolverOptions topts;
  topts.grid = {-8.0, 10.0, 2048};
  const auto exact = density::density_via_transform(model, t, topts);

  double gc_err = 0.0, normal_err = 0.0;
  for (std::size_t j = 200; j < 1800; j += 40) {
    const double x = exact.x[j];
    gc_err = std::max(gc_err, std::abs(gc.pdf(x) - exact.weighted[j]));
    normal_err =
        std::max(normal_err, std::abs(normal_fit.pdf(x) - exact.weighted[j]));
  }
  EXPECT_LT(gc_err, 0.6 * normal_err);
  EXPECT_LT(gc_err, 0.02);
}

TEST(GramCharlierTest, CdfMonotoneNearCenterAndClamped) {
  const auto raw = prob::normal_raw_moments(0.0, 1.0, 6);
  const GramCharlierDensity gc(raw, 6);
  double prev = -1.0;
  for (double x = -3.0; x <= 3.0; x += 0.25) {
    const double c = gc.cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    prev = c;
  }
}

TEST(GramCharlierTest, InputValidation) {
  EXPECT_THROW(GramCharlierDensity(std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(GramCharlierDensity(std::vector<double>{0.0, 0.0, 1.0}),
               std::invalid_argument);
}

TEST(QuantileBoundsTest, BracketTrueNormalQuantiles) {
  const auto raw = prob::normal_raw_moments(1.0, 4.0, 14);
  const MomentBounder bounder(raw);
  for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const auto qb = bounder.quantile_bounds(p);
    const double exact = 1.0 + 2.0 * prob::standard_normal_quantile(p);
    EXPECT_LE(qb.lower, exact + 1e-6) << "p = " << p;
    EXPECT_GE(qb.upper, exact - 1e-6) << "p = " << p;
    // 14 moments pin a quantile of a sd-2 distribution to ~1.2 sd.
    EXPECT_LT(qb.upper - qb.lower, 2.5);
  }
}

TEST(QuantileBoundsTest, MonotoneInP) {
  const auto raw = prob::normal_raw_moments(0.0, 1.0, 12);
  const MomentBounder bounder(raw);
  const auto q25 = bounder.quantile_bounds(0.25);
  const auto q75 = bounder.quantile_bounds(0.75);
  EXPECT_LT(q25.lower, q75.lower);
  EXPECT_LT(q25.upper, q75.upper);
}

TEST(QuantileBoundsTest, InputValidation) {
  const auto raw = prob::normal_raw_moments(0.0, 1.0, 8);
  const MomentBounder bounder(raw);
  EXPECT_THROW(bounder.quantile_bounds(0.0), std::invalid_argument);
  EXPECT_THROW(bounder.quantile_bounds(1.0), std::invalid_argument);
  EXPECT_THROW(bounder.quantile_bounds(0.5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::bounds
