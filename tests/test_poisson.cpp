// Tests for log-space Poisson weights, tails and truncation points — the
// numerical backbone of both randomization solvers.

#include "prob/poisson.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace somrm::prob {
namespace {

TEST(PoissonPmfTest, SmallLambdaMatchesDirectFormula) {
  const double lambda = 2.5;
  double factorial = 1.0;
  for (std::size_t k = 0; k <= 10; ++k) {
    if (k > 0) factorial *= static_cast<double>(k);
    const double expected =
        std::exp(-lambda) * std::pow(lambda, static_cast<double>(k)) /
        factorial;
    // exp/lgamma round-trips cost a few ulp relative to the direct product.
    EXPECT_NEAR(poisson_pmf(k, lambda), expected, 1e-13 * expected + 1e-300);
  }
}

TEST(PoissonPmfTest, ZeroLambdaIsDegenerateAtZero) {
  EXPECT_DOUBLE_EQ(poisson_pmf(0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(poisson_pmf(1, 0.0), 0.0);
  EXPECT_EQ(log_poisson_pmf(3, 0.0),
            -std::numeric_limits<double>::infinity());
}

TEST(PoissonPmfTest, NegativeLambdaRejected) {
  EXPECT_THROW(log_poisson_pmf(0, -1.0), std::invalid_argument);
}

TEST(PoissonPmfTest, HugeLambdaDoesNotUnderflowNearMode) {
  // The paper's large example: qt = 40,000. Near the mode the weight is
  // ~ 1/sqrt(2 pi qt) ~ 2e-3 and must be representable.
  const double lambda = 40000.0;
  const double w = poisson_pmf(40000, lambda);
  EXPECT_GT(w, 1e-4);
  EXPECT_LT(w, 1e-2);
  EXPECT_NEAR(w, 1.0 / std::sqrt(2.0 * M_PI * lambda), 1e-5);
}

TEST(PoissonWeightsTest, SumToOneWhenTruncatedGenerously) {
  for (double lambda : {0.5, 5.0, 50.0, 500.0}) {
    const std::size_t k_max =
        static_cast<std::size_t>(lambda + 20.0 * std::sqrt(lambda) + 30.0);
    const auto w = poisson_weights(lambda, k_max);
    double total = 0.0;
    for (double v : w) total += v;
    EXPECT_NEAR(total, 1.0, 1e-12) << "lambda = " << lambda;
  }
}

TEST(PoissonTailTest, ComplementOfLeftSum) {
  const double lambda = 7.0;
  for (std::size_t k_min : {1u, 3u, 7u, 10u}) {
    double left = 0.0;
    for (std::size_t k = 0; k < k_min; ++k) left += poisson_pmf(k, lambda);
    EXPECT_NEAR(poisson_tail(lambda, k_min), 1.0 - left, 1e-12);
  }
}

TEST(PoissonTailTest, WholeDistributionFromZero) {
  EXPECT_DOUBLE_EQ(poisson_tail(3.0, 0), 1.0);
  EXPECT_DOUBLE_EQ(log_poisson_tail(3.0, 0), 0.0);
}

TEST(PoissonTailTest, DeepTailMatchesLogSummation) {
  // Compare against a directly accumulated log-sum for a moderate case.
  const double lambda = 20.0;
  const std::size_t k_min = 60;
  double direct = 0.0;
  for (std::size_t k = k_min; k < k_min + 200; ++k)
    direct += poisson_pmf(k, lambda);
  EXPECT_NEAR(log_poisson_tail(lambda, k_min), std::log(direct), 1e-10);
}

TEST(PoissonTailTest, MonotoneDecreasingInKmin) {
  const double lambda = 100.0;
  double prev = 0.0;  // log tail at k_min = 0
  for (std::size_t k = 20; k <= 400; k += 20) {
    const double cur = log_poisson_tail(lambda, k);
    EXPECT_LT(cur, prev + 1e-15);
    prev = cur;
  }
}

TEST(PoissonTailTest, ExtremeTailStaysFiniteInLogSpace) {
  // Far beyond double underflow in linear space.
  const double lt = log_poisson_tail(40000.0, 50000);
  EXPECT_TRUE(std::isfinite(lt));
  EXPECT_LT(lt, -1000.0);
}

TEST(TruncationPointTest, CoversRequestedMass) {
  for (double lambda : {1.0, 10.0, 1000.0}) {
    for (double eps : {1e-6, 1e-12}) {
      const std::size_t g = poisson_truncation_point(lambda, std::log(eps));
      EXPECT_LT(poisson_tail(lambda, g + 1), eps);
      if (g > 0) {
        EXPECT_GE(poisson_tail(lambda, g), eps);
      }
    }
  }
}

TEST(TruncationPointTest, GrowsLikeLambdaPlusSpread) {
  const double lambda = 40000.0;
  const std::size_t g = poisson_truncation_point(lambda, std::log(1e-9));
  // G must exceed the mode and stay within a few-thousand-wide window
  // (paper: G = 41,588 for the full Theorem-4 bound at this qt).
  EXPECT_GT(g, 40000u);
  EXPECT_LT(g, 42000u);
}

TEST(TruncationPointTest, TrivialCases) {
  EXPECT_EQ(poisson_truncation_point(0.0, std::log(1e-9)), 0u);
  EXPECT_EQ(poisson_truncation_point(5.0, 0.5), 0u);  // bound >= 1
}

TEST(TruncationPointTest, HandlesSubUnderflowTargets) {
  // Tail targets far below double range must still resolve (log form).
  const std::size_t g = poisson_truncation_point(100.0, -800.0);
  EXPECT_GT(g, 100u);
  EXPECT_LT(log_poisson_tail(100.0, g + 1), -800.0);
}

TEST(PoissonWindowTest, MatchesPmfInsideWindow) {
  for (double lambda : {0.3, 2.5, 40.0, 1000.0}) {
    const std::size_t k_max =
        static_cast<std::size_t>(lambda + 10.0 * std::sqrt(lambda) + 30.0);
    const PoissonWindow win = poisson_weight_window(lambda, k_max);
    ASSERT_FALSE(win.weights.empty());
    EXPECT_LE(win.right(), k_max);
    for (std::size_t k = win.left; k <= win.right(); ++k) {
      const double expected = poisson_pmf(k, lambda);
      // The recurrence accumulates ~1 ulp per step away from the mode.
      EXPECT_NEAR(win.weight(k), expected, 1e-11 * expected)
          << "lambda " << lambda << " k " << k;
    }
  }
}

TEST(PoissonWindowTest, CoversAllNormalRangeWeights) {
  // Outside the window the true pmf must be negligible (below DBL_MIN):
  // window truncation may never drop representable normal-range mass.
  const double lambda = 40000.0;
  const std::size_t k_max = 42000;
  const PoissonWindow win = poisson_weight_window(lambda, k_max);
  EXPECT_GT(win.left, 30000u);  // deep left truncation actually happens
  if (win.left > 0) {
    EXPECT_LT(log_poisson_pmf(win.left - 1, lambda),
              std::log(std::numeric_limits<double>::min()) + 1.0);
  }
  for (double w : win.weights)
    EXPECT_GE(w, std::numeric_limits<double>::min());  // no denormal entries
}

TEST(PoissonWindowTest, WeightAccessorZeroOutsideWindow) {
  const PoissonWindow win = poisson_weight_window(1000.0, 1200);
  if (win.left > 0) {
    EXPECT_EQ(win.weight(win.left - 1), 0.0);
  }
  EXPECT_EQ(win.weight(win.right() + 1), 0.0);
  EXPECT_GT(win.weight(1000), 0.0);  // the mode
}

TEST(PoissonWindowTest, ZeroLambdaIsPointMass) {
  const PoissonWindow win = poisson_weight_window(0.0, 10);
  EXPECT_EQ(win.left, 0u);
  ASSERT_EQ(win.weights.size(), 1u);
  EXPECT_EQ(win.weights[0], 1.0);
  EXPECT_EQ(win.weight(1), 0.0);
}

TEST(PoissonWindowTest, SumsToRoughlyOneWhenKMaxCoversTheMass) {
  const PoissonWindow win = poisson_weight_window(500.0, 800);
  double sum = 0.0;
  for (double w : win.weights) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PoissonWindowTest, RightTruncationAtKMax) {
  const PoissonWindow win = poisson_weight_window(100.0, 90);
  EXPECT_LE(win.right(), 90u);
  EXPECT_EQ(win.weight(91), 0.0);
}

TEST(PoissonTailTest, MacroscopicBranchMatchesDirectSum) {
  // k_min <= lambda + 1 takes the 1 - left-sum recurrence; cross-check
  // against the straightforward per-k pmf accumulation.
  for (double lambda : {5.0, 50.0, 2000.0}) {
    for (double frac : {0.2, 0.8, 1.0}) {
      const std::size_t k_min =
          static_cast<std::size_t>(frac * lambda);
      if (k_min == 0) continue;
      double left = 0.0;
      for (std::size_t k = 0; k < k_min; ++k) left += poisson_pmf(k, lambda);
      const double expected = std::log(1.0 - left);
      EXPECT_NEAR(log_poisson_tail(lambda, k_min), expected,
                  1e-10 * std::abs(expected) + 1e-12)
          << "lambda " << lambda << " k_min " << k_min;
    }
  }
}

}  // namespace
}  // namespace somrm::prob
