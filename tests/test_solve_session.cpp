// Tests for the batched query engine (core/solve_session.hpp): bit-identity
// of SolveSession batches against independent solver calls across thread
// counts and kernels, SweepCache counters / LRU eviction / request
// coalescing, cross-session cache sharing keyed by model content, t = 0
// through the session path, and query/grid validation.
//
// The bit-identity suite is the acceptance check of the batched engine: a
// 64-query batch mixing default and custom initial vectors, plain and
// terminal-weighted queries, and every order up to the session max must
// reproduce the corresponding independent solve / solve_terminal_weighted
// results EXACTLY (==, not near), at 1, 2, 4 and 8 threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/randomization.hpp"
#include "core/solve_session.hpp"
#include "linalg/parallel.hpp"
#include "obs/export.hpp"

namespace somrm {
namespace {

using core::MomentResult;
using core::MomentSolverOptions;
using core::RetainedSweep;
using core::SessionQuery;
using core::SolveSession;
using core::SweepCache;
using linalg::Triplet;
using linalg::Vec;

/// A small irregular chain: ring transitions plus a few chords, drifts of
/// both signs and mixed zero/positive variances, so the shift transform,
/// the second-order term and the Jensen probe all engage.
core::SecondOrderMrm make_model(std::size_t n) {
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i < n; ++i) {
    rates.push_back({i, (i + 1) % n, 1.0 + 0.3 * static_cast<double>(i % 5)});
    if (i % 3 == 0) rates.push_back({i, (i + 2) % n, 0.7});
  }
  Vec drifts(n, 0.0);
  Vec variances(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[i] = static_cast<double>(i % 4) - 1.0;  // in {-1, 0, 1, 2}
    variances[i] = (i % 2 == 0) ? 0.5 : 0.0;
  }
  return core::SecondOrderMrm(ctmc::Generator::from_rates(n, rates), drifts,
                              variances, linalg::unit_vec(n, 0));
}

/// Deterministic strictly positive distribution, distinct per seed.
Vec make_pi(std::size_t n, std::size_t seed) {
  Vec pi(n, 0.0);
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    pi[s] = 1.0 + static_cast<double>((seed * 7 + s * 3) % 11);
    total += pi[s];
  }
  for (std::size_t s = 0; s < n; ++s) pi[s] /= total;
  return pi;
}

Vec make_weights(std::size_t n, std::size_t seed) {
  Vec w(n, 0.0);
  for (std::size_t s = 0; s < n; ++s)
    w[s] = static_cast<double>((seed * 5 + s) % 4);  // some zeros, max 3
  return w;
}

/// Exact (bitwise) equality of a session result against the first
/// `order + 1` entries of an independent solve at the session max.
void expect_bit_identical_prefix(const MomentResult& got,
                                 const MomentResult& want,
                                 std::size_t order) {
  ASSERT_EQ(got.weighted.size(), order + 1);
  ASSERT_EQ(got.per_state.size(), order + 1);
  ASSERT_GE(want.weighted.size(), order + 1);
  for (std::size_t j = 0; j <= order; ++j) {
    EXPECT_EQ(got.weighted[j], want.weighted[j]) << "moment " << j;
    ASSERT_EQ(got.per_state[j].size(), want.per_state[j].size());
    for (std::size_t i = 0; i < got.per_state[j].size(); ++i)
      EXPECT_EQ(got.per_state[j][i], want.per_state[j][i])
          << "moment " << j << " state " << i;
  }
  EXPECT_EQ(got.time, want.time);
  EXPECT_EQ(got.truncation_point, want.truncation_point);
  EXPECT_EQ(got.error_bound, want.error_bound);
}

struct MixedBatch {
  std::vector<SessionQuery> queries;
  std::vector<std::size_t> orders;  // resolved order per query
};

/// 64 queries cycling the time grid and mixing: default pi vs two custom
/// pis, plain vs two distinct terminal-weight vectors, every order 1..max
/// plus the kSessionMax sentinel.
MixedBatch make_mixed_batch(std::size_t n, std::size_t grid_size,
                            std::size_t max_moment) {
  MixedBatch out;
  for (std::size_t i = 0; i < 64; ++i) {
    SessionQuery q;
    q.time_index = i % grid_size;
    if (i % 7 == 0) {
      q.max_moment = SessionQuery::kSessionMax;
      out.orders.push_back(max_moment);
    } else {
      q.max_moment = 1 + i % max_moment;
      out.orders.push_back(q.max_moment);
    }
    if (i % 3 == 1) q.initial = make_pi(n, i % 2);
    if (i % 4 == 1) q.terminal_weights = make_weights(n, 1);
    if (i % 4 == 3) q.terminal_weights = make_weights(n, 2);
    out.queries.push_back(std::move(q));
  }
  return out;
}

void run_batch_vs_independent(core::SweepKernel kernel) {
  const std::size_t n = 24;
  const auto model = make_model(n);
  const std::vector<double> times{0.25, 0.6, 1.1};
  MomentSolverOptions opts;
  opts.max_moment = 4;
  opts.epsilon = 1e-9;
  opts.kernel = kernel;

  const auto batch = make_mixed_batch(n, times.size(), opts.max_moment);
  const SolveSession session(model, times, opts,
                             std::make_shared<SweepCache>());
  const auto results = session.query_batch(batch.queries);
  ASSERT_EQ(results.size(), batch.queries.size());

  for (std::size_t i = 0; i < batch.queries.size(); ++i) {
    const SessionQuery& q = batch.queries[i];
    const auto solver_model =
        q.initial.empty() ? model : model.with_initial(q.initial);
    const core::RandomizationMomentSolver solver(solver_model);
    const double t = times[q.time_index];
    const MomentResult want =
        q.terminal_weights.empty()
            ? solver.solve(t, opts)
            : solver.solve_terminal_weighted(t, q.terminal_weights, opts);
    SCOPED_TRACE("query " + std::to_string(i));
    expect_bit_identical_prefix(results[i], want, batch.orders[i]);
  }

  // 3 distinct weight vectors (none, w1, w2) -> exactly 3 sweeps ran.
  EXPECT_EQ(session.cache_stats().misses, 3u);
  EXPECT_EQ(session.cache_stats().hits, 61u);
}

class SolveSessionThreadsTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  void SetUp() override { linalg::set_num_threads(GetParam()); }
  void TearDown() override { linalg::set_num_threads(0); }
};

TEST_P(SolveSessionThreadsTest, BatchOf64BitIdenticalToIndependentSolves) {
  run_batch_vs_independent(core::SweepKernel::kPanel);
}

TEST_P(SolveSessionThreadsTest, LegacyKernelBitIdentical) {
  run_batch_vs_independent(core::SweepKernel::kFusedVectors);
}

INSTANTIATE_TEST_SUITE_P(Threads, SolveSessionThreadsTest,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------------------
// Cache counters, eviction, sharing
// ---------------------------------------------------------------------------

TEST(SweepCacheTest, CountersTrackHitsMissesAndDistinctWeights) {
  const auto model = make_model(12);
  const std::vector<double> times{0.5, 1.0};
  MomentSolverOptions opts;
  opts.max_moment = 3;
  const auto cache = std::make_shared<SweepCache>();
  const SolveSession session(model, times, opts, cache);

  SessionQuery plain;
  const auto r0 = session.query(plain);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 0u);
  EXPECT_EQ(r0.stats.cache_misses, 1u);

  // Same sweep again: a hit, even with a different pi, time and order.
  SessionQuery q2;
  q2.time_index = 1;
  q2.max_moment = 1;
  q2.initial = make_pi(12, 3);
  const auto r2 = session.query(q2);
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);
  EXPECT_EQ(r2.stats.cache_hits, 1u);

  // A distinct terminal-weight vector needs its own sweep.
  SessionQuery qw;
  qw.terminal_weights = make_weights(12, 1);
  session.query(qw);
  EXPECT_EQ(cache->stats().misses, 2u);
  session.query(qw);
  EXPECT_EQ(cache->stats().hits, 2u);
  EXPECT_EQ(cache->stats().entries, 2u);
  EXPECT_GT(cache->stats().bytes, 0u);
}

TEST(SweepCacheTest, LruEvictionKeepsNewestUnderByteBudget) {
  const auto model = make_model(12);
  const std::vector<double> times{0.5};
  MomentSolverOptions opts;
  opts.max_moment = 2;
  const auto cache = std::make_shared<SweepCache>();
  const SolveSession session(model, times, opts, cache);

  SessionQuery plain;
  session.query(plain);
  const std::size_t one_entry_bytes = cache->stats().bytes;
  ASSERT_GT(one_entry_bytes, 0u);

  // Budget fits exactly one retained sweep: the second (weighted) sweep
  // must evict the first, never itself.
  cache->set_byte_budget(one_entry_bytes);
  SessionQuery qw;
  qw.terminal_weights = make_weights(12, 2);
  session.query(qw);
  EXPECT_EQ(cache->stats().evictions, 1u);
  EXPECT_EQ(cache->stats().entries, 1u);

  // The weighted sweep survived (hit); the plain one recomputes (miss).
  const std::size_t misses_before = cache->stats().misses;
  session.query(qw);
  EXPECT_EQ(cache->stats().misses, misses_before);
  session.query(plain);
  EXPECT_EQ(cache->stats().misses, misses_before + 1);
}

TEST(SweepCacheTest, ConcurrentMissesCoalesceToOneCompute) {
  SweepCache cache;
  std::atomic<int> computes{0};
  std::atomic<bool> release{false};
  const auto compute = [&] {
    ++computes;
    while (!release.load()) std::this_thread::yield();
    return RetainedSweep{};
  };

  SweepCache::EntryPtr a, b;
  std::thread first([&] { a = cache.get_or_compute("k", compute); });
  // Wait until the second caller has actually joined the in-flight compute
  // (its coalesced counter bumps BEFORE it blocks on the shared future),
  // then release; fall back to releasing after 5 s so a bug cannot hang
  // the suite.
  std::thread second;
  while (computes.load() == 0) std::this_thread::yield();
  second = std::thread([&] { b = cache.get_or_compute("k", compute); });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (cache.stats().coalesced == 0 &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  release = true;
  first.join();
  second.join();

  EXPECT_EQ(computes.load(), 1);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().coalesced, 1u);
  EXPECT_EQ(a.get(), b.get());
}

TEST(SweepCacheTest, FailedComputeIsRetryable) {
  SweepCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   "bad", []() -> RetainedSweep {
                     throw std::runtime_error("sweep failed");
                   }),
               std::runtime_error);
  // The key was left uncached; the next call computes successfully.
  const auto entry =
      cache.get_or_compute("bad", [] { return RetainedSweep{}; });
  EXPECT_NE(entry, nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(SolveSessionTest, SessionsShareCacheByModelContentNotObject) {
  const std::vector<double> times{0.5, 1.0};
  MomentSolverOptions opts;
  opts.max_moment = 2;
  const auto cache = std::make_shared<SweepCache>();

  const SolveSession s1(make_model(12), times, opts, cache);
  s1.query(SessionQuery{});
  EXPECT_EQ(cache->stats().misses, 1u);

  // A distinct model OBJECT with bitwise-equal content and a different
  // initial vector shares the entry: the key hashes the generator, drifts
  // and variances only.
  const SolveSession s2(
      make_model(12).with_initial(make_pi(12, 5)), times, opts, cache);
  EXPECT_EQ(s2.base_key(), s1.base_key());
  s2.query(SessionQuery{});
  EXPECT_EQ(cache->stats().misses, 1u);
  EXPECT_EQ(cache->stats().hits, 1u);

  // Perturbing one drift changes the content hash -> fresh sweep.
  auto other = make_model(12);
  Vec drifts = other.drifts();
  drifts[3] += 0.125;
  const SolveSession s3(
      core::SecondOrderMrm(other.generator(), drifts, other.variances(),
                           other.initial()),
      times, opts, cache);
  EXPECT_NE(s3.base_key(), s1.base_key());
  s3.query(SessionQuery{});
  EXPECT_EQ(cache->stats().misses, 2u);
}

// ---------------------------------------------------------------------------
// t = 0 through the session path
// ---------------------------------------------------------------------------

TEST(SolveSessionTest, TimeZeroOnGridIsExact) {
  const auto model = make_model(10);
  const std::vector<double> times{0.0, 0.5};
  MomentSolverOptions opts;
  opts.max_moment = 3;
  const SolveSession session(model, times, opts,
                             std::make_shared<SweepCache>());

  SessionQuery q0;  // default pi = unit vector -> exact values
  const auto r = session.query(q0);
  EXPECT_EQ(r.time, 0.0);
  EXPECT_EQ(r.weighted[0], 1.0);
  for (std::size_t j = 1; j <= 3; ++j) {
    EXPECT_EQ(r.weighted[j], 0.0) << "moment " << j;
    for (double v : r.per_state[j]) EXPECT_EQ(v, 0.0);
  }

  // And bit-identical to the independent t = 0 solve, weighted included.
  const core::RandomizationMomentSolver solver(model);
  expect_bit_identical_prefix(r, solver.solve(0.0, opts), 3);

  SessionQuery qw;
  qw.terminal_weights = make_weights(10, 1);
  const auto rw = session.query(qw);
  expect_bit_identical_prefix(
      rw, solver.solve_terminal_weighted(0.0, qw.terminal_weights, opts), 3);
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

TEST(SolveSessionTest, RejectsInvalidQueries) {
  const auto model = make_model(8);
  const SolveSession session(model, {0.5, 1.0}, {},
                             std::make_shared<SweepCache>());

  SessionQuery bad_time;
  bad_time.time_index = 2;
  EXPECT_THROW(session.query(bad_time), std::invalid_argument);

  SessionQuery bad_order;
  bad_order.max_moment = session.options().max_moment + 1;
  EXPECT_THROW(session.query(bad_order), std::invalid_argument);

  SessionQuery bad_pi_size;
  bad_pi_size.initial = Vec(7, 1.0 / 7.0);
  EXPECT_THROW(session.query(bad_pi_size), std::invalid_argument);

  SessionQuery bad_pi_negative;
  bad_pi_negative.initial = Vec(8, 0.25);
  bad_pi_negative.initial[0] = -0.5;
  bad_pi_negative.initial[1] = 0.0;  // sums to 1, one negative entry
  EXPECT_THROW(session.query(bad_pi_negative), std::invalid_argument);

  SessionQuery bad_pi_sum;
  bad_pi_sum.initial = Vec(8, 0.25);  // sums to 2
  EXPECT_THROW(session.query(bad_pi_sum), std::invalid_argument);

  SessionQuery bad_w_negative;
  bad_w_negative.terminal_weights = Vec(8, 1.0);
  bad_w_negative.terminal_weights[2] = -1.0;
  EXPECT_THROW(session.query(bad_w_negative), std::invalid_argument);

  SessionQuery bad_w_zero;
  bad_w_zero.terminal_weights = Vec(8, 0.0);
  EXPECT_THROW(session.query(bad_w_zero), std::invalid_argument);
}

TEST(SolveSessionTest, RejectsDuplicateOrUnsortedTimeGrid) {
  const auto model = make_model(8);
  EXPECT_THROW(SolveSession(model, {0.5, 0.5}, {}), std::invalid_argument);
  EXPECT_THROW(SolveSession(model, {1.0, 0.5}, {}), std::invalid_argument);
  try {
    const SolveSession s(model, {0.25, 0.25}, {});
    FAIL() << "duplicate grid accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate time point"),
              std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// Per-query observability: SessionReport records and attribution
// ---------------------------------------------------------------------------

TEST(SessionReportTest, RecordsCarryMonotonicIdsAndCacheAttribution) {
  const auto model = make_model(12);
  const std::vector<double> times{0.5, 1.0};
  MomentSolverOptions opts;
  opts.max_moment = 3;
  const SolveSession session(model, times, opts,
                             std::make_shared<SweepCache>());

  // miss (first plain sweep), hit, hit (same sweep), miss (new weights).
  SessionQuery plain;
  session.query(plain);
  SessionQuery q2;
  q2.time_index = 1;
  q2.max_moment = 1;
  session.query(q2);
  session.query(plain);
  SessionQuery qw;
  qw.terminal_weights = make_weights(12, 1);
  session.query(qw);

  const core::SessionReport rep = session.report();
  EXPECT_EQ(rep.queries, 4u);
  EXPECT_EQ(rep.dropped_records, 0u);
  ASSERT_EQ(rep.records.size(), 4u);

  // Process-wide IDs: strictly increasing within the session, all >= 1.
  EXPECT_GE(rep.records[0].query_id, 1u);
  for (std::size_t i = 1; i < rep.records.size(); ++i)
    EXPECT_GT(rep.records[i].query_id, rep.records[i - 1].query_id) << i;

  EXPECT_EQ(rep.records[0].cache_outcome, SweepCache::Outcome::kMiss);
  EXPECT_EQ(rep.records[1].cache_outcome, SweepCache::Outcome::kHit);
  EXPECT_EQ(rep.records[2].cache_outcome, SweepCache::Outcome::kHit);
  EXPECT_EQ(rep.records[3].cache_outcome, SweepCache::Outcome::kMiss);
  EXPECT_EQ(rep.cache.misses, 2u);
  EXPECT_EQ(rep.cache.hits, 2u);

  // Resolved orders and grid indices round-trip into the records.
  EXPECT_EQ(rep.records[0].max_moment, opts.max_moment);  // kSessionMax
  EXPECT_EQ(rep.records[1].max_moment, 1u);
  EXPECT_EQ(rep.records[1].time_index, 1u);

  // The plain queries share one sweep key; the weighted one differs.
  for (const core::QueryRecord& r : rep.records)
    EXPECT_FALSE(r.sweep_key.empty()) << "query_id " << r.query_id;
  EXPECT_EQ(rep.records[0].sweep_key, rep.records[1].sweep_key);
  EXPECT_EQ(rep.records[0].sweep_key, rep.records[2].sweep_key);
  EXPECT_NE(rep.records[0].sweep_key, rep.records[3].sweep_key);

  if (obs::kEnabled) {
    for (const core::QueryRecord& r : rep.records) {
      EXPECT_GT(r.latency_ns, 0) << "query_id " << r.query_id;
      EXPECT_GE(r.latency_ns, r.finalize_ns) << "query_id " << r.query_id;
    }
    // Exact order statistics over 4 records: p50 is the 2nd smallest,
    // p90/p99/p999 the largest.
    std::vector<std::int64_t> lat;
    for (const core::QueryRecord& r : rep.records)
      lat.push_back(r.latency_ns);
    std::sort(lat.begin(), lat.end());
    EXPECT_EQ(rep.latency_p50_ns, lat[1]);
    EXPECT_EQ(rep.latency_p90_ns, lat[3]);
    EXPECT_EQ(rep.latency_p99_ns, lat[3]);
    EXPECT_EQ(rep.latency_p999_ns, lat[3]);
  } else {
    for (const core::QueryRecord& r : rep.records) {
      EXPECT_EQ(r.latency_ns, 0);
      EXPECT_EQ(r.finalize_ns, 0);
    }
    EXPECT_EQ(rep.latency_p50_ns, 0);
  }
}

TEST(SessionReportTest, BatchRecordsEveryQueryInOrder) {
  const std::size_t n = 24;
  const auto model = make_model(n);
  const std::vector<double> times{0.25, 0.6, 1.1};
  MomentSolverOptions opts;
  opts.max_moment = 4;
  const auto batch = make_mixed_batch(n, times.size(), opts.max_moment);
  const SolveSession session(model, times, opts,
                             std::make_shared<SweepCache>());
  session.query_batch(batch.queries);

  const core::SessionReport rep = session.report();
  EXPECT_EQ(rep.queries, batch.queries.size());
  ASSERT_EQ(rep.records.size(), batch.queries.size());
  std::size_t misses = 0;
  for (std::size_t i = 0; i < rep.records.size(); ++i) {
    EXPECT_EQ(rep.records[i].time_index, batch.queries[i].time_index) << i;
    EXPECT_EQ(rep.records[i].max_moment, batch.orders[i]) << i;
    if (rep.records[i].cache_outcome != SweepCache::Outcome::kHit) ++misses;
  }
  // 3 distinct weight vectors -> exactly 3 non-hit (miss) records.
  EXPECT_EQ(misses, 3u);
}

TEST(SessionReportTest, EmptySessionReportsZeroes) {
  const auto model = make_model(8);
  const SolveSession session(model, {0.5}, {}, std::make_shared<SweepCache>());
  const core::SessionReport rep = session.report();
  EXPECT_EQ(rep.queries, 0u);
  EXPECT_TRUE(rep.records.empty());
  EXPECT_EQ(rep.dropped_records, 0u);
  EXPECT_EQ(rep.latency_p50_ns, 0);
  EXPECT_EQ(rep.latency_p999_ns, 0);
}

TEST(SessionReportTest, QueryResultsBitIdenticalWithMetricsExportEnabled) {
  // The observability path (records, histograms, gauges, export) must not
  // perturb the numeric data flow: EXPECT_EQ, not near.
  const std::size_t n = 16;
  const auto model = make_model(n);
  const std::vector<double> times{0.5, 1.0};
  MomentSolverOptions opts;
  opts.max_moment = 3;

  obs::set_metrics_path("");
  const SolveSession s_plain(model, times, opts,
                             std::make_shared<SweepCache>());
  SessionQuery q;
  q.time_index = 1;
  const MomentResult plain = s_plain.query(q);

  const std::string path = ::testing::TempDir() + "somrm_session_bitident.prom";
  obs::set_metrics_path(path);
  const SolveSession s_metered(model, times, opts,
                               std::make_shared<SweepCache>());
  const MomentResult metered = s_metered.query(q);
  obs::write_metrics();
  obs::set_metrics_path("");
  std::remove(path.c_str());

  ASSERT_EQ(plain.weighted.size(), metered.weighted.size());
  for (std::size_t j = 0; j < plain.weighted.size(); ++j)
    EXPECT_EQ(plain.weighted[j], metered.weighted[j]) << "moment " << j;
  ASSERT_EQ(plain.per_state.size(), metered.per_state.size());
  for (std::size_t j = 0; j < plain.per_state.size(); ++j)
    for (std::size_t i = 0; i < plain.per_state[j].size(); ++i)
      EXPECT_EQ(plain.per_state[j][i], metered.per_state[j][i])
          << "moment " << j << " state " << i;
}

}  // namespace
}  // namespace somrm
