// Tests for linalg/sellcs.hpp: CSR <-> SELL-C-σ round trips, padding edge
// cases (empty / uniform / ragged rows), σ-sort permutation properties, and
// the storage contract that matters — sweep output bit-identical to CSR
// across {storage} × {SIMD level} × {thread count} × {sweep kernel} ×
// {reorder policy}, asserted with EXPECT_EQ on doubles, never EXPECT_NEAR.

#include "linalg/sellcs.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/impulse_randomization.hpp"
#include "core/randomization.hpp"
#include "ctmc/generator.hpp"
#include "linalg/csr.hpp"
#include "linalg/panel.hpp"
#include "linalg/parallel.hpp"
#include "linalg/reorder.hpp"
#include "linalg/simd.hpp"

namespace somrm::linalg {
namespace {

using core::MomentSolverOptions;
using core::RandomizationMomentSolver;
using core::ReorderPolicy;
using core::SecondOrderMrm;
using core::StorageFormat;
using core::SweepKernel;

// Deterministic ragged matrix: row i holds 1 + (i * 7 % 6) entries at
// LCG-scattered columns, so chunk row lengths genuinely differ and the
// σ-sort has real work to do.
CsrMatrix ragged_matrix(std::size_t rows, std::size_t cols) {
  CsrBuilder b(rows, cols);
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < rows; ++i) {
    const std::size_t len = 1 + (i * 7) % 6;
    for (std::size_t k = 0; k < len; ++k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      const std::size_t j = (state >> 33) % cols;
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      b.add(i, j, (static_cast<double>((state >> 33) % 1999) - 999.0) / 311.0);
    }
  }
  return std::move(b).build();
}

Panel lcg_panel(std::size_t rows, std::size_t width) {
  Panel p(rows, width);
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  for (std::size_t i = 0; i < p.size(); ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    p.data()[i] = (static_cast<double>((state >> 33) % 4001) - 2000.0) / 919.0;
  }
  return p;
}

std::vector<simd::Level> compiled_levels() {
  std::vector<simd::Level> levels{simd::Level::kScalar};
  const int top = static_cast<int>(simd::highest_supported());
  if (top >= static_cast<int>(simd::Level::kAvx2))
    levels.push_back(simd::Level::kAvx2);
  if (top >= static_cast<int>(simd::Level::kAvx512))
    levels.push_back(simd::Level::kAvx512);
  return levels;
}

/// Restores the auto dispatch level and the default thread count however a
/// test exits, so level/thread overrides cannot leak across tests.
class SellCsTest : public ::testing::Test {
 protected:
  void TearDown() override {
    simd::set_level(simd::highest_supported());
    set_num_threads(0);
  }
};

TEST_F(SellCsTest, FromCsrValidatesChunkHeight) {
  const CsrMatrix a = ragged_matrix(16, 16);
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{16}})
    EXPECT_THROW(SellCsMatrix::from_csr(a, bad), std::invalid_argument) << bad;
  EXPECT_EQ(SellCsMatrix::from_csr(a, 4).chunk(), 4u);
  EXPECT_EQ(SellCsMatrix::from_csr(a, 8).chunk(), 8u);
}

TEST_F(SellCsTest, RoundTripPreservesStructureValuesAndEntryOrder) {
  // Rows NOT a multiple of either chunk height: the last chunk is partial.
  const CsrMatrix a = ragged_matrix(61, 61);
  for (const std::size_t chunk : {std::size_t{4}, std::size_t{8}}) {
    const SellCsMatrix s = SellCsMatrix::from_csr(a, chunk);
    EXPECT_EQ(s.rows(), a.rows());
    EXPECT_EQ(s.cols(), a.cols());
    EXPECT_EQ(s.nnz(), a.nnz());
    const CsrMatrix back = s.to_csr();
    ASSERT_EQ(back.row_ptr(), a.row_ptr());
    ASSERT_EQ(back.col_idx(), a.col_idx());
    ASSERT_EQ(back.values(), a.values());
  }

  // Round trip survives the unsorted-column rows permute_symmetric makes.
  const auto perm =
      SellCsMatrix::sigma_sort_permutation(a, SellCsMatrix::kDefaultSigma);
  const CsrMatrix p = permute_symmetric(a, perm);
  const CsrMatrix back = SellCsMatrix::from_csr(p).to_csr();
  ASSERT_EQ(back.row_ptr(), p.row_ptr());
  ASSERT_EQ(back.col_idx(), p.col_idx());
  ASSERT_EQ(back.values(), p.values());
  EXPECT_EQ(back.columns_sorted(), p.columns_sorted());
}

TEST_F(SellCsTest, EmptyAndAllEmptyRowMatrices) {
  const SellCsMatrix empty;
  EXPECT_EQ(empty.rows(), 0u);
  EXPECT_EQ(empty.nnz(), 0u);
  EXPECT_EQ(empty.padded_entries(), 0u);
  EXPECT_EQ(empty.padding_ratio(), 0.0);
  EXPECT_EQ(empty.chunk_occupancy(), 1.0);

  // Rows with no entries at all: every chunk has max length 0, so nothing
  // is allocated and nothing is padded.
  const CsrMatrix zero = CsrMatrix::from_triplets(10, 10, {});
  const SellCsMatrix s = SellCsMatrix::from_csr(zero, 4);
  EXPECT_EQ(s.nnz(), 0u);
  EXPECT_EQ(s.padded_entries(), 0u);
  EXPECT_EQ(s.padding_ratio(), 0.0);
  const CsrMatrix back = s.to_csr();
  EXPECT_EQ(back.nnz(), 0u);
  EXPECT_EQ(back.rows(), 10u);

  Panel x = lcg_panel(10, 3), y(10, 3);
  s.multiply_panel(x, y);
  for (std::size_t i = 0; i < y.size(); ++i) EXPECT_EQ(y.data()[i], 0.0);
}

TEST_F(SellCsTest, UniformRowsPackWithZeroPadding) {
  // Tridiagonal interior rows all hold 3 entries; use a circulant so EVERY
  // row holds exactly 3 and the layout must be padding-free.
  const std::size_t n = 24;
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({i, i, -2.0});
    trips.push_back({i, (i + 1) % n, 1.0});
    trips.push_back({i, (i + n - 1) % n, 1.0});
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, n, trips);
  const SellCsMatrix s = SellCsMatrix::from_csr(a, 8);
  EXPECT_EQ(s.padded_entries(), s.nnz());
  EXPECT_EQ(s.padding_ratio(), 0.0);
  EXPECT_EQ(s.chunk_occupancy(), 1.0);
}

TEST_F(SellCsTest, RaggedRowsPadWithInertZeroSlots) {
  const CsrMatrix a = ragged_matrix(37, 37);  // partial final chunk too
  const SellCsMatrix s = SellCsMatrix::from_csr(a, 4);
  ASSERT_EQ(s.row_len().size(), a.rows());

  // Allocation = sum over chunks of chunk_height * longest row in chunk.
  std::size_t expected = 0;
  for (std::size_t c = 0; c < s.num_chunks(); ++c) {
    std::size_t longest = 0;
    for (std::size_t i = c * 4; i < std::min<std::size_t>((c + 1) * 4, 37);
         ++i)
      longest = std::max(longest, s.row_len()[i]);
    expected += 4 * longest;
    EXPECT_EQ(s.chunk_ptr()[c + 1] - s.chunk_ptr()[c], 4 * longest) << c;
  }
  EXPECT_EQ(s.padded_entries(), expected);
  EXPECT_GT(s.padded_entries(), s.nnz());  // genuinely ragged
  EXPECT_GT(s.padding_ratio(), 0.0);
  EXPECT_LT(s.padding_ratio(), 1.0);
  EXPECT_EQ(s.padding_ratio() + s.chunk_occupancy(), 1.0);

  // Every slot past a row's length is the inert (column 0, +0.0) filler —
  // and +0.0 exactly, not -0.0 (bit pattern matters for the inertness
  // argument even though the kernels never load these slots).
  for (std::size_t i = 0; i < 37; ++i) {
    const std::size_t chunk_len =
        (s.chunk_ptr()[i / 4 + 1] - s.chunk_ptr()[i / 4]) / 4;
    const std::size_t base = s.chunk_ptr()[i / 4] + (i % 4);
    for (std::size_t j = s.row_len()[i]; j < chunk_len; ++j) {
      const std::size_t e = base + j * 4;
      EXPECT_EQ(s.col_idx()[e], 0u);
      EXPECT_EQ(s.values()[e], 0.0);
      EXPECT_FALSE(std::signbit(s.values()[e]));
    }
  }
}

TEST_F(SellCsTest, SigmaSortPermutationIsValidDeterministicAndWindowed) {
  const CsrMatrix a = ragged_matrix(100, 100);
  const std::size_t sigma = 16;
  const auto perm = SellCsMatrix::sigma_sort_permutation(a, sigma);

  // A permutation of [0, rows).
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < a.rows(); ++i) ASSERT_EQ(sorted[i], i);

  // Deterministic, window-local (never moves a row across its σ window),
  // descending length inside each window, ties on ascending index (stable).
  EXPECT_EQ(perm, SellCsMatrix::sigma_sort_permutation(a, sigma));
  const auto len = [&](std::size_t r) {
    return a.row_ptr()[r + 1] - a.row_ptr()[r];
  };
  for (std::size_t i = 0; i < a.rows(); ++i)
    EXPECT_EQ(i / sigma, perm[i] / sigma) << i;
  for (std::size_t i = 0; i + 1 < a.rows(); ++i) {
    if ((i + 1) % sigma == 0) continue;  // window boundary
    EXPECT_GE(len(perm[i]), len(perm[i + 1])) << i;
    if (len(perm[i]) == len(perm[i + 1])) EXPECT_LT(perm[i], perm[i + 1]);
  }

  // sigma <= 1 is the identity.
  EXPECT_TRUE(is_identity_permutation(
      SellCsMatrix::sigma_sort_permutation(a, 1)));
}

TEST_F(SellCsTest, MultiplyPanelBitIdenticalToCsrAcrossLevelsWidthsThreads) {
  const CsrMatrix a = ragged_matrix(500, 500);
  for (const simd::Level level : compiled_levels()) {
    simd::set_level(level);
    for (const std::size_t chunk : {std::size_t{4}, std::size_t{8}}) {
      const SellCsMatrix s = SellCsMatrix::from_csr(a, chunk);
      // Widths 1..8 hit every fixed-width kernel and every vector tail
      // mask; 11 exercises the generic fallback.
      for (const std::size_t width : {std::size_t{1}, std::size_t{2},
                                      std::size_t{3}, std::size_t{4},
                                      std::size_t{5}, std::size_t{6},
                                      std::size_t{7}, std::size_t{8},
                                      std::size_t{11}}) {
        const Panel x = lcg_panel(500, width);
        Panel y_csr(500, width), y_sell(500, width);
        for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
          set_num_threads(threads);
          a.multiply_panel(x, y_csr);
          s.multiply_panel(x, y_sell);
          for (std::size_t i = 0; i < y_csr.size(); ++i)
            ASSERT_EQ(y_sell.data()[i], y_csr.data()[i])
                << simd::level_name(level) << " C=" << chunk
                << " w=" << width << " t=" << threads << " elem " << i;
        }
      }
    }
  }
}

TEST_F(SellCsTest, MultiplyPanelRowsMatchesCsrOnArbitraryWindows) {
  const CsrMatrix a = ragged_matrix(90, 90);
  const std::size_t width = 6;
  const Panel x = lcg_panel(90, width);
  for (const simd::Level level : compiled_levels()) {
    simd::set_level(level);
    for (const std::size_t chunk : {std::size_t{4}, std::size_t{8}}) {
      const SellCsMatrix s = SellCsMatrix::from_csr(a, chunk);
      // Row ranges deliberately misaligned with the chunk height, column
      // windows (src_col, dst_col, count) as the sweep uses them, and both
      // accumulate modes.
      const struct {
        std::size_t r0, r1, src, dst, count;
      } cases[] = {{0, 90, 0, 0, 6}, {3, 29, 1, 1, 5}, {17, 18, 2, 0, 3},
                   {5, 83, 0, 2, 4}, {88, 90, 1, 1, 1}};
      for (const auto& c : cases) {
        for (const bool accumulate : {false, true}) {
          Panel y_csr = lcg_panel(90, width), y_sell = y_csr;
          a.multiply_panel_rows(x, y_csr, c.r0, c.r1, c.src, c.dst, c.count,
                                accumulate);
          s.multiply_panel_rows(x, y_sell, c.r0, c.r1, c.src, c.dst, c.count,
                                accumulate);
          for (std::size_t i = 0; i < y_csr.size(); ++i)
            ASSERT_EQ(y_sell.data()[i], y_csr.data()[i])
                << simd::level_name(level) << " C=" << chunk << " rows ["
                << c.r0 << "," << c.r1 << ") acc=" << accumulate << " elem "
                << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Solver-level contract: SELL-C-σ sweeps are bit-identical to CSR sweeps at
// every SIMD level, thread count, sweep kernel, and reorder policy.
// ---------------------------------------------------------------------------

// Ragged-degree CTMC: state i has 1 + (i % 4) outgoing rates to scattered
// targets, so rows differ in length and the σ-sort produces a non-trivial
// permutation (asserted below so the round trip is genuinely exercised).
SecondOrderMrm ragged_model(std::size_t n) {
  std::vector<Triplet> rates;
  std::uint64_t state = 0x853c49e6748fea9bull;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t deg = 1 + i % 4;
    for (std::size_t k = 0; k < deg; ++k) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      std::size_t j = (state >> 33) % n;
      if (j == i) j = (j + 1) % n;
      rates.push_back(
          {i, j, 0.5 + static_cast<double>((state >> 20) % 17) * 0.25});
    }
    // A chain backbone keeps the chain irreducible-ish and the rows ragged.
    rates.push_back({i, (i + 1) % n, 1.0 + 0.125 * static_cast<double>(i)});
  }
  auto gen = ctmc::Generator::from_rates(n, rates);
  Vec drifts(n), vars(n), initial(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[i] = static_cast<double>(n - i) * 0.5;
    vars[i] = 0.3 * static_cast<double>(i % 5);
  }
  initial[0] = 0.25;
  initial[n / 2] = 0.75;
  return SecondOrderMrm(std::move(gen), std::move(drifts), std::move(vars),
                        std::move(initial));
}

TEST_F(SellCsTest, SolverBitIdenticalAcrossStorageLevelsThreadsKernels) {
  const std::size_t n = 60;
  const auto model = ragged_model(n);
  // The σ-sort must have real work on this model, or the test proves less
  // than it claims.
  ASSERT_FALSE(is_identity_permutation(SellCsMatrix::sigma_sort_permutation(
      model.generator().matrix(), SellCsMatrix::kDefaultSigma)));

  const RandomizationMomentSolver solver(model);
  const std::vector<double> times = {0.3, 1.1};
  MomentSolverOptions base;
  base.max_moment = 3;
  base.epsilon = 1e-10;
  const auto ref = solver.solve_multi(times, base);
  EXPECT_EQ(ref[0].stats.storage, "csr");
  EXPECT_EQ(ref[0].stats.padding_ratio, 0.0);
  EXPECT_EQ(ref[0].stats.chunk_occupancy, 1.0);

  for (const simd::Level level : compiled_levels()) {
    simd::set_level(level);
    for (const std::size_t threads :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      set_num_threads(threads);
      for (const SweepKernel kernel :
           {SweepKernel::kPanel, SweepKernel::kFusedVectors}) {
        for (const ReorderPolicy reorder :
             {ReorderPolicy::kNone, ReorderPolicy::kRcm}) {
          MomentSolverOptions opts = base;
          opts.kernel = kernel;
          opts.reorder = reorder;
          opts.storage = StorageFormat::kSellCs;
          const auto got = solver.solve_multi(times, opts);
          ASSERT_EQ(got.size(), ref.size());
          for (std::size_t ti = 0; ti < ref.size(); ++ti) {
            EXPECT_EQ(got[ti].stats.storage, "sellcs");
            EXPECT_GT(got[ti].stats.padding_ratio, 0.0);
            EXPECT_LT(got[ti].stats.padding_ratio, 1.0);
            EXPECT_GT(got[ti].stats.chunk_occupancy, 0.0);
            for (std::size_t j = 0; j <= base.max_moment; ++j) {
              ASSERT_EQ(got[ti].weighted[j], ref[ti].weighted[j])
                  << simd::level_name(level) << " t=" << threads
                  << " kernel=" << static_cast<int>(kernel)
                  << " reorder=" << static_cast<int>(reorder) << " time "
                  << ti << " moment " << j;
              ASSERT_EQ(got[ti].per_state[j].size(), n);
              for (std::size_t i = 0; i < n; ++i)
                ASSERT_EQ(got[ti].per_state[j][i], ref[ti].per_state[j][i])
                    << simd::level_name(level) << " state " << i;
            }
          }
        }
      }
    }
  }
}

TEST_F(SellCsTest, TerminalWeightedSolveBitIdenticalAcrossStorage) {
  const auto model = ragged_model(40);
  const RandomizationMomentSolver solver(model);
  Vec weights(40);
  for (std::size_t i = 0; i < 40; ++i)
    weights[i] = 0.25 + static_cast<double>(i % 7);

  MomentSolverOptions opts;
  opts.max_moment = 2;
  opts.epsilon = 1e-10;
  const auto ref = solver.solve_terminal_weighted(1.3, weights, opts);
  opts.storage = StorageFormat::kSellCs;
  const auto got = solver.solve_terminal_weighted(1.3, weights, opts);
  for (std::size_t j = 0; j <= opts.max_moment; ++j) {
    ASSERT_EQ(got.weighted[j], ref.weighted[j]) << j;
    for (std::size_t i = 0; i < 40; ++i)
      ASSERT_EQ(got.per_state[j][i], ref.per_state[j][i]) << j << "," << i;
  }
}

TEST_F(SellCsTest, DegenerateChainReportsNoStorage) {
  auto gen = ctmc::Generator::from_rates(3, {});
  const SecondOrderMrm model(std::move(gen), Vec{1.0, 2.0, 3.0},
                             Vec{0.1, 0.2, 0.3}, Vec{1.0, 0.0, 0.0});
  const RandomizationMomentSolver solver(model);
  for (const StorageFormat storage :
       {StorageFormat::kCsr, StorageFormat::kSellCs}) {
    MomentSolverOptions opts;
    opts.storage = storage;
    const auto res = solver.solve(1.0, opts);
    EXPECT_EQ(res.stats.storage, "none");
  }
}

TEST_F(SellCsTest, ImpulseSolverBitIdenticalAcrossStorageAndKernels) {
  // Birth-death chain with normal impulses on the up transitions: ragged
  // enough for a non-identity σ permutation is not required here — this
  // pins that the impulse matrices are permuted consistently with Q'.
  const std::size_t n = 24;
  std::vector<Triplet> rates, imp_mean, imp_var;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rates.push_back({i, i + 1, 2.0 + 0.5 * static_cast<double>(i)});
    rates.push_back({i + 1, i, 3.0});
    imp_mean.push_back({i, i + 1, 0.3 + 0.01 * static_cast<double>(i)});
    imp_var.push_back({i, i + 1, 0.05});
  }
  Vec drifts(n), vars(n), initial(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[i] = 0.5 * static_cast<double>(i);
    vars[i] = 0.2;
  }
  initial[0] = 1.0;
  const SecondOrderMrm base(ctmc::Generator::from_rates(n, rates),
                            std::move(drifts), std::move(vars),
                            std::move(initial));
  const core::SecondOrderImpulseMrm model(
      base, CsrMatrix::from_triplets(n, n, imp_mean),
      CsrMatrix::from_triplets(n, n, imp_var));
  const core::ImpulseMomentSolver solver(model);

  const std::vector<double> times = {0.4, 0.9};
  MomentSolverOptions opts;
  opts.max_moment = 3;
  opts.epsilon = 1e-9;
  const auto ref = solver.solve_multi(times, opts);
  EXPECT_EQ(ref[0].stats.storage, "csr");

  for (const SweepKernel kernel :
       {SweepKernel::kPanel, SweepKernel::kFusedVectors}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
      set_num_threads(threads);
      MomentSolverOptions sopts = opts;
      sopts.kernel = kernel;
      sopts.storage = StorageFormat::kSellCs;
      const auto got = solver.solve_multi(times, sopts);
      for (std::size_t ti = 0; ti < ref.size(); ++ti) {
        EXPECT_EQ(got[ti].stats.storage, "sellcs");
        for (std::size_t j = 0; j <= opts.max_moment; ++j) {
          ASSERT_EQ(got[ti].weighted[j], ref[ti].weighted[j])
              << "kernel=" << static_cast<int>(kernel) << " t=" << threads
              << " time " << ti << " moment " << j;
          for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(got[ti].per_state[j][i], ref[ti].per_state[j][i])
                << "state " << i;
        }
      }
    }
  }
}

}  // namespace
}  // namespace somrm::linalg
