// Tests for the radix-2 FFT.

#include "linalg/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace somrm::linalg {
namespace {

TEST(FftTest, PowerOfTwoPredicate) {
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_TRUE(is_power_of_two(1024));
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_FALSE(is_power_of_two(1000));
}

TEST(FftTest, RejectsNonPowerOfTwo) {
  Cvec data(3, {1.0, 0.0});
  EXPECT_THROW(fft(data), std::invalid_argument);
}

TEST(FftTest, DeltaTransformsToConstant) {
  Cvec data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft(data);
  for (const auto& v : data) {
    EXPECT_NEAR(v.real(), 1.0, 1e-14);
    EXPECT_NEAR(v.imag(), 0.0, 1e-14);
  }
}

TEST(FftTest, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  const std::size_t tone = 5;
  Cvec data(n);
  for (std::size_t j = 0; j < n; ++j) {
    const double phase = 2.0 * std::numbers::pi *
                         static_cast<double>(tone * j) /
                         static_cast<double>(n);
    data[j] = {std::cos(phase), std::sin(phase)};
  }
  fft(data);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == tone ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-10) << "bin " << k;
  }
}

TEST(FftTest, RoundTripRestoresInput) {
  const std::size_t n = 128;
  Cvec data(n);
  for (std::size_t j = 0; j < n; ++j)
    data[j] = {std::sin(0.1 * static_cast<double>(j)),
               std::cos(0.05 * static_cast<double>(j))};
  const Cvec original = data;
  fft(data);
  ifft(data);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(data[j].real(), original[j].real(), 1e-12);
    EXPECT_NEAR(data[j].imag(), original[j].imag(), 1e-12);
  }
}

TEST(FftTest, ParsevalIdentityHolds) {
  const std::size_t n = 256;
  Cvec data(n);
  for (std::size_t j = 0; j < n; ++j)
    data[j] = {std::exp(-0.01 * static_cast<double>(j)),
               0.3 * std::sin(static_cast<double>(j))};
  double time_energy = 0.0;
  for (const auto& v : data) time_energy += std::norm(v);
  fft(data);
  double freq_energy = 0.0;
  for (const auto& v : data) freq_energy += std::norm(v);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(n),
              1e-8 * time_energy * static_cast<double>(n));
}

TEST(FftTest, LinearityOfTransform) {
  const std::size_t n = 32;
  Cvec a(n), b(n), sum(n);
  for (std::size_t j = 0; j < n; ++j) {
    a[j] = {static_cast<double>(j), 0.0};
    b[j] = {0.0, 1.0 / (1.0 + static_cast<double>(j))};
    sum[j] = a[j] + 2.0 * b[j];
  }
  fft(a);
  fft(b);
  fft(sum);
  for (std::size_t k = 0; k < n; ++k) {
    const auto expected = a[k] + 2.0 * b[k];
    EXPECT_NEAR(std::abs(sum[k] - expected), 0.0, 1e-10);
  }
}

TEST(FftTest, SizeOneIsIdentity) {
  Cvec data{{2.5, -1.0}};
  fft(data);
  EXPECT_DOUBLE_EQ(data[0].real(), 2.5);
  EXPECT_DOUBLE_EQ(data[0].imag(), -1.0);
}

}  // namespace
}  // namespace somrm::linalg
