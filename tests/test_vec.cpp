// Unit tests for linalg/vec.hpp.

#include "linalg/vec.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace somrm::linalg {
namespace {

TEST(VecTest, ConstructorsProduceExpectedContents) {
  EXPECT_EQ(ones(3), (Vec{1.0, 1.0, 1.0}));
  EXPECT_EQ(zeros(2), (Vec{0.0, 0.0}));
  EXPECT_EQ(constant_vec(2, 2.5), (Vec{2.5, 2.5}));
  EXPECT_EQ(unit_vec(3, 1), (Vec{0.0, 1.0, 0.0}));
}

TEST(VecTest, UnitVecRejectsOutOfRangeIndex) {
  EXPECT_THROW(unit_vec(3, 3), std::out_of_range);
}

TEST(VecTest, DotComputesInnerProduct) {
  const Vec x{1.0, 2.0, 3.0};
  const Vec y{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(x, y), 4.0 - 10.0 + 18.0);
}

TEST(VecTest, DotRejectsSizeMismatch) {
  const Vec x{1.0};
  const Vec y{1.0, 2.0};
  EXPECT_THROW(dot(x, y), std::invalid_argument);
}

TEST(VecTest, AxpyAccumulates) {
  const Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_EQ(y, (Vec{13.0, 26.0}));
}

TEST(VecTest, ScaleMultiplies) {
  Vec x{1.0, -2.0};
  scale(-2.0, x);
  EXPECT_EQ(x, (Vec{-2.0, 4.0}));
}

TEST(VecTest, Norms) {
  const Vec x{3.0, -4.0};
  EXPECT_DOUBLE_EQ(norm2(x), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(x), 4.0);
}

TEST(VecTest, SumMinMax) {
  const Vec x{1.0, -2.0, 5.0};
  EXPECT_DOUBLE_EQ(sum(x), 4.0);
  EXPECT_DOUBLE_EQ(max_elem(x), 5.0);
  EXPECT_DOUBLE_EQ(min_elem(x), -2.0);
  EXPECT_THROW(max_elem(Vec{}), std::invalid_argument);
}

TEST(VecTest, MaxAbsDiff) {
  const Vec x{1.0, 2.0};
  const Vec y{1.5, 1.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(x, y), 1.0);
}

TEST(VecTest, AllFiniteDetectsNanAndInf) {
  EXPECT_TRUE(all_finite(Vec{1.0, 2.0}));
  EXPECT_FALSE(all_finite(Vec{1.0, std::numeric_limits<double>::infinity()}));
  EXPECT_FALSE(all_finite(Vec{std::nan("")}));
}

TEST(VecTest, IsNonnegativeHonoursTolerance) {
  EXPECT_TRUE(is_nonnegative(Vec{0.0, 1.0}));
  EXPECT_FALSE(is_nonnegative(Vec{-1e-3}));
  EXPECT_TRUE(is_nonnegative(Vec{-1e-3}, 1e-2));
}

TEST(VecTest, NormalizeProbability) {
  Vec x{1.0, 3.0};
  normalize_probability(x);
  EXPECT_DOUBLE_EQ(x[0], 0.25);
  EXPECT_DOUBLE_EQ(x[1], 0.75);
  Vec zero{0.0, 0.0};
  EXPECT_THROW(normalize_probability(zero), std::invalid_argument);
}

TEST(VecTest, ToStringTruncatesLongVectors) {
  const Vec x(100, 1.0);
  const std::string s = to_string(x, 4);
  EXPECT_NE(s.find("..."), std::string::npos);
  EXPECT_NE(s.find("100 elems"), std::string::npos);
}

}  // namespace
}  // namespace somrm::linalg
