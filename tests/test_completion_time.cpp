// Tests for the completion-time simulator, anchored by the monotone
// first-order identity Pr(Theta(x) > t) = Pr(B(t) < x) and by Brownian
// hitting-time closed forms (inverse Gaussian).

#include "sim/completion_time.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/randomization.hpp"
#include "prob/normal.hpp"
#include "sim/simulator.hpp"

namespace somrm::sim {
namespace {

using linalg::Triplet;
using linalg::Vec;

core::SecondOrderMrm monotone_model() {
  // sigma = 0, all rates positive: B(t) strictly increasing.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 2.0}, {1, 0, 3.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{3.0, 1.0}, Vec{0.0, 0.0},
                              Vec{1.0, 0.0});
}

core::SecondOrderMrm brownian_model(double r, double s2) {
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  return core::SecondOrderMrm(std::move(gen), Vec{r, r}, Vec{s2, s2},
                              Vec{1.0, 0.0});
}

TEST(CompletionTimeTest, DeterministicSingleRate) {
  // One effective rate r = 2 everywhere: Theta(x) = x / 2 exactly.
  auto gen = ctmc::Generator::from_rates(
      2, std::vector<Triplet>{{0, 1, 1.0}, {1, 0, 1.0}});
  const core::SecondOrderMrm m(std::move(gen), Vec{2.0, 2.0}, Vec{0.0, 0.0},
                               Vec{1.0, 0.0});
  const CompletionTimeSimulator sim(m);
  somrm::prob::Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto s = sim.sample(5.0, rng, 100.0, 1e-10);
    ASSERT_TRUE(s.completed);
    EXPECT_NEAR(s.time, 2.5, 1e-9);
  }
}

TEST(CompletionTimeTest, MonotoneFirstOrderIdentity) {
  // Pr(Theta(x) > t) = Pr(B(t) < x) for monotone rewards: compare the
  // empirical completion-time CDF against the simulated reward CDF.
  const auto model = monotone_model();
  const CompletionTimeSimulator ct_sim(model);
  const Simulator b_sim(model);

  const double x = 4.0;
  CompletionTimeOptions opts;
  opts.num_replications = 40000;
  opts.seed = 11;
  const auto samples = ct_sim.sample_many(x, opts);

  for (double t : {1.5, 2.0, 3.0}) {
    double theta_gt_t = 0.0;
    for (const auto& s : samples)
      if (!s.completed || s.time > t) theta_gt_t += 1.0;
    theta_gt_t /= static_cast<double>(samples.size());

    auto rewards = b_sim.sample_rewards(t, 40000, 12);
    std::sort(rewards.begin(), rewards.end());
    // Pr(B(t) < x); rewards are continuous mixtures here so <= is fine.
    const double b_lt_x = empirical_cdf(rewards, x, /*sorted=*/true);
    EXPECT_NEAR(theta_gt_t, b_lt_x, 0.015) << "t = " << t;
  }
}

TEST(CompletionTimeTest, BrownianHittingTimeInverseGaussian) {
  // Pure Brownian reward (uniform r, s2): Theta(x) ~ InverseGaussian with
  // mean x/r and shape x^2/s2 => E = x/r, Var = x s2 / r^3.
  const double r = 2.0, s2 = 1.0, x = 3.0;
  const CompletionTimeSimulator sim(brownian_model(r, s2));
  CompletionTimeOptions opts;
  opts.num_replications = 60000;
  opts.seed = 21;
  opts.horizon = 1000.0;
  const auto est = sim.estimate(x, opts);
  EXPECT_GT(est.completion_probability, 0.999);  // positive drift: a.s. hit
  EXPECT_NEAR(est.mean, x / r, 0.02);
  EXPECT_NEAR(est.stddev, std::sqrt(x * s2 / (r * r * r)), 0.02);
}

TEST(CompletionTimeTest, CrossingCanPrecedeEndpoint) {
  // With variance, Theta(x) <= t happens strictly more often than
  // B(t) >= x (paths can cross and come back): check the inequality and
  // that it is strict for a wide barrier.
  const auto model = brownian_model(1.0, 4.0);
  const CompletionTimeSimulator ct_sim(model);
  const Simulator b_sim(model);
  const double x = 1.0, t = 1.0;

  CompletionTimeOptions opts;
  opts.num_replications = 30000;
  opts.seed = 5;
  opts.horizon = t;  // censor at t: completion fraction = Pr(Theta <= t)
  const auto est = ct_sim.estimate(x, opts);

  auto rewards = b_sim.sample_rewards(t, 30000, 6);
  std::sort(rewards.begin(), rewards.end());
  const double p_b_ge_x =
      1.0 - empirical_cdf(rewards, x, /*sorted=*/true);

  EXPECT_GT(est.completion_probability, p_b_ge_x + 0.02);

  // Exact check: for Brownian motion, Pr(Theta(x) <= t) =
  // Phi((rt-x)/sqrt(s2 t)) + e^{2rx/s2} Phi((-rt-x)/sqrt(s2 t)).
  const double exact =
      prob::normal_cdf(1.0 * t - x, 0.0, 4.0 * t) +
      std::exp(2.0 * 1.0 * x / 4.0) *
          prob::normal_cdf(-1.0 * t - x, 0.0, 4.0 * t);
  EXPECT_NEAR(est.completion_probability, exact, 0.01);
}

TEST(CompletionTimeTest, MixedZeroAndPositiveVarianceStatesStayFinite) {
  // Regression: sojourns in a sigma = 0 state used to reach the Brownian
  // bridge-crossing probability with var = 0, where the 0/0 exponential
  // produced NaN (and, with the exponential overflowing, probabilities
  // above 1). A chain mixing deterministic and diffusive states must yield
  // finite, in-range samples and a completion probability in [0, 1].
  auto gen = ctmc::Generator::from_rates(
      3, std::vector<Triplet>{
             {0, 1, 2.0}, {1, 2, 1.5}, {2, 0, 1.0}, {1, 0, 0.5}});
  const core::SecondOrderMrm model(std::move(gen), Vec{2.0, 0.5, 1.0},
                                   Vec{0.0, 1.0, 0.0}, Vec{1.0, 0.0, 0.0});
  const CompletionTimeSimulator sim(model);

  CompletionTimeOptions opts;
  opts.num_replications = 5000;
  opts.horizon = 50.0;
  opts.seed = 21;
  const double x = 3.0;
  const auto samples = sim.sample_many(x, opts);
  ASSERT_EQ(samples.size(), opts.num_replications);
  for (const auto& s : samples) {
    ASSERT_TRUE(std::isfinite(s.time));
    EXPECT_GE(s.time, 0.0);
    EXPECT_LE(s.time, opts.horizon);
  }

  const auto est = sim.estimate(x, opts);
  EXPECT_GE(est.completion_probability, 0.0);
  EXPECT_LE(est.completion_probability, 1.0);
  // Every state drifts upward here, so the barrier at x = 3 with horizon 50
  // is essentially always hit: the guard must not censor valid paths.
  EXPECT_GT(est.completion_probability, 0.99);
}

TEST(CompletionTimeTest, CensoringReported) {
  // Negative drift, far barrier: most replications censor.
  const auto model = brownian_model(-1.0, 0.5);
  const CompletionTimeSimulator sim(model);
  CompletionTimeOptions opts;
  opts.num_replications = 2000;
  opts.horizon = 5.0;
  opts.seed = 8;
  const auto est = sim.estimate(50.0, opts);
  EXPECT_LT(est.completion_probability, 0.01);
}

TEST(CompletionTimeTest, Reproducible) {
  const CompletionTimeSimulator sim(brownian_model(1.0, 1.0));
  CompletionTimeOptions opts;
  opts.num_replications = 100;
  opts.seed = 77;
  const auto a = sim.sample_many(2.0, opts);
  const auto b = sim.sample_many(2.0, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].completed, b[i].completed);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

TEST(CompletionTimeTest, InputValidation) {
  const CompletionTimeSimulator sim(brownian_model(1.0, 1.0));
  somrm::prob::Rng rng(1);
  EXPECT_THROW(sim.sample(0.0, rng, 10.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(sim.sample(1.0, rng, 0.0, 1e-9), std::invalid_argument);
  EXPECT_THROW(sim.sample(1.0, rng, 10.0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace somrm::sim
