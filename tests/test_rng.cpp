// Tests for the deterministic RNG and its variate transforms.

#include "prob/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace somrm::prob {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, Uniform01OpenLeftNeverZero) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.uniform01_open_left(), 0.0);
}

TEST(RngTest, UniformMeanAndVariance) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    sum += u;
    sum_sq += u * u;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5, 0.005);
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(RngTest, UniformBelowUnbiasedOverSmallRange) {
  Rng rng(5);
  std::vector<int> counts(5, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_below(5)];
  for (int c : counts) EXPECT_NEAR(c, n / 5.0, 5.0 * std::sqrt(n / 5.0));
  EXPECT_THROW(rng.uniform_below(0), std::invalid_argument);
}

TEST(RngTest, StandardNormalMoments) {
  Rng rng(13);
  const int n = 400000;
  double s1 = 0, s2 = 0, s3 = 0, s4 = 0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.standard_normal();
    s1 += z;
    s2 += z * z;
    s3 += z * z * z;
    s4 += z * z * z * z;
  }
  EXPECT_NEAR(s1 / n, 0.0, 0.01);
  EXPECT_NEAR(s2 / n, 1.0, 0.02);
  EXPECT_NEAR(s3 / n, 0.0, 0.05);
  EXPECT_NEAR(s4 / n, 3.0, 0.1);
}

TEST(RngTest, NormalWithParametersAndDegenerateVariance) {
  Rng rng(17);
  EXPECT_DOUBLE_EQ(rng.normal(5.0, 0.0), 5.0);
  EXPECT_THROW(rng.normal(0.0, -1.0), std::invalid_argument);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(19);
  const double rate = 2.5;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(rate);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(23);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.discrete(weights)];
  EXPECT_NEAR(counts[0], 0.1 * n, 400);
  EXPECT_NEAR(counts[1], 0.3 * n, 600);
  EXPECT_NEAR(counts[2], 0.6 * n, 700);
}

TEST(RngTest, DiscreteRejectsBadWeights) {
  Rng rng(29);
  EXPECT_THROW(rng.discrete(std::vector<double>{0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW(rng.discrete(std::vector<double>{1.0, -0.5}),
               std::invalid_argument);
}

}  // namespace
}  // namespace somrm::prob
