// Regression tests for bench/bench_common.{hpp,cpp}: CLI flag parsing
// (missing values and malformed numbers must abort, not silently fall back)
// and JsonWriter snapshot durability (atomic replace, string escaping).

#include "bench_common.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace somrm::bench {
namespace {

// Builds a mutable argv from string literals for the arg_* helpers.
class Args {
 public:
  explicit Args(std::vector<std::string> words) : words_(std::move(words)) {
    for (std::string& w : words_) ptrs_.push_back(w.data());
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> words_;
  std::vector<char*> ptrs_;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

TEST(BenchArgsTest, FlagInLastSlotWithoutValueThrows) {
  // The old scan stopped at argc - 1, so a value-less trailing flag was
  // silently ignored and the bench ran with the fallback.
  Args args({"bench", "--states"});
  try {
    arg_size(args.argc(), args.argv(), "--states", 100);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("--states"), std::string::npos)
        << e.what();
  }
  Args dargs({"bench", "--epsilon"});
  EXPECT_THROW(arg_double(dargs.argc(), dargs.argv(), "--epsilon", 1e-9),
               std::invalid_argument);
  Args sargs({"bench", "--json"});
  EXPECT_THROW(arg_string(sargs.argc(), sargs.argv(), "--json", ""),
               std::invalid_argument);
}

TEST(BenchArgsTest, ValidValuesParseAndAbsentFlagsFallBack) {
  Args args({"bench", "--states", "5000", "--t", "2.5", "--json", "out.json"});
  EXPECT_EQ(arg_size(args.argc(), args.argv(), "--states", 1), 5000u);
  EXPECT_EQ(arg_double(args.argc(), args.argv(), "--t", 0.0), 2.5);
  EXPECT_EQ(arg_string(args.argc(), args.argv(), "--json", ""), "out.json");
  EXPECT_EQ(arg_size(args.argc(), args.argv(), "--moments", 7), 7u);
  EXPECT_EQ(arg_double(args.argc(), args.argv(), "--eps", 1e-9), 1e-9);
}

TEST(BenchArgsTest, MalformedNumbersThrowNamingTheFlag) {
  // strtod/strtoull used to return 0 for garbage, so `--states 5k` ran a
  // zero-state (or partially-parsed) measurement without complaint.
  for (const char* bad : {"abc", "5k", "1.5.2", ""}) {
    Args args({"bench", "--t", bad});
    try {
      arg_double(args.argc(), args.argv(), "--t", 1.0);
      FAIL() << "expected throw for --t " << bad;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("--t"), std::string::npos);
    }
  }
  for (const char* bad : {"abc", "5k", "3.5", "-5", ""}) {
    Args args({"bench", "--states", bad});
    EXPECT_THROW(arg_size(args.argc(), args.argv(), "--states", 1),
                 std::invalid_argument)
        << bad;
  }
  // Trailing-garbage doubles are rejected too, not truncated.
  Args args({"bench", "--t", "2.5e"});
  EXPECT_THROW(arg_double(args.argc(), args.argv(), "--t", 1.0),
               std::invalid_argument);
}

TEST(BenchArgsTest, SizeListParsesCommaSeparatedValues) {
  Args args({"bench", "--threads", "1,2,4,8,16"});
  const std::vector<std::size_t> want = {1, 2, 4, 8, 16};
  EXPECT_EQ(arg_size_list(args.argc(), args.argv(), "--threads", {7}), want);
  const std::vector<std::size_t> fallback = {3};
  EXPECT_EQ(arg_size_list(args.argc(), args.argv(), "--absent", fallback),
            fallback);
  Args one({"bench", "--threads", "4"});
  EXPECT_EQ(arg_size_list(one.argc(), one.argv(), "--threads", {}),
            std::vector<std::size_t>{4});
  for (const char* bad : {"", "1,,2", "1,2,", "1,a", "-1,2", "2.5"}) {
    Args margs({"bench", "--threads", bad});
    EXPECT_THROW(arg_size_list(margs.argc(), margs.argv(), "--threads", {}),
                 std::invalid_argument)
        << "\"" << bad << "\"";
  }
}

TEST(BenchJsonTest, EscapeHandlesQuotesBackslashesAndControlChars) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z")), "a\\u0001z");
}

TEST(BenchJsonTest, WriterEscapesRecordStrings) {
  const std::string path = testing::TempDir() + "escape_records.json";
  JsonWriter writer(path);
  BenchRecord rec;
  rec.bench = "weird\"name\nwith newline";
  rec.kernel = "panel\\v2";
  rec.git_sha = "deadbeef";
  rec.simd = "avx2";
  writer.add(std::move(rec));
  writer.write();
  const std::string content = slurp(path);
  EXPECT_NE(content.find("weird\\\"name\\nwith newline"), std::string::npos)
      << content;
  EXPECT_NE(content.find("panel\\\\v2"), std::string::npos);
  EXPECT_NE(content.find("\"simd\": \"avx2\""), std::string::npos);
  // No raw newline may survive inside the emitted object line.
  EXPECT_EQ(content.find("weird\"name"), std::string::npos);
  std::remove(path.c_str());
}

TEST(BenchJsonTest, AppendMergesAndFailureLeavesSnapshotIntact) {
  const std::string path = testing::TempDir() + "append_records.json";
  std::remove(path.c_str());

  {
    JsonWriter first(path, /*append=*/true);  // append to nothing: fresh array
    BenchRecord rec;
    rec.bench = "run1";
    rec.states = 10;
    first.add(std::move(rec));
    first.write();
  }
  {
    JsonWriter second(path, /*append=*/true);
    BenchRecord rec;
    rec.bench = "run2";
    rec.states = 20;
    second.add(std::move(rec));
    second.write();
  }
  const std::string merged = slurp(path);
  EXPECT_NE(merged.find("run1"), std::string::npos) << merged;
  EXPECT_NE(merged.find("run2"), std::string::npos) << merged;

  // A failed append (existing file is not a JSON array) must leave the
  // existing file byte-identical — the old implementation's "w" reopen of
  // the destination truncated the snapshot it could not extend.
  const std::string garbage_path = testing::TempDir() + "not_an_array.json";
  spit(garbage_path, "this is not json\n");
  JsonWriter bad(garbage_path, /*append=*/true);
  BenchRecord rec;
  rec.bench = "run3";
  bad.add(std::move(rec));
  EXPECT_THROW(bad.write(), std::runtime_error);
  EXPECT_EQ(slurp(garbage_path), "this is not json\n");
  std::remove(garbage_path.c_str());
  std::remove(path.c_str());
}

TEST(BenchJsonTest, OverwriteReplacesAtomicallyViaTempFile) {
  const std::string path = testing::TempDir() + "replace_records.json";
  spit(path, "[\n  {\"bench\": \"old\"}\n]\n");
  JsonWriter writer(path);  // no append: replace
  BenchRecord rec;
  rec.bench = "new";
  writer.add(std::move(rec));
  writer.write();
  const std::string content = slurp(path);
  EXPECT_EQ(content.find("old"), std::string::npos);
  EXPECT_NE(content.find("new"), std::string::npos);
  // The temp staging file is renamed away, not left behind.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

TEST(BenchJsonTest, DisabledWriterIsANoOp) {
  JsonWriter writer("");
  EXPECT_FALSE(writer.enabled());
  BenchRecord rec;
  rec.bench = "ignored";
  writer.add(std::move(rec));
  writer.write();  // must not create a file or throw
}

}  // namespace
}  // namespace somrm::bench
