// Tests for linalg/reorder.hpp: permutation validity, bandwidth reduction,
// within-row order preservation, and the solver-level guarantee that a
// reordered solve returns bit-identical moments.

#include "linalg/reorder.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/impulse_randomization.hpp"
#include "core/randomization.hpp"
#include "ctmc/generator.hpp"
#include "linalg/csr.hpp"
#include "linalg/panel.hpp"
#include "linalg/vec.hpp"

namespace somrm::linalg {
namespace {

using core::MomentResult;
using core::MomentSolverOptions;
using core::RandomizationMomentSolver;
using core::ReorderPolicy;
using core::SecondOrderMrm;

// Deterministic shuffle of [0, n): i -> (i * stride + offset) % n with
// stride coprime to n. Scatters formerly-adjacent indices far apart.
std::vector<std::size_t> stride_shuffle(std::size_t n, std::size_t stride,
                                        std::size_t offset) {
  std::vector<std::size_t> map(n);
  for (std::size_t i = 0; i < n; ++i) map[i] = (i * stride + offset) % n;
  return map;
}

// Tridiagonal (banded) pattern whose state labels have been scrambled by
// @p label: entry (label[i], label[j]) for |i - j| <= 1. Bandwidth under
// the scrambled labels is large; RCM should recover something near 1.
CsrMatrix shuffled_banded(std::size_t n, const std::vector<std::size_t>& label) {
  std::vector<Triplet> trips;
  for (std::size_t i = 0; i < n; ++i) {
    trips.push_back({label[i], label[i], -2.0 - 0.01 * static_cast<double>(i)});
    if (i + 1 < n) {
      trips.push_back({label[i], label[i + 1], 1.0 + 0.1 * static_cast<double>(i)});
      trips.push_back({label[i + 1], label[i], 0.5 + 0.2 * static_cast<double>(i)});
    }
  }
  return CsrMatrix::from_triplets(n, n, trips);
}

void expect_is_permutation(const std::vector<std::size_t>& perm, std::size_t n) {
  ASSERT_EQ(perm.size(), n);
  std::vector<std::size_t> sorted = perm;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(ReorderTest, PermutationHelpersValidateAndRoundTrip) {
  const std::vector<std::size_t> perm = {2, 0, 3, 1};
  const auto inv = invert_permutation(perm);
  for (std::size_t i = 0; i < perm.size(); ++i) EXPECT_EQ(inv[perm[i]], i);
  EXPECT_FALSE(is_identity_permutation(perm));
  const std::vector<std::size_t> id = {0, 1, 2};
  EXPECT_TRUE(is_identity_permutation(id));

  const std::vector<std::size_t> dup = {0, 1, 1};
  EXPECT_THROW(invert_permutation(dup), std::invalid_argument);
  const std::vector<std::size_t> oob = {0, 1, 5};
  EXPECT_THROW(invert_permutation(oob), std::invalid_argument);
}

TEST(ReorderTest, OrderingsArePermutationsAndReduceBandwidth) {
  const std::size_t n = 64;
  const auto label = stride_shuffle(n, 29, 3);
  const CsrMatrix a = shuffled_banded(n, label);
  const std::size_t before = bandwidth(a);
  ASSERT_GT(before, 8u);  // the shuffle really scattered the band

  const auto rcm = rcm_permutation(a);
  expect_is_permutation(rcm, n);
  const CsrMatrix a_rcm = permute_symmetric(a, rcm);
  EXPECT_LT(bandwidth(a_rcm), before);
  // RCM on a path graph should recover an (almost) tridiagonal band.
  EXPECT_LE(bandwidth(a_rcm), 2u);

  const auto deg = degree_permutation(a);
  expect_is_permutation(deg, n);

  // Determinism: same input, same permutation.
  EXPECT_EQ(rcm, rcm_permutation(a));
  EXPECT_EQ(deg, degree_permutation(a));
}

TEST(ReorderTest, PermuteSymmetricRemapsValuesAndPreservesRowOrder) {
  const std::size_t n = 12;
  const auto label = stride_shuffle(n, 5, 1);
  const CsrMatrix a = shuffled_banded(n, label);
  const auto perm = rcm_permutation(a);
  const auto inv = invert_permutation(perm);
  const CsrMatrix b = permute_symmetric(a, perm);

  ASSERT_EQ(b.rows(), n);
  ASSERT_EQ(b.nnz(), a.nnz());
  // Value correctness: B(r, c) == A(perm[r], perm[c]).
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = 0; c < n; ++c)
      EXPECT_EQ(b.at(r, c), a.at(perm[r], perm[c])) << r << "," << c;

  // Within-row order preservation: row r of B lists the same VALUES in the
  // same sequence as row perm[r] of A (columns remapped, never re-sorted).
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t src = perm[r];
    const std::size_t len = a.row_ptr()[src + 1] - a.row_ptr()[src];
    ASSERT_EQ(b.row_ptr()[r + 1] - b.row_ptr()[r], len);
    for (std::size_t k = 0; k < len; ++k) {
      EXPECT_EQ(b.values()[b.row_ptr()[r] + k], a.values()[a.row_ptr()[src] + k]);
      EXPECT_EQ(b.col_idx()[b.row_ptr()[r] + k],
                inv[a.col_idx()[a.row_ptr()[src] + k]]);
    }
  }
}

TEST(ReorderTest, FromUnsortedPartsSupportsUnsortedColumns) {
  // 2x3 matrix with row 0 stored as columns {2, 0} — deliberately unsorted.
  std::vector<std::size_t> row_ptr = {0, 2, 3};
  std::vector<std::size_t> col_idx = {2, 0, 1};
  std::vector<double> values = {5.0, 7.0, 11.0};
  const CsrMatrix m =
      CsrMatrix::from_unsorted_parts(2, 3, row_ptr, col_idx, values);
  EXPECT_FALSE(m.columns_sorted());
  EXPECT_EQ(m.at(0, 0), 7.0);
  EXPECT_EQ(m.at(0, 1), 0.0);
  EXPECT_EQ(m.at(0, 2), 5.0);
  EXPECT_EQ(m.at(1, 1), 11.0);

  // Sorted input through the same factory keeps the sorted flag.
  const CsrMatrix s = CsrMatrix::from_unsorted_parts(
      2, 3, {0, 2, 3}, {0, 2, 1}, {7.0, 5.0, 11.0});
  EXPECT_TRUE(s.columns_sorted());

  // Duplicate columns within a row are rejected either way.
  EXPECT_THROW(CsrMatrix::from_unsorted_parts(1, 3, {0, 2}, {2, 2}, {1.0, 2.0}),
               std::invalid_argument);
  // The strict constructor still rejects unsorted columns outright.
  EXPECT_THROW(CsrMatrix(2, 3, {0, 2, 3}, {2, 0, 1}, {5.0, 7.0, 11.0}),
               std::invalid_argument);
}

TEST(ReorderTest, PermutedSpmvRoundTripsBitExactly) {
  const std::size_t n = 48;
  const auto label = stride_shuffle(n, 11, 7);
  const CsrMatrix a = shuffled_banded(n, label);
  const auto perm = rcm_permutation(a);
  const CsrMatrix b = permute_symmetric(a, perm);

  Vec x(n);
  for (std::size_t i = 0; i < n; ++i)
    x[i] = 0.1 + 1.0 / static_cast<double>(i + 1);

  Vec y_ref(n, 0.0);
  a.multiply(x, y_ref);

  // Permute input, multiply with the reordered matrix, un-permute output.
  const Vec x_p = permute_vector(x, perm);
  Vec y_p(n, 0.0);
  b.multiply(x_p, y_p);
  Vec y_back(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) y_back[perm[i]] = y_p[i];

  // Bit-exact, not just close: each row's accumulation chain is unchanged.
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(y_back[i], y_ref[i]) << i;
}

TEST(ReorderTest, UnpermutePanelRowsInvertsRowGather) {
  const std::size_t n = 9, w = 4;
  const auto perm = stride_shuffle(n, 4, 2);  // gcd(4, 9) == 1: a permutation
  Panel p(n, w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < w; ++j)
      p(i, j) = static_cast<double>(i * 100 + j);

  // Gather rows by perm, then unpermute: must restore the original panel.
  Panel gathered(n, w);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < w; ++j) gathered(i, j) = p(perm[i], j);
  const Panel restored = unpermute_panel_rows(gathered, perm);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < w; ++j) EXPECT_EQ(restored(i, j), p(i, j));
}

// ---------------------------------------------------------------------------
// Solver-level round trip: reordered solves must be bit-identical to the
// unreordered solve — the whole point of the original-row-order contract.
// ---------------------------------------------------------------------------

SecondOrderMrm shuffled_chain_model(std::size_t n) {
  const auto label = stride_shuffle(n, 17, 5);
  std::vector<Triplet> rates;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    rates.push_back({label[i], label[i + 1], 1.0 + 0.25 * static_cast<double>(i)});
    rates.push_back({label[i + 1], label[i], 2.0 + 0.125 * static_cast<double>(i)});
  }
  auto gen = ctmc::Generator::from_rates(n, rates);
  Vec drifts(n), vars(n), initial(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    drifts[label[i]] = static_cast<double>(n - i) * 0.5;
    vars[label[i]] = 0.3 * static_cast<double>(i + 1);
  }
  initial[label[0]] = 0.25;
  initial[label[n / 2]] = 0.75;
  return SecondOrderMrm(std::move(gen), std::move(drifts), std::move(vars),
                        std::move(initial));
}

TEST(ReorderTest, SolverRoundTripIsBitIdentical) {
  const std::size_t n = 40;
  const RandomizationMomentSolver solver(shuffled_chain_model(n));
  const std::vector<double> times = {0.3, 1.1, 2.7};

  MomentSolverOptions base;
  base.max_moment = 3;
  base.epsilon = 1e-10;

  const auto ref = solver.solve_multi(times, base);

  for (const ReorderPolicy policy : {ReorderPolicy::kRcm, ReorderPolicy::kDegree}) {
    MomentSolverOptions opts = base;
    opts.reorder = policy;
    const auto got = solver.solve_multi(times, opts);
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t ti = 0; ti < ref.size(); ++ti) {
      for (std::size_t j = 0; j <= base.max_moment; ++j) {
        EXPECT_EQ(got[ti].weighted[j], ref[ti].weighted[j])
            << "t=" << times[ti] << " moment " << j;
        ASSERT_EQ(got[ti].per_state[j].size(), n);
        for (std::size_t i = 0; i < n; ++i)
          EXPECT_EQ(got[ti].per_state[j][i], ref[ti].per_state[j][i])
              << "t=" << times[ti] << " moment " << j << " state " << i;
      }
      EXPECT_EQ(got[ti].stats.reorder,
                policy == ReorderPolicy::kRcm ? "rcm" : "degree");
      EXPECT_LE(got[ti].stats.bandwidth_after, got[ti].stats.bandwidth_before);
    }
  }
  EXPECT_EQ(ref[0].stats.reorder, "none");
}

TEST(ReorderTest, ReorderStatsReportBandwidthReduction) {
  // The shuffled chain has a large labelled bandwidth; RCM should shrink it.
  const RandomizationMomentSolver solver(shuffled_chain_model(32));
  MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.reorder = ReorderPolicy::kRcm;
  const MomentResult res = solver.solve(1.0, opts);
  EXPECT_EQ(res.stats.reorder, "rcm");
  EXPECT_GT(res.stats.bandwidth_before, 4u);
  EXPECT_LT(res.stats.bandwidth_after, res.stats.bandwidth_before);
}

TEST(ReorderTest, NoReorderStatsReportActualBandwidthNotStaleZeros) {
  // With reorder == kNone there is no before/after pair to report, but the
  // stats must still carry the matrix's real bandwidth on both fields (not
  // default-initialized zeros) so dashboards can compare runs with and
  // without the pass. Regression test: the impulse solver used to leave
  // both fields at 0 on this path.
  const auto model = shuffled_chain_model(32);
  MomentSolverOptions opts;
  opts.max_moment = 1;
  opts.reorder = ReorderPolicy::kNone;

  const MomentResult rand_res =
      RandomizationMomentSolver(model).solve(1.0, opts);
  EXPECT_EQ(rand_res.stats.reorder, "none");
  EXPECT_EQ(rand_res.stats.bandwidth_before, rand_res.stats.bandwidth_after);
  EXPECT_GT(rand_res.stats.bandwidth_before, 0u);

  // Impulse model on the same chain: empty impulse matrices keep the test
  // focused on the Q' bandwidth bookkeeping.
  const std::size_t n = model.num_states();
  const core::SecondOrderImpulseMrm imodel(
      model, CsrMatrix::from_triplets(n, n, {}),
      CsrMatrix::from_triplets(n, n, {}));
  const MomentResult imp_res =
      core::ImpulseMomentSolver(imodel).solve(1.0, opts);
  EXPECT_EQ(imp_res.stats.reorder, "none");
  EXPECT_EQ(imp_res.stats.bandwidth_before, imp_res.stats.bandwidth_after);
  EXPECT_GT(imp_res.stats.bandwidth_before, 0u);
  EXPECT_EQ(imp_res.stats.bandwidth_before, rand_res.stats.bandwidth_before);
}

}  // namespace
}  // namespace somrm::linalg
